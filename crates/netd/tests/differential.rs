//! The loopback differential gate.
//!
//! A fault-free socket-backed session must be *indistinguishable at the
//! model layer* from `rmt-net`'s deterministic `NetRunner` under an empty
//! `FaultPlan`: identical canonical event streams, identical per-node view
//! transcripts, identical decisions, and identical complexity metrics. The
//! deterministic runners are the oracle; the sockets are mechanism.

use std::time::Duration;

use rmt_core::protocols::rmt_pka::RmtPka;
use rmt_graph::{generators, Graph, ViewKind};
use rmt_hunt::{Family, InstanceSpec};
use rmt_net::{FaultPlan, NetRunner, Termination};
use rmt_netd::{run_session_observed, ChaosPlan, NetdConfig};
use rmt_obs::{node_view, render_trace, VecObserver};
use rmt_sets::{NodeId, NodeSet};
use rmt_sim::testing::{Flood, Watchdog};
use rmt_sim::{Envelope, FnAdversary, SilentAdversary};

/// Renders the first divergence between two event streams for diagnosis.
fn diff_events(label: &str, oracle: &VecObserver, netd: &VecObserver) {
    if oracle.events == netd.events {
        return;
    }
    let first = oracle
        .events
        .iter()
        .zip(netd.events.iter())
        .position(|(a, b)| a != b)
        .unwrap_or_else(|| oracle.events.len().min(netd.events.len()));
    panic!(
        "{label}: event streams diverge at index {first}\n\
         oracle: {:?}\n\
         netd:   {:?}\n\n--- oracle trace ---\n{}\n--- netd trace ---\n{}",
        oracle.events.get(first),
        netd.events.get(first),
        render_trace(&oracle.events),
        render_trace(&netd.events),
    );
}

/// Runs one PKA instance on both backends and asserts full agreement.
fn assert_pka_identical(spec: InstanceSpec, input: u64) {
    let label = format!("{spec:?}");
    let inst = spec.build();
    let graph = inst.graph().clone();
    let n = graph.node_count();

    let mut oracle_obs = VecObserver::new();
    let oracle = NetRunner::new(
        graph.clone(),
        |v| RmtPka::node(&inst, v, input),
        SilentAdversary::new(NodeSet::new()),
        FaultPlan::new(spec.seed),
    )
    .run_observed(&mut oracle_obs);

    let mut netd_obs = VecObserver::new();
    let netd = run_session_observed(
        graph,
        |v| RmtPka::node(&inst, v, input),
        SilentAdversary::new(NodeSet::new()),
        &ChaosPlan::new(),
        NetdConfig {
            seed: spec.seed,
            ..NetdConfig::default()
        },
        &mut netd_obs,
    )
    .expect("session io");

    assert_eq!(netd.stall, None, "{label}: netd stalled on the wire");
    assert_eq!(
        netd.losses,
        0,
        "{label}: fault-free run lost messages (bp={} pd={} dec={} crash-diag={:?})",
        netd.stats
            .shed_backpressure
            .load(std::sync::atomic::Ordering::SeqCst),
        netd.stats
            .shed_peer_down
            .load(std::sync::atomic::Ordering::SeqCst),
        netd.stats
            .decode_errors
            .load(std::sync::atomic::Ordering::SeqCst),
        netd.diagnostics.len(),
    );
    diff_events(&label, &oracle_obs, &netd_obs);
    for v in 0..n as u32 {
        assert_eq!(
            node_view(&oracle_obs.events, v),
            node_view(&netd_obs.events, v),
            "{label}: node {v} view transcript diverges"
        );
        assert_eq!(
            oracle.decision(NodeId::new(v)),
            netd.decision(NodeId::new(v)),
            "{label}: node {v} decision diverges"
        );
    }
    assert_eq!(
        oracle.termination, netd.termination,
        "{label}: termination diverges"
    );
    assert_eq!(
        oracle.metrics.rounds, netd.metrics.rounds,
        "{label}: round counts diverge"
    );
    assert_eq!(
        oracle.metrics.honest_messages, netd.metrics.honest_messages,
        "{label}: message complexity diverges"
    );
    assert_eq!(
        oracle.metrics.honest_bits, netd.metrics.honest_bits,
        "{label}: bit complexity diverges"
    );
    assert_eq!(
        oracle.metrics.honest_messages_per_round, netd.metrics.honest_messages_per_round,
        "{label}: per-round message profile diverges"
    );
}

/// E2 family (non-adjacent dealer/receiver, ad-hoc knowledge): the flagship
/// paper workload, three seeds.
#[test]
fn pka_e2_loopback_matches_net_runner() {
    let dog = Watchdog::arm(
        "pka_e2_loopback_matches_net_runner",
        Duration::from_secs(120),
    );
    for seed in [0xBEEF, 0x5EED, 7] {
        dog.note(format!("E2 seed {seed:#x}"));
        let spec = InstanceSpec {
            family: Family::E2,
            n: 7,
            view: ViewKind::Radius(2),
            seed,
        };
        assert_pka_identical(spec, 41 + seed);
    }
    dog.disarm();
}

/// E3 family (denser random instances, full views), two seeds.
#[test]
fn pka_e3_loopback_matches_net_runner() {
    let dog = Watchdog::arm(
        "pka_e3_loopback_matches_net_runner",
        Duration::from_secs(120),
    );
    for seed in [3, 0xACE] {
        dog.note(format!("E3 seed {seed:#x}"));
        let spec = InstanceSpec {
            family: Family::E3,
            n: 8,
            view: ViewKind::Full,
            seed,
        };
        assert_pka_identical(spec, 1000 + seed);
    }
    dog.disarm();
}

/// An *active* adversary: corrupted node 2 floods forged values every round.
/// Exercises the adversarial-admission path and the virtualization of honest
/// sends addressed to a corrupted node (which has no task).
#[test]
fn flood_with_active_adversary_matches_net_runner() {
    let dog = Watchdog::arm(
        "flood_with_active_adversary_matches_net_runner",
        Duration::from_secs(120),
    );
    let graph: Graph = generators::cycle(6);
    let mut corrupted = NodeSet::new();
    corrupted.insert(NodeId::new(2));
    let make_adversary = || {
        FnAdversary::<u64, _>::new(corrupted.clone(), |round, g: &Graph, _| {
            if round > 2 {
                return Vec::new();
            }
            g.neighbors(NodeId::new(2))
                .iter()
                .map(|u| Envelope::new(NodeId::new(2), u, 666 + round as u64))
                .collect()
        })
    };

    let mut oracle_obs = VecObserver::new();
    let oracle = NetRunner::new(
        graph.clone(),
        |v| Flood::new(v, (v.index() == 0).then_some(99)),
        make_adversary(),
        FaultPlan::new(0),
    )
    .run_observed(&mut oracle_obs);

    let mut netd_obs = VecObserver::new();
    let netd = run_session_observed(
        graph.clone(),
        |v| Flood::new(v, (v.index() == 0).then_some(99)),
        make_adversary(),
        &ChaosPlan::new(),
        NetdConfig::default(),
        &mut netd_obs,
    )
    .expect("session io");

    assert_eq!(netd.stall, None, "netd stalled on the wire");
    diff_events("flood+adversary", &oracle_obs, &netd_obs);
    for v in graph.nodes().iter() {
        assert_eq!(
            oracle.decision(v),
            netd.decision(v),
            "node {} decision diverges",
            v.raw()
        );
    }
    assert_eq!(oracle.metrics.honest_messages, netd.metrics.honest_messages);
    assert_eq!(
        oracle.metrics.adversarial_messages,
        netd.metrics.adversarial_messages
    );
    assert!(matches!(netd.termination, Termination::Quiesced { .. }));
    dog.disarm();
}
