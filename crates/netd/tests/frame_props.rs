//! Property tests for the wire codec: every frame round-trips through its
//! encoding, and no byte sequence — arbitrary, truncated, or bit-flipped —
//! can make the decoder panic. The decoder faces a real network; its only
//! legal failure mode is a descriptive `FrameError`.

use proptest::prelude::*;
use rmt_netd::{Frame, MAX_FRAME_BYTES};

/// The vendored proptest stub has no `u8` support; derive bytes from `u32`.
fn arb_byte() -> impl Strategy<Value = u8> {
    any::<u32>().prop_map(|x| x as u8)
}

fn arb_bytes(max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(arb_byte(), 0..max)
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    (
        0u32..6,
        any::<u64>(),
        any::<u64>(),
        any::<u32>(),
        any::<u32>(),
        arb_bytes(64),
    )
        .prop_map(|(tag, a, b, x, y, payload)| match tag {
            0 => Frame::Hello {
                session: a,
                from: x,
                to: y,
                expect_seq: b,
            },
            1 => Frame::Msg {
                round: x,
                seq: a,
                admission: b,
                payload,
            },
            2 => Frame::Ack { cum_seq: a },
            3 => Frame::Heartbeat { nonce: a },
            4 => Frame::HeartbeatAck { nonce: a },
            _ => Frame::Bye,
        })
}

proptest! {
    /// Every frame type survives encode → decode unchanged, and decode
    /// reports exactly how many bytes it consumed.
    #[test]
    fn frame_round_trips(frame in arb_frame()) {
        let bytes = frame.to_bytes();
        prop_assert!(bytes.len() <= MAX_FRAME_BYTES + 4);
        let (decoded, used) = Frame::decode(&bytes).expect("own encoding must decode");
        prop_assert_eq!(decoded, frame);
        prop_assert_eq!(used, bytes.len());
    }

    /// Arbitrary garbage never panics the decoder.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in arb_bytes(128)) {
        let _ = Frame::decode(&bytes);
        let _ = Frame::read_from(&mut std::io::Cursor::new(&bytes));
    }

    /// Every truncation of a valid frame fails cleanly, never panics, and
    /// never decodes to a *different* frame.
    #[test]
    fn truncations_fail_cleanly(frame in arb_frame()) {
        let bytes = frame.to_bytes();
        for cut in 0..bytes.len() {
            if let Ok((decoded, used)) = Frame::decode(&bytes[..cut]) {
                // A prefix that decodes must be the frame itself
                // (possible only when cut == len, excluded here).
                prop_assert_eq!(decoded, frame.clone());
                prop_assert_eq!(used, cut);
            }
        }
    }

    /// Single bit flips anywhere in a valid frame either decode to *some*
    /// frame or fail with an error — never a panic, never an out-of-bounds
    /// read.
    #[test]
    fn bit_flips_never_panic(frame in arb_frame(), byte_idx in any::<u32>(), bit in 0u32..8) {
        let mut bytes = frame.to_bytes();
        let idx = byte_idx as usize % bytes.len();
        bytes[idx] ^= 1u8 << bit;
        let _ = Frame::decode(&bytes);
        let _ = Frame::read_from(&mut std::io::Cursor::new(&bytes));
    }
}
