//! Graceful degradation under chaos: WRONG = 0, losses loud, liveness
//! lost only when the fault actually warrants it.
//!
//! Four cells:
//! - **A** kill + restart: a flood survives a transient crash.
//! - **B** sever + restore: queued traffic replays; nothing is lost.
//! - **C** permanent kill of a PKA relay: the receiver either still decides
//!   the dealer's value or stalls — it never decides a wrong one.
//! - **D** starved queue on a severed dealer link: sheds are explicit,
//!   counted, and consistent with the emitted `FaultDrop` events.

use std::time::Duration;

use rmt_core::protocols::rmt_pka::RmtPka;
use rmt_graph::{generators, ViewKind};
use rmt_hunt::{Family, InstanceSpec};
use rmt_net::Termination;
use rmt_netd::{run_session_observed, ChaosPlan, NetdConfig};
use rmt_obs::{DropReason, RunEvent, VecObserver};
use rmt_sets::{NodeId, NodeSet};
use rmt_sim::testing::{Flood, Watchdog};
use rmt_sim::SilentAdversary;

fn fault_drops(events: &[RunEvent]) -> Vec<(u32, u32, DropReason)> {
    events
        .iter()
        .filter_map(|e| match e {
            RunEvent::FaultDrop {
                from, to, reason, ..
            } => Some((*from, *to, *reason)),
            _ => None,
        })
        .collect()
}

/// Cell A: node 2 dies at round 1 and comes back at round 3. The cycle
/// keeps a second path alive, so every honest node still decides the
/// dealer's value and nobody ever decides anything else.
#[test]
fn kill_and_restart_keeps_flood_safe() {
    let dog = Watchdog::arm(
        "kill_and_restart_keeps_flood_safe",
        Duration::from_secs(120),
    );
    let chaos = ChaosPlan::new()
        .with_kill(NodeId::new(2), 1)
        .with_restart(NodeId::new(2), 3);
    let mut obs = VecObserver::new();
    let outcome = run_session_observed(
        generators::cycle(6),
        |v| Flood::new(v, (v.index() == 0).then_some(77)),
        SilentAdversary::new(NodeSet::new()),
        &chaos,
        NetdConfig::default(),
        &mut obs,
    )
    .expect("session io");

    assert_eq!(outcome.stall, None, "wire stalled: {:?}", outcome.stall);
    for v in 0..6u32 {
        match outcome.decision(NodeId::new(v)) {
            Some(d) => assert_eq!(d, 77, "node {v} decided a wrong value"),
            None => panic!("node {v} never decided despite a live path"),
        }
    }
    assert!(
        obs.events
            .iter()
            .any(|e| matches!(e, RunEvent::NodeCrashed { node: 2, round: 1 })),
        "crash must appear in the canonical stream"
    );
    // The dead process's queued frames (if any) are the only legal losses.
    for (_, _, reason) in fault_drops(&obs.events) {
        assert_eq!(reason, DropReason::SenderCrashed);
    }
    dog.disarm();
}

/// Cell B: the {0,1} edge is severed for rounds 0..=1, then restored.
/// Messages queued behind the cut replay on reconnect: delivery is
/// delayed, never destroyed — zero losses, everyone decides.
#[test]
fn sever_and_restore_loses_nothing() {
    let dog = Watchdog::arm("sever_and_restore_loses_nothing", Duration::from_secs(120));
    let chaos = ChaosPlan::new().with_sever(NodeId::new(0), NodeId::new(1), 0, 1);
    let mut obs = VecObserver::new();
    let outcome = run_session_observed(
        generators::cycle(6),
        |v| Flood::new(v, (v.index() == 0).then_some(88)),
        SilentAdversary::new(NodeSet::new()),
        &chaos,
        NetdConfig::default(),
        &mut obs,
    )
    .expect("session io");

    assert_eq!(outcome.stall, None, "wire stalled: {:?}", outcome.stall);
    assert_eq!(outcome.losses, 0, "a restored sever must lose nothing");
    assert!(fault_drops(&obs.events).is_empty());
    assert!(matches!(outcome.termination, Termination::Quiesced { .. }));
    for v in 0..6u32 {
        assert_eq!(outcome.decision(NodeId::new(v)), Some(88), "node {v}");
    }
    assert!(
        outcome
            .stats
            .reconnects
            .load(std::sync::atomic::Ordering::SeqCst)
            >= 1,
        "the restored link must actually have reconnected"
    );
    dog.disarm();
}

/// Cell C: a PKA relay adjacent to the dealer is killed permanently. The
/// paper's safety half must survive arbitrary liveness damage: the
/// receiver decides the dealer's input or nothing at all.
#[test]
fn permanent_relay_kill_never_turns_wrong() {
    let dog = Watchdog::arm(
        "permanent_relay_kill_never_turns_wrong",
        Duration::from_secs(240),
    );
    for seed in [0xBEEF, 7] {
        dog.note(format!("seed {seed:#x}"));
        let spec = InstanceSpec {
            family: Family::E2,
            n: 7,
            view: ViewKind::Radius(2),
            seed,
        };
        let inst = spec.build();
        let input = 4096 + seed;
        // Kill a dealer neighbour that is neither dealer nor receiver.
        let victim = inst
            .graph()
            .neighbors(inst.dealer())
            .iter()
            .find(|&v| v != inst.receiver())
            .expect("dealer has a relay neighbour");
        let chaos = ChaosPlan::new().with_kill(victim, 1);
        let mut obs = VecObserver::new();
        let outcome = run_session_observed(
            inst.graph().clone(),
            |v| RmtPka::node(&inst, v, input),
            SilentAdversary::new(NodeSet::new()),
            &chaos,
            NetdConfig::default(),
            &mut obs,
        )
        .expect("session io");

        assert_eq!(outcome.stall, None, "wire stalled: {:?}", outcome.stall);
        // Stalled (None) is acceptable; a forged value is not.
        if let Some(d) = outcome.decision(inst.receiver()) {
            assert_eq!(d, input, "seed {seed:#x}: receiver decided wrong — WRONG");
        }
    }
    dog.disarm();
}

/// Cell D: the dealer's link to one neighbour is severed for the whole
/// run with a queue budget of 1. The dealer sends two frames on that link
/// in round 0, so exactly the overflow sheds with `PeerDown` — and every
/// loss is visible twice: once as a `FaultDrop` event, once in the shed
/// counters. The receiver still must never decide a wrong value.
#[test]
fn starved_queue_sheds_loudly_and_stays_safe() {
    let dog = Watchdog::arm(
        "starved_queue_sheds_loudly_and_stays_safe",
        Duration::from_secs(240),
    );
    let spec = InstanceSpec {
        family: Family::E2,
        n: 7,
        view: ViewKind::Radius(2),
        seed: 0xBEEF,
    };
    let inst = spec.build();
    let input = 31337;
    let neighbor = inst
        .graph()
        .neighbors(inst.dealer())
        .iter()
        .find(|&v| v != inst.receiver())
        .expect("dealer has a relay neighbour");
    // Severed for the whole run; `u32::MAX` is effectively "never restored".
    let chaos = ChaosPlan::new().with_sever(inst.dealer(), neighbor, 0, u32::MAX);
    let mut obs = VecObserver::new();
    let outcome = run_session_observed(
        inst.graph().clone(),
        |v| RmtPka::node(&inst, v, input),
        SilentAdversary::new(NodeSet::new()),
        &chaos,
        NetdConfig {
            queue_budget: 1,
            backpressure_wait_ms: 200,
            heal_wait_ms: 300,
            max_rounds: Some(12),
            ..NetdConfig::default()
        },
        &mut obs,
    )
    .expect("session io");

    assert_eq!(outcome.stall, None, "wire stalled: {:?}", outcome.stall);
    let drops = fault_drops(&obs.events);
    let peer_down = drops
        .iter()
        .filter(|&&(_, _, r)| r == DropReason::PeerDown)
        .count() as u64;
    assert!(
        peer_down >= 1,
        "dealer sends 2 frames on the severed link at round 0 with budget 1: \
         at least one must shed PeerDown, got {drops:?}"
    );
    // Loud accounting: every loss has a FaultDrop, counters agree.
    assert_eq!(outcome.losses, drops.len() as u64);
    assert_eq!(
        outcome.stats.shed_total(),
        peer_down
            + drops
                .iter()
                .filter(|&&(_, _, r)| r == DropReason::Backpressure)
                .count() as u64,
        "shed counters must agree with the emitted FaultDrop events"
    );
    if let Some(d) = outcome.decision(inst.receiver()) {
        assert_eq!(d, input, "receiver decided a forged value — WRONG");
    }
    dog.disarm();
}
