//! One protocol node as an independent task.
//!
//! A node task owns its [`Protocol`] state machine, the listening socket of
//! its address, an acceptor thread for inbound connections, and one
//! [`Link`] per honest neighbour. It speaks to the session coordinator over
//! in-process channels: the coordinator drives rounds (`Round`) and
//! transmissions (`Transmit`), the node reports its protocol sends and the
//! per-message transmission outcomes, and the physical layer streams
//! [`LinkEvent`]s underneath. Chaos commands (`Kill`/`Restart`/`Sever`/…)
//! arrive on the same command channel, so a node observes faults in a
//! well-defined order relative to its rounds.
//!
//! Payload bytes genuinely cross the sockets: `Transmit` hands the node its
//! admitted messages, the node encodes each via [`WirePayload`] and the
//! receiving node's reader thread hands the decoded bytes back to the
//! coordinator. A killed task keeps holding its protocol state (kill models
//! a supervised process restart, not a fresh join) and keeps its port
//! bound, but refuses connections until restarted.

use std::collections::BTreeMap;
use std::io::ErrorKind;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::Duration;

use rmt_sets::{NodeId, NodeSet};
use rmt_sim::{Envelope, NodeContext, Protocol, WirePayload};

use rmt_obs::DropReason;

use crate::frame::Frame;
use crate::link::{Link, LinkEvent, TxResult};

/// Commands from the coordinator to one node task.
pub(crate) enum NodeCmd<P> {
    /// Run one protocol round (round 0 is `start`) over `inbox`.
    Round {
        /// The round number.
        round: u32,
        /// Messages delivered this round.
        inbox: Vec<Envelope<P>>,
    },
    /// Transmit admitted messages: `(recipient, admission index, payload)`.
    Transmit {
        /// The round the messages were admitted in.
        round: u32,
        /// The messages to put on the wire.
        items: Vec<(NodeId, u64, P)>,
    },
    /// Chaos: the process dies (state survives, connections do not).
    Kill,
    /// Chaos: the process comes back.
    Restart,
    /// Chaos: the link to `peer` is cut.
    Sever(NodeId),
    /// Chaos: the link to `peer` heals.
    Restore(NodeId),
    /// The peer was restarted; forgive a given-up link.
    Revive(NodeId),
    /// Session teardown.
    Shutdown,
}

/// Everything a node task (or its links) reports to the coordinator.
pub(crate) enum Report<P> {
    /// The node ran its round and wants to send these messages.
    Sends {
        /// Reporting node.
        node: NodeId,
        /// `(recipient, payload)` in protocol emission order.
        sends: Vec<(NodeId, P)>,
        /// `format!("{:?}")` of the node's decision, if decided.
        decided: Option<String>,
    },
    /// Outcome of each admitted message handed to the links.
    TxStatus {
        /// Reporting node.
        node: NodeId,
        /// `(recipient, admission, outcome)` per transmitted message.
        results: Vec<(NodeId, u64, TxResult)>,
    },
    /// A physical-layer event (arrival, shed, connection lifecycle).
    Net(LinkEvent),
}

/// Runs one node to completion; returns the final protocol state.
#[allow(clippy::too_many_arguments)] // one parameter per owned resource of the task
pub(crate) fn node_task<Q>(
    me: NodeId,
    mut proto: Q,
    neighbors: NodeSet,
    links: BTreeMap<NodeId, Arc<Link>>,
    listener: TcpListener,
    session: u64,
    cmds: Receiver<NodeCmd<Q::Payload>>,
    reports: Sender<Report<Q::Payload>>,
) -> Q
where
    Q: Protocol,
    Q::Payload: WirePayload,
{
    let shutdown = Arc::new(AtomicBool::new(false));
    let writer_handles: Vec<_> = links.values().map(|l| l.spawn_writer()).collect();
    let acceptor = {
        let links = links.clone();
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || acceptor_loop(listener, session, me, links, shutdown))
    };

    while let Ok(cmd) = cmds.recv() {
        match cmd {
            NodeCmd::Round { round, inbox } => {
                let ctx = NodeContext {
                    id: me,
                    round,
                    neighbors: neighbors.clone(),
                };
                let sends = if round == 0 {
                    proto.start(&ctx)
                } else {
                    proto.on_round(&ctx, &inbox)
                };
                let decided = proto.decision().map(|d| format!("{d:?}"));
                let _ = reports.send(Report::Sends {
                    node: me,
                    sends,
                    decided,
                });
            }
            NodeCmd::Transmit { round, items } => {
                let mut results = Vec::with_capacity(items.len());
                for (to, admission, payload) in items {
                    let result = match links.get(&to) {
                        Some(link) => link.send_msg(round, admission, payload.to_bytes()),
                        // The coordinator only routes messages to linked
                        // peers; anything else is unreachable by model.
                        None => TxResult::Shed(DropReason::PeerDown),
                    };
                    results.push((to, admission, result));
                }
                let _ = reports.send(Report::TxStatus { node: me, results });
            }
            NodeCmd::Kill => {
                for (peer, link) in &links {
                    let dropped = link.kill_local();
                    if !dropped.is_empty() {
                        let _ = reports.send(Report::Net(LinkEvent::Shed {
                            from: me,
                            to: *peer,
                            admissions: dropped,
                            reason: DropReason::SenderCrashed,
                        }));
                    }
                }
            }
            NodeCmd::Restart => {
                for link in links.values() {
                    link.restart_local();
                }
            }
            NodeCmd::Sever(peer) => {
                if let Some(link) = links.get(&peer) {
                    link.sever();
                }
            }
            NodeCmd::Restore(peer) => {
                if let Some(link) = links.get(&peer) {
                    link.restore();
                }
            }
            NodeCmd::Revive(peer) => {
                if let Some(link) = links.get(&peer) {
                    link.revive();
                }
            }
            NodeCmd::Shutdown => break,
        }
    }

    shutdown.store(true, Ordering::SeqCst);
    for link in links.values() {
        link.close();
    }
    for h in writer_handles {
        let _ = h.join();
    }
    let _ = acceptor.join();
    proto
}

/// Accepts inbound connections for one node and installs them on the
/// matching link after the `Hello` handshake. Killed nodes refuse inside
/// [`Link::accept`] (the listener stays bound, modelling a supervised
/// process whose port survives).
fn acceptor_loop(
    listener: TcpListener,
    session: u64,
    me: NodeId,
    links: BTreeMap<NodeId, Arc<Link>>,
    shutdown: Arc<AtomicBool>,
) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = handshake_and_install(stream, session, me, &links);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Validates one inbound handshake and hands the stream to its link.
fn handshake_and_install(
    mut stream: TcpStream,
    session: u64,
    me: NodeId,
    links: &BTreeMap<NodeId, Arc<Link>>,
) -> Option<()> {
    stream.set_nonblocking(false).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_millis(1_000)))
        .ok()?;
    match Frame::read_from(&mut stream) {
        Ok(Frame::Hello {
            session: s,
            from,
            to,
            expect_seq,
        }) if s == session && to == me.raw() => {
            let link = links.get(&NodeId::new(from))?;
            link.accept(stream, expect_seq);
            Some(())
        }
        // Wrong session, malformed, or a teardown probe: drop the socket.
        _ => None,
    }
}
