//! One supervised TCP link between two protocol nodes.
//!
//! Each undirected protocol edge `{u, v}` becomes exactly one TCP
//! connection, dialed by the smaller endpoint and accepted by the larger;
//! both endpoints hold a [`Link`] describing *their* outgoing direction.
//! A link owns three concerns:
//!
//! - **Supervision.** A writer/supervisor thread per link keeps the
//!   connection alive: the dialer side reconnects with jittered exponential
//!   backoff up to a retry budget, the acceptor side waits passively and
//!   declares the peer dead after an equivalent grace period. Lifecycle
//!   transitions surface as `ConnUp` / `ConnDown` / `ConnRetry` events on
//!   the diagnostics stream.
//! - **Bounded egress.** Sends while the link is down queue up to
//!   `queue_budget` messages, then shed with `DropReason::PeerDown`; sends
//!   while the link is up are bounded by the unacknowledged in-flight
//!   window — a full window *blocks* the sender (classic backpressure) up
//!   to `backpressure_wait_ms`, and only a window that never drains sheds
//!   with `DropReason::Backpressure`. No buffer in this module grows
//!   without bound.
//! - **Exactly-once delivery across reconnects.** Every message frame
//!   carries a per-direction sequence number; receivers acknowledge
//!   cumulatively and deduplicate, senders keep an unacked suffix and
//!   replay it after the `Hello{expect_seq}` exchange of a reconnect. A
//!   severed-then-restored link therefore loses nothing; only a kill (which
//!   discards the dead process's buffers) loses messages, and those are
//!   reported as shed rather than silently dropped.

use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rmt_obs::{DropReason, RunEvent};
use rmt_sets::NodeId;

use crate::frame::Frame;
use crate::stats::NetdStats;

/// Transport knobs for every link of a session.
#[derive(Clone, Debug)]
pub struct NetdConfig {
    /// Bound on each link's egress queue (down) and in-flight window (up).
    pub queue_budget: usize,
    /// How long a send blocks on a full in-flight window before shedding
    /// with `Backpressure`.
    pub backpressure_wait_ms: u64,
    /// Reconnect attempts before a dialer declares the peer dead.
    pub retry_limit: u32,
    /// First-retry backoff in milliseconds; doubles per attempt.
    pub backoff_base_ms: u64,
    /// Ceiling on a single backoff interval in milliseconds.
    pub backoff_cap_ms: u64,
    /// Idle interval after which a heartbeat probe is sent.
    pub heartbeat_period_ms: u64,
    /// Inbound silence after which the connection is presumed dead.
    pub heartbeat_timeout_ms: u64,
    /// How long the coordinator waits for one round's messages to land.
    pub round_timeout_ms: u64,
    /// Session-wide budget for pacing rounds against physical healing:
    /// when traffic sits queued behind reconnecting links and no further
    /// chaos is scheduled, the round loop waits (against this budget) for
    /// the replay to arrive instead of burning logical rounds faster than
    /// wall-clock recovery can possibly complete.
    pub heal_wait_ms: u64,
    /// How long the coordinator waits for the initial full mesh.
    pub mesh_timeout_ms: u64,
    /// Round-cap override; defaults to the deterministic runners' cap plus
    /// the chaos horizon.
    pub max_rounds: Option<u32>,
    /// Seed for deterministic backoff jitter.
    pub seed: u64,
}

impl Default for NetdConfig {
    fn default() -> Self {
        NetdConfig {
            queue_budget: 64,
            backpressure_wait_ms: 2_000,
            retry_limit: 8,
            backoff_base_ms: 5,
            backoff_cap_ms: 100,
            heartbeat_period_ms: 100,
            heartbeat_timeout_ms: 2_000,
            round_timeout_ms: 10_000,
            heal_wait_ms: 2_000,
            mesh_timeout_ms: 10_000,
            max_rounds: None,
            seed: 0,
        }
    }
}

/// Outcome of handing one message to a link.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxResult {
    /// Written to the socket; the coordinator should expect its arrival.
    Sent,
    /// Queued behind a down link; it will be (re)transmitted on reconnect.
    Queued,
    /// Shed by a bounded queue; it will never arrive.
    Shed(DropReason),
}

/// What the physical layer tells the coordinator, free of payload types.
#[derive(Debug)]
pub enum LinkEvent {
    /// A message frame arrived (deduplicated) and carries these raw bytes.
    Received {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Round the sender stamped on the frame.
        round: u32,
        /// Coordinator-assigned admission index.
        admission: u64,
        /// Encoded payload, exactly as sent.
        bytes: Vec<u8>,
    },
    /// Previously queued messages were dropped by a bounded queue.
    Shed {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Admission indices of the dropped messages.
        admissions: Vec<u64>,
        /// Why they were dropped.
        reason: DropReason,
    },
    /// A connection-lifecycle event for the diagnostics stream.
    Conn(RunEvent),
}

/// Shared sink for [`LinkEvent`]s. The `Mutex` makes the non-`Sync`
/// `mpsc::Sender` shareable across a link's threads.
pub type LinkSink = Arc<dyn Fn(LinkEvent) + Send + Sync>;

/// Builds a [`LinkSink`] over an `mpsc` sender.
pub fn sink_over<T: Send + 'static>(
    tx: Sender<T>,
    wrap: impl Fn(LinkEvent) -> T + Send + Sync + 'static,
) -> LinkSink {
    let tx = Mutex::new(tx);
    Arc::new(move |ev| {
        if let Ok(tx) = tx.lock() {
            let _ = tx.send(wrap(ev));
        }
    })
}

/// Spawns the reader thread for a freshly installed connection.
type ReaderSpawner = Box<dyn Fn(Arc<Link>, TcpStream, u64) + Send + Sync>;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LinkState {
    /// Not yet connected (or told to reconnect); the dialer is working on it.
    Connecting,
    /// Connection lost; the dialer retries, the acceptor waits.
    Down,
    /// Socket established, handshake done.
    Up,
    /// Retry budget exhausted; sheds everything until revived.
    GaveUp,
}

struct Inner {
    state: LinkState,
    /// Write half of the current connection (the reader holds its own clone).
    stream: Option<TcpStream>,
    /// Bumped per established connection so stale readers can tell they
    /// lost the race against a reconnect.
    epoch: u64,
    /// Messages awaiting a connection, bounded by `queue_budget`.
    pending: VecDeque<(u64, Frame)>,
    /// Sent but unacknowledged messages, bounded by `queue_budget`; replayed
    /// after a reconnect.
    unacked: VecDeque<(u64, u64, Frame)>,
    /// Last sequence number assigned to an outgoing message.
    next_seq: u64,
    /// Highest inbound sequence number processed (cumulative-ack floor).
    last_recv: u64,
    /// Reconnect attempts since the link last came up.
    attempt: u32,
    /// Last time any frame arrived on the current connection.
    last_inbound: Instant,
    /// Since when the link has been down (acceptor-side give-up timer).
    down_since: Instant,
    /// Heartbeat nonce generator.
    hb_nonce: u64,
    /// The local node is killed: no dialing, no accepting, shed everything.
    local_dead: bool,
    /// The link is severed by the chaos plan: no dialing, no accepting.
    severed: bool,
    /// Session teardown: all threads exit.
    shutdown: bool,
}

/// One direction of a supervised connection (see module docs).
pub struct Link {
    /// Local endpoint.
    pub me: NodeId,
    /// Remote endpoint.
    pub peer: NodeId,
    /// Whether this side dials (`me < peer`) or accepts.
    pub dialer: bool,
    session: u64,
    peer_addr: SocketAddr,
    cfg: NetdConfig,
    stats: Arc<NetdStats>,
    round: Arc<AtomicU32>,
    sink: LinkSink,
    reader: ReaderSpawner,
    inner: Mutex<Inner>,
    cond: Condvar,
}

impl Link {
    /// Creates the link in `Connecting` state. `spawn_writer` must be called
    /// on the returned `Arc` to start supervision.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        me: NodeId,
        peer: NodeId,
        session: u64,
        peer_addr: SocketAddr,
        cfg: NetdConfig,
        stats: Arc<NetdStats>,
        round: Arc<AtomicU32>,
        sink: LinkSink,
    ) -> Arc<Link> {
        let now = Instant::now();
        Arc::new(Link {
            me,
            peer,
            dialer: me < peer,
            session,
            peer_addr,
            cfg,
            stats,
            round,
            sink,
            reader: Box::new(|link, stream, epoch| {
                std::thread::spawn(move || reader_loop(link, stream, epoch));
            }),
            inner: Mutex::new(Inner {
                state: LinkState::Connecting,
                stream: None,
                epoch: 0,
                pending: VecDeque::new(),
                unacked: VecDeque::new(),
                next_seq: 0,
                last_recv: 0,
                attempt: 0,
                last_inbound: now,
                down_since: now,
                hb_nonce: 0,
                local_dead: false,
                severed: false,
                shutdown: false,
            }),
            cond: Condvar::new(),
        })
    }

    /// Starts the writer/supervisor thread.
    pub fn spawn_writer(self: &Arc<Link>) -> JoinHandle<()> {
        let link = Arc::clone(self);
        std::thread::spawn(move || writer_loop(link))
    }

    fn emit_conn(&self, ev: RunEvent) {
        (self.sink)(LinkEvent::Conn(ev));
    }

    fn current_round(&self) -> u32 {
        self.round.load(Ordering::Relaxed)
    }

    /// Hands one message to the link. `admission` is the coordinator's
    /// global admission index; it rides in the frame so the receiver can
    /// reconstruct the deterministic delivery order.
    pub fn send_msg(&self, round: u32, admission: u64, payload: Vec<u8>) -> TxResult {
        let mut g = self.inner.lock().expect("link poisoned");
        if g.shutdown {
            return TxResult::Shed(DropReason::PeerDown);
        }
        g.next_seq += 1;
        let seq = g.next_seq;
        let frame = Frame::Msg {
            round,
            seq,
            admission,
            payload,
        };
        if g.state == LinkState::Up && !g.severed && !g.local_dead {
            // Backpressure: a full in-flight window blocks the sender until
            // acks drain it (the reader notifies the condvar) or the wait
            // budget runs out. Shedding on a healthy link is the last
            // resort, not the first response.
            let deadline = Instant::now() + Duration::from_millis(self.cfg.backpressure_wait_ms);
            while g.state == LinkState::Up
                && !g.severed
                && !g.local_dead
                && !g.shutdown
                && g.unacked.len() >= self.cfg.queue_budget
            {
                let timeout = deadline.saturating_duration_since(Instant::now());
                if timeout.is_zero() {
                    self.stats.shed_backpressure();
                    return TxResult::Shed(DropReason::Backpressure);
                }
                let (g2, _) = self.cond.wait_timeout(g, timeout).expect("link poisoned");
                g = g2;
            }
            if g.shutdown {
                return TxResult::Shed(DropReason::PeerDown);
            }
        }
        if g.state == LinkState::Up && !g.severed && !g.local_dead {
            match write_frame(&mut g, &frame) {
                Ok(()) => {
                    self.stats.frames_sent();
                    g.unacked.push_back((seq, admission, frame));
                    return TxResult::Sent;
                }
                Err(e) => self.mark_down(&mut g, &format!("write failed: {e}")),
            }
        }
        // Link is down (or just went down): queue within budget.
        if g.state == LinkState::GaveUp {
            self.stats.shed_peer_down();
            return TxResult::Shed(DropReason::PeerDown);
        }
        if g.pending.len() + g.unacked.len() >= self.cfg.queue_budget {
            self.stats.shed_peer_down();
            return TxResult::Shed(DropReason::PeerDown);
        }
        g.pending.push_back((admission, frame));
        self.cond.notify_all();
        TxResult::Queued
    }

    /// Marks the connection lost and wakes the supervisor. Emits `ConnDown`.
    fn mark_down(&self, g: &mut MutexGuard<'_, Inner>, reason: &str) {
        if g.state != LinkState::Up {
            return;
        }
        if let Some(s) = g.stream.take() {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        g.state = LinkState::Down;
        g.attempt = 0;
        g.down_since = Instant::now();
        self.emit_conn(RunEvent::ConnDown {
            round: self.current_round(),
            from: self.me.raw(),
            to: self.peer.raw(),
            reason: reason.to_string(),
        });
        self.cond.notify_all();
    }

    /// Chaos: the local node dies. Streams close, queued messages are
    /// returned (the caller reports them shed), supervision pauses.
    pub fn kill_local(&self) -> Vec<u64> {
        let mut g = self.inner.lock().expect("link poisoned");
        g.local_dead = true;
        if let Some(s) = g.stream.take() {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        if g.state == LinkState::Up {
            g.state = LinkState::Down;
            self.emit_conn(RunEvent::ConnDown {
                round: self.current_round(),
                from: self.me.raw(),
                to: self.peer.raw(),
                reason: "local node killed".to_string(),
            });
        }
        g.attempt = 0;
        g.down_since = Instant::now();
        // A killed process loses both its untransmitted queue and its
        // retransmit buffer.
        let dropped: Vec<u64> = g.pending.drain(..).map(|(adm, _)| adm).collect();
        g.unacked.clear();
        self.cond.notify_all();
        dropped
    }

    /// Chaos: the local node comes back. Supervision resumes; protocol
    /// state and sequence numbers survived in-process.
    pub fn restart_local(&self) {
        let mut g = self.inner.lock().expect("link poisoned");
        g.local_dead = false;
        if g.state != LinkState::Up {
            g.state = LinkState::Connecting;
            g.attempt = 0;
            g.down_since = Instant::now();
        }
        self.cond.notify_all();
    }

    /// Chaos: the link is cut. Queued messages survive for the restore.
    pub fn sever(&self) {
        let mut g = self.inner.lock().expect("link poisoned");
        g.severed = true;
        self.mark_down(&mut g, "severed");
        self.cond.notify_all();
    }

    /// Chaos: the cut heals; the dialer reconnects and replays.
    pub fn restore(&self) {
        let mut g = self.inner.lock().expect("link poisoned");
        g.severed = false;
        if g.state != LinkState::Up {
            g.state = LinkState::Connecting;
            g.attempt = 0;
            g.down_since = Instant::now();
        }
        self.cond.notify_all();
    }

    /// The peer was restarted: forgive a `GaveUp` verdict and try again.
    pub fn revive(&self) {
        let mut g = self.inner.lock().expect("link poisoned");
        if g.state != LinkState::Up {
            g.state = LinkState::Connecting;
            g.attempt = 0;
            g.down_since = Instant::now();
        }
        self.cond.notify_all();
    }

    /// Session teardown: close the socket and stop every thread.
    pub fn close(&self) {
        let mut g = self.inner.lock().expect("link poisoned");
        g.shutdown = true;
        if let Some(s) = g.stream.take() {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        self.cond.notify_all();
    }

    /// `true` while the connection is established.
    pub fn is_up(&self) -> bool {
        self.inner.lock().expect("link poisoned").state == LinkState::Up
    }

    /// Validates an inbound `Hello` against this link (acceptor side) and,
    /// if acceptable, answers it and installs the connection. Returns
    /// `false` when the connection must be refused (dead, severed, wrong
    /// direction, torn down).
    pub fn accept(self: &Arc<Link>, mut stream: TcpStream, peer_expect: u64) -> bool {
        if self.dialer {
            return false;
        }
        let reply = {
            let g = self.inner.lock().expect("link poisoned");
            if g.shutdown || g.local_dead || g.severed {
                return false;
            }
            Frame::Hello {
                session: self.session,
                from: self.me.raw(),
                to: self.peer.raw(),
                expect_seq: g.last_recv + 1,
            }
        };
        if reply.write_to(&mut stream).is_err() {
            return false;
        }
        install(self, stream, peer_expect)
    }
}

/// Writes `frame` to the current stream, if any.
fn write_frame(g: &mut MutexGuard<'_, Inner>, frame: &Frame) -> std::io::Result<()> {
    match g.stream.as_mut() {
        Some(s) => {
            s.write_all(&frame.to_bytes())?;
            s.flush()
        }
        None => Err(std::io::Error::new(
            std::io::ErrorKind::NotConnected,
            "link has no stream",
        )),
    }
}

/// SplitMix64: cheap, deterministic per-(link, attempt) jitter.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Backoff before retry `attempt` (1-based): exponential with a cap,
/// jittered into `[50%, 150%)` deterministically from the seed.
fn backoff_ms(cfg: &NetdConfig, me: NodeId, peer: NodeId, attempt: u32) -> u64 {
    let shift = attempt.saturating_sub(1).min(16);
    let raw = cfg
        .backoff_base_ms
        .saturating_mul(1u64 << shift)
        .min(cfg.backoff_cap_ms);
    let key =
        cfg.seed ^ (u64::from(me.raw()) << 40) ^ (u64::from(peer.raw()) << 20) ^ u64::from(attempt);
    let jitter = splitmix(key) % 1_000; // 0..1000 → 50%..150%
    raw.saturating_mul(500 + jitter) / 1_000
}

enum Action {
    Exit,
    Dial { attempt: u32 },
    GiveUp,
}

/// The supervisor: dials (dialer side), times out a silent peer, sends
/// heartbeats, flushes the pending queue, declares `GaveUp`.
fn writer_loop(link: Arc<Link>) {
    let period = Duration::from_millis(link.cfg.heartbeat_period_ms);
    let hb_timeout = Duration::from_millis(link.cfg.heartbeat_timeout_ms);
    // The acceptor side has no retry schedule; it waits as long as the
    // dialer's whole schedule could take before giving up.
    let accept_grace = Duration::from_millis(
        (u64::from(link.cfg.retry_limit) + 1) * link.cfg.backoff_cap_ms
            + link.cfg.heartbeat_timeout_ms,
    );
    loop {
        let action = {
            let mut g = link.inner.lock().expect("link poisoned");
            loop {
                if g.shutdown {
                    break Action::Exit;
                }
                if g.local_dead || g.severed || g.state == LinkState::GaveUp {
                    g = link.cond.wait(g).expect("link poisoned");
                    continue;
                }
                match g.state {
                    LinkState::Up => {
                        // Heartbeat bookkeeping; message writes happen
                        // directly in `send_msg`/`install`.
                        let (g2, timeout) =
                            link.cond.wait_timeout(g, period).expect("link poisoned");
                        g = g2;
                        if !timeout.timed_out() || g.state != LinkState::Up || g.shutdown {
                            continue;
                        }
                        if g.last_inbound.elapsed() > hb_timeout {
                            link.stats.heartbeats_missed();
                            link.mark_down(&mut g, "heartbeat timeout");
                            continue;
                        }
                        g.hb_nonce += 1;
                        let hb = Frame::Heartbeat { nonce: g.hb_nonce };
                        if let Err(e) = write_frame(&mut g, &hb) {
                            link.mark_down(&mut g, &format!("heartbeat write failed: {e}"));
                        } else {
                            link.stats.heartbeats_sent();
                        }
                        continue;
                    }
                    LinkState::Connecting | LinkState::Down if link.dialer => {
                        if g.attempt > link.cfg.retry_limit {
                            break Action::GiveUp;
                        }
                        break Action::Dial { attempt: g.attempt };
                    }
                    LinkState::Connecting | LinkState::Down => {
                        if g.down_since.elapsed() > accept_grace {
                            break Action::GiveUp;
                        }
                        let (g2, _) = link
                            .cond
                            .wait_timeout(g, Duration::from_millis(20))
                            .expect("link poisoned");
                        g = g2;
                        continue;
                    }
                    LinkState::GaveUp => unreachable!("handled above"),
                }
            }
        };
        match action {
            Action::Exit => return,
            Action::Dial { attempt } => do_dial(&link, attempt),
            Action::GiveUp => do_give_up(&link),
        }
    }
}

/// One dial attempt, including its backoff sleep and handshake.
fn do_dial(link: &Arc<Link>, attempt: u32) {
    if attempt > 0 {
        let wait = backoff_ms(&link.cfg, link.me, link.peer, attempt);
        link.stats.retries();
        link.emit_conn(RunEvent::ConnRetry {
            round: link.current_round(),
            from: link.me.raw(),
            to: link.peer.raw(),
            attempt,
            backoff_ms: wait,
        });
        // Sleep on the condvar so kill/sever/shutdown interrupt the wait.
        let g = link.inner.lock().expect("link poisoned");
        let (g, _) = link
            .cond
            .wait_timeout(g, Duration::from_millis(wait))
            .expect("link poisoned");
        if g.shutdown || g.local_dead || g.severed || g.state == LinkState::Up {
            return;
        }
        drop(g);
    }
    link.stats.dials();
    let dialed = TcpStream::connect_timeout(&link.peer_addr, Duration::from_millis(1_000))
        .and_then(|mut stream| {
            stream.set_read_timeout(Some(Duration::from_millis(1_000)))?;
            let expect_seq = link.inner.lock().expect("link poisoned").last_recv + 1;
            Frame::Hello {
                session: link.session,
                from: link.me.raw(),
                to: link.peer.raw(),
                expect_seq,
            }
            .write_to(&mut stream)?;
            match Frame::read_from(&mut stream)? {
                Frame::Hello {
                    session,
                    from,
                    to,
                    expect_seq,
                } if session == link.session && from == link.peer.raw() && to == link.me.raw() => {
                    Ok((stream, expect_seq))
                }
                other => Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("unexpected handshake reply: {other:?}"),
                )),
            }
        });
    match dialed {
        Ok((stream, peer_expect)) => {
            if !install(link, stream, peer_expect) {
                let mut g = link.inner.lock().expect("link poisoned");
                g.attempt += 1;
            }
        }
        Err(_) => {
            let mut g = link.inner.lock().expect("link poisoned");
            if g.state != LinkState::Up {
                g.attempt += 1;
            }
        }
    }
}

/// Installs an established, handshaken connection: trims the retransmit
/// buffer to what the peer still expects, replays the rest, flushes the
/// pending queue, and spawns the reader. Shared by dialer and acceptor.
fn install(link: &Arc<Link>, stream: TcpStream, peer_expect: u64) -> bool {
    let _ = stream.set_read_timeout(None);
    let _ = stream.set_nodelay(true);
    let reader_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return false,
    };
    let mut g = link.inner.lock().expect("link poisoned");
    if g.shutdown || g.local_dead || g.severed {
        let _ = stream.shutdown(std::net::Shutdown::Both);
        return false;
    }
    if g.state == LinkState::Up {
        // A reconnect raced an existing connection; keep the old one.
        let _ = stream.shutdown(std::net::Shutdown::Both);
        return false;
    }
    g.epoch += 1;
    let epoch = g.epoch;
    let attempt = g.attempt;
    g.state = LinkState::Up;
    g.stream = Some(stream);
    g.attempt = 0;
    g.last_inbound = Instant::now();
    if epoch > 1 {
        link.stats.reconnects();
    }
    // Drop what the peer already processed, replay the rest in order.
    while g
        .unacked
        .front()
        .is_some_and(|&(seq, _, _)| seq < peer_expect)
    {
        g.unacked.pop_front();
    }
    let replay: Vec<Frame> = g.unacked.iter().map(|(_, _, f)| f.clone()).collect();
    for frame in replay {
        if let Err(e) = write_frame(&mut g, &frame) {
            link.mark_down(&mut g, &format!("replay failed: {e}"));
            return false;
        }
        link.stats.retransmits();
    }
    // Flush everything queued while down; each flushed frame becomes
    // in-flight (unacked), still within the shared budget.
    while let Some((admission, frame)) = g.pending.pop_front() {
        if let Err(e) = write_frame(&mut g, &frame) {
            g.pending.push_front((admission, frame));
            link.mark_down(&mut g, &format!("flush failed: {e}"));
            return false;
        }
        link.stats.frames_sent();
        if let Frame::Msg { seq, .. } = frame {
            g.unacked.push_back((seq, admission, frame));
        }
    }
    link.emit_conn(RunEvent::ConnUp {
        round: link.current_round(),
        from: link.me.raw(),
        to: link.peer.raw(),
        attempt,
    });
    self_notify(link, &mut g);
    drop(g);
    (link.reader)(Arc::clone(link), reader_half, epoch);
    true
}

fn self_notify(link: &Arc<Link>, _g: &mut MutexGuard<'_, Inner>) {
    link.cond.notify_all();
}

/// Exhausted retries (dialer) or grace (acceptor): shed the queue and go
/// quiet until revived.
fn do_give_up(link: &Arc<Link>) {
    let dropped: Vec<u64> = {
        let mut g = link.inner.lock().expect("link poisoned");
        if g.state == LinkState::Up || g.state == LinkState::GaveUp {
            return;
        }
        g.state = LinkState::GaveUp;
        g.pending.drain(..).map(|(adm, _)| adm).collect()
    };
    link.stats.gave_up();
    link.emit_conn(RunEvent::ConnDown {
        round: link.current_round(),
        from: link.me.raw(),
        to: link.peer.raw(),
        reason: "gave up after retry budget".to_string(),
    });
    if !dropped.is_empty() {
        for _ in &dropped {
            link.stats.shed_peer_down();
        }
        (link.sink)(LinkEvent::Shed {
            from: link.me,
            to: link.peer,
            admissions: dropped,
            reason: DropReason::PeerDown,
        });
    }
}

/// Reads frames off one established connection until it dies. Exactly one
/// reader exists per connection epoch; a stale reader (its epoch lost to a
/// reconnect) exits without touching link state.
fn reader_loop(link: Arc<Link>, mut stream: TcpStream, epoch: u64) {
    let reason = loop {
        match Frame::read_from(&mut stream) {
            Ok(Frame::Msg {
                round,
                seq,
                admission,
                payload,
            }) => {
                link.stats.frames_received();
                let fresh = {
                    let mut g = link.inner.lock().expect("link poisoned");
                    if g.epoch != epoch {
                        return; // a reconnect superseded this connection
                    }
                    g.last_inbound = Instant::now();
                    if seq <= g.last_recv {
                        false // duplicate from a replay
                    } else {
                        g.last_recv = seq;
                        let ack = Frame::Ack { cum_seq: seq };
                        let _ = write_frame(&mut g, &ack);
                        true
                    }
                };
                if fresh {
                    (link.sink)(LinkEvent::Received {
                        from: link.peer,
                        to: link.me,
                        round,
                        admission,
                        bytes: payload,
                    });
                }
            }
            Ok(Frame::Ack { cum_seq }) => {
                let mut g = link.inner.lock().expect("link poisoned");
                if g.epoch != epoch {
                    return;
                }
                g.last_inbound = Instant::now();
                while g.unacked.front().is_some_and(|&(seq, _, _)| seq <= cum_seq) {
                    g.unacked.pop_front();
                }
                self_notify(&link, &mut g);
            }
            Ok(Frame::Heartbeat { nonce }) => {
                let mut g = link.inner.lock().expect("link poisoned");
                if g.epoch != epoch {
                    return;
                }
                g.last_inbound = Instant::now();
                let _ = write_frame(&mut g, &Frame::HeartbeatAck { nonce });
            }
            Ok(Frame::HeartbeatAck { .. }) | Ok(Frame::Hello { .. }) => {
                let mut g = link.inner.lock().expect("link poisoned");
                if g.epoch != epoch {
                    return;
                }
                g.last_inbound = Instant::now();
            }
            Ok(Frame::Bye) => break "peer said goodbye".to_string(),
            Err(e) => break format!("read failed: {e}"),
        }
    };
    let mut g = link.inner.lock().expect("link poisoned");
    if g.epoch == epoch {
        link.mark_down(&mut g, &reason);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::mpsc;

    fn test_cfg() -> NetdConfig {
        NetdConfig {
            queue_budget: 2,
            backpressure_wait_ms: 50,
            retry_limit: 2,
            backoff_base_ms: 1,
            backoff_cap_ms: 4,
            heartbeat_period_ms: 40,
            heartbeat_timeout_ms: 400,
            ..NetdConfig::default()
        }
    }

    fn make_link(
        me: u32,
        peer: u32,
        addr: SocketAddr,
        cfg: NetdConfig,
    ) -> (Arc<Link>, mpsc::Receiver<LinkEvent>, Arc<NetdStats>) {
        let (tx, rx) = mpsc::channel();
        let stats = Arc::new(NetdStats::new());
        let link = Link::new(
            NodeId::new(me),
            NodeId::new(peer),
            7,
            addr,
            cfg,
            Arc::clone(&stats),
            Arc::new(AtomicU32::new(0)),
            sink_over(tx, |ev| ev),
        );
        (link, rx, stats)
    }

    /// A dialer facing a peer that completes the handshake but never acks:
    /// the in-flight window fills, then sends shed with `Backpressure`.
    #[test]
    fn backpressure_sheds_when_window_full() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let silent_peer = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().expect("accept");
            // Handshake, then read forever without acking.
            let hello = Frame::read_from(&mut s).expect("hello");
            assert!(matches!(hello, Frame::Hello { session: 7, .. }));
            Frame::Hello {
                session: 7,
                from: 1,
                to: 0,
                expect_seq: 1,
            }
            .write_to(&mut s)
            .expect("reply");
            let mut sink = Vec::new();
            loop {
                match Frame::read_from(&mut s) {
                    Ok(f) => sink.push(f),
                    Err(_) => return sink,
                }
            }
        });
        let (link, _rx, stats) = make_link(0, 1, addr, test_cfg());
        let writer = link.spawn_writer();
        for _ in 0..200 {
            if link.is_up() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(link.is_up(), "dialer should establish");
        assert_eq!(link.send_msg(1, 10, vec![1]), TxResult::Sent);
        assert_eq!(link.send_msg(1, 11, vec![2]), TxResult::Sent);
        // Budget is 2 and nothing is acked: the third send sheds.
        assert_eq!(
            link.send_msg(1, 12, vec![3]),
            TxResult::Shed(DropReason::Backpressure)
        );
        assert_eq!(stats.shed_backpressure.load(Ordering::Relaxed), 1);
        link.close();
        writer.join().expect("writer");
        let seen = silent_peer.join().expect("peer");
        assert!(seen
            .iter()
            .any(|f| matches!(f, Frame::Msg { admission: 10, .. })));
    }

    /// With nobody listening, the dialer retries with backoff, then gives
    /// up; queued and subsequent sends shed with `PeerDown`.
    #[test]
    fn gave_up_sheds_peer_down() {
        // Bind then drop to get an address that refuses connections.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr")
        };
        let (link, rx, stats) = make_link(0, 1, addr, test_cfg());
        let writer = link.spawn_writer();
        assert_eq!(link.send_msg(0, 5, vec![9]), TxResult::Queued);
        // retry_limit 2 at ≤4ms backoff: give-up lands well within a second.
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut shed = Vec::new();
        while Instant::now() < deadline {
            match rx.recv_timeout(Duration::from_millis(100)) {
                Ok(LinkEvent::Shed {
                    admissions, reason, ..
                }) => {
                    assert_eq!(reason, DropReason::PeerDown);
                    shed = admissions;
                    break;
                }
                Ok(_) => continue,
                Err(_) => continue,
            }
        }
        assert_eq!(shed, vec![5], "queued message must be reported shed");
        assert_eq!(
            link.send_msg(1, 6, vec![1]),
            TxResult::Shed(DropReason::PeerDown)
        );
        assert!(stats.gave_up.load(Ordering::Relaxed) >= 1);
        assert!(stats.retries.load(Ordering::Relaxed) >= 1);
        link.close();
        writer.join().expect("writer");
    }

    /// Queue budget bounds the pending queue while down.
    #[test]
    fn pending_queue_is_bounded() {
        let addr: SocketAddr = "127.0.0.1:1".parse().expect("addr");
        let (link, _rx, stats) = make_link(0, 1, addr, test_cfg());
        // No writer thread: state stays Connecting, everything queues.
        assert_eq!(link.send_msg(0, 1, vec![0]), TxResult::Queued);
        assert_eq!(link.send_msg(0, 2, vec![0]), TxResult::Queued);
        assert_eq!(
            link.send_msg(0, 3, vec![0]),
            TxResult::Shed(DropReason::PeerDown)
        );
        assert_eq!(stats.shed_peer_down.load(Ordering::Relaxed), 1);
        link.close();
    }

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let cfg = NetdConfig {
            backoff_base_ms: 10,
            backoff_cap_ms: 80,
            seed: 42,
            ..NetdConfig::default()
        };
        let a = backoff_ms(&cfg, NodeId::new(0), NodeId::new(1), 3);
        let b = backoff_ms(&cfg, NodeId::new(0), NodeId::new(1), 3);
        assert_eq!(a, b, "same seed, same jitter");
        for attempt in 1..12 {
            let ms = backoff_ms(&cfg, NodeId::new(0), NodeId::new(1), attempt);
            assert!(ms <= 120, "cap × 150% jitter bound, got {ms}");
        }
    }
}
