//! Session-wide transport counters, shared by every link of a session.
//!
//! These are the observable facts of the physical layer — connection churn,
//! retries, shed messages, heartbeat misses — kept apart from the protocol
//! [`Metrics`](rmt_sim::Metrics) so a chaotic run's protocol accounting
//! stays directly comparable to a fault-free one (the same separation
//! `rmt-net` draws with `FaultStats`).

use std::sync::atomic::{AtomicU64, Ordering};

use rmt_obs::Registry;

/// Cumulative transport counters for one session (or one daemon, when
/// shared across sessions). All fields are atomics: links update them from
/// their supervisor/reader threads without coordination.
#[derive(Debug, Default)]
pub struct NetdStats {
    /// Connection attempts (initial dials and retries alike).
    pub dials: AtomicU64,
    /// Successful connection establishments after the first (per link
    /// direction).
    pub reconnects: AtomicU64,
    /// Scheduled reconnect attempts (each emits a `ConnRetry` event).
    pub retries: AtomicU64,
    /// Links that exhausted their retry budget and declared the peer dead.
    pub gave_up: AtomicU64,
    /// Messages shed because the peer was down and the bounded queue was at
    /// budget (`DropReason::PeerDown`).
    pub shed_peer_down: AtomicU64,
    /// Messages shed because the in-flight window was full while the link
    /// was up (`DropReason::Backpressure`).
    pub shed_backpressure: AtomicU64,
    /// Frames written to sockets (messages, not control frames).
    pub frames_sent: AtomicU64,
    /// Message frames read from sockets (before deduplication).
    pub frames_received: AtomicU64,
    /// Message frames replayed from the retransmit buffer after a reconnect.
    pub retransmits: AtomicU64,
    /// Heartbeat probes sent on idle links.
    pub heartbeats_sent: AtomicU64,
    /// Links closed because the peer went silent past the heartbeat timeout.
    pub heartbeats_missed: AtomicU64,
    /// Inbound payloads that failed to decode (dropped, never delivered).
    pub decode_errors: AtomicU64,
}

macro_rules! bump {
    ($($name:ident),*) => {
        impl NetdStats {
            $(
                /// Increments the counter of the same name.
                pub fn $name(&self) {
                    self.$name.fetch_add(1, Ordering::Relaxed);
                }
            )*
        }
    };
}

bump!(
    dials,
    reconnects,
    retries,
    gave_up,
    shed_peer_down,
    shed_backpressure,
    frames_sent,
    frames_received,
    retransmits,
    heartbeats_sent,
    heartbeats_missed,
    decode_errors
);

impl NetdStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        NetdStats::default()
    }

    /// Total messages shed by bounded queues, for any reason.
    pub fn shed_total(&self) -> u64 {
        self.shed_peer_down.load(Ordering::Relaxed) + self.shed_backpressure.load(Ordering::Relaxed)
    }

    /// Records every counter into `registry` under its `netd.*` name (the
    /// names catalogued in `METRICS.md`).
    pub fn record_into(&self, registry: &Registry) {
        let pairs: [(&'static str, &AtomicU64); 12] = [
            ("netd.conn.dials", &self.dials),
            ("netd.conn.reconnects", &self.reconnects),
            ("netd.conn.retries", &self.retries),
            ("netd.conn.gave_up", &self.gave_up),
            ("netd.queue.shed_peer_down", &self.shed_peer_down),
            ("netd.queue.shed_backpressure", &self.shed_backpressure),
            ("netd.wire.frames_sent", &self.frames_sent),
            ("netd.wire.frames_received", &self.frames_received),
            ("netd.wire.retransmits", &self.retransmits),
            ("netd.heartbeat.sent", &self.heartbeats_sent),
            ("netd.heartbeat.missed", &self.heartbeats_missed),
            ("netd.wire.decode_errors", &self.decode_errors),
        ];
        for (name, value) in pairs {
            registry.counter(name).add(value.load(Ordering::Relaxed));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_into_registers_every_name() {
        let stats = NetdStats::new();
        stats.dials();
        stats.shed_backpressure();
        stats.shed_peer_down();
        assert_eq!(stats.shed_total(), 2);
        let reg = Registry::new();
        stats.record_into(&reg);
        let names = reg.metric_names();
        for expected in [
            "netd.conn.dials",
            "netd.conn.reconnects",
            "netd.conn.retries",
            "netd.conn.gave_up",
            "netd.queue.shed_peer_down",
            "netd.queue.shed_backpressure",
            "netd.wire.frames_sent",
            "netd.wire.frames_received",
            "netd.wire.retransmits",
            "netd.heartbeat.sent",
            "netd.heartbeat.missed",
            "netd.wire.decode_errors",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        assert_eq!(reg.counter("netd.conn.dials").get(), 1);
    }
}
