//! Hosting many concurrent sessions in one process.
//!
//! The `rmt-netd` binary (and the chaos test suite) run whole fleets of
//! sessions at once; each session already spawns a thread per node plus a
//! few per link, so the daemon bounds *session*-level concurrency and lets
//! the sessions' own threads breathe underneath. Jobs are plain closures —
//! the daemon is protocol-agnostic and owns no session state — and results
//! come back in submission order, tagged with the job's name.

use std::thread;

/// Runs batches of named session jobs with bounded concurrency.
#[derive(Clone, Copy, Debug)]
pub struct Daemon {
    max_concurrent: usize,
}

impl Daemon {
    /// A daemon running at most `max_concurrent` sessions at once
    /// (minimum 1).
    pub fn new(max_concurrent: usize) -> Self {
        Daemon {
            max_concurrent: max_concurrent.max(1),
        }
    }

    /// Runs every job, at most `max_concurrent` concurrently, and returns
    /// `(name, result)` in submission order. A job that panics yields
    /// `None` for its slot instead of poisoning the batch.
    pub fn run<R, F>(&self, jobs: Vec<(String, F)>) -> Vec<(String, Option<R>)>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        let mut out = Vec::with_capacity(jobs.len());
        let mut batch: Vec<(String, thread::JoinHandle<R>)> = Vec::new();
        let drain = |batch: &mut Vec<(String, thread::JoinHandle<R>)>,
                     out: &mut Vec<(String, Option<R>)>| {
            for (name, handle) in batch.drain(..) {
                out.push((name, handle.join().ok()));
            }
        };
        for (name, job) in jobs {
            if batch.len() >= self.max_concurrent {
                drain(&mut batch, &mut out);
            }
            batch.push((name, thread::spawn(job)));
        }
        drain(&mut batch, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::ChaosPlan;
    use crate::link::NetdConfig;
    use crate::session::run_session;
    use rmt_graph::generators;
    use rmt_net::Termination;
    use rmt_sets::NodeSet;
    use rmt_sim::testing::Flood;
    use rmt_sim::SilentAdversary;

    /// Four concurrent socket-backed flood sessions in one process: all
    /// quiesce and every node decides the dealer's value.
    #[test]
    fn daemon_hosts_concurrent_sessions() {
        let jobs: Vec<(String, _)> = (0..4u64)
            .map(|i| {
                let name = format!("flood-{i}");
                let job = move || {
                    let g = generators::cycle(5);
                    run_session(
                        g,
                        |v| Flood::new(v, (v.index() == 0).then_some(40 + i)),
                        SilentAdversary::new(NodeSet::new()),
                        &ChaosPlan::new(),
                        NetdConfig {
                            seed: i,
                            ..NetdConfig::default()
                        },
                    )
                    .expect("session io")
                };
                (name, job)
            })
            .collect();
        let results = Daemon::new(2).run(jobs);
        assert_eq!(results.len(), 4);
        for (i, (name, outcome)) in results.into_iter().enumerate() {
            assert_eq!(name, format!("flood-{i}"));
            let outcome = outcome.expect("no panic");
            assert!(matches!(outcome.termination, Termination::Quiesced { .. }));
            for v in 0..5u32 {
                assert_eq!(
                    outcome.decision(v.into()),
                    Some(40 + i as u64),
                    "{name} node {v}"
                );
            }
        }
    }

    #[test]
    fn daemon_survives_a_panicking_job() {
        let jobs: Vec<(String, Box<dyn FnOnce() -> u32 + Send>)> = vec![
            ("ok".to_string(), Box::new(|| 1)),
            ("boom".to_string(), Box::new(|| panic!("job panic"))),
            ("ok2".to_string(), Box::new(|| 2)),
        ];
        let results = Daemon::new(3).run(jobs);
        assert_eq!(results[0].1, Some(1));
        assert_eq!(results[1].1, None);
        assert_eq!(results[2].1, Some(2));
    }
}
