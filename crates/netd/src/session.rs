//! One RMT session over real sockets.
//!
//! The coordinator owns the *model*: it admits every send through the same
//! [`Transport`] seam as the deterministic schedulers, assigns each admitted
//! message a global admission index, and emits the canonical event stream
//! (`RoundStart` → deliveries → honest sends in ascending node order →
//! adversarial sends → decisions). The *mechanism* is real: payload bytes
//! are encoded by the sending node task, cross a TCP socket, and are decoded
//! from the received bytes before delivery. Delivery order is recovered by
//! sorting arrivals on the admission index each frame carries, which equals
//! the tie-break order of `rmt-net`'s `NetRunner` — so a fault-free loopback
//! session produces an event stream byte-identical to `NetRunner` under an
//! empty `FaultPlan` (the differential gate in `tests/differential.rs`
//! checks exactly this).
//!
//! Faults come from a [`ChaosPlan`] applied at round starts. Three kinds of
//! message loss exist, all explicit, none silent: a bounded queue sheds with
//! `Backpressure` (link up, in-flight window full) or `PeerDown` (link down,
//! queue at budget, or the retry budget exhausted), and a kill discards the
//! dead process's queued messages as `SenderCrashed`. Every loss surfaces as
//! a `FaultDrop` event and is counted. Messages queued behind a severed link
//! are *not* lost: the link replays its unacknowledged suffix on restore and
//! the coordinator delivers them in the round after they finally arrive —
//! liveness is delayed, never silently destroyed.
//!
//! Sends to corrupted and currently-dead recipients short-circuit the
//! physical layer (the coordinator files them as arrivals directly):
//! corrupted nodes have no task — they exist only inside the [`Adversary`]
//! — and a dead recipient's delivery is a modelling decision (the network
//! delivered; the dead process just does not act), mirroring how the
//! deterministic schedulers treat crashed receivers. Adversarial envelopes
//! are likewise injected at the model layer.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rmt_graph::Graph;
use rmt_net::Termination;
use rmt_obs::{NoopObserver, RunEvent, RunObserver};
use rmt_sets::{NodeId, NodeSet};
use rmt_sim::{
    default_max_rounds, Adversary, Envelope, Metrics, Protocol, RoundInboxes, Transport,
    WirePayload,
};

use crate::chaos::ChaosPlan;
use crate::link::{sink_over, Link, LinkEvent, NetdConfig, TxResult};
use crate::node::{node_task, NodeCmd, Report};
use crate::stats::NetdStats;

/// The result of one socket-backed session.
pub struct SessionOutcome<Q: Protocol> {
    protocols: Vec<Option<Q>>,
    corrupted: NodeSet,
    /// Protocol-level complexity metrics, same accounting as the
    /// deterministic runners.
    pub metrics: Metrics,
    /// Whether the session quiesced or stalled.
    pub termination: Termination,
    /// Transport counters (dials, retries, sheds, retransmits, …).
    pub stats: Arc<NetdStats>,
    /// Connection-lifecycle events, kept out of the canonical stream so
    /// fault-free transcripts stay comparable across backends.
    pub diagnostics: Vec<RunEvent>,
    /// Messages destroyed by sheds (each also emitted as a `FaultDrop`).
    pub losses: u64,
    /// Human-readable diagnosis when the session stalled on the wire.
    pub stall: Option<String>,
}

impl<Q: Protocol> SessionOutcome<Q> {
    /// The decision of node `v`, if it is honest and has decided.
    pub fn decision(&self, v: NodeId) -> Option<Q::Decision> {
        self.protocols
            .get(v.index())
            .and_then(Option::as_ref)
            .and_then(Protocol::decision)
    }

    /// The final protocol state of honest node `v`.
    pub fn protocol(&self, v: NodeId) -> Option<&Q> {
        self.protocols.get(v.index()).and_then(Option::as_ref)
    }

    /// The corrupted set of the run.
    pub fn corrupted(&self) -> &NodeSet {
        &self.corrupted
    }
}

/// Runs one session without observation.
pub fn run_session<Q, A>(
    graph: Graph,
    make: impl FnMut(NodeId) -> Q,
    adversary: A,
    chaos: &ChaosPlan,
    cfg: NetdConfig,
) -> std::io::Result<SessionOutcome<Q>>
where
    Q: Protocol + Send + 'static,
    Q::Payload: WirePayload + Send + 'static,
    A: Adversary<Q::Payload>,
{
    run_session_observed(graph, make, adversary, chaos, cfg, &mut NoopObserver)
}

/// Everything the coordinator tracks across one session.
struct Coordinator<Q: Protocol> {
    graph: Graph,
    size: usize,
    corrupted: NodeSet,
    honest: Vec<NodeId>,
    dead: Vec<bool>,
    cmd_txs: BTreeMap<NodeId, Sender<NodeCmd<Q::Payload>>>,
    reports: Receiver<Report<Q::Payload>>,
    /// Messages that arrived (physically or virtually) and await the next
    /// round's delivery, keyed by admission index.
    arrivals: Vec<(u64, Envelope<Q::Payload>)>,
    /// Queued messages still owed by some link: `admission → (from, to)`.
    outstanding: BTreeMap<u64, (NodeId, NodeId)>,
    /// Routes of admitted messages still in flight, for arrival validation.
    routes: HashMap<u64, (NodeId, NodeId)>,
    /// Admissions already arrived (defence against duplicate delivery).
    seen: HashSet<u64>,
    /// Admissions written to sockets this round; the round fence waits on
    /// them.
    expected: HashSet<u64>,
    diagnostics: Vec<RunEvent>,
    metrics: Metrics,
    decided: Vec<bool>,
    latest_decision: Vec<Option<String>>,
    next_admission: u64,
    losses: u64,
    round: u32,
    round_atomic: Arc<AtomicU32>,
    cfg: NetdConfig,
    stats: Arc<NetdStats>,
}

impl<Q> Coordinator<Q>
where
    Q: Protocol + Send + 'static,
    Q::Payload: WirePayload + Send + 'static,
{
    fn cmd(&self, v: NodeId, cmd: NodeCmd<Q::Payload>) {
        if let Some(tx) = self.cmd_txs.get(&v) {
            let _ = tx.send(cmd);
        }
    }

    fn is_live(&self, v: NodeId) -> bool {
        !self.corrupted.contains(v) && !self.dead[v.index()]
    }

    /// Absorbs one physical-layer event. Arrival validation is defensive:
    /// an admission must be in flight and not yet seen, and its frame must
    /// decode — anything else is counted and dropped, never delivered.
    fn handle_net<O: RunObserver>(&mut self, ev: LinkEvent, observer: &mut O) {
        match ev {
            LinkEvent::Received {
                from,
                to,
                admission,
                bytes,
                ..
            } => {
                if self.routes.get(&admission) != Some(&(from, to))
                    || self.seen.contains(&admission)
                {
                    self.stats.decode_errors();
                    return;
                }
                match Q::Payload::from_bytes(&bytes) {
                    Ok(payload) => {
                        self.seen.insert(admission);
                        self.expected.remove(&admission);
                        self.outstanding.remove(&admission);
                        self.arrivals
                            .push((admission, Envelope::new(from, to, payload)));
                    }
                    Err(_) => {
                        // A corrupt frame is a loss, not a crash.
                        self.stats.decode_errors();
                        self.expected.remove(&admission);
                        self.outstanding.remove(&admission);
                        self.routes.remove(&admission);
                        self.losses += 1;
                        if O::ACTIVE {
                            observer.on_event(&RunEvent::FaultDrop {
                                round: self.round,
                                from: from.raw(),
                                to: to.raw(),
                                reason: rmt_obs::DropReason::LinkDrop,
                            });
                        }
                    }
                }
            }
            LinkEvent::Shed {
                from,
                to,
                admissions,
                reason,
            } => {
                for admission in admissions {
                    self.expected.remove(&admission);
                    self.outstanding.remove(&admission);
                    self.routes.remove(&admission);
                    self.losses += 1;
                    if O::ACTIVE {
                        observer.on_event(&RunEvent::FaultDrop {
                            round: self.round,
                            from: from.raw(),
                            to: to.raw(),
                            reason,
                        });
                    }
                }
            }
            LinkEvent::Conn(ev) => self.diagnostics.push(ev),
        }
    }

    /// Receives reports until `want` protocol reports of one kind arrived
    /// (selected by `pick`), handling physical-layer events inline.
    fn collect<T, O: RunObserver>(
        &mut self,
        want: usize,
        deadline: Instant,
        observer: &mut O,
        pick: impl Fn(Report<Q::Payload>) -> Result<T, LinkEvent>,
    ) -> Result<Vec<T>, String> {
        let mut got = Vec::with_capacity(want);
        while got.len() < want {
            let timeout = deadline.saturating_duration_since(Instant::now());
            match self.reports.recv_timeout(timeout) {
                Ok(report) => match pick(report) {
                    Ok(item) => got.push(item),
                    Err(net) => self.handle_net(net, observer),
                },
                Err(RecvTimeoutError::Timeout) => {
                    return Err(format!(
                        "round {}: {} of {} node reports missing",
                        self.round,
                        want - got.len(),
                        want
                    ));
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(format!("round {}: all node tasks gone", self.round));
                }
            }
        }
        Ok(got)
    }

    /// Waits until every admission written to a socket this round has been
    /// received (or shed) on the far side.
    fn fence<O: RunObserver>(&mut self, observer: &mut O) -> Result<(), String> {
        let deadline = Instant::now() + Duration::from_millis(self.cfg.round_timeout_ms);
        while !self.expected.is_empty() {
            let timeout = deadline.saturating_duration_since(Instant::now());
            match self.reports.recv_timeout(timeout) {
                Ok(Report::Net(ev)) => self.handle_net(ev, observer),
                Ok(_) => {} // no protocol reports are pending during a fence
                Err(RecvTimeoutError::Timeout) => return Err(self.stall_diagnosis()),
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(format!("round {}: all node tasks gone", self.round))
                }
            }
        }
        Ok(())
    }

    /// Paces the round loop against physical healing: while messages sit
    /// queued behind down links (`outstanding`), nothing has arrived, and
    /// the chaos schedule is exhausted, logical rounds are free to burn at
    /// CPU speed — far faster than a reconnect's backoff can complete. So
    /// the coordinator waits here, draining physical-layer events, until a
    /// replay lands, the queue sheds, or the session-wide budget runs out.
    fn await_healing<O: RunObserver>(&mut self, budget: &mut Duration, observer: &mut O) {
        while !budget.is_zero() && self.arrivals.is_empty() && !self.outstanding.is_empty() {
            let slice = (*budget).min(Duration::from_millis(20));
            let start = Instant::now();
            match self.reports.recv_timeout(slice) {
                Ok(Report::Net(ev)) => self.handle_net(ev, observer),
                Ok(_) => {}
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
            *budget = budget.saturating_sub(start.elapsed());
        }
    }

    fn stall_diagnosis(&self) -> String {
        let mut missing: Vec<String> = self
            .expected
            .iter()
            .map(|adm| match self.routes.get(adm) {
                Some((from, to)) => format!("#{adm} v{} -> v{}", from.raw(), to.raw()),
                None => format!("#{adm} (route unknown)"),
            })
            .collect();
        missing.sort();
        format!(
            "round {} fence timed out after {}ms: {} message(s) written but never received [{}]; \
             {} queued behind down links",
            self.round,
            self.cfg.round_timeout_ms,
            missing.len(),
            missing.join(", "),
            self.outstanding.len(),
        )
    }

    /// Applies the chaos plan's round-`round` entries: crash events first
    /// (ascending, matching `NetRunner`), then the physical commands.
    fn apply_chaos<O: RunObserver>(&mut self, chaos: &ChaosPlan, round: u32, observer: &mut O) {
        for v in chaos.kills_at(round) {
            if !self.cmd_txs.contains_key(&v) || self.dead[v.index()] {
                continue;
            }
            if O::ACTIVE {
                observer.on_event(&RunEvent::NodeCrashed {
                    round,
                    node: v.raw(),
                });
            }
            self.dead[v.index()] = true;
            self.cmd(v, NodeCmd::Kill);
        }
        for v in chaos.restarts_at(round) {
            if !self.cmd_txs.contains_key(&v) || !self.dead[v.index()] {
                continue;
            }
            self.dead[v.index()] = false;
            self.cmd(v, NodeCmd::Restart);
            for u in self.graph.neighbors(v).iter() {
                if self.cmd_txs.contains_key(&u) {
                    self.cmd(u, NodeCmd::Revive(v));
                }
            }
        }
        for w in chaos.severs() {
            if w.from_round == round {
                self.cmd(w.a, NodeCmd::Sever(w.b));
                self.cmd(w.b, NodeCmd::Sever(w.a));
            }
            if round > 0 && w.to_round == round - 1 {
                self.cmd(w.a, NodeCmd::Restore(w.b));
                self.cmd(w.b, NodeCmd::Restore(w.a));
            }
        }
    }

    /// Emits `Decision` events for nodes newly decided, ascending.
    fn sweep<O: RunObserver>(&mut self, round: u32, observer: &mut O) {
        for v in self.graph.nodes() {
            if self.decided[v.index()] {
                continue;
            }
            if let Some(value) = self.latest_decision[v.index()].clone() {
                self.decided[v.index()] = true;
                observer.on_event(&RunEvent::Decision {
                    round,
                    node: v.raw(),
                    value,
                });
            }
        }
    }

    /// Runs one full round: deliver, step protocols, admit, transmit,
    /// fence, sweep. Mirrors the deterministic schedulers' phase order.
    fn run_round<A, O>(
        &mut self,
        adversary: &mut A,
        round: u32,
        observer: &mut O,
    ) -> Result<(), String>
    where
        A: Adversary<Q::Payload>,
        O: RunObserver,
    {
        let deadline = Instant::now() + Duration::from_millis(self.cfg.round_timeout_ms);

        // Deliveries: everything that arrived before this round, in
        // admission order (the deterministic runners' tie-break order).
        let mut delivered = RoundInboxes::new(self.size);
        self.arrivals.sort_by_key(|&(adm, _)| adm);
        for (adm, env) in std::mem::take(&mut self.arrivals) {
            self.routes.remove(&adm);
            if O::ACTIVE {
                observer.on_event(&RunEvent::Delivery {
                    round,
                    from: env.from.raw(),
                    to: env.to.raw(),
                    payload: format!("{:?}", env.payload),
                });
            }
            delivered.push(env);
        }

        // Protocol step on every live honest node.
        let live: Vec<NodeId> = self
            .honest
            .iter()
            .copied()
            .filter(|&v| !self.dead[v.index()])
            .collect();
        for &v in &live {
            self.cmd(
                v,
                NodeCmd::Round {
                    round,
                    inbox: delivered.inbox(v).to_vec(),
                },
            );
        }
        let sends = self.collect(live.len(), deadline, observer, |report| match report {
            Report::Sends {
                node,
                sends,
                decided,
            } => Ok((node, sends, decided)),
            Report::Net(ev) => Err(ev),
            Report::TxStatus { .. } => unreachable!("no transmit outstanding"),
        })?;
        type NodeSends<P> = BTreeMap<NodeId, (Vec<(NodeId, P)>, Option<String>)>;
        let mut by_node: NodeSends<Q::Payload> = BTreeMap::new();
        for (node, s, d) in sends {
            by_node.insert(node, (s, d));
        }

        // Admission in ascending node order, exactly as the deterministic
        // runners iterate. Each admitted envelope gets the next global
        // admission index; physical transmission only happens between live
        // honest endpoints.
        let mut honest_this_round = 0u64;
        let mut transmit: BTreeMap<NodeId, Vec<(NodeId, u64, Q::Payload)>> =
            live.iter().map(|&v| (v, Vec::new())).collect();
        for (&v, (node_sends, node_decided)) in &mut by_node {
            self.latest_decision[v.index()] = node_decided.take();
            let envs = Transport::new(&self.graph).admit_honest(
                round,
                v,
                std::mem::take(node_sends),
                &mut self.metrics,
                &mut honest_this_round,
                observer,
            );
            for env in envs {
                let adm = self.next_admission;
                self.next_admission += 1;
                self.routes.insert(adm, (env.from, env.to));
                if self.is_live(env.to) {
                    transmit.get_mut(&v).expect("sender is live").push((
                        env.to,
                        adm,
                        env.payload.clone(),
                    ));
                    self.outstanding.insert(adm, (env.from, env.to));
                } else {
                    self.arrivals.push((adm, env));
                }
            }
        }
        let adversarial = if round == 0 {
            adversary.start(&self.graph)
        } else {
            adversary.on_round(round, &self.graph, &delivered)
        };
        let envs = Transport::new(&self.graph).admit_adversarial(
            round,
            &self.corrupted,
            adversarial,
            &mut self.metrics,
            observer,
        );
        for env in envs {
            let adm = self.next_admission;
            self.next_admission += 1;
            self.routes.insert(adm, (env.from, env.to));
            self.arrivals.push((adm, env));
        }

        // Physical transmission, then per-message outcomes.
        for (&v, items) in &mut transmit {
            self.cmd(
                v,
                NodeCmd::Transmit {
                    round,
                    items: std::mem::take(items),
                },
            );
        }
        let tx_reports = self.collect(live.len(), deadline, observer, |report| match report {
            Report::TxStatus { node, results } => Ok((node, results)),
            Report::Net(ev) => Err(ev),
            Report::Sends { .. } => unreachable!("no round outstanding"),
        })?;
        let mut tx_sorted: BTreeMap<NodeId, Vec<(NodeId, u64, TxResult)>> =
            tx_reports.into_iter().collect();
        for (&v, results) in &mut tx_sorted {
            for (to, adm, result) in std::mem::take(results) {
                match result {
                    TxResult::Sent => {
                        self.outstanding.remove(&adm);
                        if !self.seen.contains(&adm) {
                            self.expected.insert(adm);
                        }
                    }
                    TxResult::Queued => {} // stays in `outstanding`
                    TxResult::Shed(reason) => {
                        self.outstanding.remove(&adm);
                        self.routes.remove(&adm);
                        self.losses += 1;
                        if O::ACTIVE {
                            observer.on_event(&RunEvent::FaultDrop {
                                round,
                                from: v.raw(),
                                to: to.raw(),
                                reason,
                            });
                        }
                    }
                }
            }
        }

        self.fence(observer)?;
        self.metrics
            .honest_messages_per_round
            .push(honest_this_round);
        if O::ACTIVE {
            self.sweep(round, observer);
        }
        Ok(())
    }

    /// Stops every task; the caller joins the handles. Returns the
    /// diagnostics, metrics and loss count.
    fn teardown(mut self) -> (Vec<RunEvent>, Metrics, u64) {
        for tx in self.cmd_txs.values() {
            let _ = tx.send(NodeCmd::Shutdown);
        }
        self.cmd_txs.clear();
        // Drain the remaining physical-layer events into the diagnostics.
        while let Ok(report) = self.reports.try_recv() {
            if let Report::Net(LinkEvent::Conn(ev)) = report {
                self.diagnostics.push(ev);
            }
        }
        (self.diagnostics, self.metrics, self.losses)
    }
}

/// Runs one session, streaming the canonical event stream through
/// `observer`. Connection-lifecycle events go to
/// [`SessionOutcome::diagnostics`] instead, so a fault-free observed run is
/// byte-comparable to the deterministic runners.
pub fn run_session_observed<Q, A, O>(
    graph: Graph,
    mut make: impl FnMut(NodeId) -> Q,
    mut adversary: A,
    chaos: &ChaosPlan,
    cfg: NetdConfig,
    observer: &mut O,
) -> std::io::Result<SessionOutcome<Q>>
where
    Q: Protocol + Send + 'static,
    Q::Payload: WirePayload + Send + 'static,
    A: Adversary<Q::Payload>,
    O: RunObserver,
{
    let corrupted = adversary.corrupted().clone();
    let size = graph.nodes().last().map_or(0, |v| v.index() + 1);
    let honest: Vec<NodeId> = graph
        .nodes()
        .iter()
        .filter(|v| !corrupted.contains(*v))
        .collect();
    let stats = Arc::new(NetdStats::new());
    let round_atomic = Arc::new(AtomicU32::new(0));
    let session_id = cfg.seed ^ 0x6e65_7464; // "netd": disambiguates stray peers
    let (report_tx, report_rx) = mpsc::channel::<Report<Q::Payload>>();
    let sink = sink_over(report_tx.clone(), Report::Net);

    // Every honest node gets a listener up front so dial targets exist
    // before any task runs.
    let mut listeners: HashMap<NodeId, TcpListener> = HashMap::new();
    let mut addrs: HashMap<NodeId, SocketAddr> = HashMap::new();
    for &v in &honest {
        let l = TcpListener::bind("127.0.0.1:0")?;
        addrs.insert(v, l.local_addr()?);
        listeners.insert(v, l);
    }

    // One link per direction of each honest-honest edge; one task per
    // honest node.
    let mut expected_up = 0usize;
    let mut cmd_txs: BTreeMap<NodeId, Sender<NodeCmd<Q::Payload>>> = BTreeMap::new();
    let mut handles: BTreeMap<NodeId, JoinHandle<Q>> = BTreeMap::new();
    for &v in &honest {
        let mut links: BTreeMap<NodeId, Arc<Link>> = BTreeMap::new();
        for u in graph.neighbors(v).iter() {
            if corrupted.contains(u) {
                continue;
            }
            links.insert(
                u,
                Link::new(
                    v,
                    u,
                    session_id,
                    addrs[&u],
                    cfg.clone(),
                    Arc::clone(&stats),
                    Arc::clone(&round_atomic),
                    Arc::clone(&sink),
                ),
            );
            expected_up += 1;
        }
        let (tx, rx) = mpsc::channel();
        cmd_txs.insert(v, tx);
        let proto = make(v);
        let neighbors = graph.neighbors(v).clone();
        let listener = listeners.remove(&v).expect("listener bound above");
        let reports = report_tx.clone();
        handles.insert(
            v,
            std::thread::spawn(move || {
                node_task(
                    v, proto, neighbors, links, listener, session_id, rx, reports,
                )
            }),
        );
    }
    drop(report_tx);
    drop(sink);

    let mut co = Coordinator::<Q> {
        graph,
        size,
        corrupted: corrupted.clone(),
        honest,
        dead: vec![false; size],
        cmd_txs,
        reports: report_rx,
        arrivals: Vec::new(),
        outstanding: BTreeMap::new(),
        routes: HashMap::new(),
        seen: HashSet::new(),
        expected: HashSet::new(),
        diagnostics: Vec::new(),
        metrics: Metrics::default(),
        decided: vec![false; size],
        latest_decision: vec![None; size],
        next_admission: 0,
        losses: 0,
        round: 0,
        round_atomic,
        cfg,
        stats: Arc::clone(&stats),
    };

    // Wait for the full mesh before round 0 so startup latency cannot skew
    // delivery rounds relative to the deterministic oracle.
    let mut stall: Option<String> = None;
    {
        let deadline = Instant::now() + Duration::from_millis(co.cfg.mesh_timeout_ms);
        let mut up = 0usize;
        while up < expected_up {
            let timeout = deadline.saturating_duration_since(Instant::now());
            match co.reports.recv_timeout(timeout) {
                Ok(Report::Net(ev)) => {
                    if matches!(ev, LinkEvent::Conn(RunEvent::ConnUp { .. })) {
                        up += 1;
                    }
                    co.handle_net(ev, observer);
                }
                Ok(_) => {}
                Err(_) => {
                    stall = Some(format!(
                        "mesh formation timed out after {}ms: {up} of {expected_up} links up",
                        co.cfg.mesh_timeout_ms
                    ));
                    break;
                }
            }
        }
    }

    let max_rounds = co.cfg.max_rounds.unwrap_or_else(|| {
        let base = default_max_rounds(co.graph.node_count());
        if chaos.is_empty() {
            base
        } else {
            base.saturating_mul(2).saturating_add(chaos.horizon())
        }
    });
    let mut heal_budget = Duration::from_millis(co.cfg.heal_wait_ms);

    if stall.is_none() {
        if O::ACTIVE {
            let corrupted_raw: Vec<u32> = co.corrupted.iter().map(NodeId::raw).collect();
            observer.on_event(&RunEvent::RunStart {
                nodes: co.graph.node_count() as u32,
                corrupted: corrupted_raw,
            });
            observer.on_event(&RunEvent::RoundStart { round: 0 });
        }
        co.apply_chaos(chaos, 0, observer);
        if let Err(e) = co.run_round(&mut adversary, 0, observer) {
            stall = Some(e);
        }
    }
    if stall.is_none() {
        for round in 1..=max_rounds {
            if co.arrivals.is_empty() && co.outstanding.is_empty() {
                break;
            }
            if co.arrivals.is_empty() && !chaos.has_event_at_or_after(round) {
                co.await_healing(&mut heal_budget, observer);
                if co.arrivals.is_empty() && co.outstanding.is_empty() {
                    break;
                }
            }
            co.metrics.rounds = round;
            co.round = round;
            co.round_atomic.store(round, Ordering::Relaxed);
            if O::ACTIVE {
                observer.on_event(&RunEvent::RoundStart { round });
            }
            co.apply_chaos(chaos, round, observer);
            if let Err(e) = co.run_round(&mut adversary, round, observer) {
                stall = Some(e);
                break;
            }
        }
    }
    if O::ACTIVE {
        observer.on_event(&RunEvent::RunEnd {
            rounds: co.metrics.rounds,
        });
    }

    let quiesced = stall.is_none() && co.arrivals.is_empty() && co.outstanding.is_empty();
    let rounds = co.metrics.rounds;
    let (diagnostics, metrics, losses) = co.teardown();
    let mut protocols: Vec<Option<Q>> = (0..size).map(|_| None).collect();
    for (v, handle) in handles {
        if let Ok(proto) = handle.join() {
            protocols[v.index()] = Some(proto);
        }
    }

    Ok(SessionOutcome {
        protocols,
        corrupted,
        metrics,
        termination: if quiesced {
            Termination::Quiesced { round: rounds }
        } else {
            Termination::Stalled { round: rounds }
        },
        stats,
        diagnostics,
        losses,
        stall,
    })
}
