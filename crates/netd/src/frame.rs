//! The length-prefixed wire protocol spoken on every link.
//!
//! A frame on the wire is a little-endian `u32` length followed by exactly
//! that many body bytes; the body is a tag byte plus tag-specific fields.
//! Lengths are capped at [`MAX_FRAME_BYTES`], so a corrupt length field
//! cannot force a giant allocation, and every decode path returns a
//! [`FrameError`] — never a panic — on truncated, corrupt or adversarial
//! input (the `frame_props` proptest suite feeds this decoder arbitrary and
//! bit-flipped bytes).
//!
//! Sequencing model: each direction of a link numbers its [`Frame::Msg`]
//! frames independently from 1 with `seq`; the receiver acknowledges with a
//! cumulative [`Frame::Ack`], which lets the sender trim its retransmit
//! buffer. After a reconnect each side's [`Frame::Hello`] carries the next
//! `seq` it expects, so the peer replays exactly the unacknowledged suffix
//! and duplicates are discarded by the `seq <= last_seen` check.

use std::io::{self, Read, Write};

use rmt_sim::framing::{self, FramingError};

/// Hard cap on a frame body, in bytes — the workspace-wide limit from
/// [`rmt_sim::framing`], re-exported so link code keeps its historical
/// import path.
pub use rmt_sim::framing::MAX_FRAME_BYTES;

/// Why a frame failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The input ended before the announced length (or before the length
    /// prefix itself was complete).
    Truncated {
        /// Bytes needed to make progress.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    TooLarge {
        /// The announced body length.
        announced: usize,
    },
    /// The body's first byte is not a known frame tag.
    BadTag(u8),
    /// The body's fields do not fill the announced length exactly.
    BadBody {
        /// The offending tag.
        tag: u8,
        /// What was wrong.
        detail: String,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { needed, got } => {
                write!(f, "truncated frame: need {needed} bytes, got {got}")
            }
            FrameError::TooLarge { announced } => {
                write!(
                    f,
                    "frame length {announced} exceeds the {MAX_FRAME_BYTES}-byte cap"
                )
            }
            FrameError::BadTag(tag) => write!(f, "unknown frame tag {tag}"),
            FrameError::BadBody { tag, detail } => {
                write!(f, "malformed body for frame tag {tag}: {detail}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<FramingError> for FrameError {
    fn from(e: FramingError) -> Self {
        match e {
            FramingError::Truncated { needed, got } => FrameError::Truncated { needed, got },
            FramingError::TooLarge { announced } => FrameError::TooLarge { announced },
        }
    }
}

/// One frame of the link protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Connection (and reconnection) handshake: identifies the session and
    /// the directed link, and tells the peer the next `seq` this side
    /// expects to *receive*, so the peer can replay its unacked suffix.
    Hello {
        /// The session this link belongs to.
        session: u64,
        /// The sender of this Hello.
        from: u32,
        /// The intended peer.
        to: u32,
        /// Next `Msg.seq` this side expects from the peer.
        expect_seq: u64,
    },
    /// A protocol message. `seq` is the per-direction retransmit sequence
    /// number; `admission` is the coordinator's global admission index,
    /// which the receiver uses to reconstruct the deterministic delivery
    /// order; `round` is the send round.
    Msg {
        /// The round the message was sent in.
        round: u32,
        /// Per-direction sequence number (1-based).
        seq: u64,
        /// Global admission index assigned by the session coordinator.
        admission: u64,
        /// The encoded payload ([`rmt_sim::WirePayload`] bytes).
        payload: Vec<u8>,
    },
    /// Cumulative acknowledgement: every `Msg` with `seq <= cum_seq` has
    /// been processed and can leave the peer's retransmit buffer.
    Ack {
        /// Highest contiguously processed sequence number.
        cum_seq: u64,
    },
    /// Liveness probe, sent when a link is idle.
    Heartbeat {
        /// Echo token.
        nonce: u64,
    },
    /// Reply to a [`Frame::Heartbeat`], echoing its nonce.
    HeartbeatAck {
        /// The probed nonce.
        nonce: u64,
    },
    /// Orderly shutdown of the link.
    Bye,
}

const TAG_HELLO: u8 = 1;
const TAG_MSG: u8 = 2;
const TAG_ACK: u8 = 3;
const TAG_HEARTBEAT: u8 = 4;
const TAG_HEARTBEAT_ACK: u8 = 5;
const TAG_BYE: u8 = 6;

impl Frame {
    /// Appends the length-prefixed encoding of this frame to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let mark = framing::begin_frame(out);
        match self {
            Frame::Hello {
                session,
                from,
                to,
                expect_seq,
            } => {
                out.push(TAG_HELLO);
                out.extend_from_slice(&session.to_le_bytes());
                out.extend_from_slice(&from.to_le_bytes());
                out.extend_from_slice(&to.to_le_bytes());
                out.extend_from_slice(&expect_seq.to_le_bytes());
            }
            Frame::Msg {
                round,
                seq,
                admission,
                payload,
            } => {
                out.push(TAG_MSG);
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&admission.to_le_bytes());
                out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                out.extend_from_slice(payload);
            }
            Frame::Ack { cum_seq } => {
                out.push(TAG_ACK);
                out.extend_from_slice(&cum_seq.to_le_bytes());
            }
            Frame::Heartbeat { nonce } => {
                out.push(TAG_HEARTBEAT);
                out.extend_from_slice(&nonce.to_le_bytes());
            }
            Frame::HeartbeatAck { nonce } => {
                out.push(TAG_HEARTBEAT_ACK);
                out.extend_from_slice(&nonce.to_le_bytes());
            }
            Frame::Bye => out.push(TAG_BYE),
        }
        framing::end_frame(out, mark);
    }

    /// Encodes into a fresh buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decodes one frame from the front of `bytes`, returning it with the
    /// number of bytes consumed. Never panics on any input.
    pub fn decode(bytes: &[u8]) -> Result<(Frame, usize), FrameError> {
        let (body, used) = framing::split_frame(bytes)?;
        let frame = Self::decode_body(body)?;
        Ok((frame, used))
    }

    fn decode_body(body: &[u8]) -> Result<Frame, FrameError> {
        let (&tag, rest) = body
            .split_first()
            .ok_or(FrameError::Truncated { needed: 1, got: 0 })?;
        let bad = |detail: String| FrameError::BadBody { tag, detail };
        let exact = |want: usize| -> Result<(), FrameError> {
            if rest.len() == want {
                Ok(())
            } else {
                Err(FrameError::BadBody {
                    tag,
                    detail: format!("body is {} bytes, tag needs {}", rest.len(), want),
                })
            }
        };
        let u32_at = |off: usize| -> u32 {
            u32::from_le_bytes(rest[off..off + 4].try_into().expect("4 bytes"))
        };
        let u64_at = |off: usize| -> u64 {
            u64::from_le_bytes(rest[off..off + 8].try_into().expect("8 bytes"))
        };
        match tag {
            TAG_HELLO => {
                exact(8 + 4 + 4 + 8)?;
                Ok(Frame::Hello {
                    session: u64_at(0),
                    from: u32_at(8),
                    to: u32_at(12),
                    expect_seq: u64_at(16),
                })
            }
            TAG_MSG => {
                if rest.len() < 4 + 8 + 8 + 4 {
                    return Err(bad(format!(
                        "Msg header needs 24 bytes, body has {}",
                        rest.len()
                    )));
                }
                let payload_len = u32_at(20) as usize;
                if rest.len() != 24 + payload_len {
                    return Err(bad(format!(
                        "Msg announces a {payload_len}-byte payload but {} bytes follow",
                        rest.len() - 24
                    )));
                }
                Ok(Frame::Msg {
                    round: u32_at(0),
                    seq: u64_at(4),
                    admission: u64_at(12),
                    payload: rest[24..].to_vec(),
                })
            }
            TAG_ACK => {
                exact(8)?;
                Ok(Frame::Ack { cum_seq: u64_at(0) })
            }
            TAG_HEARTBEAT => {
                exact(8)?;
                Ok(Frame::Heartbeat { nonce: u64_at(0) })
            }
            TAG_HEARTBEAT_ACK => {
                exact(8)?;
                Ok(Frame::HeartbeatAck { nonce: u64_at(0) })
            }
            TAG_BYE => {
                exact(0)?;
                Ok(Frame::Bye)
            }
            other => Err(FrameError::BadTag(other)),
        }
    }

    /// Writes this frame to a stream.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&self.to_bytes())
    }

    /// Reads exactly one frame from a stream.
    ///
    /// A clean EOF before the first byte maps to `ErrorKind::UnexpectedEof`;
    /// a decode failure maps to `ErrorKind::InvalidData` carrying the
    /// [`FrameError`].
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Frame> {
        let body = framing::read_frame_body(r)?;
        Self::decode_body(&body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Frame> {
        vec![
            Frame::Hello {
                session: 0xFACE,
                from: 1,
                to: 2,
                expect_seq: 41,
            },
            Frame::Msg {
                round: 3,
                seq: 9,
                admission: 77,
                payload: vec![1, 2, 3, 4, 5],
            },
            Frame::Msg {
                round: 0,
                seq: 1,
                admission: 0,
                payload: Vec::new(),
            },
            Frame::Ack { cum_seq: 12 },
            Frame::Heartbeat { nonce: 0xBEE },
            Frame::HeartbeatAck { nonce: 0xBEE },
            Frame::Bye,
        ]
    }

    #[test]
    fn every_frame_round_trips() {
        for frame in samples() {
            let bytes = frame.to_bytes();
            let (back, used) = Frame::decode(&bytes).expect("round trip");
            assert_eq!(back, frame);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn concatenated_frames_decode_in_sequence() {
        let mut wire = Vec::new();
        for frame in samples() {
            frame.encode(&mut wire);
        }
        let mut at = 0;
        let mut decoded = Vec::new();
        while at < wire.len() {
            let (frame, used) = Frame::decode(&wire[at..]).expect("stream decode");
            decoded.push(frame);
            at += used;
        }
        assert_eq!(decoded, samples());
    }

    #[test]
    fn truncations_error_without_panicking() {
        for frame in samples() {
            let bytes = frame.to_bytes();
            for cut in 0..bytes.len() {
                assert!(Frame::decode(&bytes[..cut]).is_err(), "cut at {cut}");
            }
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        wire.push(TAG_BYE);
        assert_eq!(
            Frame::decode(&wire),
            Err(FrameError::TooLarge {
                announced: u32::MAX as usize
            })
        );
    }

    #[test]
    fn unknown_tag_and_bad_bodies_are_descriptive() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&1u32.to_le_bytes());
        wire.push(99);
        assert_eq!(Frame::decode(&wire), Err(FrameError::BadTag(99)));

        // Ack with a short body.
        let mut wire = Vec::new();
        wire.extend_from_slice(&3u32.to_le_bytes());
        wire.push(TAG_ACK);
        wire.extend_from_slice(&[0, 0]);
        assert!(matches!(
            Frame::decode(&wire),
            Err(FrameError::BadBody { tag: TAG_ACK, .. })
        ));

        // Msg whose payload length disagrees with the frame length.
        let msg = Frame::Msg {
            round: 1,
            seq: 1,
            admission: 1,
            payload: vec![7; 8],
        };
        let mut bytes = msg.to_bytes();
        let len = bytes.len();
        bytes.truncate(len - 2);
        let body_len = (len - 4 - 2) as u32;
        bytes[..4].copy_from_slice(&body_len.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(FrameError::BadBody { tag: TAG_MSG, .. })
        ));
    }

    #[test]
    fn stream_io_round_trips() {
        let mut wire = Vec::new();
        for frame in samples() {
            frame.write_to(&mut wire).expect("vec write");
        }
        let mut cursor = std::io::Cursor::new(wire);
        for expected in samples() {
            assert_eq!(Frame::read_from(&mut cursor).expect("read"), expected);
        }
        assert_eq!(
            Frame::read_from(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }
}
