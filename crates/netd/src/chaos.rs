//! Declarative chaos for the socket runtime: kill/restart node tasks and
//! sever/restore connections at round boundaries.
//!
//! A [`ChaosPlan`] is the socket-world sibling of `rmt-net`'s `FaultPlan`:
//! it names *what the environment does*, while the physical consequences —
//! closed sockets, reconnect storms, queue overflow, shed messages — come
//! from the runtime actually living through them. Faults trigger at the
//! start of the named round, before that round's deliveries, matching the
//! crash semantics of the deterministic schedulers.
//!
//! Kill/restart pairs model a supervised process: the node's protocol state
//! survives (a restarted node resumes where it stopped, it does not rejoin
//! fresh), its listening port stays bound, but every connection is torn down
//! and every message addressed to it while dead is subject to the sender's
//! queue budget. Sever/restore windows cut one undirected link both ways;
//! the link-level retransmit buffer replays the unacknowledged suffix on
//! restore, so a severed-then-restored link loses nothing (liveness is
//! delayed, not destroyed) — unlike a kill, which discards whatever sat in
//! the dead node's socket buffers.

use rmt_net::codec::{field, u32_from_json, u64_from_json};
use rmt_net::PlanError;
use rmt_obs::Json;
use rmt_sets::NodeId;

/// One sever window: the undirected link `{a, b}` is down for rounds
/// `from_round..=to_round` (inclusive).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeverWindow {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// First round the link is down.
    pub from_round: u32,
    /// Last round the link is down.
    pub to_round: u32,
}

impl SeverWindow {
    /// `true` when this window covers `round` and the unordered pair
    /// `{u, v}`.
    pub fn covers(&self, u: NodeId, v: NodeId, round: u32) -> bool {
        let same_link = (self.a == u && self.b == v) || (self.a == v && self.b == u);
        same_link && (self.from_round..=self.to_round).contains(&round)
    }
}

/// The full chaos schedule of one session.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    kills: Vec<(NodeId, u32)>,
    restarts: Vec<(NodeId, u32)>,
    severs: Vec<SeverWindow>,
}

impl ChaosPlan {
    /// The empty plan: nothing ever happens.
    pub fn new() -> Self {
        ChaosPlan::default()
    }

    /// `true` when the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty() && self.restarts.is_empty() && self.severs.is_empty()
    }

    /// Kills `node` at the start of `round`.
    pub fn with_kill(mut self, node: NodeId, round: u32) -> Self {
        self.kills.push((node, round));
        self
    }

    /// Restarts `node` at the start of `round` (its protocol state and
    /// listening port survive the outage).
    pub fn with_restart(mut self, node: NodeId, round: u32) -> Self {
        self.restarts.push((node, round));
        self
    }

    /// Severs the undirected link `{a, b}` for rounds
    /// `from_round..=to_round`.
    pub fn with_sever(mut self, a: NodeId, b: NodeId, from_round: u32, to_round: u32) -> Self {
        self.severs.push(SeverWindow {
            a,
            b,
            from_round,
            to_round,
        });
        self
    }

    /// The scheduled kills, as `(node, round)`.
    pub fn kills(&self) -> &[(NodeId, u32)] {
        &self.kills
    }

    /// The scheduled restarts, as `(node, round)`.
    pub fn restarts(&self) -> &[(NodeId, u32)] {
        &self.restarts
    }

    /// The scheduled sever windows.
    pub fn severs(&self) -> &[SeverWindow] {
        &self.severs
    }

    /// `true` when `node` is dead during `round`: the latest kill/restart
    /// event at or before `round` decides (a kill and restart in the same
    /// round resolves to restarted).
    pub fn dead(&self, node: NodeId, round: u32) -> bool {
        let last_kill = self
            .kills
            .iter()
            .filter(|&&(v, r)| v == node && r <= round)
            .map(|&(_, r)| r)
            .max();
        let last_restart = self
            .restarts
            .iter()
            .filter(|&&(v, r)| v == node && r <= round)
            .map(|&(_, r)| r)
            .max();
        match (last_kill, last_restart) {
            (Some(k), Some(s)) => k > s,
            (Some(_), None) => true,
            _ => false,
        }
    }

    /// `true` when the undirected link `{u, v}` is severed during `round`.
    pub fn severed(&self, u: NodeId, v: NodeId, round: u32) -> bool {
        self.severs.iter().any(|w| w.covers(u, v, round))
    }

    /// Nodes whose kill fires exactly at `round`, ascending.
    pub fn kills_at(&self, round: u32) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .kills
            .iter()
            .filter(|&&(_, r)| r == round)
            .map(|&(v, _)| v)
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Nodes whose restart fires exactly at `round`, ascending.
    pub fn restarts_at(&self, round: u32) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .restarts
            .iter()
            .filter(|&&(_, r)| r == round)
            .map(|&(v, _)| v)
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// The last round at which any scheduled fault fires (used to size
    /// round caps so chaos cannot silently truncate recovery). A sever
    /// that is never restored (`to_round == u32::MAX`) contributes only
    /// its start round: its restore never fires.
    pub fn horizon(&self) -> u32 {
        let kill_max = self.kills.iter().map(|&(_, r)| r).max().unwrap_or(0);
        let restart_max = self.restarts.iter().map(|&(_, r)| r).max().unwrap_or(0);
        let sever_max = self
            .severs
            .iter()
            .map(|w| {
                if w.to_round == u32::MAX {
                    w.from_round
                } else {
                    w.to_round.saturating_add(1)
                }
            })
            .max()
            .unwrap_or(0);
        kill_max.max(restart_max).max(sever_max)
    }

    /// `true` when some scheduled fault (kill, restart, sever start, or
    /// restore) still fires at or after `round`. The session's round loop
    /// uses this to decide whether queued traffic could still heal on its
    /// own: while future chaos is pending, rounds must advance to reach it;
    /// once the schedule is exhausted, the only thing left to wait for is
    /// the physical layer. An unrestored sever (`to_round == u32::MAX`)
    /// schedules no restore and therefore no future event.
    pub fn has_event_at_or_after(&self, round: u32) -> bool {
        self.kills.iter().any(|&(_, r)| r >= round)
            || self.restarts.iter().any(|&(_, r)| r >= round)
            || self.severs.iter().any(|w| {
                w.from_round >= round
                    || (w.to_round != u32::MAX && w.to_round.saturating_add(1) >= round)
            })
    }

    /// Serializes the plan.
    pub fn to_json(&self) -> Json {
        let event = |(v, r): &(NodeId, u32)| {
            Json::obj([("node", Json::from(v.raw())), ("round", Json::from(*r))])
        };
        Json::obj([
            ("kills", Json::Arr(self.kills.iter().map(event).collect())),
            (
                "restarts",
                Json::Arr(self.restarts.iter().map(event).collect()),
            ),
            (
                "severs",
                Json::Arr(
                    self.severs
                        .iter()
                        .map(|w| {
                            Json::obj([
                                ("a", Json::from(w.a.raw())),
                                ("b", Json::from(w.b.raw())),
                                ("from_round", Json::from(w.from_round)),
                                ("to_round", Json::from(w.to_round)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a plan, validating each entry.
    pub fn from_json(v: &Json, at: &str) -> Result<Self, PlanError> {
        let events = |key: &str| -> Result<Vec<(NodeId, u32)>, PlanError> {
            let here = format!("{at}.{key}");
            let arr = field(v, key, at)?
                .as_arr()
                .ok_or_else(|| PlanError::new(here.clone(), "expected an array"))?;
            arr.iter()
                .enumerate()
                .map(|(i, e)| {
                    let at_i = format!("{here}[{i}]");
                    let node = u64_from_json(field(e, "node", &at_i)?, &at_i)? as u32;
                    let round = u32_from_json(field(e, "round", &at_i)?, &at_i)?;
                    Ok((NodeId::new(node), round))
                })
                .collect()
        };
        let kills = events("kills")?;
        let restarts = events("restarts")?;
        let severs_at = format!("{at}.severs");
        let severs = field(v, "severs", at)?
            .as_arr()
            .ok_or_else(|| PlanError::new(severs_at.clone(), "expected an array"))?
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let at_i = format!("{severs_at}[{i}]");
                let a = NodeId::new(u64_from_json(field(e, "a", &at_i)?, &at_i)? as u32);
                let b = NodeId::new(u64_from_json(field(e, "b", &at_i)?, &at_i)? as u32);
                if a == b {
                    return Err(PlanError::new(at_i, "a sever window needs two endpoints"));
                }
                let from_round = u32_from_json(field(e, "from_round", &at_i)?, &at_i)?;
                let to_round = u32_from_json(field(e, "to_round", &at_i)?, &at_i)?;
                if to_round < from_round {
                    return Err(PlanError::new(at_i, "to_round precedes from_round"));
                }
                Ok(SeverWindow {
                    a,
                    b,
                    from_round,
                    to_round,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ChaosPlan {
            kills,
            restarts,
            severs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_restart_resolution() {
        let plan = ChaosPlan::new()
            .with_kill(2.into(), 1)
            .with_restart(2.into(), 4)
            .with_kill(2.into(), 6);
        assert!(!plan.dead(2.into(), 0));
        assert!(plan.dead(2.into(), 1));
        assert!(plan.dead(2.into(), 3));
        assert!(!plan.dead(2.into(), 4));
        assert!(!plan.dead(2.into(), 5));
        assert!(plan.dead(2.into(), 6));
        assert!(!plan.dead(3.into(), 6));
        assert_eq!(plan.kills_at(1), vec![NodeId::new(2)]);
        assert_eq!(plan.restarts_at(4), vec![NodeId::new(2)]);
        assert_eq!(plan.horizon(), 6);
    }

    #[test]
    fn sever_windows_are_undirected_and_inclusive() {
        let plan = ChaosPlan::new().with_sever(0.into(), 1.into(), 2, 4);
        assert!(!plan.severed(0.into(), 1.into(), 1));
        assert!(plan.severed(0.into(), 1.into(), 2));
        assert!(plan.severed(1.into(), 0.into(), 4));
        assert!(!plan.severed(0.into(), 1.into(), 5));
        assert!(!plan.severed(0.into(), 2.into(), 3));
    }

    #[test]
    fn json_round_trip() {
        let plan = ChaosPlan::new()
            .with_kill(1.into(), 2)
            .with_restart(1.into(), 5)
            .with_sever(0.into(), 3.into(), 1, 3);
        let back = ChaosPlan::from_json(&plan.to_json(), "plan").expect("round trip");
        assert_eq!(back, plan);
        // Textual fixpoint through the parser too.
        let text = plan.to_json().encode();
        let reparsed = Json::parse(&text).expect("parse");
        assert_eq!(ChaosPlan::from_json(&reparsed, "plan").unwrap(), plan);
    }

    #[test]
    fn malformed_plans_are_rejected() {
        let missing = Json::obj([("kills", Json::Arr(Vec::new()))]);
        assert!(ChaosPlan::from_json(&missing, "plan").is_err());

        let degenerate = ChaosPlan::new().with_sever(2.into(), 2.into(), 0, 1);
        assert!(ChaosPlan::from_json(&degenerate.to_json(), "plan").is_err());

        let backwards = ChaosPlan::new().with_sever(0.into(), 1.into(), 5, 2);
        assert!(ChaosPlan::from_json(&backwards.to_json(), "plan").is_err());
    }
}
