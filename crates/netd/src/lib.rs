//! Socket-backed runtime for the RMT protocols.
//!
//! This crate is the third `Transport` backend of the workspace, after the
//! synchronous `Runner` (`rmt-sim`) and the fault-injecting `NetRunner`
//! (`rmt-net`): protocol nodes run as independent tasks that speak
//! length-prefixed framed TCP over loopback, with everything a real
//! deployment needs to survive — supervised reconnect with jittered
//! exponential backoff ([`link`]), bounded per-peer send queues with
//! explicit backpressure, heartbeat-based liveness, sequence-numbered
//! frames with cumulative acks and replay-on-reconnect ([`frame`]), and a
//! declarative kill/restart/sever/restore [`ChaosPlan`] ([`chaos`]).
//!
//! The deterministic runners stay the differential oracle: a fault-free
//! loopback session yields verdicts, node-view transcripts, and an event
//! stream identical to `NetRunner` under an empty `FaultPlan`, because the
//! session coordinator ([`session`]) admits every message through the same
//! `Transport` seam and reconstructs delivery order from the global
//! admission index each frame carries. Under chaos the safety half of that
//! oracle still holds — a run either decides the value actually sent or
//! does not decide — while liveness degrades gracefully and *loudly*: every
//! shed message is a counted `FaultDrop`, never a silent loss.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod daemon;
pub mod frame;
pub mod link;
mod node;
pub mod session;
pub mod stats;

pub use chaos::{ChaosPlan, SeverWindow};
pub use daemon::Daemon;
pub use frame::{Frame, FrameError, MAX_FRAME_BYTES};
pub use link::{LinkEvent, NetdConfig, TxResult};
pub use session::{run_session, run_session_observed, SessionOutcome};
pub use stats::NetdStats;

// The termination verdict is shared with the deterministic fault runner.
pub use rmt_net::Termination;
