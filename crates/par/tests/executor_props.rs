//! Property tests for the parallel executor: order preservation, panic
//! propagation, idle-thread avoidance and `search_min`'s least-index
//! guarantee, differentially against the sequential scan.

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use proptest::prelude::*;
use rmt_par::{default_chunk, effective_threads, parallel_map, search_min, threads_from};

fn cases() -> ProptestConfig {
    let n = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    ProptestConfig::with_cases(n)
}

proptest! {
    #![proptest_config(cases())]

    /// `out[i] == f(items[i])` for every thread count, including
    /// `threads > len` and the empty input.
    #[test]
    fn map_preserves_order(items in proptest::collection::vec(-1_000_000i64..1_000_000, 0..80), threads in 1usize..12) {
        let expected: Vec<i64> = items.iter().map(|x| x.wrapping_mul(3) ^ 7).collect();
        let out = parallel_map(items, threads, |x: i64| x.wrapping_mul(3) ^ 7);
        prop_assert_eq!(out, expected);
    }

    /// No more than `min(threads, len)` distinct workers ever touch the
    /// items: surplus threads are not spawned at all.
    #[test]
    fn no_idle_workers(len in 0usize..40, threads in 1usize..16) {
        let ids = Mutex::new(HashSet::new());
        parallel_map((0..len).collect(), threads, |_| {
            ids.lock().unwrap().insert(std::thread::current().id());
        });
        let distinct = ids.into_inner().unwrap().len();
        prop_assert!(
            distinct <= effective_threads(threads, len),
            "{distinct} workers for {len} items on {threads} threads"
        );
    }

    /// `search_min` returns exactly what the sequential first-match scan
    /// returns — same index, same witness — for any thread count and chunk
    /// size, on a predicate with arbitrary hit positions.
    #[test]
    fn search_min_matches_sequential_scan(
        len in 0u64..300,
        hits in proptest::collection::btree_set(0u64..300, 0..20),
        threads in 1usize..9,
        chunk in 0u64..8,
    ) {
        let pred = |i: u64| hits.contains(&i).then(|| i * 10);
        let sequential = (0..len).find_map(|i| pred(i).map(|r| (i, r)));
        prop_assert_eq!(search_min(len, threads, chunk, pred), sequential);
    }

    /// Every index below the winner is evaluated exactly once, and the
    /// winner itself exactly once: no skipped prefix, no double work there.
    #[test]
    fn search_min_covers_the_prefix(len in 1u64..200, win in 0u64..200, threads in 1usize..9) {
        let win = win % len;
        let counts: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
        let found = search_min(len, threads, default_chunk(len, threads), |i| {
            counts[i as usize].fetch_add(1, Ordering::Relaxed);
            (i == win).then_some(())
        });
        prop_assert_eq!(found, Some((win, ())));
        for (i, c) in counts.iter().take(win as usize + 1).enumerate() {
            prop_assert_eq!(c.load(Ordering::Relaxed), 1, "index {i}");
        }
    }
}

#[test]
fn worker_panics_propagate_with_the_item_index() {
    for threads in [1, 2, 8] {
        let err = std::panic::catch_unwind(|| {
            parallel_map((0..50).collect(), threads, |x: i32| {
                assert!(x != 17, "boom on {x}");
                x
            })
        })
        .expect_err("the panic must reach the caller");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("panic payload carries context");
        assert!(
            msg.contains("item 17") && msg.contains("boom on 17"),
            "unexpected panic message: {msg}"
        );
    }
}

#[test]
fn empty_input_returns_empty_without_spawning() {
    let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 8, |x| x);
    assert!(out.is_empty());
}

#[test]
fn thread_knob_resolution_order() {
    let args = |s: &[&str]| s.iter().map(|s| s.to_string()).collect::<Vec<_>>();
    assert_eq!(
        threads_from(&args(&["bin", "--threads", "6"]), Some("3")),
        6
    );
    assert_eq!(threads_from(&args(&["bin", "--threads=2"]), Some("3")), 2);
    assert_eq!(threads_from(&args(&["bin"]), Some("3")), 3);
    // Invalid values fall through.
    assert_eq!(
        threads_from(&args(&["bin", "--threads", "zero"]), Some("5")),
        5
    );
    assert!(threads_from(&args(&["bin"]), Some("0")) >= 1);
}
