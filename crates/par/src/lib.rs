//! Deterministic parallel execution for the rmt workspace.
//!
//! The deciders of `rmt-core` are pure functions over a fixed instance, so
//! their exhaustive searches parallelize embarrassingly — but correctness of
//! everything downstream (witness checks, coupled attacks, recorded
//! artifacts) hinges on the *exact* witness found. Every primitive here is
//! therefore **deterministic**: for a fixed input the result is bit-identical
//! for any thread count, including `1`.
//!
//! * [`parallel_map`] — ordered map over items on a bounded pool of scoped
//!   OS threads (no idle spawns, worker panics propagate with context);
//! * [`search_min`] — the least-index hit of a predicate over an index
//!   range, searched in parallel with chunked work claiming and early-exit
//!   cancellation. This is the engine under `find_rmt_cut_par` and friends:
//!   the sequential deciders return the *first* hit of an ascending subset
//!   enumeration, and the least index is exactly that hit;
//! * [`configured_threads`] — the `--threads` / `RMT_THREADS` knob shared by
//!   the experiment binaries.
//!
//! The layer is std-only (scoped threads, atomics, mutexes); no work-stealing
//! runtime is involved, which keeps the scheduling analyzable: workers claim
//! ascending chunks from a single atomic cursor, so every index below the
//! final answer is provably examined exactly once.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// The number of worker threads actually used for `items` work items:
/// `min(threads, items)`, but at least 1 — spawning a thread that can never
/// claim an item is pure overhead.
pub fn effective_threads(threads: usize, items: usize) -> usize {
    threads.min(items).max(1)
}

/// Resolves the thread count for a parallel run, in priority order:
///
/// 1. `--threads N` (or `--threads=N`) on the command line;
/// 2. the `RMT_THREADS` environment variable;
/// 3. [`std::thread::available_parallelism`] (1 if unavailable).
///
/// Invalid or zero values fall through to the next source.
pub fn configured_threads() -> usize {
    let args: Vec<String> = std::env::args().collect();
    threads_from(&args, std::env::var("RMT_THREADS").ok().as_deref())
}

/// [`configured_threads`] with explicit inputs, for tests and custom CLIs.
pub fn threads_from(args: &[String], env: Option<&str>) -> usize {
    let parse = |s: &str| s.parse::<usize>().ok().filter(|&n| n > 0);
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if let Some(v) = a.strip_prefix("--threads=") {
            if let Some(n) = parse(v) {
                return n;
            }
        } else if a == "--threads" {
            if let Some(n) = iter.next().and_then(|v| parse(v)) {
                return n;
            }
        }
    }
    if let Some(n) = env.and_then(parse) {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Maps `f` over `items` on up to `threads` OS threads, preserving input
/// order in the output.
///
/// Semantics:
///
/// * **Order** — `out[i] == f(items[i])` for every `i`, regardless of which
///   worker computed it or when.
/// * **No idle spawns** — only [`effective_threads`] workers are created;
///   `threads > items.len()` never parks surplus threads on an empty queue,
///   and `threads == 1` (or a single item) runs inline without spawning.
/// * **Panic propagation** — if `f` panics, the remaining workers stop at
///   their next claim (an [`AtomicBool`] cancellation flag) and the panic is
///   re-raised on the caller with the item index and original message
///   attached.
///
/// # Panics
///
/// Panics if `threads == 0`, and re-panics if `f` panicked on any item.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    assert!(threads > 0, "need at least one thread");
    let n = items.len();
    let workers = effective_threads(threads, n);
    if workers <= 1 {
        // Inline, but with the same panic context the threaded path attaches.
        return items
            .into_iter()
            .enumerate()
            .map(
                |(idx, item)| match catch_unwind(AssertUnwindSafe(|| f(item))) {
                    Ok(r) => r,
                    Err(payload) => {
                        let msg = panic_message(payload.as_ref());
                        panic!("parallel_map worker panicked on item {idx}: {msg}");
                    }
                },
            )
            .collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let cancelled = AtomicBool::new(false);
    let failure: Mutex<Option<(usize, String)>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if cancelled.load(Ordering::Relaxed) {
                    break;
                }
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                let item = slots[idx]
                    .lock()
                    .expect("item slot lock")
                    .take()
                    .expect("each item is claimed exactly once");
                match catch_unwind(AssertUnwindSafe(|| f(item))) {
                    Ok(r) => *results[idx].lock().expect("result slot lock") = Some(r),
                    Err(payload) => {
                        cancelled.store(true, Ordering::Relaxed);
                        let mut first = failure.lock().expect("failure lock");
                        if first.is_none() {
                            *first = Some((idx, panic_message(payload.as_ref())));
                        }
                        break;
                    }
                }
            });
        }
    });
    if let Some((idx, msg)) = failure.into_inner().expect("failure lock") {
        panic!("parallel_map worker panicked on item {idx}: {msg}");
    }
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot lock")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The chunk size [`search_min`] uses when the caller passes `0`: large
/// enough to amortize claiming, small enough that early exit does not strand
/// workers deep in doomed ranges.
pub fn default_chunk(len: u64, threads: usize) -> u64 {
    (len / (16 * threads.max(1) as u64)).clamp(1, 4096)
}

/// Finds the **least** index in `0..len` for which `pred` returns `Some`,
/// searching in parallel.
///
/// This is the deterministic core of the parallel deciders: the sequential
/// deciders scan an ascending enumeration and return the first hit, and the
/// least satisfying index *is* that first hit — so for a pure `pred` the
/// result (index and witness alike) is bit-identical for every thread count.
///
/// Mechanics: workers claim ascending chunks of `chunk` indices from a
/// shared atomic cursor and publish improvements to a shared best index.
/// A worker abandons its chunk as soon as the best known index undercuts its
/// position, and stops entirely once its next chunk would start at or beyond
/// the best — early exit without sacrificing minimality:
///
/// * any *skipped* index was `>=` the best at skip time, and the best only
///   decreases, so skipped indices can never beat the final answer;
/// * conversely every index below the final answer belonged to some claimed
///   chunk and was evaluated (to `None`) exactly once.
///
/// `chunk = 0` selects [`default_chunk`]. Panics in `pred` propagate to the
/// caller.
pub fn search_min<R, F>(len: u64, threads: usize, chunk: u64, pred: F) -> Option<(u64, R)>
where
    R: Send,
    F: Fn(u64) -> Option<R> + Sync,
{
    assert!(threads > 0, "need at least one thread");
    if len == 0 {
        return None;
    }
    let workers = effective_threads(threads, usize::try_from(len).unwrap_or(usize::MAX));
    if workers <= 1 {
        return (0..len).find_map(|idx| pred(idx).map(|r| (idx, r)));
    }
    let chunk = if chunk == 0 {
        default_chunk(len, workers)
    } else {
        chunk
    };
    let cursor = AtomicU64::new(0);
    let best_idx = AtomicU64::new(u64::MAX);
    let best: Mutex<Option<(u64, R)>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                // The cursor hands out ascending chunks, so once the best
                // undercuts our start nothing later can improve it either.
                if start >= len || start >= best_idx.load(Ordering::Relaxed) {
                    break;
                }
                let end = start.saturating_add(chunk).min(len);
                for idx in start..end {
                    if idx >= best_idx.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Some(r) = pred(idx) {
                        let mut guard = best.lock().expect("best lock");
                        if guard.as_ref().is_none_or(|(b, _)| idx < *b) {
                            best_idx.store(idx, Ordering::Relaxed);
                            *guard = Some((idx, r));
                        }
                        // Later indices in this chunk cannot beat `idx`.
                        break;
                    }
                }
            });
        }
    });
    best.into_inner().expect("best lock")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_caps_at_item_count() {
        assert_eq!(effective_threads(8, 3), 3);
        assert_eq!(effective_threads(2, 100), 2);
        assert_eq!(effective_threads(4, 0), 1);
    }

    #[test]
    fn threads_from_prefers_cli_then_env() {
        let args = |s: &[&str]| s.iter().map(|a| a.to_string()).collect::<Vec<_>>();
        assert_eq!(
            threads_from(&args(&["bin", "--threads", "3"]), Some("7")),
            3
        );
        assert_eq!(threads_from(&args(&["bin", "--threads=5"]), Some("7")), 5);
        assert_eq!(threads_from(&args(&["bin"]), Some("7")), 7);
        // Invalid values fall through.
        assert_eq!(
            threads_from(&args(&["bin", "--threads", "x"]), Some("4")),
            4
        );
        assert!(threads_from(&args(&["bin"]), Some("0")) >= 1);
    }

    #[test]
    fn parallel_map_is_ordered_and_total() {
        let out = parallel_map((0..257).collect(), 4, |x: i32| x * 2 + 1);
        assert_eq!(out, (0..257).map(|x| x * 2 + 1).collect::<Vec<_>>());
        assert_eq!(parallel_map(Vec::<i32>::new(), 8, |x| x), Vec::<i32>::new());
    }

    #[test]
    fn parallel_map_propagates_panics_with_context() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            parallel_map((0..16).collect(), 4, |x: i32| {
                if x == 7 {
                    panic!("boom at {x}");
                }
                x
            })
        }))
        .unwrap_err();
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("worker panicked on item 7"), "{msg}");
        assert!(msg.contains("boom at 7"), "{msg}");
    }

    #[test]
    fn search_min_finds_least_hit() {
        let hits = [13u64, 40, 900];
        for threads in [1, 2, 8] {
            let got = search_min(1000, threads, 7, |i| hits.contains(&i).then_some(i * 10));
            assert_eq!(got, Some((13, 130)), "threads={threads}");
        }
        assert_eq!(search_min(1000, 4, 0, |_| None::<()>), None);
        assert_eq!(search_min(0, 4, 0, Some), None);
    }
}
