//! Coverage signatures: the novelty signal steering the hunt.
//!
//! A run's [`Signature`] is the set of coarse behavioural *features* it
//! exhibited — which event kinds fired in which round buckets, how the run
//! terminated, how much of each fault class the network inflicted, how many
//! nodes decided. Exact traces would make every candidate "novel" (payload
//! strings embed values and seeds); features deliberately bucket away that
//! noise so two runs count as different only when the *shape* of the
//! execution differs. A candidate whose signature adds no unseen feature
//! teaches the hunter nothing and is not retained in the mutation pool.

use std::collections::BTreeSet;

use rmt_net::{FaultStats, Termination};
use rmt_obs::RunEvent;

use crate::search::Verdict;

/// The feature set one execution exhibited.
///
/// Ordered and deduplicated (a `BTreeSet`), so equal behaviour yields equal
/// signatures regardless of event multiplicity or ordering.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Signature(BTreeSet<String>);

impl Signature {
    /// Distils the signature of a finished run from its event stream,
    /// fault account, termination mode, verdict and decided-node count.
    pub fn distill(
        events: &[RunEvent],
        faults: &FaultStats,
        termination: &Termination,
        verdict: Verdict,
        decided: usize,
    ) -> Signature {
        let mut features = BTreeSet::new();
        for ev in events {
            if let Some((kind, round)) = kind_and_round(ev) {
                features.insert(format!("ev:{kind}@r{}", round_bucket(round)));
            }
        }
        features.insert(format!("verdict:{}", verdict.as_str()));
        features.insert(match termination {
            Termination::Quiesced { .. } => "term:quiesced".to_string(),
            Termination::Stalled { .. } => "term:stalled".to_string(),
        });
        for (name, count) in fault_tallies(faults) {
            if count > 0 {
                features.insert(format!("fault:{name}:{}", log2_bucket(count)));
            }
        }
        features.insert(format!("decided:{}", log2_bucket(decided as u64)));
        Signature(features)
    }

    /// The features of `self` absent from `seen`.
    pub fn novel_against(&self, seen: &BTreeSet<String>) -> Vec<String> {
        self.0
            .iter()
            .filter(|f| !seen.contains(*f))
            .cloned()
            .collect()
    }

    /// Iterates the features.
    pub fn features(&self) -> impl Iterator<Item = &str> {
        self.0.iter().map(String::as_str)
    }

    /// Number of distinct features.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when no feature was recorded.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// The event's feature name plus its round, for the kinds worth tracking.
/// Profiling spans and round bookkeeping carry no attack-relevant shape.
fn kind_and_round(ev: &RunEvent) -> Option<(&'static str, u32)> {
    match ev {
        RunEvent::HonestSend { round, .. } => Some(("honest_send", *round)),
        RunEvent::AdversarialSend { round, .. } => Some(("adversarial_send", *round)),
        RunEvent::RejectedSend { round, .. } => Some(("rejected_send", *round)),
        RunEvent::Delivery { round, .. } => Some(("delivery", *round)),
        RunEvent::FaultDrop { round, reason, .. } => Some((reason.as_str(), *round)),
        RunEvent::FaultDelay { round, .. } => Some(("delay", *round)),
        RunEvent::FaultDuplicate { round, .. } => Some(("duplicate", *round)),
        RunEvent::NodeCrashed { round, .. } => Some(("crash", *round)),
        RunEvent::ConnUp { round, .. } => Some(("conn_up", *round)),
        RunEvent::ConnDown { round, .. } => Some(("conn_down", *round)),
        RunEvent::ConnRetry { round, .. } => Some(("conn_retry", *round)),
        RunEvent::Decision { round, .. } => Some(("decision", *round)),
        RunEvent::RunStart { .. }
        | RunEvent::RoundStart { .. }
        | RunEvent::RoundEnd { .. }
        | RunEvent::SpanOpen { .. }
        | RunEvent::SpanClose { .. }
        | RunEvent::RunEnd { .. } => None,
    }
}

/// Rounds 0–3 are individually meaningful (protocol phases live there);
/// later rounds blur together.
fn round_bucket(round: u32) -> &'static str {
    match round {
        0 => "0",
        1 => "1",
        2 => "2",
        3 => "3",
        4..=7 => "4-7",
        _ => "8+",
    }
}

/// Power-of-two magnitude bucket: 0, 1, 2, 4, 8, ... Collapses "dropped 37
/// messages" and "dropped 52" into one feature while separating orders of
/// magnitude.
fn log2_bucket(n: u64) -> u64 {
    if n == 0 {
        0
    } else {
        1 << (63 - n.leading_zeros())
    }
}

fn fault_tallies(f: &FaultStats) -> [(&'static str, u64); 6] {
    [
        ("dropped", f.dropped),
        ("partitioned", f.partitioned),
        ("crashed_sender", f.crashed_sender),
        ("suppressed", f.suppressed),
        ("delayed", f.delayed),
        ("duplicated", f.duplicated),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_collapse_magnitudes() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(37), 32);
        assert_eq!(log2_bucket(52), 32);
        assert_eq!(round_bucket(2), "2");
        assert_eq!(round_bucket(5), "4-7");
        assert_eq!(round_bucket(40), "8+");
    }

    #[test]
    fn signatures_ignore_event_multiplicity_and_order() {
        let a = RunEvent::Delivery {
            round: 1,
            from: 0,
            to: 1,
            payload: "x".into(),
        };
        let b = RunEvent::HonestSend {
            round: 0,
            from: 1,
            to: 0,
            bits: 8,
            payload: "y".into(),
        };
        let mut s1 = BTreeSet::new();
        for ev in [&a, &b, &a, &a] {
            if let Some((kind, round)) = kind_and_round(ev) {
                s1.insert(format!("ev:{kind}@r{}", round_bucket(round)));
            }
        }
        let mut s2 = BTreeSet::new();
        for ev in [&b, &a] {
            if let Some((kind, round)) = kind_and_round(ev) {
                s2.insert(format!("ev:{kind}@r{}", round_bucket(round)));
            }
        }
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 2);
    }
}
