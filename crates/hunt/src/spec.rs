//! Serializable instance recipes.
//!
//! Corpus fixtures must rebuild the *exact* instance an attack was found
//! on, but an [`Instance`] itself (graph + adversary structure + views) has
//! no serialized form. Instead of inventing one, a fixture stores the
//! *recipe*: which sampling family, which parameters, which seed. Rebuilding
//! replays the same deterministic sampler calls the experiments use, so a
//! spec pins an instance as firmly as a byte dump would — in a dozen bytes.

use rmt_core::sampling::{random_instance, random_instance_nonadjacent};
use rmt_core::Instance;
use rmt_graph::generators::seeded;
use rmt_graph::ViewKind;
use rmt_net::codec::{field, u32_from_json, u64_from_json, u64_to_json};
use rmt_net::PlanError;
use rmt_obs::Json;

/// Which sampling family the instance comes from (the E2/E3 workloads of
/// EXPERIMENTS.md).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// `random_instance_nonadjacent(n, 0.35, ..)` — dealer and receiver
    /// never adjacent, so transmission genuinely crosses the network.
    E2,
    /// `random_instance(n, 0.4, ..)` — unconstrained random instances.
    E3,
}

impl Family {
    /// Snake-case wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Family::E2 => "e2",
            Family::E3 => "e3",
        }
    }

    fn parse(s: &str, at: &str) -> Result<Self, PlanError> {
        match s {
            "e2" => Ok(Family::E2),
            "e3" => Ok(Family::E3),
            _ => Err(PlanError::new(at, format!("unknown family {s:?}"))),
        }
    }
}

/// A deterministic recipe for one instance: family, size, view kind, seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InstanceSpec {
    /// The sampling family.
    pub family: Family,
    /// Number of nodes.
    pub n: usize,
    /// The knowledge views handed to each node.
    pub view: ViewKind,
    /// Seed of the sampler's RNG.
    pub seed: u64,
}

impl InstanceSpec {
    /// Rebuilds the instance by replaying the family's sampler.
    pub fn build(&self) -> Instance {
        let mut rng = seeded(self.seed);
        match self.family {
            Family::E2 => random_instance_nonadjacent(self.n, 0.35, self.view, 3, 2, &mut rng),
            Family::E3 => random_instance(self.n, 0.4, self.view, 3, 2, &mut rng),
        }
    }

    /// Serializes the spec.
    pub fn to_json(&self) -> Json {
        let view = match self.view {
            ViewKind::Full => Json::Str("full".to_string()),
            ViewKind::AdHoc => Json::Str("ad_hoc".to_string()),
            ViewKind::Radius(k) => Json::Str(format!("radius:{k}")),
        };
        Json::obj([
            ("family", Json::Str(self.family.as_str().to_string())),
            ("n", Json::Int(self.n as i64)),
            ("view", view),
            ("seed", u64_to_json(self.seed)),
        ])
    }

    /// Decodes and validates a spec; `at` prefixes error paths.
    pub fn from_json(v: &Json, at: &str) -> Result<Self, PlanError> {
        if !matches!(v, Json::Obj(_)) {
            return Err(PlanError::new(
                at.trim_end_matches('.'),
                "expected an object",
            ));
        }
        let family_at = format!("{at}family");
        let family = Family::parse(
            field(v, "family", at)?
                .as_str()
                .ok_or_else(|| PlanError::new(&family_at, "expected a string"))?,
            &family_at,
        )?;
        let n = u32_from_json(field(v, "n", at)?, &format!("{at}n"))? as usize;
        if !(2..=64).contains(&n) {
            return Err(PlanError::new(
                format!("{at}n"),
                format!("instance size {n} outside the supported 2..=64"),
            ));
        }
        let view_at = format!("{at}view");
        let view_str = field(v, "view", at)?
            .as_str()
            .ok_or_else(|| PlanError::new(&view_at, "expected a string"))?;
        let view = if view_str == "ad_hoc" {
            ViewKind::AdHoc
        } else if view_str == "full" {
            ViewKind::Full
        } else if let Some(k) = view_str.strip_prefix("radius:") {
            ViewKind::Radius(
                k.parse()
                    .map_err(|_| PlanError::new(&view_at, format!("bad radius {view_str:?}")))?,
            )
        } else {
            return Err(PlanError::new(
                &view_at,
                format!("unknown view {view_str:?}"),
            ));
        };
        let seed = u64_from_json(field(v, "seed", at)?, &format!("{at}seed"))?;
        Ok(InstanceSpec {
            family,
            n,
            view,
            seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_rebuild_identical_instances() {
        let spec = InstanceSpec {
            family: Family::E2,
            n: 7,
            view: ViewKind::Radius(2),
            seed: 0xBEEF,
        };
        let a = spec.build();
        let b = spec.build();
        assert_eq!(a.graph(), b.graph());
        assert_eq!(a.dealer(), b.dealer());
        assert_eq!(a.receiver(), b.receiver());
    }

    #[test]
    fn specs_round_trip_through_json() {
        for spec in [
            InstanceSpec {
                family: Family::E2,
                n: 6,
                view: ViewKind::AdHoc,
                seed: u64::MAX,
            },
            InstanceSpec {
                family: Family::E3,
                n: 9,
                view: ViewKind::Radius(3),
                seed: 12,
            },
        ] {
            let back =
                InstanceSpec::from_json(&Json::parse(&spec.to_json().encode()).unwrap(), "spec.")
                    .unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn malformed_specs_are_rejected() {
        let reject = |text: &str, needle: &str| {
            let err = InstanceSpec::from_json(&Json::parse(text).unwrap(), "spec.").unwrap_err();
            assert!(
                err.field.contains(needle),
                "expected field containing {needle:?}, got {err}"
            );
        };
        reject("{}", "family");
        reject(
            r#"{"family": "e9", "n": 6, "view": "ad_hoc", "seed": 1}"#,
            "family",
        );
        reject(
            r#"{"family": "e2", "n": 1, "view": "ad_hoc", "seed": 1}"#,
            "n",
        );
        reject(
            r#"{"family": "e2", "n": 6, "view": "sphere", "seed": 1}"#,
            "view",
        );
        reject(
            r#"{"family": "e2", "n": 6, "view": "radius:x", "seed": 1}"#,
            "view",
        );
        reject(r#"{"family": "e2", "n": 6, "view": "ad_hoc"}"#, "seed");
    }
}
