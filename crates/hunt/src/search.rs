//! The coverage-guided search loop.
//!
//! [`execute`] runs one [`AttackGenome`] against one instance through
//! [`NetRunner`] and classifies the outcome; [`Hunter`] drives a seeded,
//! fully deterministic candidate loop over that executor, using
//! [`Signature`] novelty as its retention signal and greedily shrinking
//! every novel violation before reporting it. Determinism is load-bearing:
//! the same `(instance, input, HuntConfig)` always explores the same
//! candidates in the same order and reports byte-identical minimized
//! genomes, which is what lets CI re-run a hunt and compare artifacts.

use std::collections::{BTreeMap, BTreeSet};

use rand::Rng;
use rmt_core::protocols::attacks::{pka_adversary, zcpa_adversary};
use rmt_core::protocols::{rmt_pka::RmtPka, zcpa::ZCpa};
use rmt_core::{Instance, Value};
use rmt_net::{FaultStats, NetRunner, PlanError, Termination};
use rmt_obs::{Counter, Registry, VecObserver};

use crate::coverage::Signature;
use crate::genome::{mutation_rng, AttackGenome, Behaviour};

/// How one execution ended, from the receiver's point of view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The receiver decided the dealer's input: the protocol held.
    Safe,
    /// The receiver decided a *different* value — a safety violation, the
    /// one thing the theorems forbid outright.
    Wrong,
    /// The receiver never decided — a liveness violation (expected under
    /// enough suppression; the frontier in `BENCH_E14.json` charts where
    /// it starts).
    Stalled,
}

impl Verdict {
    /// Snake-case wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Safe => "safe",
            Verdict::Wrong => "wrong",
            Verdict::Stalled => "stalled",
        }
    }

    /// Parses a wire name; `at` prefixes the error path.
    pub fn parse(s: &str, at: &str) -> Result<Self, PlanError> {
        match s {
            "safe" => Ok(Verdict::Safe),
            "wrong" => Ok(Verdict::Wrong),
            "stalled" => Ok(Verdict::Stalled),
            _ => Err(PlanError::new(at, format!("unknown verdict {s:?}"))),
        }
    }
}

/// Everything one execution produced that the hunt consumes.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// The classification.
    pub verdict: Verdict,
    /// Rounds the run took.
    pub rounds: u32,
    /// The network's fault account.
    pub faults: FaultStats,
    /// Quiesced or stalled.
    pub termination: Termination,
    /// The coverage signature.
    pub signature: Signature,
}

/// Runs `genome` against `inst` with the dealer holding `input`, observed.
///
/// The protocol is chosen by the genome's behaviour tag; everything else —
/// corruption set, fault plan, suppression — comes from the genome. Pure in
/// its arguments: same triple, same report.
pub fn execute(inst: &Instance, input: Value, genome: &AttackGenome) -> RunReport {
    let corrupted = genome.corruption(inst);
    let mut observer = VecObserver::new();
    let (decision, rounds, faults, termination, decided) = match genome.behaviour {
        Behaviour::Pka(attack) => {
            let mut runner = NetRunner::new(
                inst.graph().clone(),
                |v| RmtPka::node(inst, v, input),
                pka_adversary(inst, input, corrupted, attack, genome.attack_seed),
                genome.plan.clone(),
            );
            if let Some(s) = &genome.suppression {
                runner = runner.with_message_adversary(s.clone());
            }
            let out = runner.run_observed(&mut observer);
            let decided = inst
                .graph()
                .nodes()
                .iter()
                .filter(|&v| out.decision(v).is_some())
                .count();
            (
                out.decision(inst.receiver()),
                out.metrics.rounds,
                out.faults,
                out.termination,
                decided,
            )
        }
        Behaviour::Zcpa(attack) => {
            let mut runner = NetRunner::new(
                inst.graph().clone(),
                |v| ZCpa::node(inst, v, input),
                zcpa_adversary(input, corrupted, attack),
                genome.plan.clone(),
            );
            if let Some(s) = &genome.suppression {
                runner = runner.with_message_adversary(s.clone());
            }
            let out = runner.run_observed(&mut observer);
            let decided = inst
                .graph()
                .nodes()
                .iter()
                .filter(|&v| out.decision(v).is_some())
                .count();
            (
                out.decision(inst.receiver()),
                out.metrics.rounds,
                out.faults,
                out.termination,
                decided,
            )
        }
    };
    let verdict = match decision {
        Some(d) if d == input => Verdict::Safe,
        Some(_) => Verdict::Wrong,
        None => Verdict::Stalled,
    };
    // Signature::of_run only needs faults/termination, which both arms
    // already extracted; synthesize the features directly.
    let signature = signature_from_parts(&observer, &faults, &termination, verdict, decided);
    RunReport {
        verdict,
        rounds,
        faults,
        termination,
        signature,
    }
}

fn signature_from_parts(
    observer: &VecObserver,
    faults: &FaultStats,
    termination: &Termination,
    verdict: Verdict,
    decided: usize,
) -> Signature {
    Signature::distill(&observer.events, faults, termination, verdict, decided)
}

/// Knobs of one hunt.
#[derive(Clone, Debug)]
pub struct HuntConfig {
    /// Master seed: the only entropy source of the whole search.
    pub seed: u64,
    /// Candidate executions to spend (excluding shrink probes).
    pub candidates: u32,
    /// Maximum shrink probes per violation.
    pub shrink_budget: u32,
    /// Behaviours to seed the pool with (each protocol's catalogue entry
    /// point; mutation cycles within a protocol from there).
    pub behaviours: Vec<Behaviour>,
}

/// A found-and-minimized violation.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The minimized genome.
    pub genome: AttackGenome,
    /// Its verdict (never `Safe`).
    pub verdict: Verdict,
    /// Complexity of the genome as first found, before shrinking.
    pub found_complexity: u64,
    /// Shrink probes it took to minimize.
    pub shrink_steps: u32,
}

/// The hunt's result.
#[derive(Clone, Debug)]
pub struct HuntReport {
    /// Minimized violations, deduplicated by genome, in discovery order.
    pub violations: Vec<Violation>,
    /// Candidates executed.
    pub executed: u32,
    /// Candidates whose signature contributed an unseen feature.
    pub novel: u32,
    /// Verdict tallies over all candidates (safe, wrong, stalled).
    pub tally: (u32, u32, u32),
}

/// The coverage-guided searcher.
///
/// Counter handles are acquired in [`Hunter::new`] so every `hunt.*` metric
/// registers (at zero) even for hunts that find nothing — the metrics
/// catalogue test relies on names being present, not lucky.
pub struct Hunter {
    executed: Counter,
    novel: Counter,
    safe: Counter,
    wrong: Counter,
    stalled: Counter,
    minimized: Counter,
    shrink_steps: Counter,
}

impl Hunter {
    /// Creates a hunter reporting into `registry`.
    pub fn new(registry: &Registry) -> Self {
        Hunter {
            executed: registry.counter("hunt.candidates_executed"),
            novel: registry.counter("hunt.novel_signatures"),
            safe: registry.counter("hunt.safe"),
            wrong: registry.counter("hunt.wrong"),
            stalled: registry.counter("hunt.stalled"),
            minimized: registry.counter("hunt.violations_minimized"),
            shrink_steps: registry.counter("hunt.shrink_steps"),
        }
    }

    /// Runs the full search against one instance.
    pub fn hunt(&self, inst: &Instance, input: Value, config: &HuntConfig) -> HuntReport {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        // The mutation pool: genomes that taught us something. Violations
        // are keyed by their minimized JSON so re-finding the same attack
        // through a different mutation path doesn't duplicate the corpus.
        let mut pool: Vec<AttackGenome> = Vec::new();
        let mut found: BTreeMap<String, Violation> = BTreeMap::new();
        let mut order: Vec<String> = Vec::new();
        let mut executed = 0u32;
        let mut novel = 0u32;
        let mut tally = (0u32, 0u32, 0u32);

        // Seed pool: each behaviour bare, plus a focused suppressor and a
        // lossy-network variant — cheap hand-picked starting corners so the
        // first mutations explore from somewhere interesting.
        let mut seeds: Vec<AttackGenome> = Vec::new();
        for &b in &config.behaviours {
            let bare = AttackGenome::bare(b);
            let mut suppressed = bare.clone();
            suppressed.suppression = Some(rmt_net::MessageAdversary::focused(
                1,
                rmt_sets::NodeSet::singleton(inst.receiver()),
            ));
            let mut lossy = bare.clone();
            lossy.plan = lossy.plan.with_default_policy(rmt_net::LinkPolicy {
                drop: 0.3,
                ..rmt_net::LinkPolicy::default()
            });
            seeds.extend([bare, suppressed, lossy]);
        }

        for i in 0..config.candidates {
            let candidate = if (i as usize) < seeds.len() {
                seeds[i as usize].clone()
            } else {
                let mut rng = mutation_rng(config.seed, u64::from(i));
                let parent = if pool.is_empty() {
                    seeds[i as usize % seeds.len()].clone()
                } else {
                    pool[rng.random_range(0usize..pool.len())].clone()
                };
                parent.mutate(&mut rng, inst)
            };

            let report = execute(inst, input, &candidate);
            executed += 1;
            self.executed.inc();
            match report.verdict {
                Verdict::Safe => {
                    tally.0 += 1;
                    self.safe.inc();
                }
                Verdict::Wrong => {
                    tally.1 += 1;
                    self.wrong.inc();
                }
                Verdict::Stalled => {
                    tally.2 += 1;
                    self.stalled.inc();
                }
            }

            let fresh = report.signature.novel_against(&seen);
            if fresh.is_empty() {
                continue;
            }
            novel += 1;
            self.novel.inc();
            seen.extend(fresh);
            pool.push(candidate.clone());

            if report.verdict != Verdict::Safe {
                let found_complexity = candidate.complexity();
                let (minimized, steps) =
                    self.shrink(inst, input, candidate, report.verdict, config.shrink_budget);
                let key = minimized.to_json().encode();
                if let std::collections::btree_map::Entry::Vacant(slot) = found.entry(key.clone()) {
                    self.minimized.inc();
                    order.push(key);
                    slot.insert(Violation {
                        genome: minimized,
                        verdict: report.verdict,
                        found_complexity,
                        shrink_steps: steps,
                    });
                }
            }
        }

        HuntReport {
            violations: order.into_iter().map(|k| found[&k].clone()).collect(),
            executed,
            novel,
            tally,
        }
    }

    /// Greedy shrink: scan the strictly-simpler candidates in order, take
    /// the first that reproduces the verdict, restart from it. Terminates
    /// because complexity is a strictly decreasing non-negative integer.
    fn shrink(
        &self,
        inst: &Instance,
        input: Value,
        mut genome: AttackGenome,
        verdict: Verdict,
        budget: u32,
    ) -> (AttackGenome, u32) {
        let mut steps = 0u32;
        'outer: while steps < budget {
            for candidate in genome.shrink_candidates() {
                if steps >= budget {
                    break 'outer;
                }
                steps += 1;
                self.shrink_steps.inc();
                if execute(inst, input, &candidate).verdict == verdict {
                    genome = candidate;
                    continue 'outer;
                }
            }
            break;
        }
        (genome, steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::Behaviour;
    use crate::spec::{Family, InstanceSpec};
    use rmt_core::protocols::attacks::{PkaAttack, ZcpaAttack};
    use rmt_graph::ViewKind;

    fn instance() -> Instance {
        // Deterministically screened: seed 11 yields a solvable E3 instance
        // at n = 6 (checked by the assertion below, not by luck at runtime).
        let inst = InstanceSpec {
            family: Family::E3,
            n: 6,
            view: ViewKind::AdHoc,
            seed: 11,
        }
        .build();
        assert!(
            rmt_core::cuts::find_rmt_cut(&inst).is_none(),
            "test instance must be solvable"
        );
        inst
    }

    #[test]
    fn bare_silent_genomes_are_safe() {
        let inst = instance();
        for b in [
            Behaviour::Pka(PkaAttack::Silent),
            Behaviour::Zcpa(ZcpaAttack::Silent),
        ] {
            let report = execute(&inst, 7, &AttackGenome::bare(b));
            assert_eq!(report.verdict, Verdict::Safe, "{b:?}");
            assert!(matches!(report.termination, Termination::Quiesced { .. }));
        }
    }

    #[test]
    fn execute_is_deterministic() {
        let inst = instance();
        let mut g = AttackGenome::bare(Behaviour::Pka(PkaAttack::ForgeTrails));
        g.attack_seed = 42;
        g.plan = g.plan.with_default_policy(rmt_net::LinkPolicy {
            drop: 0.4,
            ..rmt_net::LinkPolicy::default()
        });
        let a = execute(&inst, 7, &g);
        let b = execute(&inst, 7, &g);
        assert_eq!(a.verdict, b.verdict);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.signature, b.signature);
    }

    #[test]
    fn receiver_focused_suppression_stalls_the_run() {
        let inst = instance();
        let mut g = AttackGenome::bare(Behaviour::Pka(PkaAttack::Silent));
        g.suppression = Some(rmt_net::MessageAdversary::focused(
            10_000,
            rmt_sets::NodeSet::singleton(inst.receiver()),
        ));
        let report = execute(&inst, 7, &g);
        assert_eq!(report.verdict, Verdict::Stalled);
        assert!(report.faults.suppressed > 0);
    }

    #[test]
    fn hunts_are_deterministic_and_find_suppression_violations() {
        let inst = instance();
        let registry = Registry::new();
        let config = HuntConfig {
            seed: 0xE14,
            candidates: 40,
            shrink_budget: 60,
            behaviours: vec![
                Behaviour::Pka(PkaAttack::Silent),
                Behaviour::Zcpa(ZcpaAttack::Silent),
            ],
        };
        let a = Hunter::new(&registry).hunt(&inst, 7, &config);
        let b = Hunter::new(&registry).hunt(&inst, 7, &config);
        assert_eq!(a.executed, b.executed);
        assert_eq!(a.novel, b.novel);
        assert_eq!(a.tally, b.tally);
        assert_eq!(
            a.violations
                .iter()
                .map(|v| v.genome.to_json().encode())
                .collect::<Vec<_>>(),
            b.violations
                .iter()
                .map(|v| v.genome.to_json().encode())
                .collect::<Vec<_>>(),
        );
        // The seed pool alone contains a receiver-focused suppressor, so a
        // liveness violation must surface; safety must hold throughout.
        assert!(a.tally.1 == 0, "no safety violations expected");
        assert!(
            a.violations.iter().any(|v| v.verdict == Verdict::Stalled),
            "expected at least one stall"
        );
        // Every reported violation is a local minimum: no strictly simpler
        // variant reproduces it.
        for v in &a.violations {
            for simpler in v.genome.shrink_candidates() {
                assert_ne!(
                    execute(&inst, 7, &simpler).verdict,
                    v.verdict,
                    "genome was not fully minimized"
                );
            }
        }
    }

    #[test]
    fn verdicts_round_trip() {
        for v in [Verdict::Safe, Verdict::Wrong, Verdict::Stalled] {
            assert_eq!(Verdict::parse(v.as_str(), "verdict").unwrap(), v);
        }
        assert!(Verdict::parse("maybe", "verdict").is_err());
    }
}
