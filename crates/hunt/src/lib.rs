//! Coverage-guided attack synthesis for the RMT protocols.
//!
//! The theorems of the source paper say *when* reliable message
//! transmission is possible; the simulator says *whether one run worked*.
//! This crate closes the gap between them adversarially: instead of
//! checking the protocols against a handful of hand-written attacks, it
//! *searches* the attack space for behaviours that break them, and keeps
//! every counterexample it finds as a permanent regression fixture.
//!
//! The pieces:
//!
//! * [`InstanceSpec`] — a serializable recipe (family, size, view, seed)
//!   that deterministically rebuilds the instance an attack was found on;
//! * [`AttackGenome`] — one complete attack: a Byzantine behaviour
//!   template from `rmt-core`'s catalogue, the corruption set executing it,
//!   a probabilistic [`rmt_net::FaultPlan`], and an optional budgeted
//!   [`rmt_net::MessageAdversary`]. Genomes serialize, mutate under a
//!   seeded RNG, and shrink proptest-style toward minimal reproducers;
//! * [`Signature`] — the coverage feedback: a bucketed feature set of what
//!   a run *did* (event kinds per round band, fault magnitudes, verdict,
//!   termination), so the search retains behaviourally new candidates and
//!   discards noise-level variation;
//! * [`Hunter`] / [`execute`] — the deterministic search loop and the
//!   single-genome executor classifying runs [`Verdict::Safe`] /
//!   [`Verdict::Wrong`] / [`Verdict::Stalled`];
//! * [`Fixture`] / [`corpus::load_dir`] — promotion of minimized
//!   violations into `tests/corpus/` and their replay in CI.
//!
//! Everything is deterministic in `(instance spec, input, hunt seed)`:
//! the hunt explores the same candidates, finds the same violations, and
//! minimizes them to byte-identical genomes on every machine.
//!
//! # Example
//!
//! ```
//! use rmt_hunt::{AttackGenome, Behaviour, execute, Verdict};
//! use rmt_hunt::spec::{Family, InstanceSpec};
//! use rmt_core::protocols::attacks::PkaAttack;
//! use rmt_graph::ViewKind;
//!
//! let spec = InstanceSpec { family: Family::E3, n: 6, view: ViewKind::AdHoc, seed: 11 };
//! let inst = spec.build();
//! let genome = AttackGenome::bare(Behaviour::Pka(PkaAttack::Silent));
//! assert_eq!(execute(&inst, 7, &genome).verdict, Verdict::Safe);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod coverage;
pub mod genome;
pub mod search;
pub mod spec;

pub use corpus::{load_dir, Fixture, SCHEMA};
pub use coverage::Signature;
pub use genome::{mutation_rng, AttackGenome, Behaviour};
pub use search::{execute, HuntConfig, HuntReport, Hunter, RunReport, Verdict, Violation};
pub use spec::{Family, InstanceSpec};
