//! The committed counterexample corpus.
//!
//! Every violation the hunter minimizes can be *promoted*: written as a
//! small JSON fixture pinning the instance recipe, the dealer input, the
//! minimized genome and the verdict it produced. A regression test replays
//! the whole corpus on every `cargo test` run, so a scheduler or protocol
//! change that silently alters any recorded outcome — in either direction —
//! fails loudly with the fixture name attached.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use rmt_core::Value;
use rmt_net::codec::{field, u64_from_json, u64_to_json};
use rmt_net::PlanError;
use rmt_obs::Json;

use crate::genome::AttackGenome;
use crate::search::{execute, RunReport, Verdict};
use crate::spec::InstanceSpec;

/// The fixture format version this build writes and reads.
pub const SCHEMA: i64 = 1;

/// One committed counterexample.
#[derive(Clone, Debug)]
pub struct Fixture {
    /// Corpus-unique name (the file stem on disk).
    pub name: String,
    /// Recipe for the instance the attack runs on.
    pub spec: InstanceSpec,
    /// The dealer's input value.
    pub input: Value,
    /// The minimized attack genome.
    pub genome: AttackGenome,
    /// The verdict recorded at promotion time.
    pub verdict: Verdict,
}

impl Fixture {
    /// Serializes the fixture.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Int(SCHEMA)),
            ("name", Json::Str(self.name.clone())),
            ("spec", self.spec.to_json()),
            ("input", u64_to_json(self.input)),
            ("genome", self.genome.to_json()),
            ("verdict", Json::Str(self.verdict.as_str().to_string())),
        ])
    }

    /// Decodes and validates a fixture.
    pub fn from_json(v: &Json) -> Result<Self, PlanError> {
        match v.get("schema") {
            Some(Json::Int(n)) if *n == SCHEMA => {}
            Some(Json::Int(n)) => {
                return Err(PlanError::new(
                    "schema",
                    format!("unsupported corpus schema {n} (this build reads {SCHEMA})"),
                ))
            }
            _ => return Err(PlanError::new("schema", "expected an integer")),
        }
        let name = field(v, "name", "")?
            .as_str()
            .ok_or_else(|| PlanError::new("name", "expected a string"))?
            .to_string();
        let spec = InstanceSpec::from_json(field(v, "spec", "")?, "spec.")?;
        let input = u64_from_json(field(v, "input", "")?, "input")?;
        let genome = AttackGenome::from_json(field(v, "genome", "")?)?;
        let verdict = Verdict::parse(
            field(v, "verdict", "")?
                .as_str()
                .ok_or_else(|| PlanError::new("verdict", "expected a string"))?,
            "verdict",
        )?;
        Ok(Fixture {
            name,
            spec,
            input,
            genome,
            verdict,
        })
    }

    /// Parses a fixture from JSON text.
    pub fn from_json_str(text: &str) -> Result<Self, PlanError> {
        let v = Json::parse(text)
            .map_err(|e| PlanError::new("fixture", format!("invalid JSON: {e:?}")))?;
        Fixture::from_json(&v)
    }

    /// Rebuilds the instance and re-executes the genome, returning the
    /// fresh report (compare its verdict against [`Fixture::verdict`]).
    pub fn replay(&self) -> RunReport {
        execute(&self.spec.build(), self.input, &self.genome)
    }

    /// Writes the fixture as `<dir>/<name>.json` (pretty-stable: one
    /// canonical `encode` line plus trailing newline).
    pub fn save(&self, dir: &Path) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.name));
        fs::write(&path, self.to_json().encode() + "\n")?;
        Ok(path)
    }
}

/// Loads every `*.json` fixture under `dir`, sorted by file name so replay
/// order (and any failure output) is stable across filesystems.
///
/// A missing directory is an empty corpus, not an error — the corpus is
/// optional until the first promotion. A present-but-malformed fixture *is*
/// an error: silently skipping one would un-guard a regression.
pub fn load_dir(dir: &Path) -> Result<Vec<Fixture>, String> {
    if !dir.exists() {
        return Ok(Vec::new());
    }
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    let mut fixtures = Vec::with_capacity(paths.len());
    for path in paths {
        let text =
            fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        let fixture =
            Fixture::from_json_str(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        fixtures.push(fixture);
    }
    Ok(fixtures)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::Behaviour;
    use crate::spec::Family;
    use rmt_core::protocols::attacks::PkaAttack;
    use rmt_graph::ViewKind;
    use rmt_net::MessageAdversary;
    use rmt_sets::NodeSet;

    fn fixture() -> Fixture {
        let spec = InstanceSpec {
            family: Family::E3,
            n: 6,
            view: ViewKind::AdHoc,
            seed: 11,
        };
        let receiver = spec.build().receiver();
        let mut genome = AttackGenome::bare(Behaviour::Pka(PkaAttack::Silent));
        genome.suppression = Some(MessageAdversary::focused(1, NodeSet::singleton(receiver)));
        Fixture {
            name: "stall_suppress_receiver".to_string(),
            spec,
            input: 7,
            genome,
            verdict: Verdict::Stalled,
        }
    }

    #[test]
    fn fixtures_round_trip_through_json() {
        let f = fixture();
        let back = Fixture::from_json_str(&f.to_json().encode()).unwrap();
        assert_eq!(back.name, f.name);
        assert_eq!(back.spec, f.spec);
        assert_eq!(back.input, f.input);
        assert_eq!(back.genome, f.genome);
        assert_eq!(back.verdict, f.verdict);
    }

    #[test]
    fn unknown_schema_versions_are_rejected() {
        let mut text = fixture().to_json().encode();
        text = text.replacen("\"schema\":1", "\"schema\":99", 1);
        let err = Fixture::from_json_str(&text).unwrap_err();
        assert!(err.field.contains("schema"), "got {err}");
    }

    #[test]
    fn save_load_replay_round_trips() {
        let dir = std::env::temp_dir().join(format!("rmt_hunt_corpus_{}", std::process::id()));
        let f = fixture();
        f.save(&dir).unwrap();
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].genome, f.genome);
        assert_eq!(loaded[0].replay().verdict, f.verdict);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_corpus_directory_is_empty() {
        assert!(load_dir(Path::new("/nonexistent/rmt/corpus"))
            .unwrap()
            .is_empty());
    }
}
