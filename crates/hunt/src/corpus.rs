//! The committed counterexample corpus.
//!
//! Every violation the hunter minimizes can be *promoted*: written as a
//! small JSON fixture pinning the instance recipe, the dealer input, the
//! minimized genome and the verdict it produced. A regression test replays
//! the whole corpus on every `cargo test` run, so a scheduler or protocol
//! change that silently alters any recorded outcome — in either direction —
//! fails loudly with the fixture name attached.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use rmt_core::Value;
use rmt_net::codec::{field, u64_from_json, u64_to_json};
use rmt_net::PlanError;
use rmt_obs::Json;

use crate::genome::AttackGenome;
use crate::search::{execute, RunReport, Verdict};
use crate::spec::InstanceSpec;

/// The fixture format version this build writes and reads.
pub const SCHEMA: i64 = 1;

/// One committed counterexample.
#[derive(Clone, Debug)]
pub struct Fixture {
    /// Corpus-unique name (the file stem on disk).
    pub name: String,
    /// Recipe for the instance the attack runs on.
    pub spec: InstanceSpec,
    /// The dealer's input value.
    pub input: Value,
    /// The minimized attack genome.
    pub genome: AttackGenome,
    /// The verdict recorded at promotion time.
    pub verdict: Verdict,
}

impl Fixture {
    /// Serializes the fixture.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Int(SCHEMA)),
            ("name", Json::Str(self.name.clone())),
            ("spec", self.spec.to_json()),
            ("input", u64_to_json(self.input)),
            ("genome", self.genome.to_json()),
            ("verdict", Json::Str(self.verdict.as_str().to_string())),
        ])
    }

    /// Decodes and validates a fixture.
    pub fn from_json(v: &Json) -> Result<Self, PlanError> {
        if !matches!(v, Json::Obj(_)) {
            return Err(PlanError::new(
                "fixture",
                "expected a JSON object at the top level",
            ));
        }
        match v.get("schema") {
            Some(Json::Int(n)) if *n == SCHEMA => {}
            Some(Json::Int(n)) => {
                return Err(PlanError::new(
                    "schema",
                    format!("unsupported corpus schema {n} (this build reads {SCHEMA})"),
                ))
            }
            _ => return Err(PlanError::new("schema", "expected an integer")),
        }
        let name = field(v, "name", "")?
            .as_str()
            .ok_or_else(|| PlanError::new("name", "expected a string"))?
            .to_string();
        if name.is_empty() {
            return Err(PlanError::new("name", "must not be empty"));
        }
        if !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.')
        {
            // `save` joins the name onto the corpus directory; anything
            // beyond a plain file stem could escape it.
            return Err(PlanError::new(
                "name",
                format!("{name:?} is not a plain file stem ([A-Za-z0-9_.-] only)"),
            ));
        }
        let spec = InstanceSpec::from_json(field(v, "spec", "")?, "spec.")?;
        let input = u64_from_json(field(v, "input", "")?, "input")?;
        let genome = AttackGenome::from_json(field(v, "genome", "")?)?;
        let verdict = Verdict::parse(
            field(v, "verdict", "")?
                .as_str()
                .ok_or_else(|| PlanError::new("verdict", "expected a string"))?,
            "verdict",
        )?;
        Ok(Fixture {
            name,
            spec,
            input,
            genome,
            verdict,
        })
    }

    /// Parses a fixture from JSON text.
    pub fn from_json_str(text: &str) -> Result<Self, PlanError> {
        if text.trim().is_empty() {
            return Err(PlanError::new(
                "fixture",
                "empty file (truncated write or placeholder?)",
            ));
        }
        let v = Json::parse(text)
            .map_err(|e| PlanError::new("fixture", format!("invalid JSON: {e:?}")))?;
        Fixture::from_json(&v)
    }

    /// Loads one fixture file. Every failure mode a committed corpus can
    /// hit — unreadable file, non-UTF-8 bytes, truncated or corrupt JSON,
    /// a drifted schema — comes back as a descriptive error prefixed with
    /// the path, never a panic: a broken fixture must name itself.
    pub fn load(path: &Path) -> Result<Self, String> {
        let bytes = fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let text =
            String::from_utf8(bytes).map_err(|e| format!("{}: not UTF-8 ({e})", path.display()))?;
        Fixture::from_json_str(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Rebuilds the instance and re-executes the genome, returning the
    /// fresh report (compare its verdict against [`Fixture::verdict`]).
    pub fn replay(&self) -> RunReport {
        execute(&self.spec.build(), self.input, &self.genome)
    }

    /// Writes the fixture as `<dir>/<name>.json` (pretty-stable: one
    /// canonical `encode` line plus trailing newline).
    pub fn save(&self, dir: &Path) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.name));
        fs::write(&path, self.to_json().encode() + "\n")?;
        Ok(path)
    }
}

/// Loads every `*.json` fixture under `dir`, sorted by file name so replay
/// order (and any failure output) is stable across filesystems.
///
/// A missing directory is an empty corpus, not an error — the corpus is
/// optional until the first promotion. A present-but-malformed fixture *is*
/// an error: silently skipping one would un-guard a regression.
pub fn load_dir(dir: &Path) -> Result<Vec<Fixture>, String> {
    if !dir.exists() {
        return Ok(Vec::new());
    }
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    let mut fixtures = Vec::with_capacity(paths.len());
    for path in paths {
        fixtures.push(Fixture::load(&path)?);
    }
    Ok(fixtures)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::Behaviour;
    use crate::spec::Family;
    use rmt_core::protocols::attacks::PkaAttack;
    use rmt_graph::ViewKind;
    use rmt_net::MessageAdversary;
    use rmt_sets::NodeSet;

    fn fixture() -> Fixture {
        let spec = InstanceSpec {
            family: Family::E3,
            n: 6,
            view: ViewKind::AdHoc,
            seed: 11,
        };
        let receiver = spec.build().receiver();
        let mut genome = AttackGenome::bare(Behaviour::Pka(PkaAttack::Silent));
        genome.suppression = Some(MessageAdversary::focused(1, NodeSet::singleton(receiver)));
        Fixture {
            name: "stall_suppress_receiver".to_string(),
            spec,
            input: 7,
            genome,
            verdict: Verdict::Stalled,
        }
    }

    #[test]
    fn fixtures_round_trip_through_json() {
        let f = fixture();
        let back = Fixture::from_json_str(&f.to_json().encode()).unwrap();
        assert_eq!(back.name, f.name);
        assert_eq!(back.spec, f.spec);
        assert_eq!(back.input, f.input);
        assert_eq!(back.genome, f.genome);
        assert_eq!(back.verdict, f.verdict);
    }

    #[test]
    fn unknown_schema_versions_are_rejected() {
        let mut text = fixture().to_json().encode();
        text = text.replacen("\"schema\":1", "\"schema\":99", 1);
        let err = Fixture::from_json_str(&text).unwrap_err();
        assert!(err.field.contains("schema"), "got {err}");
    }

    #[test]
    fn save_load_replay_round_trips() {
        let dir = std::env::temp_dir().join(format!("rmt_hunt_corpus_{}", std::process::id()));
        let f = fixture();
        f.save(&dir).unwrap();
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].genome, f.genome);
        assert_eq!(loaded[0].replay().verdict, f.verdict);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Every malformed-fixture shape a committed corpus can realistically
    /// hit loads as a *descriptive error*, never a panic, and the error
    /// names the file so a broken corpus entry identifies itself.
    #[test]
    fn malformed_fixtures_load_as_descriptive_errors() {
        let dir = std::env::temp_dir().join(format!("rmt_hunt_badcorpus_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let valid = fixture().to_json().encode();
        let truncated = &valid[..valid.len() / 2];
        let cases: &[(&str, Vec<u8>, &str)] = &[
            ("empty.json", b"".to_vec(), "empty file"),
            ("garbage.json", b"not json at all".to_vec(), "invalid JSON"),
            (
                "truncated.json",
                truncated.as_bytes().to_vec(),
                "invalid JSON",
            ),
            ("binary.json", vec![0xFF, 0xFE, 0x00, 0x80], "not UTF-8"),
            ("toplevel.json", b"[1,2,3]".to_vec(), "top level"),
            (
                "drifted.json",
                valid
                    .replacen("\"schema\":1", "\"schema\":2", 1)
                    .into_bytes(),
                "unsupported corpus schema 2",
            ),
            (
                "missing_genome.json",
                valid.replacen("\"genome\"", "\"gnome\"", 1).into_bytes(),
                "genome",
            ),
            (
                "bad_verdict.json",
                valid.replacen("\"stalled\"", "\"maybe\"", 1).into_bytes(),
                "verdict",
            ),
        ];
        for (file, bytes, expect) in cases {
            let path = dir.join(file);
            fs::write(&path, bytes).unwrap();
            let err = Fixture::load(&path).unwrap_err();
            assert!(
                err.contains(expect),
                "{file}: error {err:?} should mention {expect:?}"
            );
            assert!(
                err.contains(file),
                "{file}: error {err:?} should name the file"
            );
            // One malformed fixture poisons the whole directory load, too —
            // silently skipping it would un-guard a regression.
            assert!(load_dir(&dir).is_err());
            fs::remove_file(&path).unwrap();
        }
        // With the bad files gone the directory is loadable again.
        assert!(load_dir(&dir).unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    /// A name that is not a plain file stem is rejected before `save` could
    /// ever join it onto the corpus directory.
    #[test]
    fn path_escaping_names_are_rejected() {
        for bad in ["../escape", "a/b", "", "nul\0byte"] {
            let mut f = fixture();
            f.name = bad.to_string();
            let err = Fixture::from_json_str(&f.to_json().encode()).unwrap_err();
            assert!(err.field.contains("name"), "{bad:?}: got {err}");
        }
    }

    #[test]
    fn missing_corpus_directory_is_empty() {
        assert!(load_dir(Path::new("/nonexistent/rmt/corpus"))
            .unwrap()
            .is_empty());
    }
}
