//! The attack genome: a serializable, mutable, shrinkable attack recipe.
//!
//! One genome composes everything an adversary controls in a run: a
//! Byzantine behaviour template (one of `rmt-core`'s named attacks driven
//! through `sim::adversary`), which admissible corruption set executes it,
//! a probabilistic [`FaultPlan`], and an optional budgeted
//! [`MessageAdversary`]. The hunter explores this space by seeded
//! *mutation* and reduces found violations by proptest-style *shrinking*:
//! repeatedly trying strictly simpler genomes (by [`AttackGenome::
//! complexity`]) and keeping any that still reproduce the violation, so
//! every corpus fixture is a local minimum — remove anything else and the
//! attack stops working.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;
use rmt_core::protocols::attacks::{PkaAttack, ZcpaAttack, PKA_ATTACKS, ZCPA_ATTACKS};
use rmt_core::Instance;
use rmt_net::codec::{field, u64_from_json, u64_to_json};
use rmt_net::{FaultPlan, LinkPolicy, MessageAdversary, Partition, PlanError};
use rmt_obs::Json;
use rmt_sets::{NodeId, NodeSet};

/// The Byzantine behaviour template, tagged by protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Behaviour {
    /// An RMT-PKA attack from `rmt-core`'s named catalogue.
    Pka(PkaAttack),
    /// A Z-CPA attack.
    Zcpa(ZcpaAttack),
}

impl Behaviour {
    /// The protocol this behaviour targets.
    pub fn protocol(&self) -> &'static str {
        match self {
            Behaviour::Pka(_) => "rmt-pka",
            Behaviour::Zcpa(_) => "z-cpa",
        }
    }

    /// `true` for the omission (do-nothing) attacks.
    pub fn is_silent(&self) -> bool {
        matches!(
            self,
            Behaviour::Pka(PkaAttack::Silent) | Behaviour::Zcpa(ZcpaAttack::Silent)
        )
    }

    /// The omission attack of the same protocol (the simplest behaviour,
    /// used as a shrink target).
    pub fn silenced(&self) -> Behaviour {
        match self {
            Behaviour::Pka(_) => Behaviour::Pka(PkaAttack::Silent),
            Behaviour::Zcpa(_) => Behaviour::Zcpa(ZcpaAttack::Silent),
        }
    }

    /// The next behaviour in the protocol's attack catalogue (cyclic).
    pub fn cycled(&self) -> Behaviour {
        match self {
            Behaviour::Pka(a) => {
                let i = PKA_ATTACKS.iter().position(|x| x == a).unwrap_or(0);
                Behaviour::Pka(PKA_ATTACKS[(i + 1) % PKA_ATTACKS.len()])
            }
            Behaviour::Zcpa(a) => {
                let i = ZCPA_ATTACKS.iter().position(|x| x == a).unwrap_or(0);
                Behaviour::Zcpa(ZCPA_ATTACKS[(i + 1) % ZCPA_ATTACKS.len()])
            }
        }
    }

    /// Serializes the behaviour.
    pub fn to_json(&self) -> Json {
        let attack = match self {
            Behaviour::Pka(a) => a.to_string(),
            Behaviour::Zcpa(a) => a.to_string(),
        };
        Json::obj([
            ("protocol", Json::Str(self.protocol().to_string())),
            ("attack", Json::Str(attack)),
        ])
    }

    /// Decodes a behaviour; `at` prefixes error paths.
    pub fn from_json(v: &Json, at: &str) -> Result<Self, PlanError> {
        let protocol_at = format!("{at}protocol");
        let protocol = field(v, "protocol", at)?
            .as_str()
            .ok_or_else(|| PlanError::new(&protocol_at, "expected a string"))?;
        let attack_at = format!("{at}attack");
        let attack = field(v, "attack", at)?
            .as_str()
            .ok_or_else(|| PlanError::new(&attack_at, "expected a string"))?;
        match protocol {
            "rmt-pka" => PKA_ATTACKS
                .iter()
                .find(|a| a.to_string() == attack)
                .map(|&a| Behaviour::Pka(a))
                .ok_or_else(|| {
                    PlanError::new(&attack_at, format!("unknown rmt-pka attack {attack:?}"))
                }),
            "z-cpa" => ZCPA_ATTACKS
                .iter()
                .find(|a| a.to_string() == attack)
                .map(|&a| Behaviour::Zcpa(a))
                .ok_or_else(|| {
                    PlanError::new(&attack_at, format!("unknown z-cpa attack {attack:?}"))
                }),
            _ => Err(PlanError::new(
                &protocol_at,
                format!("unknown protocol {protocol:?}"),
            )),
        }
    }
}

/// One complete attack recipe against a fixed instance.
#[derive(Clone, Debug, PartialEq)]
pub struct AttackGenome {
    /// The Byzantine behaviour template.
    pub behaviour: Behaviour,
    /// Which admissible corruption set executes it: an index into
    /// `Instance::worst_case_corruptions()` (mod its length).
    pub corruption_index: u32,
    /// Seed for randomized Byzantine strategies.
    pub attack_seed: u64,
    /// The probabilistic fault schedule.
    pub plan: FaultPlan,
    /// The budgeted message adversary, if any.
    pub suppression: Option<MessageAdversary>,
}

impl AttackGenome {
    /// The plainest genome: a behaviour on a transparent network.
    pub fn bare(behaviour: Behaviour) -> Self {
        AttackGenome {
            behaviour,
            corruption_index: 0,
            attack_seed: 0,
            plan: FaultPlan::new(0),
            suppression: None,
        }
    }

    /// Resolves the corruption set against `inst` (empty if the structure
    /// admits no corruption away from the endpoints).
    pub fn corruption(&self, inst: &Instance) -> NodeSet {
        let sets = inst.worst_case_corruptions();
        if sets.is_empty() {
            return NodeSet::new();
        }
        sets[self.corruption_index as usize % sets.len()].clone()
    }

    /// A coarse size measure driving the shrinker: strictly smaller means
    /// strictly simpler, and the empty-handed genome (silent behaviour,
    /// transparent plan, no suppression) scores 0.
    pub fn complexity(&self) -> u64 {
        fn policy_weight(p: &LinkPolicy) -> u64 {
            u64::from(p.drop > 0.0) * 2
                + u64::from(p.delay > 0.0 && p.max_delay > 0) * 2
                + u64::from(p.duplicate > 0.0)
                + u64::from(p.reorder)
        }
        let mut c = 0u64;
        if !self.behaviour.is_silent() {
            c += 2;
        }
        if self.attack_seed != 0 {
            c += 1;
        }
        if self.corruption_index != 0 {
            c += 1;
        }
        c += policy_weight(self.plan.default_policy());
        c += self
            .plan
            .link_overrides()
            .iter()
            .map(|(_, p)| 1 + policy_weight(p))
            .sum::<u64>();
        c += 2 * self.plan.crash_schedule().len() as u64;
        c += 3 * self.plan.partitions().len() as u64;
        if let Some(s) = &self.suppression {
            c += 2 + u64::from(s.budget()) + s.focus().len() as u64 + u64::from(s.spill());
        }
        c
    }

    /// A seeded random variant: one (occasionally two) of the mutation
    /// operators below, resolved against `inst` for node choices. Pure in
    /// `(self, rng state, inst)`.
    pub fn mutate(&self, rng: &mut ChaCha12Rng, inst: &Instance) -> AttackGenome {
        let mut next = self.clone();
        let ops = 1 + usize::from(rng.random_bool(0.3));
        for _ in 0..ops {
            next = next.mutate_once(rng, inst);
        }
        next
    }

    fn mutate_once(&self, rng: &mut ChaCha12Rng, inst: &Instance) -> AttackGenome {
        let mut next = self.clone();
        // Relay nodes (neither dealer nor receiver) for crashes/partitions:
        // killing an endpoint trivially breaks liveness and teaches nothing.
        let relays: Vec<NodeId> = inst
            .graph()
            .nodes()
            .iter()
            .filter(|&v| v != inst.dealer() && v != inst.receiver())
            .collect();
        match rng.random_range(0u32..13) {
            0 => next.behaviour = next.behaviour.cycled(),
            1 => next.corruption_index = rng.random_range(0u32..4),
            2 => next.attack_seed = rng.next_u64(),
            3 => next.plan = next.plan.with_seed(rng.next_u64()),
            4 => {
                let drop = [0.0, 0.1, 0.3, 0.6, 1.0][rng.random_range(0usize..5)];
                let p = LinkPolicy {
                    drop,
                    ..*next.plan.default_policy()
                };
                next.plan = next.plan.with_default_policy(p);
            }
            5 => {
                let delay = [0.0, 0.3, 0.7, 1.0][rng.random_range(0usize..4)];
                let max_delay = rng.random_range(1u32..=3);
                let p = LinkPolicy {
                    delay,
                    max_delay,
                    ..*next.plan.default_policy()
                };
                next.plan = next.plan.with_default_policy(p);
            }
            6 => {
                let p = LinkPolicy {
                    duplicate: if next.plan.default_policy().duplicate > 0.0 {
                        0.0
                    } else {
                        0.25
                    },
                    ..*next.plan.default_policy()
                };
                next.plan = next.plan.with_default_policy(p);
            }
            7 => {
                let p = LinkPolicy {
                    reorder: !next.plan.default_policy().reorder,
                    ..*next.plan.default_policy()
                };
                next.plan = next.plan.with_default_policy(p);
            }
            8 => {
                // Sever one directed edge outright.
                let edges: Vec<(NodeId, NodeId)> = inst
                    .graph()
                    .nodes()
                    .iter()
                    .flat_map(|u| inst.graph().neighbors(u).iter().map(move |w| (u, w)))
                    .collect();
                if !edges.is_empty() {
                    let (u, w) = edges[rng.random_range(0usize..edges.len())];
                    next.plan = next.plan.with_link(
                        u,
                        w,
                        LinkPolicy {
                            drop: 1.0,
                            ..LinkPolicy::default()
                        },
                    );
                }
            }
            9 => {
                if !relays.is_empty() {
                    let v = relays[rng.random_range(0usize..relays.len())];
                    next.plan = next.plan.with_crash(v, rng.random_range(0u32..4));
                }
            }
            10 => {
                if !relays.is_empty() {
                    let v = relays[rng.random_range(0usize..relays.len())];
                    let from_round = rng.random_range(0u32..3);
                    next.plan = next.plan.with_partition(Partition {
                        from_round,
                        to_round: from_round + rng.random_range(0u32..4),
                        side: NodeSet::singleton(v),
                    });
                }
            }
            11 => {
                next.suppression = Some(match next.suppression.take() {
                    None => MessageAdversary::focused(
                        rng.random_range(1u32..=3),
                        NodeSet::singleton(inst.receiver()),
                    ),
                    Some(s) => {
                        let b = s.budget();
                        s.with_budget(if rng.random_bool(0.5) {
                            b + 1
                        } else {
                            b.saturating_sub(1)
                        })
                    }
                });
            }
            _ => match next.suppression.take() {
                None => {
                    next.suppression = Some(
                        MessageAdversary::new(rng.random_range(1u32..=2))
                            .with_window(0, rng.random_range(2u32..8)),
                    );
                }
                Some(s) => {
                    // Toggle spill, grow the focus, or drop the suppressor.
                    next.suppression = match rng.random_range(0u32..3) {
                        0 => Some(s.clone().with_spill(!s.spill())),
                        1 => {
                            let mut focus = s.focus().clone();
                            if let Some(extra) = relays
                                .get(
                                    rng.random_range(0usize..relays.len().max(1))
                                        % relays.len().max(1),
                                )
                                .copied()
                                .filter(|_| !relays.is_empty())
                            {
                                focus.insert(extra);
                            }
                            Some(s.with_focus(focus))
                        }
                        _ => None,
                    };
                }
            },
        }
        next
    }

    /// Strictly simpler variants to try while a violation still reproduces,
    /// roughly ordered most-aggressive first (the shrinker takes the first
    /// candidate that keeps the verdict, then starts over).
    pub fn shrink_candidates(&self) -> Vec<AttackGenome> {
        let mut out = Vec::new();
        let mut push = |g: AttackGenome| {
            if g.complexity() < self.complexity() {
                out.push(g);
            }
        };

        if !self.behaviour.is_silent() {
            let mut g = self.clone();
            g.behaviour = g.behaviour.silenced();
            push(g);
        }
        if self.suppression.is_some() {
            let mut g = self.clone();
            g.suppression = None;
            push(g);
        }
        if !self.plan.link_overrides().is_empty() {
            let mut g = self.clone();
            g.plan = rebuild_plan(&self.plan, RebuildDrop::Links);
            push(g);
        }
        if !self.plan.default_policy().is_transparent() {
            let mut g = self.clone();
            g.plan = self
                .plan
                .clone()
                .with_default_policy(LinkPolicy::transparent());
            push(g);
        }
        if !self.plan.crash_schedule().is_empty() {
            let mut g = self.clone();
            g.plan = rebuild_plan(&self.plan, RebuildDrop::Crashes);
            push(g);
        }
        if !self.plan.partitions().is_empty() {
            let mut g = self.clone();
            g.plan = rebuild_plan(&self.plan, RebuildDrop::Partitions);
            push(g);
        }
        if let Some(s) = &self.suppression {
            if s.budget() > 1 {
                let mut g = self.clone();
                g.suppression = Some(s.clone().with_budget(s.budget() - 1));
                push(g);
            }
            if s.spill() {
                let mut g = self.clone();
                g.suppression = Some(s.clone().with_spill(false));
                push(g);
            }
            if s.focus().len() > 1 {
                let mut g = self.clone();
                let mut focus = s.focus().clone();
                if let Some(first) = focus.iter().next() {
                    focus.remove(first);
                }
                g.suppression = Some(s.clone().with_focus(focus));
                push(g);
            }
        }
        if self.attack_seed != 0 {
            let mut g = self.clone();
            g.attack_seed = 0;
            push(g);
        }
        if self.corruption_index != 0 {
            let mut g = self.clone();
            g.corruption_index = 0;
            push(g);
        }
        out
    }

    /// Serializes the genome.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("behaviour", self.behaviour.to_json()),
            (
                "corruption_index",
                Json::Int(i64::from(self.corruption_index)),
            ),
            ("attack_seed", u64_to_json(self.attack_seed)),
            ("plan", self.plan.to_json()),
            (
                "suppression",
                self.suppression
                    .as_ref()
                    .map_or(Json::Null, MessageAdversary::to_json),
            ),
        ])
    }

    /// Decodes and validates a genome.
    pub fn from_json(v: &Json) -> Result<Self, PlanError> {
        if !matches!(v, Json::Obj(_)) {
            return Err(PlanError::new("genome", "expected an object"));
        }
        let behaviour = Behaviour::from_json(field(v, "behaviour", "")?, "behaviour.")?;
        let corruption_index = match v.get("corruption_index") {
            None => 0,
            Some(Json::Int(n)) if *n >= 0 => *n as u32,
            Some(_) => {
                return Err(PlanError::new(
                    "corruption_index",
                    "expected a non-negative integer",
                ))
            }
        };
        let attack_seed = v
            .get("attack_seed")
            .map_or(Ok(0), |s| u64_from_json(s, "attack_seed"))?;
        let plan = FaultPlan::from_json(field(v, "plan", "")?)?;
        let suppression = match v.get("suppression") {
            None | Some(Json::Null) => None,
            Some(s) => Some(MessageAdversary::from_json(s, "suppression.")?),
        };
        Ok(AttackGenome {
            behaviour,
            corruption_index,
            attack_seed,
            plan,
            suppression,
        })
    }
}

enum RebuildDrop {
    Links,
    Crashes,
    Partitions,
}

/// Rebuilds a plan minus one fault class (FaultPlan has no removers: its
/// combinators only add, which keeps the type honest for users — the
/// shrinker reconstructs instead).
fn rebuild_plan(plan: &FaultPlan, drop: RebuildDrop) -> FaultPlan {
    let mut out = FaultPlan::new(plan.seed()).with_default_policy(*plan.default_policy());
    if !matches!(drop, RebuildDrop::Links) {
        for ((f, t), p) in plan.link_overrides() {
            out = out.with_link(f, t, p);
        }
    }
    if !matches!(drop, RebuildDrop::Crashes) {
        for (v, r) in plan.crash_schedule() {
            out = out.with_crash(v, r);
        }
    }
    if !matches!(drop, RebuildDrop::Partitions) {
        for p in plan.partitions() {
            out = out.with_partition(p.clone());
        }
    }
    out
}

/// Builds the deterministic mutation RNG for `(hunt_seed, candidate index)`.
pub fn mutation_rng(hunt_seed: u64, index: u64) -> ChaCha12Rng {
    ChaCha12Rng::seed_from_u64(hunt_seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Family, InstanceSpec};
    use rmt_graph::ViewKind;

    fn genome() -> AttackGenome {
        AttackGenome {
            behaviour: Behaviour::Pka(PkaAttack::ForgeTrails),
            corruption_index: 2,
            attack_seed: 0xA77AC4,
            plan: FaultPlan::new(5)
                .with_default_policy(LinkPolicy {
                    drop: 0.3,
                    ..LinkPolicy::default()
                })
                .with_crash(2.into(), 1),
            suppression: Some(MessageAdversary::focused(2, NodeSet::singleton(5.into()))),
        }
    }

    #[test]
    fn genomes_round_trip_through_json() {
        let g = genome();
        let back = AttackGenome::from_json(&Json::parse(&g.to_json().encode()).unwrap()).unwrap();
        assert_eq!(back, g);
        let bare = AttackGenome::bare(Behaviour::Zcpa(ZcpaAttack::Equivocate));
        let back =
            AttackGenome::from_json(&Json::parse(&bare.to_json().encode()).unwrap()).unwrap();
        assert_eq!(back, bare);
    }

    #[test]
    fn complexity_is_zero_only_for_the_empty_handed_genome() {
        let mut bare = AttackGenome::bare(Behaviour::Pka(PkaAttack::Silent));
        assert_eq!(bare.complexity(), 0);
        assert!(genome().complexity() > 0);
        bare.suppression = Some(MessageAdversary::new(1));
        assert!(bare.complexity() > 0);
    }

    #[test]
    fn shrink_candidates_are_strictly_simpler() {
        let g = genome();
        let candidates = g.shrink_candidates();
        assert!(!candidates.is_empty());
        for c in &candidates {
            assert!(c.complexity() < g.complexity());
        }
        // The empty-handed genome has nowhere left to go.
        assert!(AttackGenome::bare(Behaviour::Pka(PkaAttack::Silent))
            .shrink_candidates()
            .is_empty());
    }

    #[test]
    fn mutation_is_deterministic_in_the_seed() {
        let inst = InstanceSpec {
            family: Family::E3,
            n: 6,
            view: ViewKind::AdHoc,
            seed: 3,
        }
        .build();
        let g = genome();
        let run = || {
            let mut rng = mutation_rng(0xDEED, 4);
            (0..10)
                .map(|_| g.mutate(&mut rng, &inst))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn behaviour_cycling_stays_in_protocol() {
        let mut b = Behaviour::Pka(PkaAttack::Silent);
        for _ in 0..PKA_ATTACKS.len() {
            b = b.cycled();
            assert_eq!(b.protocol(), "rmt-pka");
        }
        assert_eq!(b, Behaviour::Pka(PkaAttack::Silent));
        assert_eq!(
            Behaviour::Zcpa(ZcpaAttack::Equivocate).cycled(),
            Behaviour::Zcpa(ZcpaAttack::Silent)
        );
    }
}
