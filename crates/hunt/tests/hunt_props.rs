//! Property tests for the attack-synthesis machinery.
//!
//! The hunt's guarantees are all determinism-shaped, so the properties are
//! too: arbitrary mutation chains stay serializable, shrinking is strictly
//! monotone, and re-running anything with the same seeds reproduces it.

use proptest::prelude::*;
use rmt_core::protocols::attacks::{PkaAttack, ZcpaAttack};
use rmt_graph::ViewKind;
use rmt_hunt::{execute, mutation_rng, AttackGenome, Behaviour, Family, InstanceSpec};
use rmt_obs::Json;

fn arb_spec() -> impl Strategy<Value = InstanceSpec> {
    (0u32..2, 5usize..9, 0usize..5, any::<u64>()).prop_map(|(fam, n, view, seed)| InstanceSpec {
        family: if fam == 0 { Family::E2 } else { Family::E3 },
        n,
        view: match view {
            0 => ViewKind::Full,
            1 => ViewKind::AdHoc,
            k => ViewKind::Radius(k - 1),
        },
        seed,
    })
}

fn arb_behaviour() -> impl Strategy<Value = Behaviour> {
    (0u32..5).prop_map(|i| match i {
        0 => Behaviour::Pka(PkaAttack::Silent),
        1 => Behaviour::Pka(PkaAttack::FlipValue),
        2 => Behaviour::Pka(PkaAttack::ForgeTrails),
        3 => Behaviour::Zcpa(ZcpaAttack::Silent),
        _ => Behaviour::Zcpa(ZcpaAttack::Equivocate),
    })
}

/// A genome grown by a random mutation chain from a bare start — the same
/// distribution the hunter actually explores.
fn mutated_genome(
    spec: &InstanceSpec,
    behaviour: Behaviour,
    seed: u64,
    steps: u64,
) -> AttackGenome {
    let inst = spec.build();
    let mut genome = AttackGenome::bare(behaviour);
    for i in 0..steps {
        let mut rng = mutation_rng(seed, i);
        genome = genome.mutate(&mut rng, &inst);
    }
    genome
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every genome the mutator can reach serializes and decodes back to
    /// itself — the corpus can hold anything the hunt finds.
    #[test]
    fn mutated_genomes_round_trip_through_json(
        spec in arb_spec(),
        behaviour in arb_behaviour(),
        seed in any::<u64>(),
        steps in 0u64..12,
    ) {
        let genome = mutated_genome(&spec, behaviour, seed, steps);
        let text = genome.to_json().encode();
        let back = AttackGenome::from_json(&Json::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(&back, &genome);
        // Canonical encoding: decode → encode is a fixpoint.
        prop_assert_eq!(back.to_json().encode(), text);
    }

    /// Shrink candidates are strictly simpler than their parent, so the
    /// greedy shrink loop terminates from any starting genome.
    #[test]
    fn shrinking_strictly_decreases_complexity(
        spec in arb_spec(),
        behaviour in arb_behaviour(),
        seed in any::<u64>(),
        steps in 0u64..12,
    ) {
        let genome = mutated_genome(&spec, behaviour, seed, steps);
        let c = genome.complexity();
        for candidate in genome.shrink_candidates() {
            prop_assert!(candidate.complexity() < c);
        }
        // And the chain bottoms out: repeatedly taking the first candidate
        // reaches a genome with no candidates in ≤ c steps.
        let mut cur = genome;
        let mut hops = 0u64;
        while let Some(next) = cur.shrink_candidates().into_iter().next() {
            cur = next;
            hops += 1;
            prop_assert!(hops <= c, "shrink chain exceeded complexity bound");
        }
    }

    /// Mutation is a pure function of (parent, seed, instance): replaying
    /// the same chain reproduces the same genome.
    #[test]
    fn mutation_chains_replay_identically(
        spec in arb_spec(),
        behaviour in arb_behaviour(),
        seed in any::<u64>(),
        steps in 1u64..10,
    ) {
        let a = mutated_genome(&spec, behaviour, seed, steps);
        let b = mutated_genome(&spec, behaviour, seed, steps);
        prop_assert_eq!(a, b);
    }
}

proptest! {
    // Execution involves full protocol runs; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Executing a genome twice yields identical verdicts, fault accounts
    /// and coverage signatures — candidate evaluation is replayable.
    #[test]
    fn execution_is_deterministic(
        spec in arb_spec(),
        behaviour in arb_behaviour(),
        seed in any::<u64>(),
        steps in 0u64..6,
    ) {
        let genome = mutated_genome(&spec, behaviour, seed, steps);
        let inst = spec.build();
        let a = execute(&inst, 7, &genome);
        let b = execute(&inst, 7, &genome);
        prop_assert_eq!(a.verdict, b.verdict);
        prop_assert_eq!(a.rounds, b.rounds);
        prop_assert_eq!(a.faults, b.faults);
        prop_assert_eq!(a.signature, b.signature);
        prop_assert_eq!(a.termination, b.termination);
    }
}
