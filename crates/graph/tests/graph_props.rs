//! Property tests for graph invariants: components partition the node set,
//! cuts separate, Menger duality, and view/joint-view laws.

use proptest::prelude::*;
use rmt_graph::{cuts, generators, paths, traversal, Graph, ViewAssignment, ViewKind};
use rmt_sets::{NodeId, NodeSet};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..10, 0.0f64..1.0, any::<u64>())
        .prop_map(|(n, p, seed)| generators::gnp(n, p, &mut generators::seeded(seed)))
}

fn arb_connected() -> impl Strategy<Value = Graph> {
    (2usize..10, 0.0f64..0.6, any::<u64>())
        .prop_map(|(n, p, seed)| generators::gnp_connected(n, p, &mut generators::seeded(seed)))
}

proptest! {
    #[test]
    fn components_partition_nodes(g in arb_graph()) {
        let comps = traversal::components(&g);
        let mut union = NodeSet::new();
        for c in &comps {
            prop_assert!(!c.is_empty());
            prop_assert!(union.is_disjoint(c));
            union.union_with(c);
        }
        prop_assert_eq!(&union, g.nodes());
        // No edges across components.
        for (u, v) in g.edges() {
            prop_assert!(comps.iter().any(|c| c.contains(u) && c.contains(v)));
        }
    }

    #[test]
    fn menger_duality(g in arb_connected()) {
        let d = NodeId::new(0);
        let r = g.nodes().last().unwrap();
        if d != r && !g.has_edge(d, r) {
            let k = cuts::vertex_connectivity(&g, d, r).unwrap();
            let cut = cuts::min_vertex_cut(&g, d, r).unwrap();
            prop_assert_eq!(cut.len(), k);
            if k > 0 {
                prop_assert!(cuts::is_dr_cut(&g, d, r, &cut));
            }
            // No smaller subset separates: every (k-1)-subset of any minimal
            // cut fails. (Checked via the enumeration on these small graphs.)
            for c in cuts::minimal_dr_cuts(&g, d, r) {
                prop_assert!(c.len() >= k);
            }
            // Path count lower-bounds: there are at least k vertex-disjoint
            // paths, so at least k simple paths.
            if k > 0 {
                let n_paths = paths::count_simple_paths(&g, d, r, 100_000).unwrap();
                prop_assert!(n_paths >= k);
            }
        }
    }

    #[test]
    fn enumerated_paths_are_valid_and_distinct(g in arb_connected()) {
        let d = NodeId::new(0);
        let r = g.nodes().last().unwrap();
        if d != r {
            let ps = paths::simple_paths(&g, d, r, 100_000).unwrap();
            let mut seen = std::collections::HashSet::new();
            for p in &ps {
                prop_assert!(paths::is_simple_path(&g, p));
                prop_assert_eq!(p.first(), Some(&d));
                prop_assert_eq!(p.last(), Some(&r));
                prop_assert!(seen.insert(p.clone()));
            }
        }
    }

    #[test]
    fn induced_then_union_recovers_subgraphs(g in arb_graph(), mask_seed in any::<u64>()) {
        let mut rng = generators::seeded(mask_seed);
        use rand::Rng as _;
        let keep: NodeSet = g.nodes().iter().filter(|_| rng.random_bool(0.5)).collect();
        let a = g.induced(&keep);
        let b = g.induced(&g.nodes().difference(&keep));
        let u = a.union(&b);
        prop_assert_eq!(u.nodes(), g.nodes());
        // The union lacks exactly the crossing edges.
        prop_assert!(u.edge_count() <= g.edge_count());
        for (x, y) in u.edges() {
            prop_assert!(g.has_edge(x, y));
        }
    }

    #[test]
    fn joint_view_covers_individual_views(g in arb_connected()) {
        let gamma = ViewAssignment::uniform(&g, ViewKind::AdHoc);
        let joint = gamma.joint_view(g.nodes());
        // Joint over all nodes reconstructs the whole graph in the ad hoc model.
        prop_assert_eq!(joint.nodes(), g.nodes());
        prop_assert_eq!(joint.edge_count(), g.edge_count());
        // Radius views grow monotonically with k.
        for v in g.nodes() {
            let v1 = ViewKind::Radius(1).view_of(&g, v);
            let v2 = ViewKind::Radius(2).view_of(&g, v);
            prop_assert!(v1.nodes().is_subset(v2.nodes()));
        }
    }

    #[test]
    fn ball_matches_bfs_distances(g in arb_graph(), k in 0usize..4) {
        for v in g.nodes() {
            let ball = traversal::ball(&g, v, k);
            let dist = traversal::distances(&g, v);
            for u in g.nodes() {
                let within = dist[u.index()].is_some_and(|d| d as usize <= k);
                prop_assert_eq!(ball.contains(u), within);
            }
        }
    }
}
