//! Breadth-first traversal, reachability and connected components.

use std::collections::VecDeque;

use rmt_sets::{NodeId, NodeSet};

use crate::graph::Graph;

/// The set of nodes reachable from `start` without entering `blocked`.
///
/// `start` itself is included (if present and not blocked). This is the
/// primitive behind every cut predicate: `C` separates D from R iff R is not
/// in `reachable_avoiding(g, D, C)`.
pub fn reachable_avoiding(g: &Graph, start: NodeId, blocked: &NodeSet) -> NodeSet {
    let mut seen = NodeSet::new();
    if !g.contains_node(start) || blocked.contains(start) {
        return seen;
    }
    let mut queue = VecDeque::new();
    seen.insert(start);
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        for u in g.neighbors(v) {
            if !seen.contains(u) && !blocked.contains(u) {
                seen.insert(u);
                queue.push_back(u);
            }
        }
    }
    seen
}

/// The set of nodes reachable from `start`.
pub fn reachable(g: &Graph, start: NodeId) -> NodeSet {
    reachable_avoiding(g, start, &NodeSet::new())
}

/// The connected component containing `v` (empty if `v` is absent).
pub fn component_of(g: &Graph, v: NodeId) -> NodeSet {
    reachable(g, v)
}

/// The connected component of `v` in `G ∖ mask`, computed by masked BFS on
/// `g` itself — equivalent to `component_of(&g.without_nodes(mask), v)` but
/// without cloning the graph, which matters in the cut deciders where this
/// runs once per candidate cut.
///
/// Returns the empty set if `v` is masked or absent.
pub fn component_of_avoiding(g: &Graph, v: NodeId, mask: &NodeSet) -> NodeSet {
    reachable_avoiding(g, v, mask)
}

/// All connected components of `G ∖ mask`, ordered by their smallest node —
/// the masked, allocation-free equivalent of
/// `components(&g.without_nodes(mask))`.
pub fn components_avoiding(g: &Graph, mask: &NodeSet) -> Vec<NodeSet> {
    let mut remaining = g.nodes().difference(mask);
    let mut out = Vec::new();
    while let Some(v) = remaining.first() {
        let comp = component_of_avoiding(g, v, mask);
        remaining.difference_with(&comp);
        out.push(comp);
    }
    out
}

/// The open neighbourhood of a node set: `N(S) = (∪_{v∈S} N(v)) ∖ S`.
pub fn neighborhood(g: &Graph, s: &NodeSet) -> NodeSet {
    let mut out = NodeSet::new();
    for v in s {
        out.union_with(g.neighbors(v));
    }
    out.difference_with(s);
    out
}

/// Visits every **connected** subset of `allowed` (connectivity taken in the
/// subgraph induced on `allowed`) that contains `root`, each exactly once.
///
/// The enumeration is the classic include/exclude frontier recursion with
/// polynomial delay: from the current set `S`, each extension vertex `v`
/// (a neighbour of `S` inside `allowed` and not yet excluded) spawns one
/// branch on `S ∪ {v}` and is excluded from the following branches, so no
/// subset is ever produced twice. The order is deterministic: `{root}`
/// first, then depth-first by ascending extension vertex.
///
/// `f` returns `false` to stop the enumeration early; the function returns
/// `true` iff the enumeration ran to completion. If `root ∉ allowed`,
/// nothing is visited.
pub fn for_each_connected_subset<F>(g: &Graph, root: NodeId, allowed: &NodeSet, mut f: F) -> bool
where
    F: FnMut(&NodeSet) -> bool,
{
    if !allowed.contains(root) || !g.contains_node(root) {
        return true;
    }
    let mut current = NodeSet::singleton(root);
    if !f(&current) {
        return false;
    }
    // One explicit recursion frame per inclusion: the vertex chosen, the
    // exclusion set to restore, and the remaining extension choices.
    let mut ext0 = g.neighbors(root).intersection(allowed);
    ext0.remove(root);
    recurse(g, allowed, &mut current, ext0, &NodeSet::new(), &mut f)
}

/// One level of the include/exclude recursion: tries each extension vertex
/// in ascending order, recursing with it included and excluding it
/// afterwards. Returns `false` if `f` stopped the enumeration.
fn recurse<F>(
    g: &Graph,
    allowed: &NodeSet,
    current: &mut NodeSet,
    extensions: NodeSet,
    excluded: &NodeSet,
    f: &mut F,
) -> bool
where
    F: FnMut(&NodeSet) -> bool,
{
    let mut excluded = excluded.clone();
    for v in &extensions {
        current.insert(v);
        if !f(current) {
            return false;
        }
        // New frontier: v's neighbours inside `allowed`, minus what is
        // already in the set or excluded on this path.
        let mut next = extensions.union(&g.neighbors(v).intersection(allowed));
        next.difference_with(current);
        next.difference_with(&excluded);
        next.remove(v);
        if !recurse(g, allowed, current, next, &excluded, f) {
            return false;
        }
        current.remove(v);
        excluded.insert(v);
    }
    true
}

/// All connected components, ordered by their smallest node.
pub fn components(g: &Graph) -> Vec<NodeSet> {
    let mut remaining = g.nodes().clone();
    let mut out = Vec::new();
    while let Some(v) = remaining.first() {
        let comp = component_of(g, v);
        remaining.difference_with(&comp);
        out.push(comp);
    }
    out
}

/// `true` if the graph is connected (the empty graph counts as connected).
pub fn is_connected(g: &Graph) -> bool {
    match g.nodes().first() {
        None => true,
        Some(v) => component_of(g, v) == *g.nodes(),
    }
}

/// `true` if `u` and `v` are connected without entering `blocked`.
pub fn connected_avoiding(g: &Graph, u: NodeId, v: NodeId, blocked: &NodeSet) -> bool {
    reachable_avoiding(g, u, blocked).contains(v)
}

/// BFS distances from `start`; `None` for unreachable or absent nodes.
///
/// The returned vector is indexed by [`NodeId::index`] and sized to the
/// largest present id + 1.
pub fn distances(g: &Graph, start: NodeId) -> Vec<Option<u32>> {
    let size = g.nodes().last().map_or(0, |v| v.index() + 1);
    let mut dist = vec![None; size];
    if !g.contains_node(start) {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[start.index()] = Some(0);
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()].expect("queued nodes have distances");
        for u in g.neighbors(v) {
            if dist[u.index()].is_none() {
                dist[u.index()] = Some(d + 1);
                queue.push_back(u);
            }
        }
    }
    dist
}

/// The ball of radius `k` around `v`: nodes at BFS distance ≤ `k`.
pub fn ball(g: &Graph, v: NodeId, k: usize) -> NodeSet {
    let mut frontier = NodeSet::singleton(v);
    let mut seen = frontier.clone();
    if !g.contains_node(v) {
        return NodeSet::new();
    }
    for _ in 0..k {
        let mut next = NodeSet::new();
        for u in &frontier {
            next.union_with(g.neighbors(u));
        }
        next.difference_with(&seen);
        if next.is_empty() {
            break;
        }
        seen.union_with(&next);
        frontier = next;
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn set(ids: &[u32]) -> NodeSet {
        ids.iter().copied().collect()
    }

    #[test]
    fn reachability_respects_blocked_set() {
        let g = generators::path_graph(5); // 0-1-2-3-4
        assert_eq!(reachable(&g, 0.into()), NodeSet::universe(5));
        let r = reachable_avoiding(&g, 0.into(), &set(&[2]));
        assert_eq!(r, set(&[0, 1]));
        assert!(reachable_avoiding(&g, 0.into(), &set(&[0])).is_empty());
    }

    #[test]
    fn components_partition_the_nodes() {
        let mut g = generators::path_graph(3);
        g.add_edge(10.into(), 11.into());
        g.add_node(20.into());
        let comps = components(&g);
        assert_eq!(comps.len(), 3);
        let mut union = NodeSet::new();
        for c in &comps {
            assert!(union.is_disjoint(c));
            union.union_with(c);
        }
        assert_eq!(&union, g.nodes());
    }

    #[test]
    fn connectivity_predicates() {
        let g = generators::cycle(6);
        assert!(is_connected(&g));
        assert!(connected_avoiding(&g, 0.into(), 3.into(), &set(&[1])));
        assert!(!connected_avoiding(&g, 0.into(), 3.into(), &set(&[1, 5])));
        assert!(is_connected(&Graph::new()));
    }

    #[test]
    fn bfs_distances_on_a_cycle() {
        let g = generators::cycle(6);
        let d = distances(&g, 0.into());
        assert_eq!(d[0], Some(0));
        assert_eq!(d[1], Some(1));
        assert_eq!(d[3], Some(3));
        assert_eq!(d[5], Some(1));
    }

    #[test]
    fn distances_mark_unreachable_nodes() {
        let mut g = generators::path_graph(2);
        g.add_node(4.into());
        let d = distances(&g, 0.into());
        assert_eq!(d[1], Some(1));
        assert_eq!(d[4], None);
    }

    #[test]
    fn masked_traversal_matches_graph_surgery() {
        let mut rng = generators::seeded(4242);
        for trial in 0..40 {
            let n = 4 + trial % 7;
            let g = generators::gnp(n, 0.3, &mut rng);
            let mask: NodeSet = g.nodes().iter().filter(|v| v.raw() % 3 == 1).collect();
            let without = g.without_nodes(&mask);
            assert_eq!(components_avoiding(&g, &mask), components(&without));
            for v in g.nodes().difference(&mask).iter() {
                assert_eq!(
                    component_of_avoiding(&g, v, &mask),
                    component_of(&without, v),
                    "trial {trial}, node {v}"
                );
            }
        }
    }

    #[test]
    fn masked_component_of_masked_node_is_empty() {
        let g = generators::path_graph(4);
        assert!(component_of_avoiding(&g, 1.into(), &set(&[1])).is_empty());
        assert!(component_of_avoiding(&g, 9.into(), &NodeSet::new()).is_empty());
    }

    #[test]
    fn neighborhood_is_open() {
        let g = generators::cycle(6);
        assert_eq!(neighborhood(&g, &set(&[0, 1])), set(&[2, 5]));
        assert_eq!(neighborhood(&g, &NodeSet::new()), NodeSet::new());
        assert_eq!(neighborhood(&g, g.nodes()), NodeSet::new());
    }

    /// Brute-force reference: all subsets of `allowed` containing `root`
    /// that induce a connected subgraph.
    fn brute_connected_subsets(g: &Graph, root: NodeId, allowed: &NodeSet) -> Vec<NodeSet> {
        allowed
            .subsets()
            .filter(|s| {
                s.contains(root) && reachable_avoiding(g, root, &g.nodes().difference(s)) == *s
            })
            .collect()
    }

    #[test]
    fn connected_subset_enumeration_is_exact_and_duplicate_free() {
        let mut rng = generators::seeded(515);
        for trial in 0..40 {
            let n = 4 + trial % 6;
            let g = generators::gnp(n, 0.35, &mut rng);
            let allowed: NodeSet = g.nodes().iter().filter(|v| v.raw() % 4 != 2).collect();
            let root = match allowed.first() {
                Some(v) => v,
                None => continue,
            };
            let mut seen = Vec::new();
            let completed = for_each_connected_subset(&g, root, &allowed, |s| {
                seen.push(s.clone());
                true
            });
            assert!(completed);
            let mut expected = brute_connected_subsets(&g, root, &allowed);
            let mut got = seen.clone();
            got.sort();
            expected.sort();
            assert_eq!(got, expected, "trial {trial}: {g:?}");
            got.dedup();
            assert_eq!(got.len(), seen.len(), "trial {trial}: duplicates");
        }
    }

    #[test]
    fn connected_subset_enumeration_stops_early_and_handles_absent_root() {
        let g = generators::cycle(8);
        let mut count = 0;
        let completed = for_each_connected_subset(&g, 0.into(), g.nodes(), |_| {
            count += 1;
            count < 5
        });
        assert!(!completed);
        assert_eq!(count, 5);
        // Root outside `allowed`: vacuously complete, nothing visited.
        assert!(for_each_connected_subset(
            &g,
            0.into(),
            &set(&[1, 2]),
            |_| { panic!("must not visit") }
        ));
    }

    #[test]
    fn balls_grow_with_radius() {
        let g = generators::path_graph(7);
        assert_eq!(ball(&g, 3.into(), 0), set(&[3]));
        assert_eq!(ball(&g, 3.into(), 1), set(&[2, 3, 4]));
        assert_eq!(ball(&g, 3.into(), 2), set(&[1, 2, 3, 4, 5]));
        assert_eq!(ball(&g, 3.into(), 99), NodeSet::universe(7));
    }

    use crate::graph::Graph;
}
