//! Breadth-first traversal, reachability and connected components.

use std::collections::VecDeque;

use rmt_sets::{NodeId, NodeSet};

use crate::graph::Graph;

/// The set of nodes reachable from `start` without entering `blocked`.
///
/// `start` itself is included (if present and not blocked). This is the
/// primitive behind every cut predicate: `C` separates D from R iff R is not
/// in `reachable_avoiding(g, D, C)`.
pub fn reachable_avoiding(g: &Graph, start: NodeId, blocked: &NodeSet) -> NodeSet {
    let mut seen = NodeSet::new();
    if !g.contains_node(start) || blocked.contains(start) {
        return seen;
    }
    let mut queue = VecDeque::new();
    seen.insert(start);
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        for u in g.neighbors(v) {
            if !seen.contains(u) && !blocked.contains(u) {
                seen.insert(u);
                queue.push_back(u);
            }
        }
    }
    seen
}

/// The set of nodes reachable from `start`.
pub fn reachable(g: &Graph, start: NodeId) -> NodeSet {
    reachable_avoiding(g, start, &NodeSet::new())
}

/// The connected component containing `v` (empty if `v` is absent).
pub fn component_of(g: &Graph, v: NodeId) -> NodeSet {
    reachable(g, v)
}

/// All connected components, ordered by their smallest node.
pub fn components(g: &Graph) -> Vec<NodeSet> {
    let mut remaining = g.nodes().clone();
    let mut out = Vec::new();
    while let Some(v) = remaining.first() {
        let comp = component_of(g, v);
        remaining.difference_with(&comp);
        out.push(comp);
    }
    out
}

/// `true` if the graph is connected (the empty graph counts as connected).
pub fn is_connected(g: &Graph) -> bool {
    match g.nodes().first() {
        None => true,
        Some(v) => component_of(g, v) == *g.nodes(),
    }
}

/// `true` if `u` and `v` are connected without entering `blocked`.
pub fn connected_avoiding(g: &Graph, u: NodeId, v: NodeId, blocked: &NodeSet) -> bool {
    reachable_avoiding(g, u, blocked).contains(v)
}

/// BFS distances from `start`; `None` for unreachable or absent nodes.
///
/// The returned vector is indexed by [`NodeId::index`] and sized to the
/// largest present id + 1.
pub fn distances(g: &Graph, start: NodeId) -> Vec<Option<u32>> {
    let size = g.nodes().last().map_or(0, |v| v.index() + 1);
    let mut dist = vec![None; size];
    if !g.contains_node(start) {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[start.index()] = Some(0);
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()].expect("queued nodes have distances");
        for u in g.neighbors(v) {
            if dist[u.index()].is_none() {
                dist[u.index()] = Some(d + 1);
                queue.push_back(u);
            }
        }
    }
    dist
}

/// The ball of radius `k` around `v`: nodes at BFS distance ≤ `k`.
pub fn ball(g: &Graph, v: NodeId, k: usize) -> NodeSet {
    let mut frontier = NodeSet::singleton(v);
    let mut seen = frontier.clone();
    if !g.contains_node(v) {
        return NodeSet::new();
    }
    for _ in 0..k {
        let mut next = NodeSet::new();
        for u in &frontier {
            next.union_with(g.neighbors(u));
        }
        next.difference_with(&seen);
        if next.is_empty() {
            break;
        }
        seen.union_with(&next);
        frontier = next;
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn set(ids: &[u32]) -> NodeSet {
        ids.iter().copied().collect()
    }

    #[test]
    fn reachability_respects_blocked_set() {
        let g = generators::path_graph(5); // 0-1-2-3-4
        assert_eq!(reachable(&g, 0.into()), NodeSet::universe(5));
        let r = reachable_avoiding(&g, 0.into(), &set(&[2]));
        assert_eq!(r, set(&[0, 1]));
        assert!(reachable_avoiding(&g, 0.into(), &set(&[0])).is_empty());
    }

    #[test]
    fn components_partition_the_nodes() {
        let mut g = generators::path_graph(3);
        g.add_edge(10.into(), 11.into());
        g.add_node(20.into());
        let comps = components(&g);
        assert_eq!(comps.len(), 3);
        let mut union = NodeSet::new();
        for c in &comps {
            assert!(union.is_disjoint(c));
            union.union_with(c);
        }
        assert_eq!(&union, g.nodes());
    }

    #[test]
    fn connectivity_predicates() {
        let g = generators::cycle(6);
        assert!(is_connected(&g));
        assert!(connected_avoiding(&g, 0.into(), 3.into(), &set(&[1])));
        assert!(!connected_avoiding(&g, 0.into(), 3.into(), &set(&[1, 5])));
        assert!(is_connected(&Graph::new()));
    }

    #[test]
    fn bfs_distances_on_a_cycle() {
        let g = generators::cycle(6);
        let d = distances(&g, 0.into());
        assert_eq!(d[0], Some(0));
        assert_eq!(d[1], Some(1));
        assert_eq!(d[3], Some(3));
        assert_eq!(d[5], Some(1));
    }

    #[test]
    fn distances_mark_unreachable_nodes() {
        let mut g = generators::path_graph(2);
        g.add_node(4.into());
        let d = distances(&g, 0.into());
        assert_eq!(d[1], Some(1));
        assert_eq!(d[4], None);
    }

    #[test]
    fn balls_grow_with_radius() {
        let g = generators::path_graph(7);
        assert_eq!(ball(&g, 3.into(), 0), set(&[3]));
        assert_eq!(ball(&g, 3.into(), 1), set(&[2, 3, 4]));
        assert_eq!(ball(&g, 3.into(), 2), set(&[1, 2, 3, 4, 5]));
        assert_eq!(ball(&g, 3.into(), 99), NodeSet::universe(7));
    }

    use crate::graph::Graph;
}
