//! Articulation points and bridges (Tarjan's lowpoint algorithm).
//!
//! Cheap structural facts the feasibility analyses use as pre-filters: a
//! corruptible articulation point between D and R is already a singleton
//! RMT-cut, with no exponential search needed.

use rmt_sets::{NodeId, NodeSet};

use crate::graph::Graph;

/// The articulation points (cut vertices) of `g`: nodes whose removal
/// increases the number of connected components.
///
/// # Example
///
/// ```
/// use rmt_graph::{connectivity, generators};
///
/// let g = generators::path_graph(4); // 0-1-2-3
/// let cuts = connectivity::articulation_points(&g);
/// assert!(cuts.contains(1.into()) && cuts.contains(2.into()));
/// assert!(!cuts.contains(0.into()));
/// assert!(connectivity::articulation_points(&generators::cycle(5)).is_empty());
/// ```
pub fn articulation_points(g: &Graph) -> NodeSet {
    lowpoint(g).0
}

/// The bridges of `g`: edges whose removal disconnects their endpoints.
pub fn bridges(g: &Graph) -> Vec<(NodeId, NodeId)> {
    lowpoint(g).1
}

/// Iterative Tarjan lowpoint computation (explicit stack: experiment graphs
/// can be deep paths).
fn lowpoint(g: &Graph) -> (NodeSet, Vec<(NodeId, NodeId)>) {
    let size = g.nodes().last().map_or(0, |v| v.index() + 1);
    let mut disc = vec![0u32; size]; // 0 = unvisited; otherwise timestamp
    let mut low = vec![0u32; size];
    let mut parent: Vec<Option<NodeId>> = vec![None; size];
    let mut time = 0u32;
    let mut points = NodeSet::new();
    let mut bridges = Vec::new();

    for root in g.nodes() {
        if disc[root.index()] != 0 {
            continue;
        }
        // Frame: (node, neighbour iterator position).
        let mut stack: Vec<(NodeId, Vec<NodeId>, usize)> = Vec::new();
        time += 1;
        disc[root.index()] = time;
        low[root.index()] = time;
        stack.push((root, g.neighbors(root).to_vec(), 0));
        let mut root_children = 0;

        while let Some((v, nbrs, idx)) = stack.last_mut() {
            if *idx < nbrs.len() {
                let u = nbrs[*idx];
                *idx += 1;
                let v = *v;
                if disc[u.index()] == 0 {
                    parent[u.index()] = Some(v);
                    if v == root {
                        root_children += 1;
                    }
                    time += 1;
                    disc[u.index()] = time;
                    low[u.index()] = time;
                    stack.push((u, g.neighbors(u).to_vec(), 0));
                } else if parent[v.index()] != Some(u) {
                    low[v.index()] = low[v.index()].min(disc[u.index()]);
                }
            } else {
                let (v, _, _) = stack.pop().expect("frame exists");
                if let Some(p) = parent[v.index()] {
                    low[p.index()] = low[p.index()].min(low[v.index()]);
                    if low[v.index()] > disc[p.index()] {
                        bridges.push((p.min(v), p.max(v)));
                    }
                    if p != root && low[v.index()] >= disc[p.index()] {
                        points.insert(p);
                    }
                }
            }
        }
        if root_children >= 2 {
            points.insert(root);
        }
    }
    (points, bridges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::traversal;

    /// Brute-force articulation check: removal increases component count.
    /// Uses the masked traversal — no per-vertex graph clone.
    fn brute_points(g: &Graph) -> NodeSet {
        let base = traversal::components(g).len();
        g.nodes()
            .iter()
            .filter(|&v| {
                let mask = NodeSet::singleton(v);
                traversal::components_avoiding(g, &mask).len() > base
            })
            .collect()
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        let mut rng = generators::seeded(777);
        for trial in 0..50 {
            let n = 4 + trial % 8;
            let g = generators::gnp(n, 0.3, &mut rng);
            assert_eq!(
                articulation_points(&g),
                brute_points(&g),
                "trial {trial}: {g:?}"
            );
        }
    }

    #[test]
    fn bridges_on_known_graphs() {
        let g = generators::path_graph(4);
        assert_eq!(bridges(&g).len(), 3);
        assert!(bridges(&generators::cycle(5)).is_empty());
        // Two triangles joined by one edge: exactly that edge is a bridge.
        let mut g = Graph::new();
        for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)] {
            g.add_edge(u.into(), v.into());
        }
        assert_eq!(bridges(&g), vec![(2.into(), 3.into())]);
        let pts = articulation_points(&g);
        assert!(pts.contains(2.into()) && pts.contains(3.into()));
    }

    #[test]
    fn every_bridge_disconnects_its_endpoints() {
        let mut rng = generators::seeded(778);
        for _ in 0..20 {
            let g = generators::gnp_connected(9, 0.3, &mut rng);
            for (u, v) in bridges(&g) {
                let mut cut = g.clone();
                cut.remove_edge(u, v);
                assert!(!traversal::connected_avoiding(&cut, u, v, &NodeSet::new()));
            }
        }
    }

    #[test]
    fn isolated_and_tiny_graphs() {
        assert!(articulation_points(&Graph::new()).is_empty());
        let mut g = Graph::new();
        g.add_node(3.into());
        assert!(articulation_points(&g).is_empty());
        let g = generators::path_graph(2);
        assert!(articulation_points(&g).is_empty());
        assert_eq!(bridges(&g).len(), 1);
    }
}
