//! Simple-path enumeration.
//!
//! RMT-PKA propagates the dealer's value along *every* simple path (message
//! trails), so its analysis and its decision subroutine need exhaustive D–R
//! path enumeration. The number of simple paths is exponential in general;
//! every function here takes an explicit budget so callers fail loudly
//! instead of silently truncating.

use rmt_sets::{NodeId, NodeSet};

use crate::graph::Graph;

/// Error returned when a path enumeration exceeds its budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PathBudgetExceeded {
    /// The budget that was exceeded.
    pub budget: usize,
}

impl std::fmt::Display for PathBudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "simple-path enumeration exceeded budget of {}",
            self.budget
        )
    }
}

impl std::error::Error for PathBudgetExceeded {}

/// Enumerates all simple paths from `from` to `to`, in DFS order.
///
/// Each path is the full node sequence `from … to`.
///
/// # Errors
///
/// Returns [`PathBudgetExceeded`] if more than `budget` paths exist.
pub fn simple_paths(
    g: &Graph,
    from: NodeId,
    to: NodeId,
    budget: usize,
) -> Result<Vec<Vec<NodeId>>, PathBudgetExceeded> {
    let mut out = Vec::new();
    if !g.contains_node(from) || !g.contains_node(to) {
        return Ok(out);
    }
    let mut stack = vec![from];
    let mut on_path = NodeSet::singleton(from);
    // Iterator stack: which neighbours remain to try at each depth.
    let mut iters: Vec<Vec<NodeId>> = vec![g.neighbors(from).to_vec()];
    while let Some(frame) = iters.last_mut() {
        match frame.pop() {
            Some(next) => {
                if on_path.contains(next) {
                    continue;
                }
                if next == to {
                    let mut path = stack.clone();
                    path.push(to);
                    out.push(path);
                    if out.len() > budget {
                        return Err(PathBudgetExceeded { budget });
                    }
                    continue;
                }
                stack.push(next);
                on_path.insert(next);
                iters.push(g.neighbors(next).to_vec());
            }
            None => {
                iters.pop();
                if let Some(v) = stack.pop() {
                    on_path.remove(v);
                }
            }
        }
    }
    Ok(out)
}

/// Counts the simple paths from `from` to `to` up to `budget`.
///
/// # Errors
///
/// Returns [`PathBudgetExceeded`] if the count exceeds `budget`.
pub fn count_simple_paths(
    g: &Graph,
    from: NodeId,
    to: NodeId,
    budget: usize,
) -> Result<usize, PathBudgetExceeded> {
    simple_paths(g, from, to, budget).map(|p| p.len())
}

/// Returns `true` if `path` is a simple path in `g` (length ≥ 1, distinct
/// nodes, consecutive nodes adjacent).
pub fn is_simple_path(g: &Graph, path: &[NodeId]) -> bool {
    if path.is_empty() {
        return false;
    }
    let mut seen = NodeSet::new();
    for v in path {
        if !g.contains_node(*v) || !seen.insert(*v) {
            return false;
        }
    }
    path.windows(2).all(|w| g.has_edge(w[0], w[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn path_graph_has_one_path() {
        let g = generators::path_graph(4);
        let p = simple_paths(&g, 0.into(), 3.into(), 10).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p[0], vec![0.into(), 1.into(), 2.into(), 3.into()]);
    }

    #[test]
    fn cycle_has_two_paths() {
        let g = generators::cycle(5);
        let p = simple_paths(&g, 0.into(), 2.into(), 10).unwrap();
        assert_eq!(p.len(), 2);
        assert!(p.iter().all(|path| is_simple_path(&g, path)));
    }

    #[test]
    fn complete_graph_path_count() {
        // K5, paths from 0 to 4: sum over k of P(3,k) = 1 + 3 + 6 + 6 = 16.
        let g = generators::complete(5);
        assert_eq!(count_simple_paths(&g, 0.into(), 4.into(), 100).unwrap(), 16);
    }

    #[test]
    fn budget_is_enforced() {
        let g = generators::complete(6);
        let err = simple_paths(&g, 0.into(), 5.into(), 3).unwrap_err();
        assert_eq!(err.budget, 3);
        assert!(err.to_string().contains("budget of 3"));
    }

    #[test]
    fn disconnected_or_absent_endpoints_yield_no_paths() {
        let mut g = generators::path_graph(2);
        g.add_node(5.into());
        assert!(simple_paths(&g, 0.into(), 5.into(), 10).unwrap().is_empty());
        assert!(simple_paths(&g, 0.into(), 9.into(), 10).unwrap().is_empty());
    }

    #[test]
    fn simple_path_validation() {
        let g = generators::cycle(4);
        assert!(is_simple_path(&g, &[0.into(), 1.into(), 2.into()]));
        assert!(!is_simple_path(&g, &[0.into(), 2.into()])); // not adjacent
        assert!(!is_simple_path(&g, &[0.into(), 1.into(), 0.into()])); // repeat
        assert!(!is_simple_path(&g, &[])); // empty
        assert!(is_simple_path(&g, &[3.into()])); // single node
    }
}
