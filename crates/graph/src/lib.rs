//! Undirected graphs, partial-knowledge views, cuts, paths and generators.
//!
//! This crate is the topology substrate of the `rmt` workspace. A [`Graph`]
//! carries an explicit *present node set* over a shared [`NodeId`] space, so
//! subgraphs — in particular the views γ(v) of the Partial Knowledge Model —
//! keep the original node identities and can be unioned to form joint views
//! γ(S) exactly as in the paper.
//!
//! Provided algorithms:
//!
//! * traversal: BFS reachability (optionally avoiding a blocked set),
//!   connected components, distances ([`traversal`]);
//! * cuts: D–R vertex-cut predicates and enumeration, minimum vertex cuts and
//!   vertex connectivity via unit-capacity max-flow ([`cuts`]);
//! * paths: exhaustive simple D–R path enumeration with budgets ([`paths`]);
//! * views: full-knowledge, ad hoc (star) and radius-k view functions
//!   ([`views`]);
//! * generators: deterministic (seeded) instance families used throughout the
//!   experiments, including the paper's Figure-1 star family ([`generators`]).
//!
//! # Example
//!
//! ```
//! use rmt_graph::Graph;
//! use rmt_sets::NodeSet;
//!
//! let mut g = Graph::with_nodes(4);
//! g.add_edge(0.into(), 1.into());
//! g.add_edge(1.into(), 2.into());
//! g.add_edge(2.into(), 3.into());
//! assert!(rmt_graph::traversal::is_connected(&g));
//! let blocked = NodeSet::singleton(1.into());
//! assert!(rmt_graph::cuts::is_dr_cut(&g, 0.into(), 3.into(), &blocked));
//! ```
//!
//! [`NodeId`]: rmt_sets::NodeId

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod connectivity;
pub mod cuts;
pub mod generators;
mod graph;
pub mod paths;
pub mod separators;
pub mod traversal;
pub mod views;

pub use graph::Graph;
pub use views::{ViewAssignment, ViewKind};
