use std::fmt;

use rmt_sets::{NodeId, NodeSet};

/// An undirected graph over a shared [`NodeId`] space with an explicit set of
/// present nodes.
///
/// Keeping the present set explicit (rather than renumbering) means that
/// subgraphs — views γ(v), induced graphs G_M, damaged graphs G∖C — all speak
/// about the *same* node identities, which is essential for the set algebra
/// of the RMT characterizations. Absent nodes simply have no incident edges.
///
/// Invariants:
/// * adjacency is symmetric;
/// * every edge endpoint is a present node;
/// * no self-loops.
///
/// # Example
///
/// ```
/// use rmt_graph::Graph;
/// use rmt_sets::NodeSet;
///
/// let mut g = Graph::new();
/// g.add_edge(0.into(), 5.into()); // nodes are added implicitly
/// assert_eq!(g.node_count(), 2);
/// assert!(g.has_edge(5.into(), 0.into()));
/// assert_eq!(g.neighbors(0.into()), &NodeSet::singleton(5.into()));
/// ```
#[derive(Clone, Default)]
pub struct Graph {
    nodes: NodeSet,
    adj: Vec<NodeSet>,
    edge_count: usize,
}

/// Equality is semantic — same present nodes, same edges — regardless of how
/// the graph was built. The adjacency vector's length is a storage artifact
/// (an induced subgraph keeps the parent's span, a graph rebuilt from a wire
/// encoding ends at its highest node), and must not distinguish graphs.
impl PartialEq for Graph {
    fn eq(&self, other: &Self) -> bool {
        self.nodes == other.nodes
            && self.edge_count == other.edge_count
            && self
                .nodes
                .iter()
                .all(|v| self.adj[v.index()] == other.adj[v.index()])
    }
}

impl Eq for Graph {}

impl Graph {
    /// Creates an empty graph (no nodes, no edges).
    pub fn new() -> Self {
        Graph::default()
    }

    /// Creates a graph with present nodes `0..n` and no edges.
    pub fn with_nodes(n: usize) -> Self {
        Graph {
            nodes: NodeSet::universe(n),
            adj: vec![NodeSet::new(); n],
            edge_count: 0,
        }
    }

    /// The set of present nodes.
    pub fn nodes(&self) -> &NodeSet {
        &self.nodes
    }

    /// Number of present nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Returns `true` if `v` is present.
    pub fn contains_node(&self, v: NodeId) -> bool {
        self.nodes.contains(v)
    }

    /// Makes `v` present (with no edges if new). Returns `true` if it was
    /// absent.
    pub fn add_node(&mut self, v: NodeId) -> bool {
        if v.index() >= self.adj.len() {
            self.adj.resize(v.index() + 1, NodeSet::new());
        }
        self.nodes.insert(v)
    }

    /// Adds the undirected edge `{u, v}`, implicitly adding absent endpoints.
    /// Returns `true` if the edge was new.
    ///
    /// # Panics
    ///
    /// Panics on self-loops (`u == v`).
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        assert_ne!(u, v, "self-loops are not allowed");
        self.add_node(u);
        self.add_node(v);
        let new = self.adj[u.index()].insert(v);
        self.adj[v.index()].insert(u);
        if new {
            self.edge_count += 1;
        }
        new
    }

    /// Removes the edge `{u, v}` if present. Returns `true` if it existed.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let existed = u.index() < self.adj.len()
            && v.index() < self.adj.len()
            && self.adj[u.index()].remove(v);
        if existed {
            self.adj[v.index()].remove(u);
            self.edge_count -= 1;
        }
        existed
    }

    /// Removes `v` and all incident edges. Returns `true` if it was present.
    pub fn remove_node(&mut self, v: NodeId) -> bool {
        if !self.nodes.remove(v) {
            return false;
        }
        let nbrs = std::mem::take(&mut self.adj[v.index()]);
        self.edge_count -= nbrs.len();
        for u in &nbrs {
            self.adj[u.index()].remove(v);
        }
        true
    }

    /// Returns `true` if the edge `{u, v}` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u.index() < self.adj.len() && self.adj[u.index()].contains(v)
    }

    /// The open neighbourhood 𝒩(v).
    ///
    /// # Panics
    ///
    /// Panics if `v` is absent.
    pub fn neighbors(&self, v: NodeId) -> &NodeSet {
        assert!(self.contains_node(v), "node {v} is not present");
        &self.adj[v.index()]
    }

    /// The closed neighbourhood `{v} ∪ 𝒩(v)`.
    pub fn closed_neighborhood(&self, v: NodeId) -> NodeSet {
        let mut s = self.neighbors(v).clone();
        s.insert(v);
        s
    }

    /// The degree of `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.neighbors(v).len()
    }

    /// Iterates over the edges as ordered pairs `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes.iter().flat_map(move |u| {
            self.adj[u.index()]
                .iter()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// The subgraph induced on `keep ∩ nodes` (same node identities).
    pub fn induced(&self, keep: &NodeSet) -> Graph {
        let nodes = self.nodes.intersection(keep);
        let mut adj = vec![NodeSet::new(); self.adj.len()];
        let mut edge_count = 0;
        for v in &nodes {
            let nbrs = self.adj[v.index()].intersection(&nodes);
            edge_count += nbrs.len();
            adj[v.index()] = nbrs;
        }
        Graph {
            nodes,
            adj,
            edge_count: edge_count / 2,
        }
    }

    /// The graph with the nodes of `removed` (and incident edges) deleted:
    /// `G ∖ C`.
    pub fn without_nodes(&self, removed: &NodeSet) -> Graph {
        self.induced(&self.nodes.difference(removed))
    }

    /// The union of two graphs over the shared id space: joint views
    /// γ(S) = (∪ V_v, ∪ E_v).
    pub fn union(&self, other: &Graph) -> Graph {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// In-place union with `other`.
    pub fn union_with(&mut self, other: &Graph) {
        if other.adj.len() > self.adj.len() {
            self.adj.resize(other.adj.len(), NodeSet::new());
        }
        for v in &other.nodes {
            self.add_node(v);
        }
        let mut edge_count = 0;
        for (a, b) in self.adj.iter_mut().zip(&other.adj) {
            a.union_with(b);
        }
        for v in &self.nodes {
            edge_count += self.adj[v.index()].len();
        }
        self.edge_count = edge_count / 2;
    }

    /// Renders the graph in GraphViz DOT format (for the examples).
    pub fn to_dot(&self, name: &str) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "graph {name} {{");
        for v in &self.nodes {
            let _ = writeln!(s, "  {};", v.raw());
        }
        for (u, v) in self.edges() {
            let _ = writeln!(s, "  {} -- {};", u.raw(), v.raw());
        }
        s.push_str("}\n");
        s
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph({} nodes, {} edges: {:?})",
            self.node_count(),
            self.edge_count(),
            self.edges().collect::<Vec<_>>()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_ignores_adjacency_span() {
        // An induced subgraph keeps the parent's adjacency span; a graph
        // rebuilt edge by edge ends at its highest node. Same nodes, same
        // edges — must be equal.
        let mut parent = Graph::with_nodes(6);
        parent.add_edge(0.into(), 1.into());
        parent.add_edge(4.into(), 5.into());
        let view = parent.induced(&set(&[0, 1]));
        let mut rebuilt = Graph::new();
        rebuilt.add_edge(0.into(), 1.into());
        assert_eq!(view, rebuilt);
        assert_eq!(rebuilt, view);
        // And a genuinely different edge set stays unequal.
        let mut other = Graph::new();
        other.add_node(0.into());
        other.add_node(1.into());
        assert_ne!(view, other);
    }

    fn set(ids: &[u32]) -> NodeSet {
        ids.iter().copied().collect()
    }

    #[test]
    fn add_edge_adds_nodes_and_is_symmetric() {
        let mut g = Graph::new();
        assert!(g.add_edge(0.into(), 2.into()));
        assert!(!g.add_edge(2.into(), 0.into()));
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(0.into(), 2.into()) && g.has_edge(2.into(), 0.into()));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loops_rejected() {
        Graph::new().add_edge(1.into(), 1.into());
    }

    #[test]
    fn remove_node_drops_incident_edges() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(0.into(), 1.into());
        g.add_edge(1.into(), 2.into());
        g.add_edge(2.into(), 3.into());
        assert!(g.remove_node(1.into()));
        assert!(!g.remove_node(1.into()));
        assert_eq!(g.edge_count(), 1);
        assert!(!g.has_edge(0.into(), 1.into()));
        assert_eq!(g.node_count(), 3);
    }

    #[test]
    fn remove_edge_keeps_nodes() {
        let mut g = Graph::new();
        g.add_edge(0.into(), 1.into());
        assert!(g.remove_edge(1.into(), 0.into()));
        assert!(!g.remove_edge(1.into(), 0.into()));
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn induced_subgraph_keeps_identities() {
        let mut g = Graph::with_nodes(5);
        g.add_edge(0.into(), 1.into());
        g.add_edge(1.into(), 2.into());
        g.add_edge(3.into(), 4.into());
        let h = g.induced(&set(&[1, 2, 3, 4]));
        assert_eq!(h.nodes(), &set(&[1, 2, 3, 4]));
        assert!(h.has_edge(1.into(), 2.into()));
        assert!(h.has_edge(3.into(), 4.into()));
        assert!(!h.has_edge(0.into(), 1.into()));
        assert_eq!(h.edge_count(), 2);
    }

    #[test]
    fn without_nodes_is_complement_induced() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(0.into(), 1.into());
        g.add_edge(1.into(), 2.into());
        let h = g.without_nodes(&set(&[1]));
        assert_eq!(h.nodes(), &set(&[0, 2, 3]));
        assert_eq!(h.edge_count(), 0);
    }

    #[test]
    fn union_merges_views() {
        let mut a = Graph::new();
        a.add_edge(0.into(), 1.into());
        let mut b = Graph::new();
        b.add_edge(1.into(), 2.into());
        b.add_node(9.into());
        let u = a.union(&b);
        assert_eq!(u.nodes(), &set(&[0, 1, 2, 9]));
        assert_eq!(u.edge_count(), 2);
        assert_eq!(u.neighbors(1.into()), &set(&[0, 2]));
    }

    #[test]
    fn edges_iterates_each_once() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0.into(), 1.into());
        g.add_edge(0.into(), 2.into());
        g.add_edge(1.into(), 2.into());
        let e: Vec<_> = g.edges().collect();
        assert_eq!(e.len(), 3);
        assert!(e.iter().all(|(u, v)| u < v));
    }

    #[test]
    fn closed_neighborhood_contains_self() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0.into(), 1.into());
        assert_eq!(g.closed_neighborhood(0.into()), set(&[0, 1]));
        assert_eq!(g.degree(2.into()), 0);
    }

    #[test]
    fn dot_export_mentions_every_edge() {
        let mut g = Graph::new();
        g.add_edge(0.into(), 1.into());
        let dot = g.to_dot("g");
        assert!(dot.contains("0 -- 1"));
        assert!(dot.starts_with("graph g {"));
    }
}
