//! Vertex cuts separating a dealer from a receiver.
//!
//! All cut notions in the paper are *node* cuts that exclude the dealer (and
//! here also the receiver): `C ⊆ V ∖ {D, R}` is a **D–R cut** iff removing
//! `C` disconnects `D` from `R`. This module provides the predicate, exact
//! enumeration (for the exhaustive characterizations on small instances) and
//! minimum cuts / vertex connectivity via unit-capacity max-flow (Menger).

use rmt_sets::{NodeId, NodeSet};

use crate::graph::Graph;
use crate::traversal;

/// Returns `true` if `c` is a D–R cut: it avoids both endpoints and removing
/// it disconnects `d` from `r`.
///
/// If `d` and `r` are adjacent no vertex set is a cut.
pub fn is_dr_cut(g: &Graph, d: NodeId, r: NodeId, c: &NodeSet) -> bool {
    !c.contains(d) && !c.contains(r) && !traversal::connected_avoiding(g, d, r, c)
}

/// Enumerates every D–R cut (all subsets of `V ∖ {D,R}` that separate).
///
/// Exponential by nature; intended for the exact characterizations on small
/// instances (`n ≲ 22`).
pub fn dr_cuts<'a>(g: &'a Graph, d: NodeId, r: NodeId) -> impl Iterator<Item = NodeSet> + 'a {
    let mut candidates = g.nodes().clone();
    candidates.remove(d);
    candidates.remove(r);
    candidates
        .subsets()
        .filter(move |c| !traversal::connected_avoiding(g, d, r, c))
}

/// Enumerates the *minimal* D–R cuts (no proper subset is a cut).
pub fn minimal_dr_cuts<'a>(
    g: &'a Graph,
    d: NodeId,
    r: NodeId,
) -> impl Iterator<Item = NodeSet> + 'a {
    dr_cuts(g, d, r).filter(move |c| {
        c.iter().all(|v| {
            let mut smaller = c.clone();
            smaller.remove(v);
            traversal::connected_avoiding(g, d, r, &smaller)
        })
    })
}

/// The D–R vertex connectivity: the maximum number of internally disjoint
/// D–R paths, equal (Menger) to the minimum D–R cut size.
///
/// Returns `None` when `d` and `r` are adjacent or equal (no cut exists;
/// connectivity is unbounded for our purposes), and `Some(0)` when they are
/// in different components.
pub fn vertex_connectivity(g: &Graph, d: NodeId, r: NodeId) -> Option<usize> {
    if d == r || g.has_edge(d, r) {
        return None;
    }
    Some(MaxFlow::new(g, d, r).run().0)
}

/// A minimum D–R vertex cut, or `None` when `d` and `r` are adjacent or
/// equal.
///
/// When `d` and `r` are disconnected the empty set is returned (it is a
/// valid, vacuous cut).
pub fn min_vertex_cut(g: &Graph, d: NodeId, r: NodeId) -> Option<NodeSet> {
    if d == r || g.has_edge(d, r) {
        return None;
    }
    Some(MaxFlow::new(g, d, r).run().1)
}

const INF: u32 = u32::MAX / 2;

/// Unit-capacity max-flow on the node-split graph (Even's construction):
/// every node `v ∉ {d, r}` becomes an arc `v_in → v_out` of capacity 1,
/// every edge `{u, v}` becomes arcs of capacity ∞ between the corresponding
/// sides. Max-flow value = vertex connectivity; the min cut consists of the
/// split arcs crossing the residual-reachable frontier.
struct MaxFlow {
    /// Arc list: (from, to, capacity); arcs come in residual pairs `2i, 2i+1`.
    arcs: Vec<(usize, usize, u32)>,
    /// Outgoing arc indices per vertex of the split graph.
    out: Vec<Vec<usize>>,
    source: usize,
    sink: usize,
    /// Split-arc index per original node id (for cut extraction).
    split_arc: Vec<Option<usize>>,
}

impl MaxFlow {
    fn new(g: &Graph, d: NodeId, r: NodeId) -> Self {
        let size = g.nodes().last().map_or(0, |v| v.index() + 1);
        let vert = |v: NodeId, side: usize| v.index() * 2 + side; // 0 = in, 1 = out
        let mut mf = MaxFlow {
            arcs: Vec::new(),
            out: vec![Vec::new(); size * 2],
            source: vert(d, 1),
            sink: vert(r, 0),
            split_arc: vec![None; size],
        };
        for v in g.nodes() {
            if v != d && v != r {
                let idx = mf.add_arc(vert(v, 0), vert(v, 1), 1);
                mf.split_arc[v.index()] = Some(idx);
            } else {
                // d and r are not split: identify their sides.
                mf.add_arc(vert(v, 0), vert(v, 1), INF);
                mf.add_arc(vert(v, 1), vert(v, 0), INF);
            }
        }
        for (u, v) in g.edges() {
            mf.add_arc(vert(u, 1), vert(v, 0), INF);
            mf.add_arc(vert(v, 1), vert(u, 0), INF);
        }
        mf
    }

    fn add_arc(&mut self, from: usize, to: usize, cap: u32) -> usize {
        let idx = self.arcs.len();
        self.arcs.push((from, to, cap));
        self.arcs.push((to, from, 0));
        self.out[from].push(idx);
        self.out[to].push(idx + 1);
        idx
    }

    /// Returns (max-flow value, min vertex cut as original node ids).
    fn run(mut self) -> (usize, NodeSet) {
        let mut flow = 0;
        while let Some(path_arcs) = self.bfs_augmenting_path() {
            for &a in &path_arcs {
                self.arcs[a].2 -= 1;
                self.arcs[a ^ 1].2 += 1;
            }
            flow += 1;
        }
        // Residual-reachable side of the source determines the cut.
        let reach = self.residual_reachable();
        let mut cut = NodeSet::new();
        for (v, arc) in self.split_arc.iter().enumerate() {
            if let Some(a) = *arc {
                let (from, to, _) = self.arcs[a];
                if reach[from] && !reach[to] {
                    cut.insert(NodeId::new(v as u32));
                }
            }
        }
        (flow, cut)
    }

    fn bfs_augmenting_path(&self) -> Option<Vec<usize>> {
        let mut prev_arc: Vec<Option<usize>> = vec![None; self.out.len()];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(self.source);
        let mut seen = vec![false; self.out.len()];
        seen[self.source] = true;
        while let Some(v) = queue.pop_front() {
            if v == self.sink {
                let mut path = Vec::new();
                let mut cur = self.sink;
                while cur != self.source {
                    let a = prev_arc[cur].expect("path reconstruction");
                    path.push(a);
                    cur = self.arcs[a].0;
                }
                return Some(path);
            }
            for &a in &self.out[v] {
                let (_, to, cap) = self.arcs[a];
                if cap > 0 && !seen[to] {
                    seen[to] = true;
                    prev_arc[to] = Some(a);
                    queue.push_back(to);
                }
            }
        }
        None
    }

    fn residual_reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.out.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[self.source] = true;
        queue.push_back(self.source);
        while let Some(v) = queue.pop_front() {
            for &a in &self.out[v] {
                let (_, to, cap) = self.arcs[a];
                if cap > 0 && !seen[to] {
                    seen[to] = true;
                    queue.push_back(to);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn set(ids: &[u32]) -> NodeSet {
        ids.iter().copied().collect()
    }

    #[test]
    fn cut_predicate_on_a_path() {
        let g = generators::path_graph(4); // 0-1-2-3
        assert!(is_dr_cut(&g, 0.into(), 3.into(), &set(&[1])));
        assert!(is_dr_cut(&g, 0.into(), 3.into(), &set(&[2])));
        assert!(!is_dr_cut(&g, 0.into(), 3.into(), &NodeSet::new()));
        // Sets touching the endpoints are not cuts by definition.
        assert!(!is_dr_cut(&g, 0.into(), 3.into(), &set(&[0, 1])));
    }

    #[test]
    fn cut_enumeration_on_a_cycle() {
        let g = generators::cycle(5); // 0-1-2-3-4-0, D=0 R=2
        let cuts: Vec<NodeSet> = dr_cuts(&g, 0.into(), 2.into()).collect();
        // Cuts must contain 1 and one of {3,4}: {1,3},{1,4},{1,3,4}.
        assert_eq!(cuts.len(), 3);
        assert!(cuts.iter().all(|c| c.contains(1.into())));
        let minimal: Vec<NodeSet> = minimal_dr_cuts(&g, 0.into(), 2.into()).collect();
        assert_eq!(minimal.len(), 2);
        assert!(minimal.contains(&set(&[1, 3])));
        assert!(minimal.contains(&set(&[1, 4])));
    }

    #[test]
    fn connectivity_matches_menger_on_cycle() {
        let g = generators::cycle(6);
        assert_eq!(vertex_connectivity(&g, 0.into(), 3.into()), Some(2));
        let cut = min_vertex_cut(&g, 0.into(), 3.into()).unwrap();
        assert_eq!(cut.len(), 2);
        assert!(is_dr_cut(&g, 0.into(), 3.into(), &cut));
    }

    #[test]
    fn adjacent_endpoints_have_no_cut() {
        let g = generators::complete(4);
        assert_eq!(vertex_connectivity(&g, 0.into(), 1.into()), None);
        assert_eq!(min_vertex_cut(&g, 0.into(), 1.into()), None);
    }

    #[test]
    fn disconnected_endpoints_have_empty_cut() {
        let mut g = generators::path_graph(2);
        g.add_edge(3.into(), 4.into());
        assert_eq!(vertex_connectivity(&g, 0.into(), 4.into()), Some(0));
        assert_eq!(min_vertex_cut(&g, 0.into(), 4.into()), Some(NodeSet::new()));
    }

    #[test]
    fn min_cut_is_a_cut_of_minimum_size() {
        let g = generators::grid(3, 3); // 3x3 grid, corners 0 and 8
        let d = NodeId::new(0);
        let r = NodeId::new(8);
        let k = vertex_connectivity(&g, d, r).unwrap();
        assert_eq!(k, 2);
        let cut = min_vertex_cut(&g, d, r).unwrap();
        assert_eq!(cut.len(), k);
        assert!(is_dr_cut(&g, d, r, &cut));
        // No smaller cut exists.
        assert!(minimal_dr_cuts(&g, d, r).all(|c| c.len() >= k));
    }
}
