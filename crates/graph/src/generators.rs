//! Deterministic instance-family generators.
//!
//! All random generators take an explicit RNG (use [`seeded`] for
//! reproducibility) so every experiment in the workspace is replayable
//! bit-for-bit.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use rmt_sets::NodeId;

use crate::graph::Graph;

/// A reproducible RNG for generators and experiment samplers.
pub fn seeded(seed: u64) -> ChaCha12Rng {
    ChaCha12Rng::seed_from_u64(seed)
}

/// The complete graph K_n on nodes `0..n`.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::with_nodes(n);
    for u in 0..n {
        for v in u + 1..n {
            g.add_edge(NodeId::new(u as u32), NodeId::new(v as u32));
        }
    }
    g
}

/// The path 0 – 1 – … – (n-1).
pub fn path_graph(n: usize) -> Graph {
    let mut g = Graph::with_nodes(n);
    for v in 1..n {
        g.add_edge(NodeId::new(v as u32 - 1), NodeId::new(v as u32));
    }
    g
}

/// The cycle 0 – 1 – … – (n-1) – 0.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 nodes");
    let mut g = path_graph(n);
    g.add_edge(NodeId::new(0), NodeId::new(n as u32 - 1));
    g
}

/// The `w × h` grid; node `(x, y)` has id `y*w + x`.
pub fn grid(w: usize, h: usize) -> Graph {
    let mut g = Graph::with_nodes(w * h);
    let id = |x: usize, y: usize| NodeId::new((y * w + x) as u32);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                g.add_edge(id(x, y), id(x + 1, y));
            }
            if y + 1 < h {
                g.add_edge(id(x, y), id(x, y + 1));
            }
        }
    }
    g
}

/// The `w × h` king grid: the grid plus both diagonals in every cell, i.e.
/// nodes are adjacent iff they are within Chebyshev distance 1 (the moves of
/// a chess king).
///
/// Interior nodes have degree 8; the graph is locally dense enough for
/// certified propagation to sweep it under a global threshold `t = 1`, which
/// makes it the scaling family of experiment E6b.
pub fn king_grid(w: usize, h: usize) -> Graph {
    let mut g = grid(w, h);
    let id = |x: usize, y: usize| NodeId::new((y * w + x) as u32);
    for y in 0..h.saturating_sub(1) {
        for x in 0..w.saturating_sub(1) {
            g.add_edge(id(x, y), id(x + 1, y + 1));
            g.add_edge(id(x + 1, y), id(x, y + 1));
        }
    }
    g
}

/// Erdős–Rényi G(n, p).
pub fn gnp(n: usize, p: f64, rng: &mut impl Rng) -> Graph {
    let mut g = Graph::with_nodes(n);
    for u in 0..n {
        for v in u + 1..n {
            if rng.random_bool(p) {
                g.add_edge(NodeId::new(u as u32), NodeId::new(v as u32));
            }
        }
    }
    g
}

/// G(n, p) forced connected: a uniformly random spanning tree (random walk
/// attachment) is laid down first, then each remaining pair gets an edge
/// with probability `p`.
pub fn gnp_connected(n: usize, p: f64, rng: &mut impl Rng) -> Graph {
    let mut g = Graph::with_nodes(n);
    // Random attachment tree over a random node order.
    let mut order: Vec<u32> = (0..n as u32).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.random_range(0..=i));
    }
    for i in 1..order.len() {
        let parent = order[rng.random_range(0..i)];
        g.add_edge(NodeId::new(order[i]), NodeId::new(parent));
    }
    for u in 0..n {
        for v in u + 1..n {
            let (u, v) = (NodeId::new(u as u32), NodeId::new(v as u32));
            if !g.has_edge(u, v) && rng.random_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// The paper's Figure-1 star family 𝒢′: dealer `D = 0`, middle set
/// `A(G) = {1, …, m}`, receiver `R = m+1`; the only edges connect each
/// middle node to both D and R.
///
/// Returns `(graph, dealer, middle set, receiver)`.
pub fn star_family(m: usize) -> (Graph, NodeId, rmt_sets::NodeSet, NodeId) {
    let d = NodeId::new(0);
    let r = NodeId::new(m as u32 + 1);
    let mut g = Graph::with_nodes(m + 2);
    let mut middle = rmt_sets::NodeSet::new();
    for i in 1..=m {
        let v = NodeId::new(i as u32);
        g.add_edge(d, v);
        g.add_edge(v, r);
        middle.insert(v);
    }
    (g, d, middle, r)
}

/// A layered (generalized-butterfly-style) network: `layers` layers of
/// `width` nodes each, a dealer in front and a receiver behind, with each
/// pair of adjacent-layer nodes connected with probability `p` (plus a
/// matching edge to guarantee forward connectivity).
///
/// Node ids: dealer `0`; layer `l` node `i` is `1 + l*width + i`; receiver
/// is the last id. Returns `(graph, dealer, receiver)`.
pub fn layered(layers: usize, width: usize, p: f64, rng: &mut impl Rng) -> (Graph, NodeId, NodeId) {
    assert!(layers >= 1 && width >= 1);
    let d = NodeId::new(0);
    let r = NodeId::new((1 + layers * width) as u32);
    let mut g = Graph::with_nodes(2 + layers * width);
    let id = |l: usize, i: usize| NodeId::new((1 + l * width + i) as u32);
    for i in 0..width {
        g.add_edge(d, id(0, i));
        g.add_edge(id(layers - 1, i), r);
    }
    for l in 1..layers {
        for i in 0..width {
            g.add_edge(id(l - 1, i), id(l, i)); // guaranteed matching
            for j in 0..width {
                if i != j && rng.random_bool(p) {
                    g.add_edge(id(l - 1, i), id(l, j));
                }
            }
        }
    }
    (g, d, r)
}

/// The `d`-dimensional hypercube: nodes `0..2^d`, edges between ids at
/// Hamming distance 1.
///
/// # Panics
///
/// Panics if `d > 16` (the node count would exceed the experiment scale).
pub fn hypercube(d: usize) -> Graph {
    assert!(
        d <= 16,
        "hypercube dimension {d} is beyond experiment scale"
    );
    let n = 1usize << d;
    let mut g = Graph::with_nodes(n);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if u > v {
                g.add_edge(NodeId::new(v as u32), NodeId::new(u as u32));
            }
        }
    }
    g
}

/// The wheel W_n: a cycle of `n` rim nodes `0..n` plus a hub `n` adjacent
/// to every rim node.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn wheel(n: usize) -> Graph {
    let mut g = cycle(n);
    let hub = NodeId::new(n as u32);
    for v in 0..n {
        g.add_edge(hub, NodeId::new(v as u32));
    }
    g
}

/// The complete bipartite graph K_{a,b}: sides `0..a` and `a..a+b`.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut g = Graph::with_nodes(a + b);
    for u in 0..a {
        for v in a..a + b {
            g.add_edge(NodeId::new(u as u32), NodeId::new(v as u32));
        }
    }
    g
}

/// A uniformly random labelled tree on `n` nodes (random attachment over a
/// shuffled order — the same construction `gnp_connected` seeds with).
pub fn random_tree(n: usize, rng: &mut impl Rng) -> Graph {
    gnp_connected(n, 0.0, rng)
}

/// A ring of `n` nodes with `chords` extra random chords (deduplicated).
pub fn ring_with_chords(n: usize, chords: usize, rng: &mut impl Rng) -> Graph {
    let mut g = cycle(n);
    let mut added = 0;
    let mut attempts = 0;
    while added < chords && attempts < chords * 20 {
        attempts += 1;
        let u = rng.random_range(0..n as u32);
        let v = rng.random_range(0..n as u32);
        if u != v && g.add_edge(NodeId::new(u), NodeId::new(v)) {
            added += 1;
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal;

    #[test]
    fn complete_graph_counts() {
        let g = complete(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 10);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 2);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 7); // 2*2 horizontal + 3 vertical... 4+3
        assert!(g.has_edge(0.into(), 3.into()));
        assert!(g.has_edge(0.into(), 1.into()));
        assert!(!g.has_edge(2.into(), 3.into()));
    }

    #[test]
    fn king_grid_adds_diagonals() {
        let g = king_grid(3, 3);
        assert_eq!(g.node_count(), 9);
        // 12 grid edges + 2 diagonals per cell × 4 cells.
        assert_eq!(g.edge_count(), 20);
        assert!(g.has_edge(0.into(), 4.into())); // (0,0)-(1,1)
        assert!(g.has_edge(1.into(), 3.into())); // (1,0)-(0,1)
        assert_eq!(g.degree(4.into()), 8); // centre is a king
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = seeded(1);
        assert_eq!(gnp(6, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(gnp(6, 1.0, &mut rng).edge_count(), 15);
    }

    #[test]
    fn gnp_connected_is_connected() {
        let mut rng = seeded(7);
        for n in [2usize, 5, 12, 30] {
            let g = gnp_connected(n, 0.05, &mut rng);
            assert!(traversal::is_connected(&g), "n = {n}");
            assert_eq!(g.node_count(), n);
        }
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let a = gnp_connected(15, 0.2, &mut seeded(42));
        let b = gnp_connected(15, 0.2, &mut seeded(42));
        let c = gnp_connected(15, 0.2, &mut seeded(43));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn star_family_matches_figure_1() {
        let (g, d, middle, r) = star_family(4);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 8);
        assert_eq!(middle.len(), 4);
        assert!(!g.has_edge(d, r));
        for v in &middle {
            assert!(g.has_edge(d, v) && g.has_edge(v, r));
        }
        assert_eq!(g.degree(d), 4);
    }

    #[test]
    fn layered_network_connects_dealer_to_receiver() {
        let mut rng = seeded(3);
        let (g, d, r) = layered(3, 4, 0.3, &mut rng);
        assert_eq!(g.node_count(), 14);
        assert!(traversal::connected_avoiding(
            &g,
            d,
            r,
            &rmt_sets::NodeSet::new()
        ));
        assert_eq!(g.degree(d), 4);
        assert_eq!(g.degree(r), 4);
    }

    #[test]
    fn hypercube_structure() {
        let g = hypercube(3);
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.edge_count(), 12);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 3);
        }
        assert!(g.has_edge(0.into(), 4.into()));
        assert!(!g.has_edge(0.into(), 3.into())); // Hamming distance 2
    }

    #[test]
    fn wheel_has_a_universal_hub() {
        let g = wheel(5);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.degree(5.into()), 5);
        assert_eq!(g.degree(0.into()), 3);
    }

    #[test]
    fn complete_bipartite_structure() {
        let g = complete_bipartite(2, 3);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 6);
        assert!(!g.has_edge(0.into(), 1.into())); // same side
        assert!(g.has_edge(0.into(), 4.into()));
    }

    #[test]
    fn random_tree_is_a_spanning_tree() {
        let mut rng = seeded(12);
        for n in [2usize, 7, 20] {
            let g = random_tree(n, &mut rng);
            assert_eq!(g.edge_count(), n - 1);
            assert!(traversal::is_connected(&g));
        }
    }

    #[test]
    fn ring_with_chords_adds_chords() {
        let mut rng = seeded(9);
        let g = ring_with_chords(10, 3, &mut rng);
        assert_eq!(g.edge_count(), 13);
        assert!(traversal::is_connected(&g));
    }
}
