//! Minimal D–R separator enumeration without power-set scans.
//!
//! [`cuts::minimal_dr_cuts`](crate::cuts::minimal_dr_cuts) filters the whole
//! subset lattice — exact but hopeless beyond ~20 nodes. This module
//! implements the classical generate-and-minimalize scheme (Takata-style):
//! every minimal a–b separator has all its vertices adjacent to both the
//! a-side and b-side components, new separators are generated from old ones
//! by *pivoting* a vertex (absorbing its neighbourhood and re-minimalizing),
//! and the procedure started from the close separator of `a` visits every
//! minimal separator exactly once.
//!
//! The completeness of the implementation is property-tested against the
//! brute-force enumeration on random graphs.

use std::collections::{HashSet, VecDeque};

use rmt_sets::{NodeId, NodeSet};

use crate::graph::Graph;
use crate::traversal;

/// Error returned when more than the given number of separators exist.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeparatorBudgetExceeded {
    /// The limit that was exceeded.
    pub budget: usize,
}

impl std::fmt::Display for SeparatorBudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "more than {} minimal separators", self.budget)
    }
}

impl std::error::Error for SeparatorBudgetExceeded {}

use crate::traversal::neighborhood;

/// Double minimalization: given an a–b separator `s`, returns the minimal
/// a–b separator obtained by clamping to the b-side component's
/// neighbourhood and then the a-side component's neighbourhood.
fn minimalize(g: &Graph, a: NodeId, b: NodeId, s: &NodeSet) -> NodeSet {
    let c_b = traversal::reachable_avoiding(g, b, s);
    let s1 = neighborhood(g, &c_b);
    let c_a = traversal::reachable_avoiding(g, a, &s1);
    neighborhood(g, &c_a)
}

/// Enumerates **all** minimal a–b separators of `g`.
///
/// Returns them in generation (BFS) order.
///
/// # Errors
///
/// Returns [`SeparatorBudgetExceeded`] if more than `budget` separators
/// exist.
///
/// # Panics
///
/// Panics if `a` and `b` are equal or adjacent (no separator exists).
///
/// # Example
///
/// ```
/// use rmt_graph::{generators, separators};
///
/// let g = generators::cycle(6);
/// let seps = separators::minimal_separators(&g, 0.into(), 3.into(), 100).unwrap();
/// assert_eq!(seps.len(), 4); // one node from {1,2} × one from {4,5}
/// ```
pub fn minimal_separators(
    g: &Graph,
    a: NodeId,
    b: NodeId,
    budget: usize,
) -> Result<Vec<NodeSet>, SeparatorBudgetExceeded> {
    assert_ne!(a, b, "endpoints must differ");
    assert!(!g.has_edge(a, b), "adjacent endpoints have no separator");
    if !traversal::connected_avoiding(g, a, b, &NodeSet::new()) {
        // Disconnected endpoints: the unique minimal separator is ∅.
        return Ok(vec![NodeSet::new()]);
    }

    let mut seen: HashSet<NodeSet> = HashSet::new();
    let mut out = Vec::new();
    let mut queue = VecDeque::new();

    let first = minimalize(g, a, b, g.neighbors(a));
    seen.insert(first.clone());
    queue.push_back(first.clone());
    out.push(first);

    while let Some(s) = queue.pop_front() {
        for x in &s {
            // Pivot on x: absorb its neighbourhood into the separator and
            // re-minimalize toward b (skipping pivots adjacent to b, which
            // would swallow it).
            if g.neighbors(x).contains(b) {
                continue;
            }
            let enlarged = s.union(g.neighbors(x));
            let c_b = traversal::reachable_avoiding(g, b, &enlarged);
            if c_b.contains(a) || c_b.is_empty() {
                continue;
            }
            let candidate = minimalize(g, a, b, &neighborhood(g, &c_b));
            if seen.insert(candidate.clone()) {
                if out.len() >= budget {
                    return Err(SeparatorBudgetExceeded { budget });
                }
                queue.push_back(candidate.clone());
                out.push(candidate);
            }
        }
    }
    Ok(out)
}

/// One separator **anchor** for the cut-search deciders: a minimal a–b
/// separator together with the b-side component it leaves.
///
/// The anchored searches enumerate candidate receiver-side components `B`
/// (connected, `b ∈ B`, `a ∉ N[B]`) instead of candidate cuts. Every such
/// `B` is *charged to exactly one anchor*: the minimal separator
/// `S*(B) = N(comp_a(G ∖ N(B)))` — the a-side minimalization of `N(B)`. It
/// satisfies `S*(B) ⊆ N(B)` and `B ⊆ region(S*(B))`, so scanning each
/// anchor's region for connected supersets of `{b}` whose neighbourhood
/// contains the separator visits every candidate component exactly once
/// across all anchors ([`scan_anchor`]); the partition is property-tested
/// below.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CutAnchor {
    /// The minimal a–b separator S.
    pub separator: NodeSet,
    /// The b-side component of `G ∖ S` (so `N(region) = S`).
    pub region: NodeSet,
}

/// Enumerates all [`CutAnchor`]s for the a–b cut search: one per minimal
/// a–b separator, in [`minimal_separators`] generation order.
///
/// # Errors
///
/// Returns [`SeparatorBudgetExceeded`] if more than `budget` minimal
/// separators exist.
///
/// # Panics
///
/// Panics if `a` and `b` are equal or adjacent (no separator exists).
pub fn cut_anchors(
    g: &Graph,
    a: NodeId,
    b: NodeId,
    budget: usize,
) -> Result<Vec<CutAnchor>, SeparatorBudgetExceeded> {
    Ok(minimal_separators(g, a, b, budget)?
        .into_iter()
        .map(|s| CutAnchor {
            region: traversal::component_of_avoiding(g, b, &s),
            separator: s,
        })
        .collect())
}

/// How one [`scan_anchor`] run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnchorScan {
    /// Every component charged to the anchor was visited.
    Exhausted,
    /// The visitor returned `false` (e.g. a witness was found).
    Stopped,
    /// The emission budget ran out before the scan finished.
    BudgetExceeded,
}

/// The result of one [`scan_anchor`] run: the outcome plus the number of
/// connected subsets the underlying enumeration emitted (visited components
/// are the subset of emissions whose neighbourhood contains the separator).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AnchorScanStats {
    /// How the scan ended.
    pub outcome: AnchorScan,
    /// Connected subsets of the region emitted by the enumeration.
    pub emitted: u64,
}

/// Visits every candidate component `B` charged to `anchor`: the connected
/// subsets of `anchor.region` containing `root` whose open neighbourhood
/// `C = N(B)` contains `anchor.separator`. The visitor receives `(B, C)`
/// — `C` is exactly the minimal cut with b-side component `B` — and returns
/// `false` to stop the scan (witness found).
///
/// Across the full anchor list of [`cut_anchors`] each candidate component
/// is visited exactly once, which is what makes per-anchor scans an exact,
/// duplicate-free partition of the cut-search space (and an embarrassingly
/// parallel one). At most `max_emissions` connected subsets are enumerated;
/// beyond that the scan aborts with [`AnchorScan::BudgetExceeded`] and the
/// caller is expected to fall back to an exhaustive search.
pub fn scan_anchor<F>(
    g: &Graph,
    anchor: &CutAnchor,
    root: NodeId,
    max_emissions: u64,
    mut f: F,
) -> AnchorScanStats
where
    F: FnMut(&NodeSet, &NodeSet) -> bool,
{
    let mut emitted = 0u64;
    let mut outcome = AnchorScan::Exhausted;
    traversal::for_each_connected_subset(g, root, &anchor.region, |b| {
        if emitted >= max_emissions {
            outcome = AnchorScan::BudgetExceeded;
            return false;
        }
        emitted += 1;
        let cut = neighborhood(g, b);
        if anchor.separator.is_subset(&cut) && !f(b, &cut) {
            outcome = AnchorScan::Stopped;
            return false;
        }
        true
    });
    AnchorScanStats { outcome, emitted }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cuts;
    use crate::generators;

    fn brute_force(g: &Graph, a: NodeId, b: NodeId) -> Vec<NodeSet> {
        let mut v: Vec<NodeSet> = cuts::minimal_dr_cuts(g, a, b).collect();
        v.sort();
        v
    }

    #[test]
    fn cycle_separators_by_hand() {
        let g = generators::cycle(6);
        let mut seps = minimal_separators(&g, 0.into(), 3.into(), 100).unwrap();
        seps.sort();
        assert_eq!(seps, brute_force(&g, 0.into(), 3.into()));
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        let mut rng = generators::seeded(31337);
        let mut nontrivial = 0;
        for trial in 0..60 {
            let n = 5 + trial % 5;
            let g = generators::gnp_connected(n, 0.25, &mut rng);
            let (a, b) = (NodeId::new(0), NodeId::new(n as u32 - 1));
            if g.has_edge(a, b) {
                continue;
            }
            let mut fast = minimal_separators(&g, a, b, 10_000).unwrap();
            fast.sort();
            let slow = brute_force(&g, a, b);
            assert_eq!(fast, slow, "trial {trial}: {g:?}");
            if slow.len() >= 2 {
                nontrivial += 1;
            }
        }
        assert!(
            nontrivial >= 5,
            "the sweep exercised nontrivial cases: {nontrivial}"
        );
    }

    #[test]
    fn every_result_is_a_minimal_separator() {
        let mut rng = generators::seeded(31338);
        let g = generators::gnp_connected(10, 0.3, &mut rng);
        let (a, b) = (NodeId::new(0), NodeId::new(9));
        if g.has_edge(a, b) {
            return;
        }
        for s in minimal_separators(&g, a, b, 10_000).unwrap() {
            assert!(cuts::is_dr_cut(&g, a, b, &s), "{s} separates");
            for v in &s {
                let mut smaller = s.clone();
                smaller.remove(v);
                assert!(
                    traversal::connected_avoiding(&g, a, b, &smaller),
                    "{s} minus {v} still separates — not minimal"
                );
            }
        }
    }

    /// Brute-force reference for the anchored scan: every candidate b-side
    /// component — connected, containing `b`, with `a` outside its closed
    /// neighbourhood.
    fn brute_candidate_components(g: &Graph, a: NodeId, b: NodeId) -> Vec<NodeSet> {
        let mut candidates = g.nodes().clone();
        candidates.remove(a);
        candidates
            .subsets()
            .filter(|s| {
                s.contains(b)
                    && traversal::component_of_avoiding(g, b, &g.nodes().difference(s)) == *s
                    && !neighborhood(g, s).contains(a)
            })
            .collect()
    }

    #[test]
    fn anchors_partition_the_candidate_components() {
        let mut rng = generators::seeded(90210);
        let mut nontrivial = 0;
        for trial in 0..50 {
            let n = 5 + trial % 5;
            let g = generators::gnp(n, 0.3, &mut rng);
            let (a, b) = (NodeId::new(0), NodeId::new(n as u32 - 1));
            if !g.contains_node(a) || !g.contains_node(b) || g.has_edge(a, b) {
                continue;
            }
            let anchors = cut_anchors(&g, a, b, 10_000).unwrap();
            let mut visited = Vec::new();
            for anchor in &anchors {
                let stats = scan_anchor(&g, anchor, b, u64::MAX, |comp, cut| {
                    // The handed-out cut is the component's neighbourhood.
                    assert_eq!(*cut, neighborhood(&g, comp));
                    visited.push(comp.clone());
                    true
                });
                assert_eq!(stats.outcome, AnchorScan::Exhausted);
            }
            visited.sort();
            let before_dedup = visited.len();
            visited.dedup();
            assert_eq!(before_dedup, visited.len(), "trial {trial}: duplicates");
            let mut expected = brute_candidate_components(&g, a, b);
            expected.sort();
            assert_eq!(visited, expected, "trial {trial}: {g:?}");
            if expected.len() >= 2 && anchors.len() >= 2 {
                nontrivial += 1;
            }
        }
        assert!(nontrivial >= 5, "nontrivial cases exercised: {nontrivial}");
    }

    #[test]
    fn scan_anchor_budget_and_early_stop() {
        let g = generators::cycle(8);
        let anchors = cut_anchors(&g, 0.into(), 4.into(), 100).unwrap();
        let anchor = &anchors[0];
        let stats = scan_anchor(&g, anchor, 4.into(), 1, |_, _| true);
        assert_eq!(stats.outcome, AnchorScan::BudgetExceeded);
        assert_eq!(stats.emitted, 1);
        let stats = scan_anchor(&g, anchor, 4.into(), u64::MAX, |_, _| false);
        assert_eq!(stats.outcome, AnchorScan::Stopped);
    }

    #[test]
    fn disconnected_endpoints_have_the_empty_anchor() {
        let mut g = generators::path_graph(2);
        g.add_node(5.into());
        let anchors = cut_anchors(&g, 0.into(), 5.into(), 10).unwrap();
        assert_eq!(anchors.len(), 1);
        assert!(anchors[0].separator.is_empty());
        assert_eq!(anchors[0].region, NodeSet::singleton(5.into()));
    }

    #[test]
    fn budget_and_degenerate_cases() {
        let g = generators::complete_bipartite(2, 2); // many separators? 0-1 same side
        let seps = minimal_separators(&g, 0.into(), 1.into(), 100).unwrap();
        assert_eq!(seps.len(), 1); // the opposite side {2,3}
        let err = minimal_separators(&generators::cycle(8), 0.into(), 4.into(), 2).unwrap_err();
        assert_eq!(err.budget, 2);
        // Disconnected: the empty separator.
        let mut g = generators::path_graph(2);
        g.add_node(5.into());
        assert_eq!(
            minimal_separators(&g, 0.into(), 5.into(), 10).unwrap(),
            vec![NodeSet::new()]
        );
    }
}
