//! Minimal D–R separator enumeration without power-set scans.
//!
//! [`cuts::minimal_dr_cuts`](crate::cuts::minimal_dr_cuts) filters the whole
//! subset lattice — exact but hopeless beyond ~20 nodes. This module
//! implements the classical generate-and-minimalize scheme (Takata-style):
//! every minimal a–b separator has all its vertices adjacent to both the
//! a-side and b-side components, new separators are generated from old ones
//! by *pivoting* a vertex (absorbing its neighbourhood and re-minimalizing),
//! and the procedure started from the close separator of `a` visits every
//! minimal separator exactly once.
//!
//! The completeness of the implementation is property-tested against the
//! brute-force enumeration on random graphs.

use std::collections::{HashSet, VecDeque};

use rmt_sets::{NodeId, NodeSet};

use crate::graph::Graph;
use crate::traversal;

/// Error returned when more than the given number of separators exist.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeparatorBudgetExceeded {
    /// The limit that was exceeded.
    pub budget: usize,
}

impl std::fmt::Display for SeparatorBudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "more than {} minimal separators", self.budget)
    }
}

impl std::error::Error for SeparatorBudgetExceeded {}

/// The neighbourhood of a node set: `N(C) = (∪_{v∈C} N(v)) ∖ C`.
fn neighborhood(g: &Graph, c: &NodeSet) -> NodeSet {
    let mut out = NodeSet::new();
    for v in c {
        out.union_with(g.neighbors(v));
    }
    out.difference_with(c);
    out
}

/// Double minimalization: given an a–b separator `s`, returns the minimal
/// a–b separator obtained by clamping to the b-side component's
/// neighbourhood and then the a-side component's neighbourhood.
fn minimalize(g: &Graph, a: NodeId, b: NodeId, s: &NodeSet) -> NodeSet {
    let c_b = traversal::reachable_avoiding(g, b, s);
    let s1 = neighborhood(g, &c_b);
    let c_a = traversal::reachable_avoiding(g, a, &s1);
    neighborhood(g, &c_a)
}

/// Enumerates **all** minimal a–b separators of `g`.
///
/// Returns them in generation (BFS) order.
///
/// # Errors
///
/// Returns [`SeparatorBudgetExceeded`] if more than `budget` separators
/// exist.
///
/// # Panics
///
/// Panics if `a` and `b` are equal or adjacent (no separator exists).
///
/// # Example
///
/// ```
/// use rmt_graph::{generators, separators};
///
/// let g = generators::cycle(6);
/// let seps = separators::minimal_separators(&g, 0.into(), 3.into(), 100).unwrap();
/// assert_eq!(seps.len(), 4); // one node from {1,2} × one from {4,5}
/// ```
pub fn minimal_separators(
    g: &Graph,
    a: NodeId,
    b: NodeId,
    budget: usize,
) -> Result<Vec<NodeSet>, SeparatorBudgetExceeded> {
    assert_ne!(a, b, "endpoints must differ");
    assert!(!g.has_edge(a, b), "adjacent endpoints have no separator");
    if !traversal::connected_avoiding(g, a, b, &NodeSet::new()) {
        // Disconnected endpoints: the unique minimal separator is ∅.
        return Ok(vec![NodeSet::new()]);
    }

    let mut seen: HashSet<NodeSet> = HashSet::new();
    let mut out = Vec::new();
    let mut queue = VecDeque::new();

    let first = minimalize(g, a, b, g.neighbors(a));
    seen.insert(first.clone());
    queue.push_back(first.clone());
    out.push(first);

    while let Some(s) = queue.pop_front() {
        for x in &s {
            // Pivot on x: absorb its neighbourhood into the separator and
            // re-minimalize toward b (skipping pivots adjacent to b, which
            // would swallow it).
            if g.neighbors(x).contains(b) {
                continue;
            }
            let enlarged = s.union(g.neighbors(x));
            let c_b = traversal::reachable_avoiding(g, b, &enlarged);
            if c_b.contains(a) || c_b.is_empty() {
                continue;
            }
            let candidate = minimalize(g, a, b, &neighborhood(g, &c_b));
            if seen.insert(candidate.clone()) {
                if out.len() >= budget {
                    return Err(SeparatorBudgetExceeded { budget });
                }
                queue.push_back(candidate.clone());
                out.push(candidate);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cuts;
    use crate::generators;

    fn brute_force(g: &Graph, a: NodeId, b: NodeId) -> Vec<NodeSet> {
        let mut v: Vec<NodeSet> = cuts::minimal_dr_cuts(g, a, b).collect();
        v.sort();
        v
    }

    #[test]
    fn cycle_separators_by_hand() {
        let g = generators::cycle(6);
        let mut seps = minimal_separators(&g, 0.into(), 3.into(), 100).unwrap();
        seps.sort();
        assert_eq!(seps, brute_force(&g, 0.into(), 3.into()));
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        let mut rng = generators::seeded(31337);
        let mut nontrivial = 0;
        for trial in 0..60 {
            let n = 5 + trial % 5;
            let g = generators::gnp_connected(n, 0.25, &mut rng);
            let (a, b) = (NodeId::new(0), NodeId::new(n as u32 - 1));
            if g.has_edge(a, b) {
                continue;
            }
            let mut fast = minimal_separators(&g, a, b, 10_000).unwrap();
            fast.sort();
            let slow = brute_force(&g, a, b);
            assert_eq!(fast, slow, "trial {trial}: {g:?}");
            if slow.len() >= 2 {
                nontrivial += 1;
            }
        }
        assert!(
            nontrivial >= 5,
            "the sweep exercised nontrivial cases: {nontrivial}"
        );
    }

    #[test]
    fn every_result_is_a_minimal_separator() {
        let mut rng = generators::seeded(31338);
        let g = generators::gnp_connected(10, 0.3, &mut rng);
        let (a, b) = (NodeId::new(0), NodeId::new(9));
        if g.has_edge(a, b) {
            return;
        }
        for s in minimal_separators(&g, a, b, 10_000).unwrap() {
            assert!(cuts::is_dr_cut(&g, a, b, &s), "{s} separates");
            for v in &s {
                let mut smaller = s.clone();
                smaller.remove(v);
                assert!(
                    traversal::connected_avoiding(&g, a, b, &smaller),
                    "{s} minus {v} still separates — not minimal"
                );
            }
        }
    }

    #[test]
    fn budget_and_degenerate_cases() {
        let g = generators::complete_bipartite(2, 2); // many separators? 0-1 same side
        let seps = minimal_separators(&g, 0.into(), 1.into(), 100).unwrap();
        assert_eq!(seps.len(), 1); // the opposite side {2,3}
        let err = minimal_separators(&generators::cycle(8), 0.into(), 4.into(), 2).unwrap_err();
        assert_eq!(err.budget, 2);
        // Disconnected: the empty separator.
        let mut g = generators::path_graph(2);
        g.add_node(5.into());
        assert_eq!(
            minimal_separators(&g, 0.into(), 5.into(), 10).unwrap(),
            vec![NodeSet::new()]
        );
    }
}
