//! View functions of the Partial Knowledge Model.
//!
//! Each player `v` knows the topology of a subgraph γ(v) containing `v`
//! ([`ViewKind`] selects which), and a set `S` of players has the joint view
//! γ(S) = (∪ V_v, ∪ E_v). A [`ViewAssignment`] materializes γ for every node
//! of a graph and provides the joint-view operation.

use rmt_sets::{NodeId, NodeSet};

use crate::graph::Graph;
use crate::traversal;

/// The standard view functions studied in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ViewKind {
    /// Full topology knowledge: γ(v) = G.
    Full,
    /// The ad hoc model: γ(v) is the *star* around v — v, its neighbours,
    /// and the edges from v to them (the paper's γ(v) = 𝒩(v)).
    AdHoc,
    /// γ(v) is the subgraph induced on the ball of radius `k` around v.
    ///
    /// `Radius(1)` additionally contains the edges among v's neighbours,
    /// which `AdHoc` does not; `Radius(0)` is just `{v}`.
    Radius(usize),
}

impl ViewKind {
    /// Computes γ(v) for this kind on graph `g`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a node of `g`.
    pub fn view_of(self, g: &Graph, v: NodeId) -> Graph {
        assert!(g.contains_node(v), "node {v} is not present");
        match self {
            ViewKind::Full => g.clone(),
            ViewKind::AdHoc => {
                let mut star = Graph::new();
                star.add_node(v);
                for u in g.neighbors(v) {
                    star.add_edge(v, u);
                }
                star
            }
            ViewKind::Radius(k) => g.induced(&traversal::ball(g, v, k)),
        }
    }
}

impl std::fmt::Display for ViewKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViewKind::Full => write!(f, "full"),
            ViewKind::AdHoc => write!(f, "ad-hoc"),
            ViewKind::Radius(k) => write!(f, "radius-{k}"),
        }
    }
}

/// A materialized view function γ: one subgraph per node of the underlying
/// graph.
///
/// # Example
///
/// ```
/// use rmt_graph::{generators, ViewAssignment, ViewKind};
///
/// let g = generators::cycle(5);
/// let gamma = ViewAssignment::uniform(&g, ViewKind::AdHoc);
/// assert_eq!(gamma.view(2.into()).node_count(), 3); // v and two neighbours
/// let joint = gamma.joint_view(&[0u32, 1].into_iter().collect());
/// assert_eq!(joint.node_count(), 4); // {4,0,1,2}
/// ```
#[derive(Clone, Debug)]
pub struct ViewAssignment {
    views: Vec<Option<Graph>>,
    domain: NodeSet,
}

impl ViewAssignment {
    /// Assigns the same kind of view to every node of `g`.
    pub fn uniform(g: &Graph, kind: ViewKind) -> Self {
        Self::from_fn(g, |gr, v| kind.view_of(gr, v))
    }

    /// Assigns views computed by `f`, which may differ per node.
    ///
    /// # Panics
    ///
    /// Panics if some produced view does not contain its own node — the
    /// Partial Knowledge Model requires `v ∈ γ(v)`.
    pub fn from_fn(g: &Graph, mut f: impl FnMut(&Graph, NodeId) -> Graph) -> Self {
        let size = g.nodes().last().map_or(0, |v| v.index() + 1);
        let mut views = vec![None; size];
        for v in g.nodes() {
            let view = f(g, v);
            assert!(view.contains_node(v), "view of {v} must contain {v}");
            views[v.index()] = Some(view);
        }
        ViewAssignment {
            views,
            domain: g.nodes().clone(),
        }
    }

    /// The nodes this assignment covers.
    pub fn domain(&self) -> &NodeSet {
        &self.domain
    }

    /// The view γ(v).
    ///
    /// # Panics
    ///
    /// Panics if `v` has no assigned view.
    pub fn view(&self, v: NodeId) -> &Graph {
        self.views
            .get(v.index())
            .and_then(Option::as_ref)
            .unwrap_or_else(|| panic!("no view assigned to {v}"))
    }

    /// The joint view γ(S) = (∪_{v∈S} V_v, ∪_{v∈S} E_v).
    ///
    /// Nodes of `s` without an assigned view are skipped (they contribute
    /// nothing), matching the use on message sets where only reporting nodes
    /// count.
    pub fn joint_view(&self, s: &NodeSet) -> Graph {
        let mut out = Graph::new();
        for v in s {
            if let Some(Some(view)) = self.views.get(v.index()) {
                out.union_with(view);
            }
        }
        out
    }

    /// Replaces the view of a single node (used to model lying adversaries
    /// and custom knowledge scenarios).
    ///
    /// # Panics
    ///
    /// Panics if the new view does not contain `v`.
    pub fn set_view(&mut self, v: NodeId, view: Graph) {
        assert!(view.contains_node(v), "view of {v} must contain {v}");
        if v.index() >= self.views.len() {
            self.views.resize(v.index() + 1, None);
        }
        self.domain.insert(v);
        self.views[v.index()] = Some(view);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn full_view_is_the_graph() {
        let g = generators::cycle(4);
        let gamma = ViewAssignment::uniform(&g, ViewKind::Full);
        assert_eq!(gamma.view(0.into()), &g);
    }

    #[test]
    fn adhoc_view_is_a_star() {
        let g = generators::complete(4);
        let v = ViewKind::AdHoc.view_of(&g, 0.into());
        assert_eq!(v.node_count(), 4);
        assert_eq!(v.edge_count(), 3); // only edges incident to 0
        assert!(!v.has_edge(1.into(), 2.into()));
    }

    #[test]
    fn radius_one_includes_neighbour_edges() {
        let g = generators::complete(4);
        let v = ViewKind::Radius(1).view_of(&g, 0.into());
        assert_eq!(v.edge_count(), 6); // whole K4 is within the ball
        assert!(v.has_edge(1.into(), 2.into()));
    }

    #[test]
    fn radius_zero_is_self_only() {
        let g = generators::cycle(5);
        let v = ViewKind::Radius(0).view_of(&g, 3.into());
        assert_eq!(v.node_count(), 1);
        assert!(v.contains_node(3.into()));
    }

    #[test]
    fn joint_view_unions_node_views() {
        let g = generators::path_graph(5);
        let gamma = ViewAssignment::uniform(&g, ViewKind::AdHoc);
        let joint = gamma.joint_view(&[1u32, 3].into_iter().collect());
        // stars of 1 and 3: nodes {0,1,2} ∪ {2,3,4}
        assert_eq!(joint.node_count(), 5);
        assert!(joint.has_edge(0.into(), 1.into()));
        assert!(joint.has_edge(3.into(), 4.into()));
        assert!(!joint.has_edge(1.into(), 2.into()) || joint.has_edge(1.into(), 2.into()));
        assert_eq!(joint.edge_count(), 4);
    }

    #[test]
    fn set_view_overrides() {
        let g = generators::path_graph(3);
        let mut gamma = ViewAssignment::uniform(&g, ViewKind::AdHoc);
        let mut lie = Graph::new();
        lie.add_edge(1.into(), 9.into()); // fictitious node
        gamma.set_view(1.into(), lie.clone());
        assert_eq!(gamma.view(1.into()), &lie);
    }

    #[test]
    fn view_kind_display() {
        assert_eq!(ViewKind::Full.to_string(), "full");
        assert_eq!(ViewKind::AdHoc.to_string(), "ad-hoc");
        assert_eq!(ViewKind::Radius(2).to_string(), "radius-2");
    }
}
