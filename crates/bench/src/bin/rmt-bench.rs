//! The bench-artifact toolbox.
//!
//! ```text
//! rmt-bench compare BASELINE.json CANDIDATE.json [options]
//!     --max-time-ratio X   timing gate factor            (default 2.0)
//!     --min-time-ms N      timing noise floor in ms      (default 10)
//!     --counter-tolerance X  allowed relative counter drift (default 0)
//!     --ignore-timing      skip all duration comparisons (cross-machine)
//!     --strict             soft findings also fail the gate
//! rmt-bench show ARTIFACT.json
//! ```
//!
//! `compare` is the CI perf gate: it exits non-zero when a baseline
//! `BENCH_E<k>.json` and a freshly recorded candidate disagree on any
//! verdict column, or when a structured timing regresses beyond the
//! configured ratio. See `rmt_bench::compare` for the exact semantics.

use std::process::ExitCode;

use rmt_bench::compare::{compare_artifacts, CompareConfig};
use rmt_obs::Json;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("compare") => cmd_compare(&args[1..]),
        Some("show") => cmd_show(&args[1..]),
        _ => {
            eprintln!("usage: rmt-bench compare BASELINE CANDIDATE [options]");
            eprintln!("       rmt-bench show ARTIFACT");
            eprintln!("see the module docs for options");
            ExitCode::from(2)
        }
    }
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e:?}"))
}

fn cmd_compare(args: &[String]) -> ExitCode {
    let mut cfg = CompareConfig::default();
    let mut strict = false;
    let mut paths: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut numeric = |what: &str| -> Option<f64> {
            let v = it.next().and_then(|v| v.parse().ok());
            if v.is_none() {
                eprintln!("{what} needs a numeric argument");
            }
            v
        };
        match arg.as_str() {
            "--max-time-ratio" => match numeric("--max-time-ratio") {
                Some(x) => cfg.max_time_ratio = x,
                None => return ExitCode::from(2),
            },
            "--min-time-ms" => match numeric("--min-time-ms") {
                Some(x) => cfg.min_time_ns = (x * 1e6) as i64,
                None => return ExitCode::from(2),
            },
            "--counter-tolerance" => match numeric("--counter-tolerance") {
                Some(x) => cfg.counter_tolerance = x,
                None => return ExitCode::from(2),
            },
            "--ignore-timing" => cfg.check_timing = false,
            "--strict" => strict = true,
            p => paths.push(p),
        }
    }
    let [baseline_path, candidate_path] = paths.as_slice() else {
        eprintln!("usage: rmt-bench compare BASELINE CANDIDATE [options]");
        return ExitCode::from(2);
    };
    let (baseline, candidate) = match (load(baseline_path), load(candidate_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("error: {err}");
            }
            return ExitCode::from(2);
        }
    };
    let report = compare_artifacts(&baseline, &candidate, &cfg);
    print!("{}", report.render());
    if report.passed(strict) {
        println!("PASS: {candidate_path} vs {baseline_path}");
        ExitCode::SUCCESS
    } else {
        println!("FAIL: {candidate_path} vs {baseline_path}");
        ExitCode::FAILURE
    }
}

fn cmd_show(args: &[String]) -> ExitCode {
    let [path] = args else {
        eprintln!("usage: rmt-bench show ARTIFACT");
        return ExitCode::from(2);
    };
    let artifact = match load(path) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let field = |k: &str| artifact.get(k).map(Json::encode).unwrap_or_default();
    println!("experiment:  {}", field("experiment"));
    println!("schema:      {}", field("schema"));
    println!("params:      {}", field("params"));
    println!("build:       {}", field("build"));
    let rows = artifact
        .get("measurements")
        .and_then(Json::as_arr)
        .map_or(0, <[Json]>::len);
    println!("rows:        {rows}");
    if let Some(ns) = artifact
        .get("wall")
        .and_then(|w| w.get("ns"))
        .or_else(|| artifact.get("wall_ns"))
        .and_then(Json::as_i64)
    {
        println!("wall:        {}", rmt_obs::fmt_ns(ns.max(0) as u64));
    }
    if let Some(Json::Obj(counters)) = artifact.get("counters") {
        println!("counters:    {}", counters.len());
        for (name, v) in counters {
            println!("  {name} {}", v.encode());
        }
    }
    ExitCode::SUCCESS
}
