//! E13 — separator-anchored cut search at scale.
//!
//! The exhaustive `find_rmt_cut` scans `2^(n−2)` candidate cuts; the
//! anchored decider scans connected receiver-side components hanging off
//! each minimal D–R separator (see `rmt_core::cuts::anchored`), which on
//! sparse families is *polynomially* many candidates. This experiment
//! pushes exact decisions on the E6 ring+chords family well past the
//! exhaustive decider's practical ceiling:
//!
//! * for every `n` where the exhaustive decider still runs (≤ the
//!   `--exhaustive-max-n` cap) the verdicts are **asserted equal** and the
//!   speedup reported;
//! * beyond the cap only the anchored deciders run, up to `--max-n`
//!   (default 24 ≥ 22) — still exact, per the differential suite;
//! * the sequential observed decider's counters (anchors, components,
//!   partition checks, memo hits) land in the artifact.
//!
//! `--max-n N` / `--exhaustive-max-n N` bound the sweep (CI runs a small-n
//! profile); `--json` writes `BENCH_E13.json`.

use rmt_bench::{fmt_duration, timed, Experiment, Table};
use rmt_core::cuts::{find_rmt_cut, find_rmt_cut_anchored, find_rmt_cut_anchored_par};
use rmt_core::sampling::threshold_instance;
use rmt_graph::generators::{self, seeded};
use rmt_graph::ViewKind;
use rmt_obs::Registry;

/// Reads `--flag N` from the process arguments.
fn arg(flag: &str, default: usize) -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == flag {
            return args
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{flag} expects a number"));
        }
    }
    default
}

fn main() {
    let max_n = arg("--max-n", 24);
    let exhaustive_max_n = arg("--exhaustive-max-n", 18).min(max_n);
    let mut exp = Experiment::new("e13_anchored_scaling");
    exp.param("seed", "0xE13");
    exp.param("max_n", i64::try_from(max_n).unwrap_or(i64::MAX));
    exp.param(
        "exhaustive_max_n",
        i64::try_from(exhaustive_max_n).unwrap_or(i64::MAX),
    );
    let threads = exp.threads();
    let mut rng = seeded(0xE13);

    let mut table = Table::new(
        "E13: exhaustive vs anchored find_rmt_cut (ring+chords, global threshold)",
        &[
            "n",
            "t",
            "subsets",
            "anchors",
            "components",
            "verdict",
            "exhaustive",
            "anchored",
            "anchored-par",
            "speedup",
        ],
    );

    // Threshold 0 keeps the family solvable (full scans, the worst case for
    // both deciders); threshold 2 plants cuts on most draws (witness path).
    for &n in &[12usize, 14, 16, 18, 20, 22, 24] {
        if n > max_n {
            break;
        }
        let g = generators::ring_with_chords(n, n / 4, &mut rng);
        for t in [0usize, 2] {
            let inst = threshold_instance(g.clone(), t, ViewKind::AdHoc, 0, (n / 2) as u32);
            // Sequential observed run: per-(n, t) counters merged into the
            // artifact registry, and the local snapshot feeds the table.
            let local = Registry::new();
            let observed = rmt_core::cuts::find_rmt_cut_anchored_observed(&inst, &local);
            exp.registry().merge_from(&local);
            let anchors = local.counter("rmt_cut.separators_enumerated").get();
            let components = local.counter("rmt_cut.components_enumerated").get();

            let (anchored, t_anchored) = timed(|| find_rmt_cut_anchored(&inst));
            let (anchored_par, t_par) = timed(|| find_rmt_cut_anchored_par(&inst, threads));
            assert_eq!(anchored, anchored_par, "par diverged at n = {n}, t = {t}");
            assert_eq!(anchored, observed, "observed diverged at n = {n}, t = {t}");
            let verdict = if anchored.is_some() { "cut" } else { "no cut" };

            let (exhaustive_cell, speedup_cell) = if n <= exhaustive_max_n {
                let (exhaustive, t_exh) = timed(|| find_rmt_cut(&inst));
                assert_eq!(
                    exhaustive.is_some(),
                    anchored.is_some(),
                    "verdict diverged at n = {n}, t = {t}"
                );
                let speedup = t_exh.as_secs_f64() / t_anchored.as_secs_f64().max(1e-9);
                (fmt_duration(t_exh), format!("{speedup:.1}×"))
            } else {
                ("—".into(), "—".into())
            };

            table.row(&[
                n.to_string(),
                t.to_string(),
                (1u64 << (n - 2)).to_string(),
                anchors.to_string(),
                components.to_string(),
                verdict.into(),
                exhaustive_cell,
                fmt_duration(t_anchored),
                fmt_duration(t_par),
                speedup_cell,
            ]);
        }
    }
    table.print();
    exp.record_table(&table);
    exp.finish();
    println!("Shape check: the subsets column is the exhaustive decider's search space and");
    println!("doubles per row pair; the anchored components column grows polynomially on");
    println!("this sparse family, which is the whole point of the separator anchoring.");
}
