//! E16 — session throughput: amortizing RMT-PKA's per-message routing cost
//! over batched multi-payload sessions.
//!
//! The per-message protocol pays its full cost — knowledge announcements,
//! per-trail headers, per-node derivation — once *per transmitted value*.
//! A session (`rmt-session`) precomputes the payload-independent part once,
//! floods knowledge once, and coalesces all same-round same-link messages
//! into one compact frame. This experiment measures what that buys on the
//! E6 scaling family (ring-with-chords, threshold structures), per batch
//! size:
//!
//! * **wire bits/payload** — compact-codec bits actually crossing links,
//!   divided by the number of payloads. The headline amortization figure.
//! * **naive bits/payload** — what the per-message protocol spends per
//!   value (its honest-run bit estimate; batch-independent by definition).
//! * **amortized** — naive over wire: how many × cheaper a session payload
//!   is than a per-message payload at this batch size.
//! * **time/payload** — wall clock per payload through the synchronous
//!   scheduler (the bench suite `session_throughput` measures the same
//!   runs under Criterion).
//! * **WRONG** — session verdicts differing from the transmitted values.
//!   The differential gate pins batch 1 to the per-message runner exactly;
//!   here every cell must decide every slot correctly.
//!
//! Shape expectations (asserted): WRONG = 0 everywhere, and at n ≥ 12 the
//! batch-64 wire cost per payload undercuts batch-1 by ≥ 5× — the knowledge
//! flood dominates a single-payload session, and batching dilutes it.
//!
//! Flags: `--json` (write `BENCH_E16.json`), `--smoke` (skip the largest
//! instance for CI).

use rmt_bench::{fmt_duration, timed, Experiment, Table};
use rmt_core::protocols::rmt_pka::run_pka;
use rmt_core::sampling::threshold_instance;
use rmt_graph::generators::{self, seeded};
use rmt_graph::ViewKind;
use rmt_obs::Json;
use rmt_session::{Session, SessionPlan};
use rmt_sets::NodeSet;
use rmt_sim::SilentAdversary;

const BATCHES: &[usize] = &[1, 4, 16, 64];

fn main() {
    let smoke = std::env::args().skip(1).any(|a| a == "--smoke");
    let mut exp = Experiment::new("e16_session_throughput");
    exp.param("seed", "0xE16");
    exp.param("smoke", smoke);
    exp.param("family", "E6 ring_with_chords, threshold n/2");

    let sizes: &[usize] = if smoke { &[8, 12] } else { &[8, 12, 16] };
    let mut table = Table::new(
        "E16: batched session wire cost vs the per-message protocol \
         (honest runs; naive bits are the per-message protocol's estimate \
         per payload, wire bits are the compact codec's actual bytes)",
        &[
            "n",
            "batch",
            "rounds",
            "frames",
            "wire bits/payload",
            "naive bits/payload",
            "amortized",
            "time/payload",
            "WRONG",
        ],
    );

    let mut total_wrong = 0u64;
    let mut gate_ok = true;
    for &n in sizes {
        let mut rng = seeded(n as u64);
        let g = generators::ring_with_chords(n, n / 4, &mut rng);
        let inst = threshold_instance(g, 0, ViewKind::AdHoc, 0, n as u32 / 2);
        let naive = run_pka(&inst, 1000, SilentAdversary::new(NodeSet::new()));
        assert_eq!(
            naive.decision(inst.receiver()),
            Some(1000),
            "per-message baseline failed to transmit at n={n}"
        );
        let naive_bpp = naive.metrics.honest_bits as f64;
        let plan = SessionPlan::build(&inst);

        let mut batch1_bpp = f64::NAN;
        for &batch in BATCHES {
            let values: Vec<u64> = (0..batch as u64).map(|i| 1000 + i).collect();
            let (report, wall) = timed(|| Session::new(&plan, values.clone()).run_honest());
            let wrong = report
                .verdicts
                .iter()
                .zip(&values)
                .filter(|(v, x)| **v != Some(**x))
                .count() as u64;
            total_wrong += wrong;
            let wire_bpp = report.wire_bits_per_payload();
            if batch == 1 {
                batch1_bpp = wire_bpp;
            }
            if batch == 64 && n >= 12 && wire_bpp * 5.0 > batch1_bpp {
                gate_ok = false;
            }
            table.row(&[
                n.to_string(),
                batch.to_string(),
                report.wire.rounds.to_string(),
                report.wire.honest_messages.to_string(),
                format!("{wire_bpp:.0}"),
                format!("{naive_bpp:.0}"),
                format!("{:.1}×", naive_bpp / wire_bpp),
                fmt_duration(wall / batch as u32),
                wrong.to_string(),
            ]);
            report.record_into(exp.registry());
            exp.record(Json::obj([
                ("n", Json::Int(n as i64)),
                ("batch", Json::Int(batch as i64)),
                ("rounds", Json::Int(i64::from(report.wire.rounds))),
                ("frames", Json::Int(report.wire.honest_messages as i64)),
                ("wire bits/payload", Json::Num(wire_bpp)),
                ("naive bits/payload", Json::Num(naive_bpp)),
                (
                    "amortized",
                    Json::obj([
                        ("ratio", Json::Num(naive_bpp / wire_bpp)),
                        (
                            "human",
                            Json::from(format!("{:.1}×", naive_bpp / wire_bpp).as_str()),
                        ),
                    ]),
                ),
                ("wrong", Json::Int(wrong as i64)),
            ]));
        }
    }
    table.print();
    exp.finish();

    assert_eq!(
        total_wrong, 0,
        "a session verdict diverged from its transmitted value"
    );
    assert!(
        gate_ok,
        "amortization gate: batch-64 wire bits/payload must undercut batch-1 by ≥ 5× at n ≥ 12"
    );
    println!("Shape check: WRONG = 0 in every cell, and per-payload wire cost falls");
    println!("monotonically with batch size — the knowledge flood and trail headers are");
    println!("paid once per session, so batch 64 amortizes them ≥ 5× below batch 1.");
}
