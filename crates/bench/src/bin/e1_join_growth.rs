//! E1 / T1 — growth and cost of the ⊕ (joint view) operation.
//!
//! The paper's ⊕ is exact on antichains but its output can grow
//! multiplicatively; the deciders therefore use the lazy cylinder test.
//! This experiment quantifies the blow-up: for k players with radius-style
//! overlapping domains over a universe of n nodes, it reports the
//! materialized antichain size and fold time versus the lazy-membership
//! query time.

use rand::Rng;
use rmt_adversary::{JointView, RestrictedStructure};
use rmt_bench::{fmt_duration, mean, timed, Experiment, Table};
use rmt_core::sampling::random_structure;
use rmt_graph::generators::seeded;
use rmt_sets::{NodeId, NodeSet};

fn main() {
    let mut exp = Experiment::new("e1_join_growth");
    exp.param("seed", "0xE1");
    exp.param("trials_per_config", 20);
    let threads = exp.threads();
    let mut table = Table::new(
        "E1: ⊕ join growth (universe n, k operands, antichain ≤ s sets of ≤ 3 nodes)",
        &[
            "n",
            "k",
            "s",
            "⊕ antichain (mean)",
            "fold time",
            "lazy query",
            "agreement",
        ],
    );
    let mut rng = seeded(0xE1);
    for &(n, k, s) in &[
        (8usize, 2usize, 3usize),
        (8, 4, 3),
        (8, 8, 3),
        (12, 4, 4),
        (12, 8, 4),
        (12, 12, 4),
        (16, 8, 5),
        (16, 16, 5),
    ] {
        let mut sizes = Vec::new();
        let mut fold_times = Vec::new();
        let mut query_times = Vec::new();
        let mut agree = true;
        for _ in 0..20 {
            let universe = NodeSet::universe(n);
            let z = random_structure(&universe, s, 3, &mut rng);
            // k overlapping window domains.
            let parts: Vec<RestrictedStructure> = (0..k)
                .map(|i| {
                    let base = (i * n / k) as u32;
                    let dom: NodeSet = (0..=n as u32 / 2)
                        .map(|j| NodeId::new((base + j) % n as u32))
                        .collect();
                    RestrictedStructure::restrict(&z, dom)
                })
                .collect();
            let view: JointView = parts.into_iter().collect();
            let (materialized, t_fold) = timed(|| {
                view.materialize_bounded_par_observed(usize::MAX, threads, exp.registry())
                    .expect("unbounded materialization cannot blow up")
            });
            sizes.push(materialized.structure().maximal_sets().len() as f64);
            fold_times.push(t_fold.as_secs_f64());
            // Lazy queries on random candidates; cross-check agreement.
            let (ok, t_q) = timed(|| {
                let mut ok = true;
                for _ in 0..50 {
                    let cand: NodeSet = (0..n as u32)
                        .filter(|_| rng.random_bool(0.3))
                        .map(NodeId::new)
                        .collect();
                    ok &= view.contains(&cand) == materialized.contains(&cand);
                }
                ok
            });
            agree &= ok;
            query_times.push(t_q.as_secs_f64() / 50.0);
        }
        table.row(&[
            n.to_string(),
            k.to_string(),
            s.to_string(),
            format!("{:.1}", mean(&sizes)),
            fmt_duration(std::time::Duration::from_secs_f64(mean(&fold_times))),
            fmt_duration(std::time::Duration::from_secs_f64(mean(&query_times))),
            if agree {
                "✓".into()
            } else {
                "✗".to_string()
            },
        ]);
    }
    table.print();
    exp.record_table(&table);
    exp.finish();
    println!("Shape check: antichain size and fold time grow with k and s; the lazy");
    println!("cylinder query stays flat — matching the design choice in DESIGN.md §3.1.");
}
