//! E9 — the classical special cases inside the general framework: PPA under
//! full knowledge (pair-cut characterization) and reliable Broadcast
//! (Definition 10).
//!
//! * **E9a**: on random full-knowledge instances the RMT-cut degenerates to
//!   the classical pair cut, and PPA (credibility rule) delivers exactly on
//!   the pair-cut-free ones.
//! * **E9b**: broadcast solvability (no Definition-10 𝒵-pp cut) equals
//!   "RMT solvable for every receiver", and simulated broadcast Z-CPA covers
//!   exactly the fixpoint-predicted node set.

use rmt_bench::{Experiment, Table};
use rmt_core::broadcast;
use rmt_core::cuts::find_rmt_cut_par_observed;
use rmt_core::protocols::ppa::{pair_cut_exists, run_ppa};
use rmt_core::sampling::{random_instance_nonadjacent, random_structure};
use rmt_core::Instance;
use rmt_graph::generators::{self, seeded};
use rmt_graph::ViewKind;
use rmt_sim::{Runner, SilentAdversary};

fn main() {
    let mut rng = seeded(0xE9);
    let trials = 50;
    let mut exp = Experiment::new("e9_baselines");
    exp.param("seed", "0xE9");
    let threads = exp.threads();
    exp.param("trials", trials as i64);

    // E9a: full knowledge.
    let mut cut_agree = 0;
    let mut solvable = 0;
    let mut delivered = 0;
    for trial in 0..trials {
        let n = 5 + trial % 5;
        let inst = random_instance_nonadjacent(n, 0.35, ViewKind::Full, 3, 2, &mut rng);
        let pair = pair_cut_exists(&inst);
        if pair == find_rmt_cut_par_observed(&inst, exp.registry(), threads).is_some() {
            cut_agree += 1;
        } else {
            eprintln!("CUT MISMATCH on {inst:?}");
        }
        if !pair {
            solvable += 1;
            let ok = inst.worst_case_corruptions().iter().all(|t| {
                run_ppa(&inst, 7, SilentAdversary::new(t.clone())).decision(inst.receiver())
                    == Some(7)
            });
            if ok {
                delivered += 1;
            } else {
                eprintln!("PPA MISMATCH on {inst:?}");
            }
        }
    }
    let mut t1 = Table::new(
        "E9a: full knowledge — RMT-cut ≡ pair cut, PPA delivers on solvable instances",
        &[
            "instances",
            "RMT-cut ≡ pair-cut",
            "solvable",
            "PPA delivers",
        ],
    );
    t1.row(&[
        trials.to_string(),
        format!("{cut_agree}/{trials}"),
        solvable.to_string(),
        format!("{delivered}/{solvable}"),
    ]);
    t1.print();

    // E9b: broadcast.
    let mut equiv = 0;
    let mut coverage_match = 0;
    let mut coverage_checked = 0;
    for trial in 0..trials {
        let n = 5 + trial % 4;
        let g = generators::gnp_connected(n, 0.4, &mut rng);
        let z = random_structure(g.nodes(), 3, 2, &mut rng);
        let inst =
            Instance::new(g.clone(), z.clone(), ViewKind::AdHoc, 0.into(), 1.into()).unwrap();
        let broadcast_ok = broadcast::solvable(&inst);
        let per_receiver = g.nodes().iter().filter(|v| v.raw() != 0).all(|r| {
            let i = Instance::new(g.clone(), z.clone(), ViewKind::AdHoc, 0.into(), r).unwrap();
            rmt_core::cuts::zcpa_resilient(&i)
        });
        if broadcast_ok == per_receiver {
            equiv += 1;
        }
        for t in broadcast::worst_case_corruptions(&inst) {
            let predicted = broadcast::coverage(&inst, &t);
            let out = Runner::new(
                g.clone(),
                |v| broadcast::zcpa_broadcast_node(&inst, v, 9),
                SilentAdversary::new(t.clone()),
            )
            .run();
            coverage_checked += 1;
            let matches = g.nodes().iter().all(|v| {
                v == inst.dealer()
                    || t.contains(v)
                    || (out.decision(v) == Some(9)) == predicted.contains(v)
            });
            if matches {
                coverage_match += 1;
            }
        }
    }
    let mut t2 = Table::new(
        "E9b: broadcast — Definition-10 cut ≡ ∀-receiver RMT; simulated coverage ≡ fixpoint",
        &[
            "instances",
            "equivalence",
            "coverage runs",
            "coverage matches",
        ],
    );
    t2.row(&[
        trials.to_string(),
        format!("{equiv}/{trials}"),
        coverage_checked.to_string(),
        format!("{coverage_match}/{coverage_checked}"),
    ]);
    t2.print();
    exp.record_table(&t1);
    exp.record_table(&t2);
    exp.finish();

    println!("Shape check: both classical special cases drop out of the general machinery");
    println!("with exact agreement — the subsumption the general adversary model promises.");
}
