//! E7 / T7 — the self-reduction of Theorem 9 and poly-time uniqueness of
//! Z-CPA (Corollary 10).
//!
//! Runs Z-CPA twice on each random ad hoc instance: once with the explicit
//! membership oracle, once with the Π-simulation oracle (the Decision
//! Protocol that answers `N ∉ 𝒵_v` by coupled runs of Π on derived star
//! instances). The theory predicts identical decisions on every node; the
//! experiment also reports the number of Π simulations and the wall-clock
//! overhead factor — polynomial, as the theorem promises.

use rmt_bench::{mean, timed, Experiment, Table};
use rmt_core::protocols::zcpa::ZCpa;
use rmt_core::reduction::PiSimulationOracle;
use rmt_core::sampling::random_instance;
use rmt_graph::generators::seeded;
use rmt_graph::ViewKind;
use rmt_sim::{Runner, SilentAdversary};

fn main() {
    let mut rng = seeded(0xE7);
    let mut exp = Experiment::new("e7_self_reduction");
    exp.param("seed", "0xE7");
    exp.param("trials_per_n", 20);
    // Π-simulation runs are rng-coupled and inherently sequential; the knob
    // is recorded for artifact uniformity.
    let _ = exp.threads();
    let mut table = Table::new(
        "E7: Z-CPA explicit oracle vs Π-simulation oracle (20 instances per n)",
        &[
            "n",
            "decisions identical",
            "Π simulations (mean)",
            "queries (mean)",
            "overhead ×(mean)",
        ],
    );
    for &n in &[6usize, 8, 10, 12] {
        let trials = 20;
        let mut identical = 0;
        let mut sims = Vec::new();
        let mut queries = Vec::new();
        let mut overheads = Vec::new();
        for trial in 0..trials {
            let inst = random_instance(n, 0.4, ViewKind::AdHoc, 3, 2, &mut rng);
            // One random admissible silent corruption to make it interesting.
            let corrupt = inst
                .worst_case_corruptions()
                .into_iter()
                .nth(trial % 2)
                .unwrap_or_default();
            let (explicit, t_explicit) = timed(|| {
                Runner::new(
                    inst.graph().clone(),
                    |v| ZCpa::node(&inst, v, 7),
                    SilentAdversary::new(corrupt.clone()),
                )
                .run()
            });
            let (simulated, t_sim) = timed(|| {
                Runner::new(
                    inst.graph().clone(),
                    |v| {
                        ZCpa::with_oracle(
                            &inst,
                            v,
                            7,
                            PiSimulationOracle::for_node(&inst, v, 1 << 20),
                        )
                    },
                    SilentAdversary::new(corrupt.clone()),
                )
                .run()
            });
            let all_equal = inst
                .graph()
                .nodes()
                .iter()
                .all(|v| explicit.decision(v) == simulated.decision(v));
            if all_equal {
                identical += 1;
            } else {
                eprintln!("ORACLE MISMATCH on {inst:?}");
            }
            let (s, q): (u64, u64) = inst
                .graph()
                .nodes()
                .iter()
                .filter_map(|v| simulated.protocol(v))
                .map(|p| {
                    (p.oracle().simulations(), {
                        use rmt_core::protocols::zcpa::MembershipOracle as _;
                        p.oracle().queries()
                    })
                })
                .fold((0, 0), |(a, b), (x, y)| (a + x, b + y));
            sims.push(s as f64);
            queries.push(q as f64);
            overheads.push(t_sim.as_secs_f64() / t_explicit.as_secs_f64().max(1e-9));
        }
        table.row(&[
            n.to_string(),
            format!("{identical}/{trials}"),
            format!("{:.1}", mean(&sims)),
            format!("{:.1}", mean(&queries)),
            // Wall-clock-derived: the × suffix marks it as a ratio cell, so
            // `rmt-bench compare` treats drift as soft, not a verdict flip.
            format!("{:.1}×", mean(&overheads)),
        ]);
    }
    table.print();
    exp.record_table(&table);
    exp.finish();
    println!("Shape check: decisions identical everywhere (the Decision Protocol answers");
    println!("every membership query correctly); simulations grow polynomially with n, so");
    println!("Z-CPA-with-Π stays fully polynomial — Corollary 10 in action.");
}
