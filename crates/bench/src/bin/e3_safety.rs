//! E3 / T3 — safety of RMT-PKA (Theorem 4).
//!
//! Sweeps every implemented attack — including fictitious-topology lies —
//! over random instances (solvable and unsolvable alike) and every
//! worst-case corruption set, and counts the receiver's outcomes. The
//! paper's claim: the wrong-decision column is **zero**, unconditionally.

use rmt_bench::{Experiment, Table};
use rmt_core::analysis::pka_attack_suite;
use rmt_core::cuts::find_rmt_cut_par_observed;
use rmt_core::protocols::attacks::{PkaAttack, PKA_ATTACKS};
use rmt_core::sampling::random_instance;
use rmt_graph::generators::seeded;
use rmt_graph::ViewKind;

fn main() {
    let mut rng = seeded(0xE3);
    let mut exp = Experiment::new("e3_safety");
    exp.param("seed", "0xE3");
    let threads = exp.threads();
    exp.param("trials_per_attack", 50);
    let mut table = Table::new(
        "E3: safety sweep (receiver outcomes per attack, 50 random instances each)",
        &["attack", "runs", "correct", "undecided", "WRONG"],
    );
    let trials = 50;
    for attack in PKA_ATTACKS {
        let mut runs = 0;
        let mut correct = 0;
        let mut undecided = 0;
        let mut wrong = 0;
        for trial in 0..trials {
            let n = 5 + trial % 5;
            let views = if trial % 2 == 0 {
                ViewKind::AdHoc
            } else {
                ViewKind::Radius(2)
            };
            let inst = random_instance(n, 0.4, views, 3, 2, &mut rng);
            // Classify with the instrumented decider so the artifact's
            // counters record the search effort behind the sweep.
            if find_rmt_cut_par_observed(&inst, exp.registry(), threads).is_some() {
                exp.registry().counter("e3.unsolvable_instances").inc();
            } else {
                exp.registry().counter("e3.solvable_instances").inc();
            }
            let report = pka_attack_suite(&inst, 7, &[attack], trial as u64);
            runs += report.runs;
            correct += report.correct;
            undecided += report.undecided;
            wrong += report.violations.len();
            for v in &report.violations {
                eprintln!("SAFETY VIOLATION under {attack}: {v:?} on {inst:?}");
            }
        }
        table.row(&[
            attack.to_string(),
            runs.to_string(),
            correct.to_string(),
            undecided.to_string(),
            wrong.to_string(),
        ]);
        let _: PkaAttack = attack;
    }
    table.print();
    exp.record_table(&table);
    exp.finish();
    println!("Shape check: WRONG = 0 everywhere (Theorem 4); undecided > 0 only where");
    println!("the adversary is strong enough to create an RMT-cut scenario.");
}
