//! E6 / T6 — efficiency: Z-CPA is fully polynomial, RMT-PKA's path
//! propagation is exponential (the motivation for Section 5).
//!
//! Honest runs on two families — rings with chords (sparse, few paths) and
//! layered networks (dense, exponentially many paths) — reporting rounds,
//! messages and bits for both protocols. The shape to observe: Z-CPA's
//! message count grows linearly-to-quadratically in n, RMT-PKA's explodes
//! with the simple-path count of the family.

use rmt_bench::{fmt_duration, timed, Experiment, Table};
use rmt_core::cuts::{
    find_rmt_cut, find_rmt_cut_anchored, find_rmt_cut_anchored_par, find_rmt_cut_par,
    zcpa_fixpoint_observed,
};
use rmt_core::protocols::rmt_pka::RmtPka;
use rmt_core::protocols::zcpa::run_zcpa;
use rmt_core::sampling::threshold_instance;
use rmt_graph::generators::{self, seeded};
use rmt_graph::ViewKind;
use rmt_sets::NodeSet;
use rmt_sim::SilentAdversary;

fn main() {
    let mut exp = Experiment::new("e6_scaling");
    exp.param("seed", "0xE6");
    exp.param("dealer_value", 7);
    let threads = exp.threads();
    let mut table = Table::new(
        "E6: honest-run complexity, Z-CPA vs RMT-PKA (threshold 𝒵, adaptive t)",
        &[
            "family",
            "n",
            "paths D→R",
            "Z-CPA msgs",
            "Z-CPA bits",
            "Z-CPA rounds",
            "Z-CPA time",
            "PKA msgs",
            "PKA bits",
            "PKA rounds",
            "PKA time",
        ],
    );
    let mut rng = seeded(0xE6);

    let mut cases: Vec<(String, rmt_graph::Graph, u32, u32)> = Vec::new();
    for &n in &[8usize, 12, 16, 20] {
        cases.push((
            format!("ring+{}ch", n / 4),
            generators::ring_with_chords(n, n / 4, &mut rng),
            0,
            (n / 2) as u32,
        ));
    }
    for &layers in &[2usize, 3, 4] {
        let (g, d, r) = generators::layered(layers, 3, 0.5, &mut rng);
        cases.push((format!("layered({layers}×3)"), g, d.raw(), r.raw()));
    }

    for (name, g, d, r) in cases {
        let n = g.node_count();
        let paths = rmt_graph::paths::count_simple_paths(&g, d.into(), r.into(), 1_000_000)
            .map(|c| c.to_string())
            .unwrap_or_else(|_| ">1e6".into());
        // The largest global threshold the family tolerates under Z-CPA
        // (rings with few chords only take t = 0; layered networks t = 1).
        let t = (0..=2)
            .rev()
            .find(|&t| {
                rmt_core::cuts::zcpa_resilient(&threshold_instance(
                    g.clone(),
                    t,
                    ViewKind::AdHoc,
                    d,
                    r,
                ))
            })
            .expect("t = 0 is always resilient on a connected graph");
        let inst = threshold_instance(g, t, ViewKind::AdHoc, d, r);
        // Honest-run certification fixpoint through the instrumented decider:
        // its sweep/check counters land in the artifact.
        let _ = zcpa_fixpoint_observed(&inst, &NodeSet::new(), exp.registry());
        let (zcpa, t_z) = timed(|| run_zcpa(&inst, 7, SilentAdversary::new(NodeSet::new())));
        assert_eq!(
            zcpa.decision(inst.receiver()),
            Some(7),
            "{name}: Z-CPA failed"
        );
        let (pka, t_p) = timed(|| {
            rmt_sim::Runner::new(
                inst.graph().clone(),
                |v| RmtPka::node(&inst, v, 7),
                SilentAdversary::new(NodeSet::new()),
            )
            .run()
        });
        assert_eq!(pka.decision(inst.receiver()), Some(7), "{name}: PKA failed");
        table.row(&[
            name,
            n.to_string(),
            paths,
            zcpa.metrics.honest_messages.to_string(),
            zcpa.metrics.honest_bits.to_string(),
            zcpa.metrics.rounds.to_string(),
            fmt_duration(t_z),
            pka.metrics.honest_messages.to_string(),
            pka.metrics.honest_bits.to_string(),
            pka.metrics.rounds.to_string(),
            fmt_duration(t_p),
        ]);
    }
    table.print();

    // Z-CPA alone at real sizes: the "fully polynomial" claim is not just
    // asymptotic talk — the simulator runs thousand-node instances in
    // milliseconds while PKA is already infeasible at n ≈ 25.
    let mut big = Table::new(
        "E6b: Z-CPA at scale (w×w king grid, global threshold t = 1, honest run)",
        &["n", "msgs", "bits", "rounds", "time"],
    );
    for &w in &[5usize, 10, 20, 30] {
        let g = generators::king_grid(w, w);
        let n = g.node_count();
        let inst = threshold_instance(g, 1, ViewKind::AdHoc, 0, (w * w - 1) as u32);
        let _ = zcpa_fixpoint_observed(&inst, &NodeSet::new(), exp.registry());
        let (out, t) = timed(|| run_zcpa(&inst, 7, SilentAdversary::new(NodeSet::new())));
        assert_eq!(out.decision(inst.receiver()), Some(7), "grid {w}×{w}");
        big.row(&[
            n.to_string(),
            out.metrics.honest_messages.to_string(),
            out.metrics.honest_bits.to_string(),
            out.metrics.rounds.to_string(),
            fmt_duration(t),
        ]);
    }
    big.print();

    // Sequential vs parallel decision engine on a full exhaustive scan: a
    // *solvable* ring forces `find_rmt_cut` through every one of the
    // 2^(n−2) candidate cuts before answering `None`, which is the
    // worst case the parallel search is built for. The witness equality
    // is asserted, not assumed. Speedup tracks the available cores
    // (`--threads`/`RMT_THREADS`); on a single-core host both rows
    // coincide.
    let mut par = Table::new(
        "E6c: find_rmt_cut, exhaustive vs anchored (ring+chords, solvable instances)",
        &["n", "subsets", "mode", "threads", "result", "time"],
    );
    for &n in &[14usize, 18] {
        let g = generators::ring_with_chords(n, n / 4, &mut rng);
        let inst = threshold_instance(g, 0, ViewKind::AdHoc, 0, (n / 2) as u32);
        let subsets = 1u64 << (n - 2);
        let (seq, t_seq) = timed(|| find_rmt_cut(&inst));
        let (parallel, t_par) = timed(|| find_rmt_cut_par(&inst, threads));
        assert_eq!(seq, parallel, "parallel decider diverged at n = {n}");
        let (anchored, t_anc) = timed(|| find_rmt_cut_anchored(&inst));
        let (anchored_par, t_anc_par) = timed(|| find_rmt_cut_anchored_par(&inst, threads));
        assert_eq!(anchored, anchored_par, "anchored par diverged at n = {n}");
        assert_eq!(
            seq.is_some(),
            anchored.is_some(),
            "anchored verdict diverged at n = {n}"
        );
        let result = if seq.is_some() { "cut" } else { "no cut" };
        par.row(&[
            n.to_string(),
            subsets.to_string(),
            "sequential".into(),
            "1".into(),
            result.into(),
            fmt_duration(t_seq),
        ]);
        par.row(&[
            n.to_string(),
            subsets.to_string(),
            "parallel".into(),
            threads.to_string(),
            result.into(),
            fmt_duration(t_par),
        ]);
        par.row(&[
            n.to_string(),
            subsets.to_string(),
            "anchored".into(),
            "1".into(),
            result.into(),
            fmt_duration(t_anc),
        ]);
        par.row(&[
            n.to_string(),
            subsets.to_string(),
            "anchored-par".into(),
            threads.to_string(),
            result.into(),
            fmt_duration(t_anc_par),
        ]);
    }
    par.print();
    exp.record_table(&table);
    exp.record_table(&big);
    exp.record_table(&par);
    exp.finish();
    println!("Shape check: Z-CPA columns grow polynomially with n; the PKA columns track");
    println!("the simple-path count (exponential on the layered family) — exactly the");
    println!("efficiency gap motivating the poly-time-uniqueness question of Section 5.");
}
