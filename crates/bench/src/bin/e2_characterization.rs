//! E2 / T2 — tightness of the RMT-cut characterization (Theorems 3 + 5).
//!
//! For a sweep of random partial-knowledge instances this experiment builds
//! the 2×2 confusion matrix between the ground truth (`RMT-cut exists?`,
//! computed exactly) and the protocol outcome:
//!
//! * no RMT-cut  → RMT-PKA must decide the dealer's value under *every*
//!   attack in the suite (Theorem 5);
//! * RMT-cut     → the scenario-swap attack built from the witness must
//!   block RMT-PKA (Theorem 3 — no safe algorithm can decide), and the
//!   receiver-side views must be provably identical across the coupled runs.
//!
//! A perfect diagonal is the paper's prediction.

use rmt_bench::{Experiment, Table};
use rmt_core::analysis::{pka_attack_suite, run_coupled_attack};
use rmt_core::cuts::{find_rmt_cut_anchored_par_observed, find_rmt_cut_par};
use rmt_core::protocols::attacks::PKA_ATTACKS;
use rmt_core::sampling::random_instance_nonadjacent;
use rmt_graph::generators::seeded;
use rmt_graph::ViewKind;

fn main() {
    let mut rng = seeded(0xE2);
    let mut exp = Experiment::new("e2_characterization");
    exp.param("seed", "0xE2");
    let threads = exp.threads();
    exp.param("trials_per_view", 40);
    exp.param("join_limit", 1 << 14);
    let mut table = Table::new(
        "E2: characterization confusion matrix (random instances, ad hoc + radius-2 views)",
        &[
            "views",
            "instances",
            "solvable",
            "unsolvable",
            "✓ PKA ok",
            "✓ attack blocks",
            "mismatches",
        ],
    );
    let trials = 40;
    for views in [ViewKind::AdHoc, ViewKind::Radius(2)] {
        let mut solvable = 0;
        let mut unsolvable = 0;
        let mut pka_ok = 0;
        let mut blocked_ok = 0;
        let mut mismatches = 0;
        for trial in 0..trials {
            let n = 6 + trial % 4;
            let inst = random_instance_nonadjacent(n, 0.35, views, 3, 2, &mut rng);
            let witness = find_rmt_cut_anchored_par_observed(&inst, exp.registry(), threads);
            // The anchored search is the decider under test; the exhaustive
            // scan remains the in-run ground truth for the verdict.
            assert_eq!(
                witness.is_some(),
                find_rmt_cut_par(&inst, threads).is_some(),
                "anchored verdict diverged on trial {trial} ({views:?})"
            );
            match witness {
                None => {
                    solvable += 1;
                    let report = pka_attack_suite(&inst, 7, &PKA_ATTACKS, trial as u64);
                    if report.all_correct() {
                        pka_ok += 1;
                    } else {
                        mismatches += 1;
                        eprintln!("MISMATCH (should solve): {inst:?} → {report:?}");
                    }
                }
                Some(witness) => {
                    unsolvable += 1;
                    match run_coupled_attack(&inst, &witness, 0, 1, 1 << 14) {
                        Ok(rep)
                            if rep.blocked && rep.receiver_views_equal && !rep.safety_violation =>
                        {
                            blocked_ok += 1;
                        }
                        Ok(rep) => {
                            mismatches += 1;
                            eprintln!("MISMATCH (should block): {witness:?} → {rep:?}");
                        }
                        Err(e) => {
                            // Join blow-up: cannot construct the attack; count
                            // separately rather than as a mismatch.
                            eprintln!("skipped (join blow-up: {e})");
                            unsolvable -= 1;
                        }
                    }
                }
            }
        }
        table.row(&[
            views.to_string(),
            trials.to_string(),
            solvable.to_string(),
            unsolvable.to_string(),
            format!("{pka_ok}/{solvable}"),
            format!("{blocked_ok}/{unsolvable}"),
            mismatches.to_string(),
        ]);
    }
    table.print();
    exp.record_table(&table);
    exp.finish();
    println!("Shape check: perfect diagonal — protocol success exactly where no RMT-cut");
    println!("exists, provable blocking (equal receiver views) exactly where one does.");
}
