//! E5 / T5 — the ad hoc characterization (Theorems 7 + 8) and the CPA
//! correspondence.
//!
//! Three checks over random ad hoc instances:
//!
//! 1. the exhaustive 𝒵-pp-cut decider and the polynomial Z-CPA fixpoint
//!    decider agree instance-by-instance;
//! 2. the simulated Z-CPA protocol under the attack suite succeeds exactly
//!    where no 𝒵-pp cut exists (safe and unique in the ad hoc model);
//! 3. classic CPA (t+1 rule) and Z-CPA instantiated with the t-local
//!    threshold trace decide identically on every node.

use rand::Rng;
use rmt_bench::{Experiment, Table};
use rmt_core::analysis::zcpa_attack_suite;
use rmt_core::cuts::{zpp_cut_by_enumeration_par, zpp_cut_by_fixpoint_par_observed};
use rmt_core::protocols::attacks::ZCPA_ATTACKS;
use rmt_core::protocols::cpa::{zcpa_threshold_node, CpaClassic};
use rmt_core::sampling::{random_instance_nonadjacent, random_structure};
use rmt_core::Instance;
use rmt_graph::generators::{self, seeded};
use rmt_graph::ViewKind;
use rmt_sets::{NodeId, NodeSet};
use rmt_sim::{Runner, SilentAdversary};

fn main() {
    let mut rng = seeded(0xE5);
    let trials = 60;
    let mut exp = Experiment::new("e5_adhoc");
    exp.param("seed", "0xE5");
    let threads = exp.threads();
    exp.param("trials", trials as i64);

    // 1 + 2: deciders agree; protocol matches the characterization.
    let mut agree = 0;
    let mut solvable = 0;
    let mut proto_match = 0;
    for trial in 0..trials {
        let n = 6 + trial % 4;
        let inst = random_instance_nonadjacent(n, 0.35, ViewKind::AdHoc, 3, 2, &mut rng);
        let enumerated = zpp_cut_by_enumeration_par(&inst, threads).is_some();
        let fixpoint = zpp_cut_by_fixpoint_par_observed(&inst, exp.registry(), threads).is_some();
        if enumerated == fixpoint {
            agree += 1;
        } else {
            eprintln!("DECIDER MISMATCH on {inst:?}");
        }
        let report = zcpa_attack_suite(&inst, 7, &ZCPA_ATTACKS);
        if !fixpoint {
            solvable += 1;
            if report.all_correct() {
                proto_match += 1;
            } else {
                eprintln!("PROTOCOL MISMATCH (should solve) on {inst:?}: {report:?}");
            }
        } else if !report.safe() {
            eprintln!("SAFETY VIOLATION on {inst:?}: {report:?}");
        }
    }
    let mut t1 = Table::new(
        "E5a: ad hoc deciders and protocol vs characterization",
        &[
            "instances",
            "deciders agree",
            "solvable",
            "Z-CPA suite all-correct",
        ],
    );
    t1.row(&[
        trials.to_string(),
        format!("{agree}/{trials}"),
        solvable.to_string(),
        format!("{proto_match}/{solvable}"),
    ]);
    t1.print();

    // 3: CPA ≡ Z-CPA(threshold trace).
    let mut nodes_checked = 0u64;
    let mut nodes_equal = 0u64;
    for trial in 0..trials {
        let n = 6 + trial % 4;
        let g = generators::gnp_connected(n, 0.5, &mut rng);
        let t = 1 + trial % 2;
        let d = NodeId::new(0);
        let r = NodeId::new(n as u32 - 1);
        let z = random_structure(g.nodes(), 2, 2, &mut rng); // irrelevant to both
        let inst = Instance::new(g.clone(), z, ViewKind::AdHoc, d, r).unwrap();
        let corrupt: NodeSet = g
            .nodes()
            .iter()
            .filter(|v| *v != d && *v != r && rng.random_bool(0.2))
            .collect();
        let cpa = Runner::new(
            g.clone(),
            |v| CpaClassic::node(d, r, t, v, 11),
            SilentAdversary::new(corrupt.clone()),
        )
        .run();
        let zcpa = Runner::new(
            g.clone(),
            |v| zcpa_threshold_node(&inst, t, v, 11),
            SilentAdversary::new(corrupt),
        )
        .run();
        for v in g.nodes() {
            nodes_checked += 1;
            if cpa.decision(v) == zcpa.decision(v) {
                nodes_equal += 1;
            }
        }
    }
    let mut t2 = Table::new(
        "E5b: classic CPA ≡ Z-CPA(threshold trace)",
        &["node decisions compared", "identical"],
    );
    t2.row(&[
        nodes_checked.to_string(),
        format!("{nodes_equal}/{nodes_checked}"),
    ]);
    t2.print();
    exp.record_table(&t1);
    exp.record_table(&t2);
    exp.finish();

    println!("Shape check: full agreement in all three columns — the polynomial fixpoint");
    println!("decider, the exhaustive cut search, the protocol, and the CPA special case");
    println!("all realize the same Theorem 7+8 characterization.");
}
