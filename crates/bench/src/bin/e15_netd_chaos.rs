//! E15 — RMT-PKA over real sockets under process and connection chaos.
//!
//! E12 stressed the paper's guarantees under a *modelled* asynchronous
//! network; E15 runs the third transport — `rmt-netd`'s socket-backed
//! sessions, where payloads genuinely cross loopback TCP — and applies
//! *physical* chaos on top: node kill/restart, link sever/restore, a
//! permanent relay kill, and a starved bounded queue on a severed dealer
//! edge. Each cell reports:
//!
//! * **WRONG** — receiver decisions differing from the dealer's input.
//!   Safety is structural (Theorem 4), so this must be **0 in every cell**
//!   no matter what the transport does.
//! * **decided** / **stalled** — liveness, which chaos is allowed to break.
//! * **losses** — messages shed by bounded queues, every one matched by an
//!   explicit `FaultDrop`; silent loss would show up as an inconsistency
//!   between this column and the recorded events.
//!
//! The logical outcome of a session is deterministic for a fixed chaos
//! plan — admission ordering is recovered at the model layer, so only
//! physical transport counters (dials, reconnects) vary run to run; the
//! artifact records the deterministic columns only.
//!
//! Flags: `--json` (write `BENCH_E15.json`), `--smoke` (reduced fleet for
//! CI).

use rmt_bench::{Experiment, Table};
use rmt_core::cuts::find_rmt_cut;
use rmt_core::protocols::rmt_pka::RmtPka;
use rmt_core::Instance;
use rmt_graph::ViewKind;
use rmt_hunt::{Family, InstanceSpec};
use rmt_netd::{run_session, ChaosPlan, Daemon, NetdConfig};
use rmt_obs::Json;
use rmt_sets::{NodeId, NodeSet};
use rmt_sim::SilentAdversary;

const INPUT: u64 = 1207;

/// A relay adjacent to the dealer that is not the receiver (the node whose
/// loss hurts transmission most without trivially cutting it).
fn dealer_relay(inst: &Instance) -> NodeId {
    inst.graph()
        .neighbors(inst.dealer())
        .iter()
        .find(|&v| v != inst.receiver())
        .unwrap_or_else(|| inst.receiver())
}

struct Scenario {
    name: &'static str,
    build: fn(&Instance) -> ChaosPlan,
    config: fn() -> NetdConfig,
}

const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "baseline (no chaos)",
        build: |_| ChaosPlan::new(),
        config: NetdConfig::default,
    },
    Scenario {
        name: "kill relay @r1, restart @r3",
        build: |inst| {
            ChaosPlan::new()
                .with_kill(dealer_relay(inst), 1)
                .with_restart(dealer_relay(inst), 3)
        },
        config: NetdConfig::default,
    },
    Scenario {
        name: "kill relay @r1, no restart",
        build: |inst| ChaosPlan::new().with_kill(dealer_relay(inst), 1),
        config: NetdConfig::default,
    },
    Scenario {
        name: "sever dealer edge r0–r1",
        build: |inst| ChaosPlan::new().with_sever(inst.dealer(), dealer_relay(inst), 0, 1),
        config: NetdConfig::default,
    },
    Scenario {
        name: "eternal sever, queue=1",
        build: |inst| ChaosPlan::new().with_sever(inst.dealer(), dealer_relay(inst), 0, u32::MAX),
        config: || NetdConfig {
            queue_budget: 1,
            backpressure_wait_ms: 200,
            heal_wait_ms: 300,
            max_rounds: Some(12),
            ..NetdConfig::default()
        },
    },
];

fn main() {
    let smoke = std::env::args().skip(1).any(|a| a == "--smoke");
    let mut exp = Experiment::new("e15_netd_chaos");
    exp.param("seed", "0xE15");
    exp.param("smoke", smoke);
    let threads = exp.threads();

    // Solvable E2/E3 instances: "stalled" always means chaos broke
    // liveness, never that the instance was unsolvable to begin with.
    let trials = if smoke { 3 } else { 8 };
    exp.param("solvable_instances", trials as i64);
    let mut specs: Vec<InstanceSpec> = Vec::new();
    let mut screened = 0u64;
    while specs.len() < trials {
        let spec = InstanceSpec {
            family: if screened.is_multiple_of(3) {
                Family::E3
            } else {
                Family::E2
            },
            n: 6 + (screened as usize) % 3,
            view: if screened.is_multiple_of(2) {
                ViewKind::Radius(2)
            } else {
                ViewKind::Full
            },
            seed: 0xE15_0000 + screened,
        };
        screened += 1;
        if find_rmt_cut(&spec.build()).is_none() {
            specs.push(spec);
        }
    }
    exp.param("instances_screened", screened as i64);

    let mut table = Table::new(
        "E15: RMT-PKA over loopback TCP under process/connection chaos \
         (solvable E2/E3 instances; transport counters are physical and vary, \
         verdict columns are model-layer deterministic)",
        &[
            "scenario",
            "runs",
            "WRONG",
            "decided",
            "stalled",
            "losses",
            "sheds",
            "reconnects",
        ],
    );

    let daemon = Daemon::new(threads.clamp(1, 4));
    let mut total_wrong = 0u64;
    for scenario in SCENARIOS {
        let jobs: Vec<(String, _)> = specs
            .iter()
            .cloned()
            .map(|spec| {
                let name = format!("{}-{:x}", spec.family.as_str(), spec.seed);
                let build = scenario.build;
                let config = scenario.config;
                let job = move || {
                    let inst = spec.build();
                    let chaos = build(&inst);
                    let outcome = run_session(
                        inst.graph().clone(),
                        |v| RmtPka::node(&inst, v, INPUT),
                        SilentAdversary::new(NodeSet::new()),
                        &chaos,
                        NetdConfig {
                            seed: spec.seed,
                            ..config()
                        },
                    )
                    .expect("session io");
                    assert_eq!(outcome.stall, None, "wire stalled: {:?}", outcome.stall);
                    let decision = outcome.decision(inst.receiver());
                    (
                        decision.is_some_and(|d| d != INPUT),
                        decision == Some(INPUT),
                        outcome.losses,
                        outcome.stats.shed_total(),
                        outcome
                            .stats
                            .reconnects
                            .load(std::sync::atomic::Ordering::Relaxed),
                    )
                };
                (name, job)
            })
            .collect();
        let outcomes: Vec<_> = daemon
            .run(jobs)
            .into_iter()
            .map(|(name, r)| r.unwrap_or_else(|| panic!("session {name} panicked")))
            .collect();
        let runs = outcomes.len();
        let wrong = outcomes.iter().filter(|o| o.0).count();
        let decided = outcomes.iter().filter(|o| o.1).count();
        let stalled = runs - wrong - decided;
        let losses: u64 = outcomes.iter().map(|o| o.2).sum();
        let sheds: u64 = outcomes.iter().map(|o| o.3).sum();
        let reconnects: u64 = outcomes.iter().map(|o| o.4).sum();
        total_wrong += wrong as u64;
        table.row(&[
            scenario.name.to_string(),
            runs.to_string(),
            wrong.to_string(),
            format!("{decided}/{runs}"),
            stalled.to_string(),
            losses.to_string(),
            sheds.to_string(),
            reconnects.to_string(),
        ]);
        // The artifact keeps only the model-layer deterministic columns:
        // physical counters (sheds on a timing-dependent path, reconnects)
        // would make byte-identity comparisons flaky.
        exp.record(Json::obj([
            ("scenario", Json::from(scenario.name)),
            ("runs", Json::Int(runs as i64)),
            ("wrong", Json::Int(wrong as i64)),
            ("decided", Json::Int(decided as i64)),
            ("stalled", Json::Int(stalled as i64)),
            ("losses", Json::Int(losses as i64)),
        ]));
    }
    table.print();
    exp.finish();

    assert_eq!(
        total_wrong, 0,
        "safety violation under transport chaos — a receiver decided a value the dealer \
         never sent"
    );
    println!("Shape check: WRONG = 0 in every cell — kills, severs and starved queues are");
    println!("omission faults at worst, and trail validation is structural. The decided");
    println!("column degrades only where chaos is permanent (no-restart kill, eternal sever).");
}
