//! E12 — asynchronous robustness of RMT-PKA under network faults.
//!
//! The paper's model is perfectly synchronous; this experiment measures how
//! far its guarantees survive outside it. `rmt-net`'s deterministic fault
//! scheduler puts drop, delay, duplication, reordering, crash and partition
//! faults between sender and receiver while the Byzantine adversary keeps
//! attacking on top, and each cell of the sweep reports:
//!
//! * **WRONG** — receiver decisions differing from the dealer's value. The
//!   paper's safety argument (Theorem 4) never relies on timely delivery —
//!   trail validation is purely structural — so this column must be **0 in
//!   every cell**, faults or not.
//! * **decided** — liveness, which *does* rely on the synchronous model and
//!   is expected to degrade as the network gets worse.
//! * message cost and the fault tally, to see what the network actually did.
//!
//! Workload: the E2/E3 instance families (random partial-knowledge
//! instances, both view kinds), screened to solvable ones so "undecided"
//! always means "the network broke liveness", never "the instance was
//! unsolvable anyway".

use rmt_bench::{mean, parallel_map, Experiment, Table};
use rmt_core::cuts::find_rmt_cut_par_observed;
use rmt_core::protocols::attacks::{pka_adversary, PkaAttack};
use rmt_core::protocols::rmt_pka::RmtPka;
use rmt_core::sampling::{random_instance, random_instance_nonadjacent};
use rmt_core::Instance;
use rmt_graph::generators::seeded;
use rmt_graph::ViewKind;
use rmt_net::{FaultPlan, LinkPolicy, NetRunner, Partition};
use rmt_sets::{NodeId, NodeSet};

const INPUT: u64 = 7;

/// One fault scenario of the sweep.
struct Scenario {
    name: &'static str,
    build: fn(&Instance, u64) -> FaultPlan,
}

fn uniform(drop: f64, delay: f64, max_delay: u32, duplicate: f64, reorder: bool) -> LinkPolicy {
    LinkPolicy {
        drop,
        delay,
        max_delay,
        duplicate,
        reorder,
    }
}

/// A relay node that is neither dealer nor receiver (for crash/partition
/// scenarios); falls back to the receiver-adjacent end if none exists.
fn some_relay(inst: &Instance) -> NodeId {
    inst.graph()
        .nodes()
        .iter()
        .find(|&v| v != inst.dealer() && v != inst.receiver())
        .unwrap_or_else(|| inst.receiver())
}

const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "baseline (no faults)",
        build: |_, seed| FaultPlan::new(seed),
    },
    Scenario {
        name: "drop 10%",
        build: |_, seed| {
            FaultPlan::new(seed).with_default_policy(uniform(0.10, 0.0, 0, 0.0, false))
        },
    },
    Scenario {
        name: "drop 30%",
        build: |_, seed| {
            FaultPlan::new(seed).with_default_policy(uniform(0.30, 0.0, 0, 0.0, false))
        },
    },
    Scenario {
        name: "delay p=.5 ≤2",
        build: |_, seed| FaultPlan::new(seed).with_default_policy(uniform(0.0, 0.5, 2, 0.0, false)),
    },
    Scenario {
        name: "delay p=1 ≤3 + reorder",
        build: |_, seed| FaultPlan::new(seed).with_default_policy(uniform(0.0, 1.0, 3, 0.0, true)),
    },
    Scenario {
        name: "duplicate 25%",
        build: |_, seed| {
            FaultPlan::new(seed).with_default_policy(uniform(0.0, 0.0, 0, 0.25, false))
        },
    },
    Scenario {
        name: "crash one relay @r1",
        build: |inst, seed| FaultPlan::new(seed).with_crash(some_relay(inst), 1),
    },
    Scenario {
        name: "receiver cut off r0–r1",
        build: |inst, seed| {
            FaultPlan::new(seed).with_partition(Partition {
                from_round: 0,
                to_round: 1,
                side: NodeSet::singleton(inst.receiver()),
            })
        },
    },
    Scenario {
        name: "drop 10% + delay + dup",
        build: |_, seed| {
            FaultPlan::new(seed).with_default_policy(uniform(0.10, 0.4, 2, 0.15, true))
        },
    },
];

fn main() {
    let mut rng = seeded(0xE12);
    let mut exp = Experiment::new("e12_network_faults");
    exp.param("seed", "0xE12");
    let threads = exp.threads();
    let trials = 16;
    exp.param("solvable_instances", trials as i64);
    exp.param("fault_seeds_per_cell", 3);

    // The E2/E3 instance families, screened to solvable instances so the
    // liveness column isolates the network's contribution.
    let mut instances: Vec<Instance> = Vec::new();
    let mut screened = 0usize;
    while instances.len() < trials {
        let n = 6 + screened % 4;
        let views = if screened.is_multiple_of(2) {
            ViewKind::AdHoc
        } else {
            ViewKind::Radius(2)
        };
        let inst = if screened.is_multiple_of(3) {
            random_instance(n, 0.4, views, 3, 2, &mut rng) // E3 family
        } else {
            random_instance_nonadjacent(n, 0.35, views, 3, 2, &mut rng) // E2 family
        };
        screened += 1;
        if find_rmt_cut_par_observed(&inst, exp.registry(), threads).is_none() {
            instances.push(inst);
        }
    }
    exp.param("instances_screened", screened as i64);

    const ATTACKS: [PkaAttack; 2] = [PkaAttack::Silent, PkaAttack::FlipValue];
    const FAULT_SEEDS: [u64; 3] = [0xFA117, 0xFA118, 0xFA119];

    let mut table = Table::new(
        "E12: RMT-PKA under network faults (solvable E2/E3 instances, worst corruption, \
         Byzantine attacks on top)",
        &[
            "scenario",
            "runs",
            "WRONG",
            "decided",
            "mean msgs",
            "overhead",
            "lost",
            "delayed",
            "dup",
        ],
    );

    let mut baseline_msgs = 0.0;
    let mut total_wrong = 0usize;
    for scenario in SCENARIOS {
        // Each (instance, attack, fault seed) cell is independent: sweep the
        // grid on the worker pool. `parallel_map` preserves input order, so
        // every aggregate below is identical for any thread count.
        let grid: Vec<(usize, PkaAttack, u64)> = (0..instances.len())
            .flat_map(|i| {
                ATTACKS
                    .iter()
                    .flat_map(move |&a| FAULT_SEEDS.iter().map(move |&s| (i, a, s)))
            })
            .collect();
        let outcomes = parallel_map(grid, threads, |(i, attack, fault_seed)| {
            let inst = &instances[i];
            let corruptions = inst.worst_case_corruptions();
            let worst = corruptions
                .iter()
                .max_by_key(|t| t.len())
                .cloned()
                .unwrap_or_default();
            let out = NetRunner::new(
                inst.graph().clone(),
                |v| RmtPka::node(inst, v, INPUT),
                pka_adversary(inst, INPUT, worst, attack, fault_seed),
                (scenario.build)(inst, fault_seed),
            )
            .run();
            let decision = out.decision(inst.receiver());
            (
                decision.is_some_and(|d| d != INPUT),
                decision == Some(INPUT),
                out.metrics.honest_messages as f64,
                out.faults.lost(),
                out.faults.delayed,
                out.faults.duplicated,
            )
        });
        let runs = outcomes.len();
        let wrong = outcomes.iter().filter(|o| o.0).count();
        let decided = outcomes.iter().filter(|o| o.1).count();
        let msgs: Vec<f64> = outcomes.iter().map(|o| o.2).collect();
        let m = mean(&msgs);
        if scenario.name.starts_with("baseline") {
            baseline_msgs = m;
        }
        let lost: u64 = outcomes.iter().map(|o| o.3).sum();
        let delayed: u64 = outcomes.iter().map(|o| o.4).sum();
        let dup: u64 = outcomes.iter().map(|o| o.5).sum();
        total_wrong += wrong;
        table.row(&[
            scenario.name.to_string(),
            runs.to_string(),
            wrong.to_string(),
            format!("{decided}/{runs}"),
            format!("{m:.0}"),
            if baseline_msgs > 0.0 {
                format!("{:.0}%", 100.0 * m / baseline_msgs)
            } else {
                "–".to_string()
            },
            lost.to_string(),
            delayed.to_string(),
            dup.to_string(),
        ]);
    }
    table.print();
    exp.record_table(&table);
    exp.finish();
    assert_eq!(
        total_wrong, 0,
        "safety violation under network faults — Theorem 4's structural argument broke"
    );
    println!("Shape check: WRONG = 0 in every cell (safety is structural, not timing-based);");
    println!("the decided column degrades as the network gets worse — liveness is exactly");
    println!("what the synchronous model buys.");
}
