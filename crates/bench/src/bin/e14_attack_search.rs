//! E14 — coverage-guided attack synthesis and the suppression frontier.
//!
//! Two questions, one artifact:
//!
//! 1. **Where does liveness die under a message adversary?** For each
//!    solvable E2/E3 instance and each protocol, a budgeted
//!    [`MessageAdversary`] focused on the receiver erases up to `d` admitted
//!    sends per round. The frontier table charts decided-vs-`d`: safety
//!    (WRONG) must stay 0 in every cell — suppression is an omission fault
//!    and the protocols' safety arguments are structural — while the decided
//!    column collapses as `d` passes the receiver's effective in-degree.
//! 2. **Can a search find attacks we didn't write by hand?** A seeded
//!    [`Hunter`] per instance mutates attack genomes (Byzantine behaviour ×
//!    fault plan × suppression) under coverage feedback, shrinks every
//!    violation to a local minimum, and — with `--promote DIR` — writes the
//!    minimized fixtures into the corpus that `cargo test` replays forever.
//!
//! The whole run is deterministic for a fixed seed: same candidates, same
//! violations, byte-identical artifact modulo the `wall` timing field.
//!
//! Flags: `--json` (write `BENCH_E14.json`), `--smoke` (reduced budgets for
//! CI), `--promote DIR` (write corpus fixtures).

use rmt_bench::{parallel_map, Experiment, Table};
use rmt_core::cuts::find_rmt_cut;
use rmt_core::protocols::attacks::{PkaAttack, ZcpaAttack};
use rmt_graph::ViewKind;
use rmt_hunt::{
    execute, AttackGenome, Behaviour, Family, Fixture, HuntConfig, Hunter, InstanceSpec, Verdict,
};
use rmt_net::MessageAdversary;
use rmt_obs::Json;
use rmt_sets::NodeSet;

const INPUT: u64 = 7;
const HUNT_SEED: u64 = 0xE14;

fn view_tag(view: ViewKind) -> String {
    match view {
        ViewKind::Full => "full".to_string(),
        ViewKind::AdHoc => "adhoc".to_string(),
        ViewKind::Radius(k) => format!("r{k}"),
    }
}

fn main() {
    let smoke = std::env::args().skip(1).any(|a| a == "--smoke");
    let promote_dir = {
        let args: Vec<String> = std::env::args().skip(1).collect();
        args.iter()
            .position(|a| a == "--promote")
            .and_then(|i| args.get(i + 1))
            .map(std::path::PathBuf::from)
    };

    let mut exp = Experiment::new("e14_attack_search");
    exp.param("seed", "0xE14");
    exp.param("smoke", smoke);
    let threads = exp.threads();

    // Screen solvable instances from the E2/E3 families, keeping the
    // *spec* alongside each instance so found attacks can be pinned into
    // replayable fixtures. Screening uses the plain (unobserved) cut
    // search: the artifact's counters must not depend on how many
    // unsolvable candidates were discarded.
    let trials = if smoke { 4 } else { 8 };
    exp.param("solvable_instances", trials as i64);
    let mut specs: Vec<InstanceSpec> = Vec::new();
    let mut screened = 0u64;
    while specs.len() < trials {
        let spec = InstanceSpec {
            family: if screened.is_multiple_of(3) {
                Family::E3
            } else {
                Family::E2
            },
            n: 6 + (screened as usize) % 4,
            view: if screened.is_multiple_of(2) {
                ViewKind::AdHoc
            } else {
                ViewKind::Radius(2)
            },
            seed: 0xE14_0000 + screened,
        };
        screened += 1;
        if find_rmt_cut(&spec.build()).is_none() {
            specs.push(spec);
        }
    }
    exp.param("instances_screened", screened as i64);

    // ── Part 1: the suppression frontier ────────────────────────────────
    // Silent Byzantine behaviour isolates the message adversary's own
    // effect; the budget focuses on the receiver, the hardest target the
    // full-information view can pick.
    let budgets: &[u32] = &[0, 1, 2, 3];
    let mut frontier = Table::new(
        "E14: liveness vs per-round suppression budget d (receiver-focused message \
         adversary, silent Byzantine nodes, solvable E2/E3 instances)",
        &[
            "protocol",
            "d",
            "runs",
            "WRONG",
            "decided",
            "stalled",
            "suppressed",
        ],
    );
    let mut total_wrong = 0u64;
    let mut frontier_rows: Vec<Json> = Vec::new();
    for behaviour in [
        Behaviour::Pka(PkaAttack::Silent),
        Behaviour::Zcpa(ZcpaAttack::Silent),
    ] {
        for &d in budgets {
            let grid: Vec<usize> = (0..specs.len()).collect();
            let outcomes = parallel_map(grid, threads, |i| {
                let spec = &specs[i];
                let inst = spec.build();
                let mut genome = AttackGenome::bare(behaviour);
                if d > 0 {
                    genome.suppression = Some(MessageAdversary::focused(
                        d,
                        NodeSet::singleton(inst.receiver()),
                    ));
                }
                let report = execute(&inst, INPUT, &genome);
                (report.verdict, report.faults.suppressed)
            });
            let runs = outcomes.len();
            let wrong = outcomes.iter().filter(|o| o.0 == Verdict::Wrong).count();
            let decided = outcomes.iter().filter(|o| o.0 == Verdict::Safe).count();
            let stalled = outcomes.iter().filter(|o| o.0 == Verdict::Stalled).count();
            let suppressed: u64 = outcomes.iter().map(|o| o.1).sum();
            total_wrong += wrong as u64;
            frontier.row(&[
                behaviour.protocol().to_string(),
                d.to_string(),
                runs.to_string(),
                wrong.to_string(),
                format!("{decided}/{runs}"),
                stalled.to_string(),
                suppressed.to_string(),
            ]);
            frontier_rows.push(Json::obj([
                ("kind", Json::from("frontier")),
                ("protocol", Json::from(behaviour.protocol())),
                ("d", Json::Int(i64::from(d))),
                ("runs", Json::Int(runs as i64)),
                ("wrong", Json::Int(wrong as i64)),
                ("decided", Json::Int(decided as i64)),
                ("stalled", Json::Int(stalled as i64)),
                ("suppressed", Json::Int(suppressed as i64)),
            ]));
        }
    }
    frontier.print();
    for row in frontier_rows {
        exp.record(row);
    }

    // ── Part 2: the coverage-guided hunt ────────────────────────────────
    let config = HuntConfig {
        seed: HUNT_SEED,
        candidates: if smoke { 18 } else { 48 },
        shrink_budget: if smoke { 40 } else { 100 },
        behaviours: vec![
            Behaviour::Pka(PkaAttack::Silent),
            Behaviour::Zcpa(ZcpaAttack::Silent),
        ],
    };
    exp.param("hunt_candidates_per_instance", i64::from(config.candidates));
    exp.param("hunt_shrink_budget", i64::from(config.shrink_budget));

    let hunter = Hunter::new(exp.registry());
    let mut hunts = Table::new(
        "E14: coverage-guided hunts (one per instance; violations are shrunk to \
         local minima and deduplicated)",
        &[
            "instance",
            "executed",
            "novel",
            "safe",
            "WRONG",
            "stalled",
            "violations",
            "min complexity",
        ],
    );
    let mut suppression_violations = 0u64;
    let mut promoted = 0u64;
    for spec in &specs {
        let inst = spec.build();
        let report = hunter.hunt(&inst, INPUT, &config);
        total_wrong += u64::from(report.tally.1);
        let min_complexity = report
            .violations
            .iter()
            .map(|v| v.genome.complexity())
            .min();
        let name = format!(
            "{}_{}_{}_{:04x}",
            spec.family.as_str(),
            spec.n,
            view_tag(spec.view),
            spec.seed & 0xFFFF
        );
        hunts.row(&[
            name.clone(),
            report.executed.to_string(),
            report.novel.to_string(),
            report.tally.0.to_string(),
            report.tally.1.to_string(),
            report.tally.2.to_string(),
            report.violations.len().to_string(),
            min_complexity.map_or("–".to_string(), |c| c.to_string()),
        ]);
        exp.record(Json::obj([
            ("kind", Json::from("hunt")),
            ("instance", Json::from(name.as_str())),
            ("executed", Json::Int(i64::from(report.executed))),
            ("novel", Json::Int(i64::from(report.novel))),
            ("safe", Json::Int(i64::from(report.tally.0))),
            ("wrong", Json::Int(i64::from(report.tally.1))),
            ("stalled", Json::Int(i64::from(report.tally.2))),
            ("violations", Json::Int(report.violations.len() as i64)),
            (
                "min_complexity",
                min_complexity.map_or(Json::Null, |c| Json::Int(c as i64)),
            ),
        ]));
        for (i, violation) in report.violations.iter().enumerate() {
            if violation
                .genome
                .suppression
                .as_ref()
                .is_some_and(|s| s.budget() > 0)
            {
                suppression_violations += 1;
            }
            if let Some(dir) = &promote_dir {
                let fixture = Fixture {
                    name: format!("{name}_{}_{i:02}", violation.verdict.as_str()),
                    spec: spec.clone(),
                    input: INPUT,
                    genome: violation.genome.clone(),
                    verdict: violation.verdict,
                };
                let path = fixture.save(dir).expect("writing corpus fixture");
                println!("promoted {}", path.display());
                promoted += 1;
            }
        }
    }
    hunts.print();
    exp.record_table(&hunts);
    if promote_dir.is_some() {
        exp.param("promoted", promoted as i64);
    }

    exp.finish();

    assert_eq!(
        total_wrong, 0,
        "safety violation found — a receiver decided a value the dealer never sent"
    );
    assert!(
        suppression_violations > 0,
        "expected the hunt to find at least one liveness violation under a nonzero \
         suppression budget"
    );
    println!(
        "Shape check: WRONG = 0 everywhere (suppression is an omission fault; safety is \
         structural). The hunt found {suppression_violations} minimized suppression-driven \
         liveness violations; the frontier shows decided collapsing as d grows."
    );
}
