//! E10 — knowledge placement: where must topology knowledge be invested?
//!
//! Starting from ad hoc knowledge, find the minimum number of nodes whose
//! upgrade to radius-2 views makes RMT solvable (the non-uniform direction
//! of the paper's minimal-γ partial order), across random families and the
//! designed gap witness.

use rmt_bench::{Experiment, Table};
use rmt_core::analysis::minimal_upgrade_set;
use rmt_core::cuts::find_rmt_cut_par_observed;
use rmt_core::gallery;
use rmt_core::sampling::random_structure;
use rmt_core::Instance;
use rmt_graph::generators::{self, seeded};
use rmt_graph::ViewKind;

fn main() {
    let mut rng = seeded(0xE10);
    let mut exp = Experiment::new("e10_placement");
    exp.param("seed", "0xE10");
    exp.param("trials_per_family", 30);
    let threads = exp.threads();
    let mut table = Table::new(
        "E10: minimal radius-2 upgrade sets over ad hoc baseline (30 instances per family)",
        &[
            "family",
            "already solvable",
            "fixable: 1 node",
            "2 nodes",
            "3+",
            "unfixable",
        ],
    );
    type Family = Box<dyn Fn(&mut rand_chacha::ChaCha12Rng) -> rmt_graph::Graph>;
    let families: Vec<(&str, Family)> = vec![
        ("cycle(9)", Box::new(|_| generators::cycle(9))),
        (
            "ring(9)+2 chords",
            Box::new(|rng| generators::ring_with_chords(9, 2, rng)),
        ),
        (
            "gnp(9, 0.3)",
            Box::new(|rng| generators::gnp_connected(9, 0.3, rng)),
        ),
    ];
    for (name, make) in families {
        let trials = 30;
        let (mut solved, mut one, mut two, mut more, mut unfixable) = (0, 0, 0, 0, 0);
        for _ in 0..trials {
            let g = make(&mut rng);
            let z = random_structure(g.nodes(), 3, 2, &mut rng);
            let d = 0u32.into();
            let r = 4u32.into();
            match minimal_upgrade_set(&g, &z, d, r, 2, 3) {
                Some(s) if s.is_empty() => solved += 1,
                Some(s) if s.len() == 1 => one += 1,
                Some(s) if s.len() == 2 => two += 1,
                Some(_) => more += 1,
                None => unfixable += 1,
            }
        }
        table.row(&[
            name.to_string(),
            solved.to_string(),
            one.to_string(),
            two.to_string(),
            more.to_string(),
            unfixable.to_string(),
        ]);
    }
    // The designed witness.
    let (g, z) = gallery::staggered_theta_parts();
    let upgrade = minimal_upgrade_set(&g, &z, 0.into(), 9.into(), 2, 3).unwrap();
    table.row(&[
        "staggered-theta".to_string(),
        "0".to_string(),
        if upgrade.len() == 1 { "1" } else { "0" }.to_string(),
        if upgrade.len() == 2 { "1" } else { "0" }.to_string(),
        if upgrade.len() >= 3 { "1" } else { "0" }.to_string(),
        "0".to_string(),
    ]);
    table.print();
    exp.record_table(&table);
    println!("staggered-theta minimal upgrade set: {upgrade} (upgrading this node to a radius-2");
    println!("view refutes the triple-cut framing; verified solvable below).");
    let inst = rmt_core::analysis::mixed_views_instance(&g, &z, 0.into(), 9.into(), &upgrade, 2);
    assert!(find_rmt_cut_par_observed(&inst, exp.registry(), threads).is_none());
    let adhoc = Instance::new(g, z, ViewKind::AdHoc, 0.into(), 9.into()).unwrap();
    assert!(find_rmt_cut_par_observed(&adhoc, exp.registry(), threads).is_some());
    exp.finish();
    println!("\nShape check: most random ad hoc instances are already solvable or genuinely");
    println!("unsolvable (pair cuts); the gap cases are fixed by one or two well-placed");
    println!("upgrades — knowledge placement as a design-phase tool.");
}
