//! E8 / F1 + F2 — the paper's two figures as executable constructions.
//!
//! **Figure 1** (the family 𝒢′): builds star instances with varying middle
//! sets and structures, tabulating the solvability condition and Π's
//! behaviour on each.
//!
//! **Figure 2** (runs e₀ / e₁): executes the coupled scenario-swap runs on
//! the canonical unsolvable diamond and prints the receiver's per-round
//! deliveries in both runs side by side — they are identical, which is the
//! whole point of the construction.

use rmt_adversary::AdversaryStructure;
use rmt_bench::{Experiment, Table};
use rmt_core::analysis::run_coupled_attack;
use rmt_core::cuts::find_rmt_cut_par_observed;
use rmt_core::protocols::rmt_pka::RmtPka;
use rmt_core::reduction::StarInstance;
use rmt_core::Instance;
use rmt_graph::{Graph, ViewKind};
use rmt_sets::NodeSet;
use rmt_sim::{CoupledRunner, Runner, SilentAdversary};

fn set(ids: &[u32]) -> NodeSet {
    ids.iter().copied().collect()
}

fn main() {
    let mut exp = Experiment::new("e8_figures");
    let _ = exp.threads();
    figure_1(&mut exp);
    figure_2(&mut exp);
    exp.finish();
}

fn figure_1(exp: &mut Experiment) {
    let mut table = Table::new(
        "F1: the 𝒢′ star family (middle m, structure 𝒵′) — solvability and Π under worst silence",
        &[
            "m",
            "𝒵′ (maximal sets)",
            "solvable (no pp-cut)",
            "Π decides (worst T)",
        ],
    );
    let cases: Vec<(usize, Vec<NodeSet>)> = vec![
        (3, vec![set(&[1])]),
        (3, vec![set(&[1]), set(&[2, 3])]),
        (4, vec![set(&[1, 2])]),
        (4, vec![set(&[1, 2]), set(&[3, 4])]),
        (5, vec![set(&[1, 2]), set(&[3])]),
    ];
    for (m, sets) in cases {
        let z = AdversaryStructure::from_sets(sets.clone());
        let star = StarInstance::new((1..=m as u32).collect(), &z);
        let solvable = star.solvable();
        // Worst silent corruption: the largest maximal set.
        let worst = z
            .maximal_sets()
            .iter()
            .max_by_key(|s| s.len())
            .cloned()
            .unwrap_or_default();
        let out = Runner::new(
            star.graph().clone(),
            |v| star.pi_node(v, 9),
            SilentAdversary::new(worst),
        )
        .run();
        let decided = out.decision(star.receiver()) == Some(9);
        assert_eq!(solvable, decided, "Π must match the star characterization");
        table.row(&[
            m.to_string(),
            format!("{z}"),
            solvable.to_string(),
            decided.to_string(),
        ]);
    }
    table.print();
    exp.record_table(&table);
    println!("Shape check: Π succeeds exactly on the solvable members of 𝒢′ — the promise");
    println!("family the self-reduction (Theorem 9) quantifies over.\n");
}

fn figure_2(exp: &mut Experiment) {
    // The canonical unsolvable diamond: D=0, relays 1,2, R=3, 𝒵 = {{1},{2}}.
    let mut g = Graph::new();
    g.add_edge(0.into(), 1.into());
    g.add_edge(0.into(), 2.into());
    g.add_edge(1.into(), 3.into());
    g.add_edge(2.into(), 3.into());
    let z = AdversaryStructure::from_sets([set(&[1]), set(&[2])]);
    let inst = Instance::new(g, z, ViewKind::AdHoc, 0.into(), 3.into()).unwrap();
    let threads = rmt_bench::configured_threads();
    let witness =
        find_rmt_cut_par_observed(&inst, exp.registry(), threads).expect("diamond is unsolvable");

    println!("## F2: coupled runs e₀/e₁ on the unsolvable diamond");
    println!(
        "witness RMT-cut: C = {}, C₁ = {}, C₂ = {}",
        witness.cut, witness.c1, witness.c2
    );

    let report = run_coupled_attack(&inst, &witness, 0, 1, 1 << 14).unwrap();
    println!(
        "receiver views equal: {} | component views equal: {} | decisions: e₀ → {:?}, e₁ → {:?} | safety violation: {}",
        report.receiver_views_equal,
        report.component_views_equal,
        report.decision_e,
        report.decision_e2,
        report.safety_violation
    );

    // Transcript: rerun the coupled pair and print R's deliveries per round.
    let forged = {
        // Reconstruct the forged structure the attack used, for the printout.
        let cache = rmt_core::KnowledgeCache::new(&inst);
        let z_b = cache.joint_view(&witness.receiver_component).materialize();
        let mut sets: Vec<NodeSet> = z_b.structure().maximal_sets().to_vec();
        sets.push(witness.c2.clone());
        AdversaryStructure::from_sets(sets)
    };
    let inst2 = Instance::with_views(
        inst.graph().clone(),
        forged,
        inst.views().clone(),
        inst.dealer(),
        inst.receiver(),
    )
    .unwrap();
    let outcome = CoupledRunner::new(
        inst.graph().clone(),
        witness.c1.clone(),
        witness.c2.clone(),
        |v| RmtPka::node(&inst, v, 0),
        |v| RmtPka::node(&inst2, v, 1),
    )
    .run();
    let mut table = Table::new(
        "F2 transcript: messages delivered to R per round (type only)",
        &[
            "round",
            "run e₀ (true 𝒵, x=0)",
            "run e₁ (forged 𝒵′, x=1)",
            "equal",
        ],
    );
    let describe = |msgs: &[(
        u32,
        rmt_sim::Envelope<rmt_core::protocols::rmt_pka::PkaPayload>,
    )],
                    round: u32| {
        msgs.iter()
            .filter(|(r, _)| *r == round)
            .map(|(_, env)| match &env.payload {
                rmt_core::protocols::rmt_pka::PkaPayload::DealerValue { value, trail } => {
                    format!("val({value},|p|={})", trail.len())
                }
                rmt_core::protocols::rmt_pka::PkaPayload::Knowledge { node, .. } => {
                    format!("info({node})")
                }
            })
            .collect::<Vec<_>>()
            .join(" ")
    };
    let r = inst.receiver();
    for round in 1..=outcome.rounds {
        let a = describe(outcome.delivered_e(r), round);
        let b = describe(outcome.delivered_e2(r), round);
        let eq = a == b;
        table.row(&[round.to_string(), a, b, eq.to_string()]);
    }
    table.print();
    exp.record_table(&table);
    println!("Shape check: every row equal — R provably cannot distinguish the two runs,");
    println!("so no safe protocol can decide (the Theorem 3 lower bound, executed).");
}
