//! E11 — ablation: bounding RMT-PKA's trail length.
//!
//! The paper leaves efficient *unique* partial-knowledge RMT open; the
//! obvious lever is to stop propagating long trails. This ablation sweeps
//! the bound L on random solvable instances and reports the success rate
//! under the worst silent corruption and the honest message cost — the
//! completeness/efficiency trade-off, quantified. (Safety is unaffected by
//! construction: fewer messages only remove candidate message sets.)

use rmt_bench::{mean, Experiment, Table};
use rmt_core::cuts::find_rmt_cut_observed;
use rmt_core::protocols::rmt_pka::RmtPka;
use rmt_core::sampling::random_instance_nonadjacent;
use rmt_graph::generators::seeded;
use rmt_graph::ViewKind;
use rmt_sim::{Runner, SilentAdversary};

fn main() {
    let mut rng = seeded(0xE11);
    let trials = 40;
    let mut exp = Experiment::new("e11_trail_bound");
    exp.param("seed", "0xE11");
    exp.param("instances", trials as i64);
    // Collect solvable instances once.
    let mut instances = Vec::new();
    while instances.len() < trials {
        let n = 7 + instances.len() % 4;
        let inst = random_instance_nonadjacent(n, 0.35, ViewKind::AdHoc, 3, 2, &mut rng);
        if find_rmt_cut_observed(&inst, exp.registry()).is_none() {
            instances.push(inst);
        }
    }

    let mut table = Table::new(
        "E11: RMT-PKA trail-length ablation (40 solvable instances, worst silent corruption)",
        &["bound L", "success rate", "mean msgs", "msgs vs unbounded"],
    );
    let mut unbounded_mean = 0.0;
    for bound in [usize::MAX, 2, 3, 4, 5, 6] {
        let mut successes = 0;
        let mut runs = 0;
        let mut msgs = Vec::new();
        for inst in &instances {
            let corruptions = inst.worst_case_corruptions();
            let worst = corruptions
                .iter()
                .max_by_key(|t| t.len())
                .cloned()
                .unwrap_or_default();
            let out = Runner::new(
                inst.graph().clone(),
                |v| {
                    if bound == usize::MAX {
                        RmtPka::node(inst, v, 7)
                    } else {
                        RmtPka::node_with_trail_bound(inst, v, 7, bound)
                    }
                },
                SilentAdversary::new(worst),
            )
            .run();
            runs += 1;
            if out.decision(inst.receiver()) == Some(7) {
                successes += 1;
            }
            msgs.push(out.metrics.honest_messages as f64);
        }
        let m = mean(&msgs);
        if bound == usize::MAX {
            unbounded_mean = m;
        }
        table.row(&[
            if bound == usize::MAX {
                "∞ (paper)".to_string()
            } else {
                bound.to_string()
            },
            format!("{successes}/{runs}"),
            format!("{m:.0}"),
            if unbounded_mean > 0.0 {
                format!("{:.0}%", 100.0 * m / unbounded_mean)
            } else {
                "–".to_string()
            },
        ]);
    }
    table.print();
    exp.record_table(&table);
    exp.finish();
    println!("Shape check: success rate climbs to 100% as L grows (completeness needs all");
    println!("G_M paths); message cost climbs with it — the trade-off behind the paper's");
    println!("open question on efficient unique partial-knowledge RMT.");
}
