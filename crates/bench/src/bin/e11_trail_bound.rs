//! E11 — ablation: bounding RMT-PKA's trail length.
//!
//! The paper leaves efficient *unique* partial-knowledge RMT open; the
//! obvious lever is to stop propagating long trails. This ablation sweeps
//! the bound L on random solvable instances and reports the success rate
//! under the worst silent corruption and the honest message cost — the
//! completeness/efficiency trade-off, quantified. (Safety is unaffected by
//! construction: fewer messages only remove candidate message sets.)

use rmt_bench::{fmt_duration, mean, parallel_map, timed, Experiment, Table};
use rmt_core::cuts::{find_rmt_cut, find_rmt_cut_observed, find_rmt_cut_par};
use rmt_core::protocols::rmt_pka::RmtPka;
use rmt_core::sampling::random_instance_nonadjacent;
use rmt_graph::generators::seeded;
use rmt_graph::ViewKind;
use rmt_sim::{Runner, SilentAdversary};

fn main() {
    let mut rng = seeded(0xE11);
    let trials = 40;
    let mut exp = Experiment::new("e11_trail_bound");
    exp.param("seed", "0xE11");
    exp.param("instances", trials as i64);
    let threads = exp.threads();
    // Collect solvable instances once.
    let mut instances = Vec::new();
    while instances.len() < trials {
        let n = 7 + instances.len() % 4;
        let inst = random_instance_nonadjacent(n, 0.35, ViewKind::AdHoc, 3, 2, &mut rng);
        if find_rmt_cut_observed(&inst, exp.registry()).is_none() {
            instances.push(inst);
        }
    }

    let mut table = Table::new(
        "E11: RMT-PKA trail-length ablation (40 solvable instances, worst silent corruption)",
        &["bound L", "success rate", "mean msgs", "msgs vs unbounded"],
    );
    let mut unbounded_mean = 0.0;
    for bound in [usize::MAX, 2, 3, 4, 5, 6] {
        // The instances are independent: sweep them on the worker pool.
        // `parallel_map` preserves input order, so successes and message
        // means aggregate identically for any thread count.
        let outcomes = parallel_map(instances.iter().collect(), threads, |inst| {
            let corruptions = inst.worst_case_corruptions();
            let worst = corruptions
                .iter()
                .max_by_key(|t| t.len())
                .cloned()
                .unwrap_or_default();
            let out = Runner::new(
                inst.graph().clone(),
                |v| {
                    if bound == usize::MAX {
                        RmtPka::node(inst, v, 7)
                    } else {
                        RmtPka::node_with_trail_bound(inst, v, 7, bound)
                    }
                },
                SilentAdversary::new(worst),
            )
            .run();
            (
                out.decision(inst.receiver()) == Some(7),
                out.metrics.honest_messages as f64,
            )
        });
        let runs = outcomes.len();
        let successes = outcomes.iter().filter(|(ok, _)| *ok).count();
        let msgs: Vec<f64> = outcomes.iter().map(|(_, m)| *m).collect();
        let m = mean(&msgs);
        if bound == usize::MAX {
            unbounded_mean = m;
        }
        table.row(&[
            if bound == usize::MAX {
                "∞ (paper)".to_string()
            } else {
                bound.to_string()
            },
            format!("{successes}/{runs}"),
            format!("{m:.0}"),
            if unbounded_mean > 0.0 {
                format!("{:.0}%", 100.0 * m / unbounded_mean)
            } else {
                "–".to_string()
            },
        ]);
    }
    table.print();

    // E11b: re-screen the solvable pool with the sequential and the
    // parallel decision engine. Both must return `None` on every instance
    // (they were selected that way) — this is the honest end-to-end check
    // that the engines agree, timed. Solvable instances are the decider's
    // worst case: `None` means the whole 2^(n−2) candidate space was
    // scanned.
    let mut screen = Table::new(
        "E11b: solvability screening, sequential vs parallel decision engine",
        &["mode", "threads", "instances", "disagreements", "time"],
    );
    let (seq, t_seq) = timed(|| instances.iter().map(find_rmt_cut).collect::<Vec<_>>());
    let (par, t_par) = timed(|| {
        instances
            .iter()
            .map(|inst| find_rmt_cut_par(inst, threads))
            .collect::<Vec<_>>()
    });
    let disagreements = seq.iter().zip(&par).filter(|(a, b)| a != b).count();
    assert_eq!(disagreements, 0, "parallel screening diverged");
    screen.row(&[
        "sequential".to_string(),
        "1".to_string(),
        instances.len().to_string(),
        "0".to_string(),
        fmt_duration(t_seq),
    ]);
    screen.row(&[
        "parallel".to_string(),
        threads.to_string(),
        instances.len().to_string(),
        disagreements.to_string(),
        fmt_duration(t_par),
    ]);
    screen.print();
    exp.record_table(&table);
    exp.record_table(&screen);
    exp.finish();
    println!("Shape check: success rate climbs to 100% as L grows (completeness needs all");
    println!("G_M paths); message cost climbs with it — the trade-off behind the paper's");
    println!("open question on efficient unique partial-knowledge RMT.");
}
