//! E17 — incremental re-decision under graph churn.
//!
//! A from-scratch anchored decision pays to rebuild the *entire* knowledge
//! cache — one `restrict` of the global 𝒵 per node — before scanning a
//! single anchor. The [`IncrementalEngine`] instead shares 𝒵 across deltas
//! (`Instance::with_graph`), rebuilds only the knowledge parts whose view
//! domain the delta changed (two per edge toggle under ad hoc views), and
//! drops only the anchor certificates whose footprint the delta touched.
//! On structures with thousands of maximal sets the cache rebuild dominates
//! the whole decision, so that refresh is the speedup.
//!
//! This experiment drives both paths over the same seeded edge-toggle stream
//! on the E6 ring+chords family and, per delta, **asserts the witnesses are
//! byte-identical** — the incremental machinery must be unobservable in
//! results. The incremental column times `apply` + `decide` (the full
//! churn-to-answer latency); the scratch column times `Instance::new` + the
//! anchored decider on the same mutated graph. At the largest `n` the run
//! asserts the median speedup is ≥ 5× (only enforced when that `n` ≥ 24),
//! and the sweep deliberately tops out at n = 26 > 24: the regime the
//! exhaustive decider (2^(n−2) subsets) cannot reach at all.
//!
//! `--max-n N` bounds the sweep and `--deltas K` the stream length (CI runs
//! a small-n profile); `--json` writes `BENCH_E17.json`.

use rand::Rng;
use rmt_bench::{fmt_duration, timed, Experiment, Table};
use rmt_core::cuts::find_rmt_cut_anchored;
use rmt_core::engine::{Delta, IncrementalEngine};
use rmt_core::sampling::threshold_instance;
use rmt_core::Instance;
use rmt_graph::generators::{self, seeded};
use rmt_graph::ViewKind;
use rmt_obs::Registry;
use rmt_sets::NodeId;
use std::time::Duration;

/// Reads `--flag N` from the process arguments.
fn arg(flag: &str, default: usize) -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == flag {
            return args
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{flag} expects a number"));
        }
    }
    default
}

fn median(samples: &mut [Duration]) -> Duration {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let max_n = arg("--max-n", 26);
    let deltas = arg("--deltas", 40).max(1);
    let mut exp = Experiment::new("e17_incremental");
    exp.param("seed", "0xE17");
    exp.param("max_n", i64::try_from(max_n).unwrap_or(i64::MAX));
    exp.param("deltas", i64::try_from(deltas).unwrap_or(i64::MAX));

    let mut table = Table::new(
        "E17: incremental vs from-scratch anchored re-decision (ring+chords, edge churn)",
        &[
            "n",
            "t",
            "deltas",
            "cut",
            "no cut",
            "parts rebuilt",
            "certs dropped",
            "incremental",
            "scratch",
            "speedup",
        ],
    );

    let mut largest: Option<(usize, f64)> = None;
    for &n in &[16usize, 20, 24, 26] {
        if n > max_n {
            break;
        }
        let mut rng = seeded(0xE17 + n as u64);
        let g = generators::ring_with_chords(n, n / 4, &mut rng);
        let t = 4usize;
        let inst = threshold_instance(g, t, ViewKind::AdHoc, 0, (n / 2) as u32);
        let (dealer, receiver) = (inst.dealer(), inst.receiver());

        let reg = Registry::new();
        let mut engine = IncrementalEngine::from_instance(&inst, ViewKind::AdHoc);
        // Warm the certificate store for both characterizations.
        engine.decide_rmt_observed(&reg);
        engine.decide_zpp_observed(&reg);

        let mut incremental = Vec::with_capacity(deltas);
        let mut scratch = Vec::with_capacity(deltas);
        let (mut cuts, mut no_cuts) = (0u64, 0u64);
        let mut applied = 0usize;
        while applied < deltas {
            // A random edge toggle that never touches dealer–receiver
            // adjacency (adjacent pairs are trivially solvable and skip the
            // scan entirely — uninteresting churn).
            let u = NodeId::new(rng.random_range(0..n as u32));
            let v = NodeId::new(rng.random_range(0..n as u32));
            if u == v || (u == dealer && v == receiver) || (u == receiver && v == dealer) {
                continue;
            }
            let delta = if engine.instance().graph().has_edge(u, v) {
                Delta::RemoveEdge(u, v)
            } else {
                Delta::AddEdge(u, v)
            };
            let (verdict, t_inc) = timed(|| {
                engine
                    .apply_observed(delta.clone(), &reg)
                    .expect("edge toggles keep the instance well-formed");
                engine.decide_rmt_observed(&reg)
            });
            let (g, z) = (
                engine.instance().graph().clone(),
                engine.instance().adversary().clone(),
            );
            let (fresh, t_scr) = timed(|| {
                let inst = Instance::new(g.clone(), z.clone(), ViewKind::AdHoc, dealer, receiver)
                    .expect("edge toggles keep the instance well-formed");
                find_rmt_cut_anchored(&inst)
            });
            assert_eq!(
                verdict, fresh,
                "incremental diverged from scratch at n = {n} after {delta:?}"
            );
            match verdict {
                Some(_) => cuts += 1,
                None => no_cuts += 1,
            }
            incremental.push(t_inc);
            scratch.push(t_scr);
            applied += 1;
        }

        let med_inc = median(&mut incremental);
        let med_scr = median(&mut scratch);
        let speedup = med_scr.as_secs_f64() / med_inc.as_secs_f64().max(1e-9);
        largest = Some((n, speedup));
        exp.registry().merge_from(&reg);
        table.row(&[
            n.to_string(),
            t.to_string(),
            deltas.to_string(),
            cuts.to_string(),
            no_cuts.to_string(),
            reg.counter("cache.invalidate.parts").get().to_string(),
            reg.counter("cache.invalidate.certs").get().to_string(),
            fmt_duration(med_inc),
            fmt_duration(med_scr),
            format!("{speedup:.1}×"),
        ]);
    }
    table.print();
    exp.record_table(&table);
    exp.finish();

    if let Some((n, speedup)) = largest {
        if n >= 24 {
            assert!(
                speedup >= 5.0,
                "incremental re-decision must be ≥ 5× faster than from-scratch \
                 at n = {n} (measured {speedup:.1}×)"
            );
        }
    }
    println!("Shape check: every delta's incremental witness equals the from-scratch one;");
    println!("parts rebuilt stays near 2 per edge toggle while a from-scratch decision");
    println!("restricts 𝒵 at all n nodes — that refresh gap is the speedup.");
}
