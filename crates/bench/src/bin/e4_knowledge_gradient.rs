//! E4 / T4 — minimal knowledge (the paper's "RMT under minimal knowledge"
//! observation and Corollary 6).
//!
//! For cycle and ring-with-chords families, the experiment reports the
//! fraction of instances solvable at each view radius k and the minimal
//! radius at which solvability first holds; RMT-PKA is then run at that
//! radius to confirm the characterization operationally. Monotonicity in k
//! (more knowledge never hurts) is asserted along the way.

use rmt_bench::{Experiment, Table};
use rmt_core::analysis::minimal_knowledge_radius;
use rmt_core::analysis::pka_attack_suite;
use rmt_core::cuts::find_rmt_cut_par_observed;
use rmt_core::protocols::attacks::PKA_ATTACKS;
use rmt_core::sampling::random_structure;
use rmt_core::Instance;
use rmt_graph::generators::{self, seeded};
use rmt_graph::ViewKind;

fn main() {
    let mut rng = seeded(0xE4);
    let max_k = 4;
    let mut exp = Experiment::new("e4_knowledge_gradient");
    exp.param("seed", "0xE4");
    let threads = exp.threads();
    exp.param("trials_per_family", 30);
    exp.param("max_k", max_k as i64);
    let mut table = Table::new(
        "E4: solvability vs view radius (30 instances per family)",
        &[
            "family",
            "k=0",
            "k=1",
            "k=2",
            "k=3",
            "k=4",
            "min-k (mean over solvable)",
            "PKA confirms",
        ],
    );
    type Family = Box<dyn Fn(&mut rand_chacha::ChaCha12Rng) -> rmt_graph::Graph>;
    let families: Vec<(&str, Family)> = vec![
        ("cycle(8)", Box::new(|_| generators::cycle(8))),
        (
            "ring(8)+2 chords",
            Box::new(|rng| generators::ring_with_chords(8, 2, rng)),
        ),
    ];
    for (name, make) in families {
        let trials = 30;
        let mut solvable_at = vec![0usize; max_k + 1];
        let mut min_ks = Vec::new();
        let mut confirmed = 0;
        let mut confirmable = 0;
        for trial in 0..trials {
            let g = make(&mut rng);
            let z = random_structure(g.nodes(), 2, 2, &mut rng);
            let d = 0u32.into();
            let r = 4u32.into();
            let mut prev_solvable = false;
            for (k, slot) in solvable_at.iter_mut().enumerate() {
                let inst = Instance::new(g.clone(), z.clone(), ViewKind::Radius(k), d, r).unwrap();
                let s = find_rmt_cut_par_observed(&inst, exp.registry(), threads).is_none();
                assert!(!prev_solvable || s, "knowledge monotonicity violated");
                prev_solvable = s;
                if s {
                    *slot += 1;
                }
            }
            if let Some(k) = minimal_knowledge_radius(&g, &z, d, r, max_k) {
                min_ks.push(k as f64);
                // Operational confirmation at the minimal radius.
                let inst = Instance::new(g.clone(), z.clone(), ViewKind::Radius(k), d, r).unwrap();
                confirmable += 1;
                if pka_attack_suite(&inst, 7, &PKA_ATTACKS, trial as u64).all_correct() {
                    confirmed += 1;
                }
            }
        }
        table.row(&[
            name.to_string(),
            format!("{}/{trials}", solvable_at[0]),
            format!("{}/{trials}", solvable_at[1]),
            format!("{}/{trials}", solvable_at[2]),
            format!("{}/{trials}", solvable_at[3]),
            format!("{}/{trials}", solvable_at[4]),
            format!("{:.2}", rmt_bench::mean(&min_ks)),
            format!("{confirmed}/{confirmable}"),
        ]);
    }
    // The designed knowledge-gap witness: random families rarely produce
    // min-k ≥ 2 (the probe over 400 random cycles found none), so the
    // staggered theta is included as a constructed row.
    let (g, z) = rmt_core::gallery::staggered_theta_parts();
    let mut solvable_at = vec![false; max_k + 1];
    for (k, slot) in solvable_at.iter_mut().enumerate() {
        let inst = Instance::new(
            g.clone(),
            z.clone(),
            ViewKind::Radius(k),
            0.into(),
            9.into(),
        )
        .unwrap();
        *slot = find_rmt_cut_par_observed(&inst, exp.registry(), threads).is_none();
    }
    let min_k = minimal_knowledge_radius(&g, &z, 0.into(), 9.into(), max_k).unwrap();
    let inst = Instance::new(g.clone(), z, ViewKind::Radius(min_k), 0.into(), 9.into()).unwrap();
    let confirmed = pka_attack_suite(&inst, 7, &PKA_ATTACKS, 1).all_correct();
    table.row(&[
        "staggered-theta".to_string(),
        format!("{}/1", u8::from(solvable_at[0])),
        format!("{}/1", u8::from(solvable_at[1])),
        format!("{}/1", u8::from(solvable_at[2])),
        format!("{}/1", u8::from(solvable_at[3])),
        format!("{}/1", u8::from(solvable_at[4])),
        format!("{min_k:.2}"),
        format!("{}/1", u8::from(confirmed)),
    ]);

    table.print();
    exp.record_table(&table);
    exp.finish();
    println!("Shape check: solvability is monotone in k; RMT-PKA succeeds at exactly the");
    println!("minimal radius the RMT-cut characterization predicts (unique algorithm).");
    println!("The staggered-theta row exhibits a strict gap: unsolvable ad hoc/radius-1,");
    println!("solvable from radius 2 — where RMT-PKA strictly dominates Z-CPA.");
}
