//! Artifact diffing: the `rmt-bench compare` regression gate.
//!
//! [`compare_artifacts`] diffs a baseline `BENCH_E<k>.json` against a
//! candidate and classifies every divergence:
//!
//! - **Hard** findings fail the gate: a different experiment or parameter,
//!   a measurement row whose verdict columns (strings, counts, rates)
//!   changed, or a timing regression beyond the configured ratio on a
//!   duration large enough to be meaningful.
//! - **Soft** findings are reported but pass by default: counter drift,
//!   ratio-cell drift, timing *improvements*, and thread-count parameter
//!   differences. `--strict` promotes a soft-only report to a failure.
//!
//! Timing cells are the schema-v2 `{"ns": …, "human": "…"}` objects the
//! harness writes (see [`Experiment`](crate::Experiment)); their `human`
//! rendering is ignored by the gate, so re-rendering the same nanoseconds
//! differently can never fail CI. Wall-clock noise is bounded two ways:
//! durations under `min_time_ns` are never regressions, and the whole
//! timing dimension can be switched off (`check_timing = false`) when
//! baseline and candidate come from different machines.

use rmt_obs::Json;

/// Thresholds for [`compare_artifacts`].
#[derive(Clone, Copy, Debug)]
pub struct CompareConfig {
    /// A duration cell regresses (Hard) when
    /// `candidate > baseline * max_time_ratio` — and improves (Soft) when
    /// the baseline exceeds the candidate by the same factor.
    pub max_time_ratio: f64,
    /// Durations where both sides are below this floor are never timing
    /// findings (they are dominated by scheduler noise).
    pub min_time_ns: i64,
    /// Allowed relative drift between counter values before a Soft finding
    /// (`0.0` flags any drift).
    pub counter_tolerance: f64,
    /// `false` skips every duration comparison (cross-machine mode);
    /// verdict and counter checks still run.
    pub check_timing: bool,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig {
            max_time_ratio: 2.0,
            min_time_ns: 10_000_000, // 10ms
            counter_tolerance: 0.0,
            check_timing: true,
        }
    }
}

/// How bad one divergence is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Fails the gate.
    Hard,
    /// Reported; fails only under `--strict`.
    Soft,
}

/// One divergence between baseline and candidate.
#[derive(Clone, Debug)]
pub struct Finding {
    /// The gate impact.
    pub severity: Severity,
    /// Where in the artifact (`measurements[3].verdict`, `counters.…`).
    pub path: String,
    /// What diverged, with both values.
    pub message: String,
}

/// The result of one artifact comparison.
#[derive(Clone, Debug, Default)]
pub struct CompareReport {
    /// Every divergence found, in artifact order.
    pub findings: Vec<Finding>,
}

impl CompareReport {
    fn push(&mut self, severity: Severity, path: impl Into<String>, message: impl Into<String>) {
        self.findings.push(Finding {
            severity,
            path: path.into(),
            message: message.into(),
        });
    }

    /// Number of Hard findings.
    pub fn hard_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Hard)
            .count()
    }

    /// Number of Soft findings.
    pub fn soft_count(&self) -> usize {
        self.findings.len() - self.hard_count()
    }

    /// `true` when the gate passes: no Hard findings, and under `strict`
    /// no findings at all.
    pub fn passed(&self, strict: bool) -> bool {
        self.hard_count() == 0 && (!strict || self.findings.is_empty())
    }

    /// Renders the report: one line per finding plus a verdict line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let tag = match f.severity {
                Severity::Hard => "HARD",
                Severity::Soft => "soft",
            };
            out.push_str(&format!("{tag}  {}: {}\n", f.path, f.message));
        }
        out.push_str(&format!(
            "compare: {} hard, {} soft\n",
            self.hard_count(),
            self.soft_count()
        ));
        out
    }
}

/// The `{"ns": …, "human": …}` reading of a schema-v2 duration cell.
fn as_duration_ns(v: &Json) -> Option<i64> {
    // Schema-v1 artifacts carried durations as rendered strings ("316µs"):
    // accept both so old baselines still gate new candidates.
    if let Some(s) = v.as_str() {
        return crate::parse_duration_ns(s);
    }
    v.get("human")?;
    v.get("ns")?.as_i64()
}

/// The `{"ratio": …, "human": …}` reading of a schema-v2 ratio cell (or a
/// schema-v1 `"4.3×"` string).
fn as_ratio(v: &Json) -> Option<f64> {
    if let Some(s) = v.as_str() {
        return s.strip_suffix('×').and_then(|r| r.parse().ok());
    }
    v.get("human")?;
    v.get("ratio")?.as_f64()
}

/// Compact rendering for finding messages.
fn show(v: &Json) -> String {
    if let Some(h) = v.get("human").and_then(Json::as_str) {
        return h.to_string();
    }
    if let Some(s) = v.as_str() {
        return s.to_string();
    }
    v.encode()
}

/// Diffs two parsed artifacts. Findings come out in artifact order:
/// experiment, params, measurements row by row, wall clock, counters.
pub fn compare_artifacts(baseline: &Json, candidate: &Json, cfg: &CompareConfig) -> CompareReport {
    let mut report = CompareReport::default();

    let name = |a: &Json| {
        a.get("experiment")
            .and_then(Json::as_str)
            .map(str::to_owned)
    };
    if name(baseline) != name(candidate) {
        report.push(
            Severity::Hard,
            "experiment",
            format!(
                "baseline is {:?}, candidate is {:?}",
                name(baseline).unwrap_or_default(),
                name(candidate).unwrap_or_default()
            ),
        );
        return report; // nothing below is meaningfully comparable
    }

    compare_objects(
        baseline.get("params"),
        candidate.get("params"),
        "params",
        &mut report,
        cfg,
        &|key| {
            // Thread count is an execution setting, not a result: the
            // deciders guarantee thread-count-identical verdicts.
            if key == "threads" {
                Severity::Soft
            } else {
                Severity::Hard
            }
        },
    );

    let empty: [Json; 0] = [];
    let rows = |a: &Json| -> Vec<Json> {
        a.get("measurements")
            .and_then(Json::as_arr)
            .unwrap_or(&empty)
            .to_vec()
    };
    let (b_rows, c_rows) = (rows(baseline), rows(candidate));
    if b_rows.len() != c_rows.len() {
        report.push(
            Severity::Hard,
            "measurements",
            format!(
                "{} baseline rows vs {} candidate rows",
                b_rows.len(),
                c_rows.len()
            ),
        );
    } else {
        for (i, (b, c)) in b_rows.iter().zip(&c_rows).enumerate() {
            compare_objects(
                Some(b),
                Some(c),
                &format!("measurements[{i}]"),
                &mut report,
                cfg,
                &|_| Severity::Hard,
            );
        }
    }

    // Wall clock: schema v2 `wall: {ns, human}`, schema v1 `wall_ns`.
    let wall = |a: &Json| -> Option<i64> {
        a.get("wall")
            .and_then(as_duration_ns)
            .or_else(|| a.get("wall_ns").and_then(Json::as_i64))
    };
    if let (Some(b), Some(c)) = (wall(baseline), wall(candidate)) {
        compare_durations(b, c, "wall", &mut report, cfg);
    }

    compare_counters(
        baseline.get("counters"),
        candidate.get("counters"),
        &mut report,
        cfg,
    );
    report
}

/// Union-of-keys walk over two JSON objects; `severity_of(key)` classifies
/// plain-value mismatches.
fn compare_objects(
    baseline: Option<&Json>,
    candidate: Option<&Json>,
    path: &str,
    report: &mut CompareReport,
    cfg: &CompareConfig,
    severity_of: &dyn Fn(&str) -> Severity,
) {
    let pairs = |v: Option<&Json>| -> Vec<(String, Json)> {
        match v {
            Some(Json::Obj(pairs)) => pairs.clone(),
            _ => Vec::new(),
        }
    };
    let (b_pairs, c_pairs) = (pairs(baseline), pairs(candidate));
    let lookup = |pairs: &[(String, Json)], key: &str| -> Option<Json> {
        pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
    };
    let mut keys: Vec<String> = b_pairs.iter().map(|(k, _)| k.clone()).collect();
    for (k, _) in &c_pairs {
        if !keys.contains(k) {
            keys.push(k.clone());
        }
    }
    for key in keys {
        let here = format!("{path}.{key}");
        match (lookup(&b_pairs, &key), lookup(&c_pairs, &key)) {
            (Some(b), Some(c)) => {
                compare_values(&b, &c, &here, report, cfg, severity_of(&key));
            }
            (Some(_), None) => {
                report.push(Severity::Hard, here, "missing from candidate");
            }
            (None, Some(_)) => {
                report.push(Severity::Hard, here, "missing from baseline");
            }
            (None, None) => {}
        }
    }
}

/// One cell: durations and ratios get threshold semantics, everything else
/// is identity (verdict columns).
fn compare_values(
    b: &Json,
    c: &Json,
    path: &str,
    report: &mut CompareReport,
    cfg: &CompareConfig,
    severity: Severity,
) {
    if let (Some(bns), Some(cns)) = (as_duration_ns(b), as_duration_ns(c)) {
        compare_durations(bns, cns, path, report, cfg);
        return;
    }
    if let (Some(br), Some(cr)) = (as_ratio(b), as_ratio(c)) {
        // Ratio cells are timing quotients (E13/E17 speedup columns): they
        // inherit the duration band and the cross-machine switch — two
        // different machines produce different speedups legitimately.
        if !cfg.check_timing {
            return;
        }
        let (lo, hi) = if br <= cr { (br, cr) } else { (cr, br) };
        if lo > 0.0 && hi / lo > cfg.max_time_ratio {
            report.push(
                Severity::Soft,
                path,
                format!("ratio drifted {br:.2}× → {cr:.2}×"),
            );
        }
        return;
    }
    // Wire-cost fields ("… bits/payload") are codec-determined, not
    // verdict-determined: legitimate codec tuning moves them, so they get a
    // tolerance band (Soft beyond it) instead of identity semantics.
    if path.contains("bits/payload") {
        if let (Some(bv), Some(cv)) = (b.as_f64(), c.as_f64()) {
            let drift = (bv - cv).abs();
            let scale = bv.abs().max(f64::MIN_POSITIVE);
            if drift / scale > 0.25 {
                report.push(
                    Severity::Soft,
                    path,
                    format!("wire cost drifted {bv:.0} → {cv:.0} bits/payload"),
                );
            }
            return;
        }
    }
    if b != c {
        report.push(severity, path, format!("{} → {}", show(b), show(c)));
    }
}

fn compare_durations(
    b_ns: i64,
    c_ns: i64,
    path: &str,
    report: &mut CompareReport,
    cfg: &CompareConfig,
) {
    if !cfg.check_timing {
        return;
    }
    if b_ns.max(c_ns) < cfg.min_time_ns {
        return; // both under the noise floor
    }
    let human = |ns: i64| rmt_obs::fmt_ns(ns.max(0) as u64);
    if c_ns as f64 > b_ns as f64 * cfg.max_time_ratio {
        report.push(
            Severity::Hard,
            path,
            format!(
                "timing regression: {} → {} (> {:.1}×)",
                human(b_ns),
                human(c_ns),
                cfg.max_time_ratio
            ),
        );
    } else if b_ns as f64 > c_ns as f64 * cfg.max_time_ratio {
        report.push(
            Severity::Soft,
            path,
            format!("timing improved: {} → {}", human(b_ns), human(c_ns)),
        );
    }
}

/// Counter snapshots: integer counters drift softly within tolerance;
/// histogram summaries compare structurally — except `*_ns` histograms,
/// where only the sample count is meaningful across runs.
fn compare_counters(
    baseline: Option<&Json>,
    candidate: Option<&Json>,
    report: &mut CompareReport,
    cfg: &CompareConfig,
) {
    let pairs = |v: Option<&Json>| -> Vec<(String, Json)> {
        match v {
            Some(Json::Obj(pairs)) => pairs.clone(),
            _ => Vec::new(),
        }
    };
    let (b_pairs, c_pairs) = (pairs(baseline), pairs(candidate));
    let lookup = |pairs: &[(String, Json)], key: &str| -> Option<Json> {
        pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
    };
    let mut keys: Vec<String> = b_pairs.iter().map(|(k, _)| k.clone()).collect();
    for (k, _) in &c_pairs {
        if !keys.contains(k) {
            keys.push(k.clone());
        }
    }
    for key in keys {
        let path = format!("counters.{key}");
        let (b, c) = match (lookup(&b_pairs, &key), lookup(&c_pairs, &key)) {
            (Some(b), Some(c)) => (b, c),
            (Some(_), None) => {
                report.push(Severity::Soft, path, "missing from candidate");
                continue;
            }
            (None, Some(_)) => {
                report.push(Severity::Soft, path, "missing from baseline");
                continue;
            }
            (None, None) => continue,
        };
        if let (Some(bv), Some(cv)) = (b.as_i64(), c.as_i64()) {
            let drift = (bv - cv).unsigned_abs() as f64;
            let scale = bv.unsigned_abs().max(1) as f64;
            if drift / scale > cfg.counter_tolerance {
                report.push(Severity::Soft, path, format!("counter drift: {bv} → {cv}"));
            }
            continue;
        }
        if b.get("count").is_some() && c.get("count").is_some() {
            if key.ends_with("_ns") {
                let (bc, cc) = (
                    b.get("count").and_then(Json::as_i64),
                    c.get("count").and_then(Json::as_i64),
                );
                if bc != cc {
                    report.push(
                        Severity::Soft,
                        path,
                        format!("timer sample count drift: {bc:?} → {cc:?}"),
                    );
                }
            } else if b != c {
                report.push(
                    Severity::Soft,
                    path,
                    format!("histogram drift: {} → {}", b.encode(), c.encode()),
                );
            }
            continue;
        }
        if b != c {
            report.push(
                Severity::Soft,
                path,
                format!("{} → {}", b.encode(), c.encode()),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(verdict: &str, ns: i64, counter: i64) -> Json {
        Json::parse(&format!(
            r#"{{"schema": 2, "experiment": "e3_safety",
                "params": {{"seed": "0xE3", "threads": 1}},
                "measurements": [
                  {{"attack": "silent", "WRONG": 0, "verdict": "{verdict}",
                    "time": {{"ns": {ns}, "human": "t"}},
                    "speedup": {{"ratio": 4.2, "human": "4.2×"}}}}
                ],
                "wall": {{"ns": 5000, "human": "5.0µs"}},
                "counters": {{"rmt_cut.partition_checks": {counter},
                   "rmt_cut.search_ns": {{"count": 3, "sum": {ns}, "min": 1,
                     "max": {ns}, "mean": 1.0, "p50": 1, "p90": 1, "p99": 1}}}}}}"#
        ))
        .expect("valid test artifact")
    }

    #[test]
    fn self_diff_passes_clean() {
        let a = artifact("safe", 20_000_000, 7);
        let report = compare_artifacts(&a, &a, &CompareConfig::default());
        assert!(report.findings.is_empty(), "{}", report.render());
        assert!(report.passed(true));
    }

    #[test]
    fn verdict_flip_is_a_hard_failure() {
        let a = artifact("safe", 20_000_000, 7);
        let b = artifact("UNSAFE", 20_000_000, 7);
        let report = compare_artifacts(&a, &b, &CompareConfig::default());
        assert_eq!(report.hard_count(), 1, "{}", report.render());
        assert!(!report.passed(false));
        assert!(report.render().contains("measurements[0].verdict"));
        assert!(report.render().contains("safe → UNSAFE"));
    }

    #[test]
    fn timing_inflation_beyond_threshold_is_hard() {
        let a = artifact("safe", 20_000_000, 7);
        let b = artifact("safe", 60_000_000, 7); // 3× above the 2× gate
        let report = compare_artifacts(&a, &b, &CompareConfig::default());
        assert_eq!(report.hard_count(), 1, "{}", report.render());
        assert!(report.render().contains("timing regression"));
        // The symmetric direction is only a soft improvement note.
        let rev = compare_artifacts(&b, &a, &CompareConfig::default());
        assert_eq!(rev.hard_count(), 0);
        assert_eq!(rev.soft_count(), 1);
        assert!(rev.passed(false));
        assert!(!rev.passed(true));
    }

    #[test]
    fn sub_floor_timing_noise_is_ignored() {
        let a = artifact("safe", 1_000, 7);
        let b = artifact("safe", 900_000, 7); // 900× but under 10ms floor
        let report = compare_artifacts(&a, &b, &CompareConfig::default());
        assert!(report.findings.is_empty(), "{}", report.render());
        // Cross-machine mode ignores even large regressions.
        let big = artifact("safe", 90_000_000_000, 7);
        let cfg = CompareConfig {
            check_timing: false,
            ..CompareConfig::default()
        };
        assert!(compare_artifacts(&a, &big, &cfg).findings.is_empty());
    }

    #[test]
    fn counter_drift_is_soft_and_tolerance_bounded() {
        let a = artifact("safe", 20_000_000, 100);
        let b = artifact("safe", 20_000_000, 103);
        let report = compare_artifacts(&a, &b, &CompareConfig::default());
        assert_eq!(report.hard_count(), 0);
        assert_eq!(report.soft_count(), 1);
        assert!(report.render().contains("counter drift: 100 → 103"));
        let lax = CompareConfig {
            counter_tolerance: 0.05,
            ..CompareConfig::default()
        };
        assert!(compare_artifacts(&a, &b, &lax).findings.is_empty());
    }

    #[test]
    fn different_experiments_do_not_compare() {
        let a = artifact("safe", 1, 1);
        let mut b = artifact("safe", 1, 1);
        if let Json::Obj(pairs) = &mut b {
            pairs[1].1 = Json::from("e4_other");
        }
        let report = compare_artifacts(&a, &b, &CompareConfig::default());
        assert_eq!(report.hard_count(), 1);
        assert_eq!(report.findings[0].path, "experiment");
    }

    #[test]
    fn row_count_and_missing_cells_are_hard() {
        let a = artifact("safe", 1, 1);
        let mut b = artifact("safe", 1, 1);
        if let Some(Json::Arr(rows)) = {
            if let Json::Obj(pairs) = &mut b {
                pairs
                    .iter_mut()
                    .find(|(k, _)| k == "measurements")
                    .map(|(_, v)| v)
            } else {
                None
            }
        } {
            rows.push(Json::obj([("extra", Json::Int(1))]));
        }
        let report = compare_artifacts(&a, &b, &CompareConfig::default());
        assert_eq!(report.hard_count(), 1);
        assert!(report.render().contains("1 baseline rows vs 2"));
    }

    #[test]
    fn thread_param_differences_stay_soft() {
        let a = artifact("safe", 1, 1);
        let mut b = artifact("safe", 1, 1);
        if let Some(Json::Obj(params)) = {
            if let Json::Obj(pairs) = &mut b {
                pairs
                    .iter_mut()
                    .find(|(k, _)| k == "params")
                    .map(|(_, v)| v)
            } else {
                None
            }
        } {
            params[1].1 = Json::Int(8);
        }
        let report = compare_artifacts(&a, &b, &CompareConfig::default());
        assert_eq!(report.hard_count(), 0);
        assert_eq!(report.soft_count(), 1);
        assert!(report.render().contains("params.threads"));
    }

    #[test]
    fn v1_string_cells_parse_and_gate_like_v2_objects() {
        // Schema-v1 artifacts rendered durations and ratios as bare strings
        // ("316µs", "4.3×"); a v1 baseline must still gate a v2 candidate.
        let v1 = Json::parse(
            r#"{"schema": 1, "experiment": "e3_safety",
                "params": {"seed": "0xE3", "threads": 1},
                "measurements": [
                  {"attack": "silent", "WRONG": 0, "verdict": "safe",
                   "time": "20ms", "speedup": "4.2×"}
                ],
                "wall_ns": 5000,
                "counters": {"rmt_cut.partition_checks": 7,
                  "rmt_cut.search_ns": {"count": 3, "sum": 20000000, "min": 1,
                    "max": 20000000, "mean": 1.0, "p50": 1, "p90": 1, "p99": 1}}}"#,
        )
        .expect("valid v1 artifact");
        // Identical values, different encodings: clean pass.
        let same = artifact("safe", 20_000_000, 7);
        let report = compare_artifacts(&v1, &same, &CompareConfig::default());
        assert!(report.findings.is_empty(), "{}", report.render());
        // A 3× timing inflation gates through the v1 string encoding too.
        let slow = artifact("safe", 60_000_000, 7);
        let report = compare_artifacts(&v1, &slow, &CompareConfig::default());
        assert_eq!(report.hard_count(), 1, "{}", report.render());
        assert!(report.render().contains("timing regression"));
        // Ratio drift via the "×" suffix form stays soft.
        let fast_ratio = Json::parse(
            &artifact("safe", 20_000_000, 7)
                .encode()
                .replace("4.2", "9.9"),
        )
        .unwrap();
        let report = compare_artifacts(&v1, &fast_ratio, &CompareConfig::default());
        assert_eq!(report.hard_count(), 0, "{}", report.render());
        assert_eq!(report.soft_count(), 1);
        assert!(report.render().contains("ratio drifted"));
    }

    #[test]
    fn missing_counters_are_soft_in_both_directions() {
        let a = artifact("safe", 20_000_000, 7);
        let mut b = artifact("safe", 20_000_000, 7);
        if let Some(Json::Obj(counters)) = {
            if let Json::Obj(pairs) = &mut b {
                pairs
                    .iter_mut()
                    .find(|(k, _)| k == "counters")
                    .map(|(_, v)| v)
            } else {
                None
            }
        } {
            counters.retain(|(k, _)| k != "rmt_cut.partition_checks");
            counters.push(("hunt.candidates_executed".to_string(), Json::Int(48)));
        }
        let report = compare_artifacts(&a, &b, &CompareConfig::default());
        assert_eq!(report.hard_count(), 0, "{}", report.render());
        assert_eq!(report.soft_count(), 2);
        let rendered = report.render();
        assert!(rendered.contains("counters.rmt_cut.partition_checks: missing from candidate"));
        assert!(rendered.contains("counters.hunt.candidates_executed: missing from baseline"));
        // Soft-only reports pass the default gate but not --strict.
        assert!(report.passed(false));
        assert!(!report.passed(true));
    }

    #[test]
    fn bits_per_payload_fields_get_a_tolerance_band() {
        let mk = |bpp: f64| {
            Json::parse(&format!(
                r#"{{"schema": 2, "experiment": "e16_session_throughput",
                    "params": {{}},
                    "measurements": [
                      {{"n": 12, "batch": 64, "wrong": 0,
                        "wire bits/payload": {bpp},
                        "naive bits/payload": 425856}}
                    ],
                    "wall": {{"ns": 100, "human": "100ns"}},
                    "counters": {{}}}}"#
            ))
            .expect("valid artifact")
        };
        // Within the 25% band: clean, even though the values differ.
        let report = compare_artifacts(&mk(5035.0), &mk(6000.0), &CompareConfig::default());
        assert!(report.findings.is_empty(), "{}", report.render());
        // Beyond the band: Soft — codec tuning is reportable, never a gate
        // failure on its own.
        let report = compare_artifacts(&mk(5035.0), &mk(9000.0), &CompareConfig::default());
        assert_eq!(report.hard_count(), 0, "{}", report.render());
        assert_eq!(report.soft_count(), 1);
        assert!(report.render().contains("wire cost drifted"));
        assert!(report.render().contains("bits/payload"));
        // The verdict column in the same row still gates hard.
        let bad = Json::parse(&mk(5035.0).encode().replace("\"wrong\":0", "\"wrong\":1")).unwrap();
        let report = compare_artifacts(&mk(5035.0), &bad, &CompareConfig::default());
        assert_eq!(report.hard_count(), 1, "{}", report.render());
    }

    #[test]
    fn speedup_ratio_cells_band_like_timings() {
        // E17-shaped rows: the speedup column is a timing quotient. Within
        // the band it is clean, beyond it Soft, and in cross-machine mode
        // (`check_timing = false`) it is skipped entirely — while verdict
        // columns in the same row keep gating hard either way.
        let mk = |speedup: f64, cut: i64| {
            Json::parse(&format!(
                r#"{{"schema": 2, "experiment": "e17_incremental",
                    "params": {{"seed": "0xE17"}},
                    "measurements": [
                      {{"n": 24, "cut": {cut}, "no cut": 0,
                        "incremental": {{"ns": 2700000, "human": "2.7ms"}},
                        "speedup": {{"ratio": {speedup}, "human": "{speedup}×"}}}}
                    ],
                    "wall": {{"ns": 100, "human": "100ns"}},
                    "counters": {{}}}}"#
            ))
            .expect("valid artifact")
        };
        let cfg = CompareConfig::default();
        // Within the 2× band: clean despite the drift.
        let report = compare_artifacts(&mk(5.5, 40), &mk(7.2, 40), &cfg);
        assert!(report.findings.is_empty(), "{}", report.render());
        // Beyond the band: Soft, never Hard.
        let report = compare_artifacts(&mk(5.5, 40), &mk(18.0, 40), &cfg);
        assert_eq!(report.hard_count(), 0, "{}", report.render());
        assert_eq!(report.soft_count(), 1);
        assert!(report.render().contains("ratio drifted"));
        // Cross-machine mode skips the ratio comparison entirely.
        let cross = CompareConfig {
            check_timing: false,
            ..CompareConfig::default()
        };
        let report = compare_artifacts(&mk(5.5, 40), &mk(18.0, 40), &cross);
        assert!(report.findings.is_empty(), "{}", report.render());
        // A verdict-mix flip in the same row still gates hard, with or
        // without timing checks.
        let report = compare_artifacts(&mk(5.5, 40), &mk(5.5, 39), &cross);
        assert_eq!(report.hard_count(), 1, "{}", report.render());
        assert!(report.render().contains("measurements[0].cut"));
    }

    #[test]
    fn numeric_verdict_columns_drift_hard() {
        // WRONG counts are verdict columns: 0 → 1 is exactly the regression
        // the gate exists to catch, regardless of timing.
        let a = artifact("safe", 20_000_000, 7);
        let b = Json::parse(&a.encode().replace("\"WRONG\":0", "\"WRONG\":1")).unwrap();
        let report = compare_artifacts(&a, &b, &CompareConfig::default());
        assert_eq!(report.hard_count(), 1, "{}", report.render());
        assert!(report.render().contains("measurements[0].WRONG"));
        assert!(!report.passed(false));
    }

    #[test]
    fn legacy_wall_ns_still_gates() {
        let mk = |ns: i64| {
            Json::parse(&format!(
                r#"{{"experiment": "e1", "params": {{}}, "measurements": [],
                    "wall_ns": {ns}, "counters": {{}}}}"#
            ))
            .unwrap()
        };
        let report = compare_artifacts(&mk(20_000_000), &mk(90_000_000), &CompareConfig::default());
        assert_eq!(report.hard_count(), 1);
        assert_eq!(report.findings[0].path, "wall");
    }
}
