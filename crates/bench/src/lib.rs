//! Experiment harness for the `rmt` reproduction: table formatting,
//! statistics and timing helpers shared by the E1–E8 experiment binaries and
//! the Criterion benches.
//!
//! Every binary in `src/bin/` regenerates one experiment of
//! `EXPERIMENTS.md`; run them with `cargo run -p rmt-bench --release --bin
//! e<k>_…`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;

use std::fmt::Display;
use std::time::{Duration, Instant};

use rmt_obs::{Json, Registry};

/// A plain-text table with aligned columns, printed by the experiment
/// binaries.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringifying each cell).
    pub fn row<D: Display>(&mut self, cells: &[D]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// One experiment run with an optional machine-readable artifact.
///
/// Every `e*` binary drives its run through an `Experiment`: tables print as
/// before, and when the binary is invoked with `--json` the run additionally
/// writes `BENCH_E<k>.json` — a single schema-v2 object
///
/// ```json
/// {"schema": 2, "experiment": ..., "params": {...}, "measurements": [...],
///  "wall": {"ns": ..., "human": "..."}, "counters": {...},
///  "build": {"version": ..., "profile": ..., "os": ..., "arch": ...}}
/// ```
///
/// where `measurements` holds one object per recorded table row (numeric
/// cells coerced to numbers, duration cells like `"316µs"` to
/// `{"ns": 316000, "human": "316µs"}`, ratio cells like `"4.3×"` to
/// `{"ratio": 4.3, "human": "4.3×"}`) and `counters` is the snapshot of
/// [`Experiment::registry`] — populated by the instrumented deciders
/// (`find_rmt_cut_observed`, `zpp_cut_by_fixpoint_observed`,
/// `materialize_bounded_observed`, …), histograms summarized with
/// p50/p90/p99 quantiles. The structured duration/ratio fields are what the
/// [`compare`] gate thresholds on; everything stringly stays a verdict
/// column compared by identity.
pub struct Experiment {
    name: String,
    json: bool,
    params: Vec<(String, Json)>,
    measurements: Vec<Json>,
    registry: Registry,
    start: Instant,
}

impl Experiment {
    /// Creates the experiment named `name` (e.g. `"e3_safety"`), reading
    /// `--json` from the process arguments.
    pub fn new(name: &str) -> Self {
        let json = std::env::args().skip(1).any(|a| a == "--json");
        Experiment {
            name: name.to_string(),
            json,
            params: Vec::new(),
            measurements: Vec::new(),
            registry: Registry::new(),
            start: Instant::now(),
        }
    }

    /// `true` when `--json` was passed: the run will write an artifact.
    pub fn json_enabled(&self) -> bool {
        self.json
    }

    /// The metrics registry to hand to instrumented deciders; its snapshot
    /// becomes the artifact's `counters` field.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Records one experiment parameter.
    pub fn param(&mut self, key: &str, value: impl Into<Json>) {
        self.params.push((key.to_string(), value.into()));
    }

    /// Resolves the worker-thread count for this run (`--threads N` /
    /// `RMT_THREADS` / available parallelism — see
    /// [`rmt_par::configured_threads`]) and records it as the `threads`
    /// parameter of the artifact.
    pub fn threads(&mut self) -> usize {
        let threads = configured_threads();
        self.param("threads", i64::try_from(threads).unwrap_or(i64::MAX));
        threads
    }

    /// Records one measurement object.
    pub fn record(&mut self, measurement: Json) {
        self.measurements.push(measurement);
    }

    /// Records every row of `table` as a measurement object keyed by the
    /// table's headers, coercing numeric-looking cells to numbers.
    pub fn record_table(&mut self, table: &Table) {
        for row in &table.rows {
            let fields = table
                .headers
                .iter()
                .zip(row)
                .map(|(h, cell)| (h.clone(), coerce_cell(cell)))
                .collect();
            self.measurements.push(Json::Obj(fields));
        }
    }

    /// The artifact path: `BENCH_E<k>.json`, with `E<k>` derived from the
    /// experiment name's leading segment (`"e10_placement"` → `BENCH_E10.json`).
    pub fn artifact_path(&self) -> std::path::PathBuf {
        let id = self
            .name
            .split('_')
            .next()
            .unwrap_or(&self.name)
            .to_uppercase();
        std::path::PathBuf::from(format!("BENCH_{id}.json"))
    }

    /// Writes the artifact if `--json` was passed. Call last.
    pub fn finish(self) {
        if !self.json {
            return;
        }
        let path = self.artifact_path();
        let wall = self.start.elapsed();
        let wall_ns = i64::try_from(wall.as_nanos()).unwrap_or(i64::MAX);
        let artifact = Json::obj([
            ("schema", Json::Int(2)),
            ("experiment", Json::from(self.name.as_str())),
            ("params", Json::Obj(self.params)),
            ("measurements", Json::Arr(self.measurements)),
            (
                "wall",
                Json::obj([
                    ("ns", Json::Int(wall_ns)),
                    ("human", Json::from(fmt_duration(wall).as_str())),
                ]),
            ),
            ("counters", self.registry.to_json()),
            (
                "build",
                Json::obj([
                    ("version", Json::from(env!("CARGO_PKG_VERSION"))),
                    (
                        "profile",
                        Json::from(if cfg!(debug_assertions) {
                            "debug"
                        } else {
                            "release"
                        }),
                    ),
                    ("os", Json::from(std::env::consts::OS)),
                    ("arch", Json::from(std::env::consts::ARCH)),
                ]),
            ),
        ]);
        let mut text = artifact.encode();
        text.push('\n');
        match std::fs::write(&path, text) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }
}

fn coerce_cell(cell: &str) -> Json {
    if let Ok(n) = cell.parse::<i64>() {
        return Json::Int(n);
    }
    if let Ok(x) = cell.parse::<f64>() {
        if x.is_finite() {
            return Json::Num(x);
        }
    }
    if let Some(ns) = parse_duration_ns(cell) {
        return Json::obj([("ns", Json::Int(ns)), ("human", Json::from(cell))]);
    }
    if let Some(ratio) = cell.strip_suffix('×').and_then(|r| r.parse::<f64>().ok()) {
        if ratio.is_finite() {
            return Json::obj([("ratio", Json::Num(ratio)), ("human", Json::from(cell))]);
        }
    }
    Json::from(cell)
}

/// Parses the compact duration renderings of [`fmt_duration`] and
/// [`rmt_obs::fmt_ns`] (`"316µs"`, `"1.3ms"`, `"2.00s"`, `"12ns"`) back to
/// nanoseconds; `None` for anything else.
pub(crate) fn parse_duration_ns(cell: &str) -> Option<i64> {
    let (digits, scale) = if let Some(p) = cell.strip_suffix("ns") {
        (p, 1.0)
    } else if let Some(p) = cell.strip_suffix("µs") {
        (p, 1e3)
    } else if let Some(p) = cell.strip_suffix("ms") {
        (p, 1e6)
    } else if let Some(p) = cell.strip_suffix('s') {
        (p, 1e9)
    } else {
        return None;
    };
    let x: f64 = digits.parse().ok()?;
    (x.is_finite() && x >= 0.0).then(|| (x * scale).round() as i64)
}

/// Mean of a sample.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

// The experiments are embarrassingly parallel over instances; the executor
// lives in `rmt-par` (shared with the parallel deciders) and is re-exported
// here so the `e*` binaries keep their historical import path.
pub use rmt_par::{configured_threads, parallel_map, threads_from};

/// Runs `f`, returning its result and wall-clock duration.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Formats a duration compactly (µs/ms/s).
pub fn fmt_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", d.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_rows() {
        let mut t = Table::new("demo", &["n", "value"]);
        t.row(&[1, 100]);
        t.row(&[22, 3]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains(" n  value"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn zero_column_table_renders_without_panicking() {
        // Regression: the rule width computed `2 * (widths.len() - 1)`,
        // which underflowed for a table with no columns.
        let t = Table::new("empty", &[]);
        let s = t.render();
        assert!(s.contains("## empty"));
        let mut one = Table::new("one", &["only"]);
        one.row(&["x"]);
        assert!(one.render().contains("only"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_wrong_arity() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&[1]);
    }

    #[test]
    fn statistics_are_sane() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert!((stddev(&[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-9);
        assert_eq!(stddev(&[5.0]), 0.0);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100).collect(), 4, |x: i32| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
        let single = parallel_map(vec![1, 2, 3], 1, |x: i32| x + 1);
        assert_eq!(single, vec![2, 3, 4]);
    }

    #[test]
    fn experiment_artifact_naming_and_row_coercion() {
        let mut exp = Experiment::new("e10_placement");
        assert_eq!(exp.artifact_path().to_str(), Some("BENCH_E10.json"));
        assert_eq!(
            Experiment::new("e3_safety").artifact_path().to_str(),
            Some("BENCH_E3.json")
        );
        let mut t = Table::new("demo", &["attack", "runs", "rate"]);
        t.row(&["silent".to_string(), "50".to_string(), "0.5".to_string()]);
        exp.record_table(&t);
        let m = &exp.measurements[0];
        assert_eq!(m.get("attack").and_then(Json::as_str), Some("silent"));
        assert_eq!(m.get("runs").and_then(Json::as_i64), Some(50));
        assert_eq!(m.get("rate").and_then(Json::as_f64), Some(0.5));
    }

    #[test]
    fn duration_and_ratio_cells_coerce_to_structured_fields() {
        let mut t = Table::new("demo", &["time", "speedup", "note", "frac"]);
        t.row(&["316µs", "4.3×", "—", "96/96"]);
        t.row(&["1.3ms", "0.9×", "msgs", "2.00s"]);
        let mut exp = Experiment::new("e6_scaling");
        exp.record_table(&t);
        let m = &exp.measurements[0];
        let time = m.get("time").unwrap();
        assert_eq!(time.get("ns").and_then(Json::as_i64), Some(316_000));
        assert_eq!(time.get("human").and_then(Json::as_str), Some("316µs"));
        let speedup = m.get("speedup").unwrap();
        assert_eq!(speedup.get("ratio").and_then(Json::as_f64), Some(4.3));
        // Non-durations stay verdict strings.
        assert_eq!(m.get("note").and_then(Json::as_str), Some("—"));
        assert_eq!(m.get("frac").and_then(Json::as_str), Some("96/96"));
        let m2 = &exp.measurements[1];
        assert_eq!(
            m2.get("time").unwrap().get("ns").and_then(Json::as_i64),
            Some(1_300_000)
        );
        assert_eq!(
            m2.get("frac").unwrap().get("ns").and_then(Json::as_i64),
            Some(2_000_000_000)
        );
        // "msgs" ends in 's' but is not a duration.
        assert_eq!(m2.get("note").and_then(Json::as_str), Some("msgs"));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12µs");
        assert_eq!(fmt_duration(Duration::from_micros(2_500)), "2.5ms");
        assert_eq!(fmt_duration(Duration::from_secs(3)), "3.00s");
    }
}
