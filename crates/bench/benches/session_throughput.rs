//! Criterion bench for batched session throughput (E16 companion).
//!
//! Measures whole honest transmissions of B payloads at a fixed instance:
//! `per_message` runs the naive protocol B times (the pre-session cost of
//! sending B values); `session` runs one batched session. Messages/sec is
//! `B / measured time`; the per-payload wire cost the same runs produce is
//! tabulated by the `e16_session_throughput` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rmt_core::protocols::rmt_pka::RmtPka;
use rmt_core::sampling::threshold_instance;
use rmt_graph::generators::{self, seeded};
use rmt_graph::ViewKind;
use rmt_session::{Session, SessionPlan};
use rmt_sets::NodeSet;
use rmt_sim::{Runner, SilentAdversary};
use std::hint::black_box;

const BATCHES: &[usize] = &[1, 4, 16, 64];

fn bench_session_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_throughput");
    group.sample_size(20);
    let n = 12usize;
    let mut rng = seeded(n as u64);
    let g = generators::ring_with_chords(n, n / 4, &mut rng);
    let inst = threshold_instance(g, 0, ViewKind::AdHoc, 0, n as u32 / 2);
    let plan = SessionPlan::build(&inst);
    for &batch in BATCHES {
        let values: Vec<u64> = (0..batch as u64).map(|i| 1000 + i).collect();
        group.bench_with_input(
            BenchmarkId::new("per_message", batch),
            &batch,
            |b, &batch| {
                b.iter(|| {
                    for i in 0..batch as u64 {
                        black_box(
                            Runner::new(
                                inst.graph().clone(),
                                |v| RmtPka::node(&inst, v, 1000 + i),
                                SilentAdversary::new(NodeSet::new()),
                            )
                            .run()
                            .decision(inst.receiver()),
                        );
                    }
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("session", batch), &batch, |b, _| {
            b.iter(|| black_box(Session::new(&plan, values.clone()).run_honest().verdicts))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_session_throughput);
criterion_main!(benches);
