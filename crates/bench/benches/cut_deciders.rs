//! Criterion bench for the cut deciders: the exhaustive RMT-cut search vs
//! the polynomial Z-CPA fixpoint decider, across instance sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rmt_core::cuts::{find_rmt_cut, zpp_cut_by_enumeration, zpp_cut_by_fixpoint};
use rmt_core::sampling::random_instance_nonadjacent;
use rmt_graph::generators::seeded;
use rmt_graph::ViewKind;
use std::hint::black_box;

fn bench_cuts(c: &mut Criterion) {
    let mut group = c.benchmark_group("cut_deciders");
    for &n in &[6usize, 8, 10, 12] {
        let mut rng = seeded(n as u64);
        let inst = random_instance_nonadjacent(n, 0.35, ViewKind::AdHoc, 3, 2, &mut rng);
        group.bench_with_input(BenchmarkId::new("rmt_cut_exhaustive", n), &n, |b, _| {
            b.iter(|| black_box(find_rmt_cut(&inst)))
        });
        group.bench_with_input(BenchmarkId::new("zpp_enumeration", n), &n, |b, _| {
            b.iter(|| black_box(zpp_cut_by_enumeration(&inst)))
        });
        group.bench_with_input(BenchmarkId::new("zpp_fixpoint", n), &n, |b, _| {
            b.iter(|| black_box(zpp_cut_by_fixpoint(&inst)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cuts);
criterion_main!(benches);
