//! Criterion bench for the RMT-PKA receiver's decision subroutine: cost as
//! a function of network size and of injected claim conflicts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rmt_adversary::AdversaryStructure;
use rmt_core::protocols::pka_decision::{DecisionConfig, ReceiverState};
use rmt_core::sampling::threshold_instance;
use rmt_graph::{generators, Graph, ViewKind};
use rmt_sets::NodeId;
use std::hint::black_box;

/// Builds a receiver state loaded with the honest information of a
/// ring-with-chords instance, plus `conflicts` fake claims on one node.
fn loaded_state(n: usize, conflicts: usize) -> (ReceiverState, DecisionConfig) {
    let mut rng = generators::seeded(n as u64);
    let g = generators::ring_with_chords(n, n / 4, &mut rng);
    let inst = threshold_instance(g.clone(), 1, ViewKind::AdHoc, 0, n as u32 / 2);
    let me = inst.receiver();
    let mut state = ReceiverState::new(
        me,
        inst.dealer(),
        inst.view(me).clone(),
        inst.local_structure(me),
    );
    for u in g.nodes() {
        if u == me {
            continue;
        }
        state.ingest_claim(u, inst.view(u).clone(), inst.local_structure(u));
    }
    for p in rmt_graph::paths::simple_paths(&g, inst.dealer(), me, 100_000).unwrap() {
        // The engine stores trails without the receiver; strip it.
        state.ingest_value(7, &p[..p.len() - 1]);
    }
    for k in 0..conflicts {
        let mut fake = Graph::new();
        fake.add_edge(1.into(), NodeId::new(100 + k as u32));
        state.ingest_claim(1.into(), fake, AdversaryStructure::trivial());
    }
    (state, DecisionConfig::default())
}

fn bench_decide(c: &mut Criterion) {
    let mut group = c.benchmark_group("pka_decision");
    group.sample_size(20);
    for &n in &[8usize, 12, 16] {
        let (state, cfg) = loaded_state(n, 0);
        group.bench_with_input(BenchmarkId::new("honest_pool", n), &n, |b, _| {
            b.iter_batched(
                || state.clone(),
                |mut s| black_box(s.decide(&cfg)),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    for &conflicts in &[0usize, 2, 4] {
        let (state, cfg) = loaded_state(10, conflicts);
        group.bench_with_input(
            BenchmarkId::new("with_conflicts", conflicts),
            &conflicts,
            |b, _| {
                b.iter_batched(
                    || state.clone(),
                    |mut s| black_box(s.decide(&cfg)),
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_decide);
criterion_main!(benches);
