//! Criterion bench for the separator-anchored cut search against the
//! exhaustive scan: fixed gallery instances plus the E13 ring+chords
//! family, sequential and parallel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rmt_core::cuts::{
    find_rmt_cut, find_rmt_cut_anchored, find_rmt_cut_anchored_par, zpp_cut_by_enumeration,
    zpp_cut_by_enumeration_anchored,
};
use rmt_core::sampling::threshold_instance;
use rmt_core::{gallery, Instance};
use rmt_graph::generators::{self, seeded};
use rmt_graph::ViewKind;
use std::hint::black_box;

fn gallery_instances() -> Vec<(&'static str, Instance)> {
    vec![
        (
            "unsolvable_diamond",
            gallery::unsolvable_diamond(ViewKind::AdHoc),
        ),
        (
            "tolerant_diamond",
            gallery::tolerant_diamond(ViewKind::AdHoc),
        ),
        ("staggered_theta", gallery::staggered_theta(ViewKind::AdHoc)),
    ]
}

fn bench_gallery(c: &mut Criterion) {
    let mut group = c.benchmark_group("cut_search/gallery");
    for (name, inst) in gallery_instances() {
        group.bench_with_input(BenchmarkId::new("exhaustive", name), &inst, |b, inst| {
            b.iter(|| black_box(find_rmt_cut(inst)))
        });
        group.bench_with_input(BenchmarkId::new("anchored", name), &inst, |b, inst| {
            b.iter(|| black_box(find_rmt_cut_anchored(inst)))
        });
    }
    group.finish();
}

fn bench_ring_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("cut_search/ring_chords");
    // Threshold 0: solvable, so both deciders run their full scan — the
    // worst case the anchoring is built for.
    for &n in &[12usize, 16] {
        let mut rng = seeded(0xE13);
        let g = generators::ring_with_chords(n, n / 4, &mut rng);
        let inst = threshold_instance(g, 0, ViewKind::AdHoc, 0, (n / 2) as u32);
        group.bench_with_input(BenchmarkId::new("exhaustive", n), &inst, |b, inst| {
            b.iter(|| black_box(find_rmt_cut(inst)))
        });
        group.bench_with_input(BenchmarkId::new("anchored", n), &inst, |b, inst| {
            b.iter(|| black_box(find_rmt_cut_anchored(inst)))
        });
        group.bench_with_input(BenchmarkId::new("anchored_par8", n), &inst, |b, inst| {
            b.iter(|| black_box(find_rmt_cut_anchored_par(inst, 8)))
        });
        group.bench_with_input(BenchmarkId::new("zpp_exhaustive", n), &inst, |b, inst| {
            b.iter(|| black_box(zpp_cut_by_enumeration(inst)))
        });
        group.bench_with_input(BenchmarkId::new("zpp_anchored", n), &inst, |b, inst| {
            b.iter(|| black_box(zpp_cut_by_enumeration_anchored(inst)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gallery, bench_ring_family);
criterion_main!(benches);
