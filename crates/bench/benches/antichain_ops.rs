//! Criterion bench for the antichain backends behind the adversary
//! structures: subsumption-pruned insertion (`from_sets_with`), membership,
//! and the binary ⊕ join, explicit sorted-list vs compressed set-trie, across
//! candidate-set counts straddling `TRIE_SELECT_THRESHOLD`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;
use rmt_adversary::{
    AdversaryStructure, ExplicitFamily, FamilyBackend, MonotoneFamily, RestrictedStructure,
    TrieFamily,
};
use rmt_graph::generators::seeded;
use rmt_sets::{NodeId, NodeSet};
use std::hint::black_box;

const UNIVERSE: u32 = 24;

/// `k` random ~8-element subsets of the 24-node universe: enough overlap to
/// trigger subsumption pruning, enough spread to keep the antichain large.
fn random_sets(k: usize, seed: u64) -> Vec<NodeSet> {
    let mut rng = seeded(seed);
    (0..k)
        .map(|_| {
            (0..8)
                .map(|_| NodeId::new(rng.random_range(0..UNIVERSE)))
                .collect()
        })
        .collect()
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("antichain_insert");
    for &k in &[64usize, 512, 2048] {
        let sets = random_sets(k, 0xA17);
        group.bench_with_input(BenchmarkId::new("explicit", k), &sets, |b, sets| {
            b.iter(|| {
                black_box(AdversaryStructure::from_sets_with(
                    FamilyBackend::Explicit,
                    sets.iter().cloned(),
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("trie", k), &sets, |b, sets| {
            b.iter(|| {
                black_box(AdversaryStructure::from_sets_with(
                    FamilyBackend::Trie,
                    sets.iter().cloned(),
                ))
            })
        });
    }
    group.finish();
}

fn bench_membership(c: &mut Criterion) {
    let mut group = c.benchmark_group("antichain_membership");
    for &k in &[64usize, 512, 2048] {
        let sets = random_sets(k, 0xA18);
        let queries = random_sets(64, 0xA19);
        let mut explicit = ExplicitFamily::new();
        let mut trie = TrieFamily::new();
        for s in &sets {
            explicit.insert_maximal(s.clone());
            trie.insert_maximal(s.clone());
        }
        group.bench_with_input(BenchmarkId::new("explicit", k), &queries, |b, qs| {
            b.iter(|| {
                for q in qs {
                    black_box(explicit.contains_member(q));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("trie", k), &queries, |b, qs| {
            b.iter(|| {
                for q in qs {
                    black_box(trie.contains_member(q));
                }
            })
        });
    }
    group.finish();
}

fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("antichain_join");
    for &k in &[8usize, 24, 48] {
        let left = RestrictedStructure::restrict(
            &AdversaryStructure::from_sets(random_sets(k, 0xA20)),
            (0..16u32).collect(),
        );
        let right = RestrictedStructure::restrict(
            &AdversaryStructure::from_sets(random_sets(k, 0xA21)),
            (8..UNIVERSE).collect(),
        );
        group.bench_with_input(BenchmarkId::new("explicit", k), &k, |b, _| {
            b.iter(|| black_box(left.join_with(&right, FamilyBackend::Explicit)))
        });
        group.bench_with_input(BenchmarkId::new("trie", k), &k, |b, _| {
            b.iter(|| black_box(left.join_with(&right, FamilyBackend::Trie)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_insert, bench_membership, bench_join);
criterion_main!(benches);
