//! Criterion bench for honest protocol runs (E6 companion): Z-CPA's
//! polynomial cost vs RMT-PKA's path-propagation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rmt_core::protocols::rmt_pka::RmtPka;
use rmt_core::protocols::zcpa::ZCpa;
use rmt_core::sampling::threshold_instance;
use rmt_graph::generators::{self, seeded};
use rmt_graph::ViewKind;
use rmt_sets::NodeSet;
use rmt_sim::{Runner, SilentAdversary};
use std::hint::black_box;

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocols");
    group.sample_size(20);
    for &n in &[8usize, 12, 16] {
        let mut rng = seeded(n as u64);
        let g = generators::ring_with_chords(n, n / 4, &mut rng);
        let inst = threshold_instance(g, 0, ViewKind::AdHoc, 0, n as u32 / 2);
        group.bench_with_input(BenchmarkId::new("zcpa_honest", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    Runner::new(
                        inst.graph().clone(),
                        |v| ZCpa::node(&inst, v, 7),
                        SilentAdversary::new(NodeSet::new()),
                    )
                    .run()
                    .decision(inst.receiver()),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("rmt_pka_honest", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    Runner::new(
                        inst.graph().clone(),
                        |v| RmtPka::node(&inst, v, 7),
                        SilentAdversary::new(NodeSet::new()),
                    )
                    .run()
                    .decision(inst.receiver()),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
