//! Criterion bench for the ⊕ operation (E1 companion): materialized fold vs
//! lazy cylinder membership, across operand counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rmt_adversary::{JointView, RestrictedStructure};
use rmt_core::sampling::random_structure;
use rmt_graph::generators::seeded;
use rmt_sets::{NodeId, NodeSet};
use std::hint::black_box;

fn windows(n: usize, k: usize) -> Vec<NodeSet> {
    (0..k)
        .map(|i| {
            let base = (i * n / k) as u32;
            (0..=n as u32 / 2)
                .map(|j| NodeId::new((base + j) % n as u32))
                .collect()
        })
        .collect()
}

fn bench_join(c: &mut Criterion) {
    let n = 16;
    let mut group = c.benchmark_group("join");
    for &k in &[2usize, 4, 8, 16] {
        let mut rng = seeded(0xBE);
        let z = random_structure(&NodeSet::universe(n), 5, 3, &mut rng);
        let parts: Vec<RestrictedStructure> = windows(n, k)
            .into_iter()
            .map(|d| RestrictedStructure::restrict(&z, d))
            .collect();
        let view: JointView = parts.iter().cloned().collect();
        let candidate: NodeSet = [0u32, 3, 7, 11].into_iter().collect();

        group.bench_with_input(BenchmarkId::new("materialize", k), &k, |b, _| {
            b.iter(|| black_box(view.materialize()))
        });
        group.bench_with_input(BenchmarkId::new("lazy_contains", k), &k, |b, _| {
            b.iter(|| black_box(view.contains(&candidate)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_join);
criterion_main!(benches);
