//! Criterion bench for the Theorem-9 self-reduction (E7 companion): Z-CPA
//! with the explicit membership oracle vs the Π-simulation oracle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rmt_core::protocols::zcpa::ZCpa;
use rmt_core::reduction::PiSimulationOracle;
use rmt_core::sampling::random_instance;
use rmt_graph::generators::seeded;
use rmt_graph::ViewKind;
use rmt_sets::NodeSet;
use rmt_sim::{Runner, SilentAdversary};
use std::hint::black_box;

fn bench_self_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("self_reduction");
    group.sample_size(30);
    for &n in &[8usize, 12] {
        let mut rng = seeded(0x5E1F ^ n as u64);
        let inst = random_instance(n, 0.4, ViewKind::AdHoc, 3, 2, &mut rng);
        group.bench_with_input(BenchmarkId::new("explicit_oracle", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    Runner::new(
                        inst.graph().clone(),
                        |v| ZCpa::node(&inst, v, 7),
                        SilentAdversary::new(NodeSet::new()),
                    )
                    .run()
                    .decision(inst.receiver()),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("pi_simulation_oracle", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    Runner::new(
                        inst.graph().clone(),
                        |v| {
                            ZCpa::with_oracle(
                                &inst,
                                v,
                                7,
                                PiSimulationOracle::for_node(&inst, v, 1 << 20),
                            )
                        },
                        SilentAdversary::new(NodeSet::new()),
                    )
                    .run()
                    .decision(inst.receiver()),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_self_reduction);
criterion_main!(benches);
