//! Properties of the phase profiler and its artifacts: arbitrary span
//! programs stay well-nested under the virtual clock, histogram merging is
//! associative, and the new span/timing events survive the JSONL codec.

use proptest::prelude::*;
use rmt_obs::{
    parse_jsonl, span_tree, to_jsonl, Clock, Histogram, Profiler, RunEvent, Span, SpanNode,
};

/// A fixed pool of span names: the profiler takes `&'static str`, so random
/// programs pick names by index.
const NAMES: [&str; 5] = ["alpha", "beta", "gamma", "delta", "epsilon"];

/// Replays a random open/close program against a profiler. Commands are
/// interpreted against an explicit stack, so closes always match the most
/// recently opened span — exactly the discipline RAII guards enforce.
fn replay(prof: &Profiler, program: &[u32]) -> usize {
    let mut stack: Vec<Span> = Vec::new();
    let mut opened = 0;
    for &cmd in program {
        if cmd % 3 != 0 && stack.len() < 6 {
            stack.push(prof.span(NAMES[cmd as usize % NAMES.len()]));
            opened += 1;
        } else {
            drop(stack.pop());
        }
    }
    while let Some(span) = stack.pop() {
        drop(span);
    }
    opened
}

fn assert_nested(node: &SpanNode) {
    assert!(node.start_ns <= node.end_ns, "span runs backwards");
    for child in &node.children {
        assert!(
            node.start_ns <= child.start_ns && child.end_ns <= node.end_ns,
            "child [{}, {}] escapes parent [{}, {}]",
            child.start_ns,
            child.end_ns,
            node.start_ns,
            node.end_ns,
        );
        assert_nested(child);
    }
}

fn count_spans(nodes: &[SpanNode]) -> usize {
    nodes
        .iter()
        .map(|n| 1 + count_spans(&n.children))
        .sum::<usize>()
}

/// Counters ride in `Json::Int` (i64), so representable values stop at
/// `i64::MAX` — comfortably above any real round's budget.
const MAX_INT: u64 = i64::MAX as u64;

fn arb_round_end() -> impl Strategy<Value = RunEvent> {
    (
        0u32..100,
        0u64..MAX_INT,
        0u64..MAX_INT,
        0u64..MAX_INT,
        0u64..MAX_INT,
    )
        .prop_map(|(round, ns, messages, bits, drops)| RunEvent::RoundEnd {
            round,
            ns,
            messages,
            bits,
            drops,
        })
}

fn arb_span_event() -> impl Strategy<Value = RunEvent> {
    (0u32..2, 0usize..NAMES.len(), 0u64..MAX_INT).prop_map(|(kind, name, at_ns)| {
        let name = NAMES[name].to_string();
        if kind == 0 {
            RunEvent::SpanOpen { name, at_ns }
        } else {
            RunEvent::SpanClose { name, at_ns }
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every program of opens and closes — however unbalanced its command
    /// stream — produces a parseable, well-nested span tree whose node count
    /// equals the number of spans actually opened, and replaying it under
    /// the virtual clock gives identical timestamps.
    #[test]
    fn arbitrary_span_programs_stay_well_nested(
        program in proptest::collection::vec(0u32..30, 0..40),
        step in 1u64..1000,
    ) {
        let prof = Profiler::new(Clock::virtual_ns(step));
        let opened = replay(&prof, &program);
        let events = prof.events();
        prop_assert_eq!(events.len(), opened * 2);
        let roots = span_tree(&events).expect("RAII guards cannot mis-nest");
        prop_assert_eq!(count_spans(&roots), opened);
        for root in &roots {
            assert_nested(root);
        }
        // Determinism: the virtual clock makes the whole event stream —
        // timestamps included — a pure function of the program.
        let prof2 = Profiler::new(Clock::virtual_ns(step));
        replay(&prof2, &program);
        prop_assert_eq!(events, prof2.events());
    }

    /// Histogram merging is associative (and commutative): any merge order
    /// over three sample sets yields identical counts, sums and buckets.
    #[test]
    fn histogram_merge_is_associative(
        xs in proptest::collection::vec(any::<u64>(), 0..20),
        ys in proptest::collection::vec(0u64..1_000_000, 0..20),
        zs in proptest::collection::vec(0u64..100, 0..20),
    ) {
        let fill = |samples: &[u64]| {
            let h = Histogram::new();
            for &s in samples {
                h.record(s);
            }
            h
        };
        // (x ⊕ y) ⊕ z
        let left = fill(&xs);
        left.merge_from(&fill(&ys));
        left.merge_from(&fill(&zs));
        // x ⊕ (y ⊕ z)
        let right_tail = fill(&ys);
        right_tail.merge_from(&fill(&zs));
        let right = fill(&xs);
        right.merge_from(&right_tail);
        // z ⊕ y ⊕ x — commutativity for free.
        let rev = fill(&zs);
        rev.merge_from(&fill(&ys));
        rev.merge_from(&fill(&xs));
        prop_assert_eq!(left.count(), right.count());
        prop_assert_eq!(left.sum(), right.sum());
        prop_assert_eq!(left.nonzero_buckets(), right.nonzero_buckets());
        prop_assert_eq!(left.summary_json(), right.summary_json());
        prop_assert_eq!(left.nonzero_buckets(), rev.nonzero_buckets());
        prop_assert_eq!(left.summary_json(), rev.summary_json());
    }

    /// The new timing events — per-round wire records and span marks —
    /// survive the JSONL codec byte-exactly.
    #[test]
    fn span_and_timing_events_round_trip_through_jsonl(
        rounds in proptest::collection::vec(arb_round_end(), 0..10),
        spans in proptest::collection::vec(arb_span_event(), 0..10),
    ) {
        let mut events = rounds;
        events.extend(spans);
        let text = to_jsonl(&events.iter().map(RunEvent::to_json).collect::<Vec<_>>());
        let parsed = parse_jsonl(&text).expect("codec emits valid JSONL");
        let back: Result<Vec<RunEvent>, _> = parsed.iter().map(RunEvent::from_json).collect();
        prop_assert_eq!(back.expect("events decode"), events);
    }
}
