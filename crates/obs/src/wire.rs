//! Per-link wire-cost accounting derived from recorded event streams.
//!
//! The paper's headline claims are communication-cost claims, so the wire
//! bill of a run must be attributable link by link. Every send and fault
//! event already carries its `(from, to)` coordinates and (for honest
//! traffic) its bit size; [`WireStats::from_events`] folds a recorded stream
//! into a per-directed-link ledger of messages, bits and network drops —
//! no extra events, no extra instrumentation in the schedulers.

use std::collections::BTreeMap;

use crate::event::RunEvent;
use crate::json::Json;

/// The wire bill of one directed link.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Messages admitted onto the link (honest + adversarial).
    pub messages: u64,
    /// Bits of honest traffic (adversarial payloads carry no honest bit
    /// accounting).
    pub bits: u64,
    /// Messages the network destroyed on the link (all drop causes).
    pub drops: u64,
}

impl LinkStats {
    fn add(&mut self, other: &LinkStats) {
        self.messages += other.messages;
        self.bits += other.bits;
        self.drops += other.drops;
    }
}

/// Per-link wire accounting for a run, keyed by directed edge.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WireStats {
    links: BTreeMap<(u32, u32), LinkStats>,
}

impl WireStats {
    /// Folds a recorded event stream into per-link statistics.
    pub fn from_events(events: &[RunEvent]) -> Self {
        let mut stats = WireStats::default();
        for ev in events {
            match ev {
                RunEvent::HonestSend { from, to, bits, .. } => {
                    let link = stats.links.entry((*from, *to)).or_default();
                    link.messages += 1;
                    link.bits += bits;
                }
                RunEvent::AdversarialSend { from, to, .. } => {
                    stats.links.entry((*from, *to)).or_default().messages += 1;
                }
                RunEvent::FaultDrop { from, to, .. } => {
                    stats.links.entry((*from, *to)).or_default().drops += 1;
                }
                _ => {}
            }
        }
        stats
    }

    /// The per-link ledger, sorted by `(from, to)`.
    pub fn links(&self) -> &BTreeMap<(u32, u32), LinkStats> {
        &self.links
    }

    /// The statistics of one directed link (zero if it carried nothing).
    pub fn link(&self, from: u32, to: u32) -> LinkStats {
        self.links.get(&(from, to)).copied().unwrap_or_default()
    }

    /// Totals across all links.
    pub fn total(&self) -> LinkStats {
        let mut total = LinkStats::default();
        for link in self.links.values() {
            total.add(link);
        }
        total
    }

    /// The ledger as a JSON array sorted by link, one object per link.
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.links
                .iter()
                .map(|((from, to), s)| {
                    Json::obj([
                        ("from", Json::from(*from)),
                        ("to", Json::from(*to)),
                        ("messages", Json::from(s.messages)),
                        ("bits", Json::from(s.bits)),
                        ("drops", Json::from(s.drops)),
                    ])
                })
                .collect(),
        )
    }

    /// Renders the ledger as an aligned text table with a totals row.
    pub fn render(&self) -> String {
        let mut out = String::from("wire profile\n");
        out.push_str(&format!(
            "  {:>9}  {:>6}  {:>8}  {:>5}\n",
            "link", "msgs", "bits", "drops"
        ));
        for ((from, to), s) in &self.links {
            out.push_str(&format!(
                "  {:>9}  {:>6}  {:>8}  {:>5}\n",
                format!("v{from}→v{to}"),
                s.messages,
                s.bits,
                s.drops
            ));
        }
        let t = self.total();
        out.push_str(&format!(
            "  {:>9}  {:>6}  {:>8}  {:>5}\n",
            "total", t.messages, t.bits, t.drops
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DropReason;

    fn sample() -> Vec<RunEvent> {
        vec![
            RunEvent::HonestSend {
                round: 0,
                from: 0,
                to: 1,
                bits: 64,
                payload: "a".into(),
            },
            RunEvent::HonestSend {
                round: 1,
                from: 0,
                to: 1,
                bits: 32,
                payload: "b".into(),
            },
            RunEvent::AdversarialSend {
                round: 1,
                from: 2,
                to: 1,
                payload: "x".into(),
            },
            RunEvent::FaultDrop {
                round: 1,
                from: 0,
                to: 1,
                reason: DropReason::LinkDrop,
            },
            RunEvent::RoundStart { round: 2 },
        ]
    }

    #[test]
    fn per_link_accounting_is_exact() {
        let stats = WireStats::from_events(&sample());
        assert_eq!(
            stats.link(0, 1),
            LinkStats {
                messages: 2,
                bits: 96,
                drops: 1
            }
        );
        assert_eq!(
            stats.link(2, 1),
            LinkStats {
                messages: 1,
                bits: 0,
                drops: 0
            }
        );
        assert_eq!(stats.link(1, 0), LinkStats::default());
        let total = stats.total();
        assert_eq!((total.messages, total.bits, total.drops), (3, 96, 1));
    }

    #[test]
    fn json_and_text_renderings_are_sorted_by_link() {
        let stats = WireStats::from_events(&sample());
        let json = stats.to_json();
        let arr = json.as_arr().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("from").and_then(Json::as_i64), Some(0));
        assert_eq!(arr[0].get("bits").and_then(Json::as_i64), Some(96));
        assert_eq!(arr[1].get("from").and_then(Json::as_i64), Some(2));
        let text = stats.render();
        assert!(text.contains("v0→v1"));
        assert!(text.contains("total"));
    }
}
