//! Wall and virtual time sources for timers and spans.
//!
//! Every duration in this workspace flows through a [`Clock`], which comes
//! in two flavours:
//!
//! * [`Clock::wall`] — a monotonic wall clock anchored at creation
//!   (`Instant`-based), for real profiling runs;
//! * [`Clock::virtual_ns`] — a **deterministic virtual clock** that advances
//!   by a fixed step on every [`Clock::now_ns`] call. Two runs that make the
//!   same sequence of clock reads observe byte-identical timestamps, so the
//!   1/2/8-thread determinism gate can compare full metric snapshots —
//!   `*_ns` histograms included — instead of stripping them.
//!
//! Cloning shares the underlying time source: clones of a virtual clock
//! advance one shared tick counter, so timestamps stay globally ordered
//! across every component observing the same run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A nanosecond time source: monotonic wall time or deterministic virtual
/// time. See the [module docs](self).
#[derive(Clone, Debug)]
pub enum Clock {
    /// Monotonic wall time, reported as nanoseconds since the anchor.
    Wall {
        /// The instant `now_ns` counts from.
        anchor: Instant,
    },
    /// Deterministic virtual time: every read advances the shared counter
    /// by `step` nanoseconds and returns the advanced value.
    Virtual {
        /// The shared tick counter (nanoseconds).
        ticks: Arc<AtomicU64>,
        /// Nanoseconds added per read.
        step: u64,
    },
}

impl Clock {
    /// A monotonic wall clock anchored at the call.
    pub fn wall() -> Self {
        Clock::Wall {
            anchor: Instant::now(),
        }
    }

    /// A deterministic virtual clock advancing `step` nanoseconds per read
    /// (`step = 0` is clamped to 1 so time always moves forward).
    pub fn virtual_ns(step: u64) -> Self {
        Clock::Virtual {
            ticks: Arc::new(AtomicU64::new(0)),
            step: step.max(1),
        }
    }

    /// `true` for the virtual flavour.
    pub fn is_virtual(&self) -> bool {
        matches!(self, Clock::Virtual { .. })
    }

    /// The current time in nanoseconds.
    ///
    /// Wall clocks report elapsed time since their anchor; virtual clocks
    /// advance the shared counter and report the advanced value, so every
    /// read observes a strictly larger timestamp than the previous read on
    /// any clone of the same clock.
    pub fn now_ns(&self) -> u64 {
        match self {
            Clock::Wall { anchor } => {
                u64::try_from(anchor.elapsed().as_nanos()).unwrap_or(u64::MAX)
            }
            Clock::Virtual { ticks, step } => ticks
                .fetch_add(*step, Ordering::Relaxed)
                .saturating_add(*step),
        }
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::wall()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let c = Clock::wall();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
        assert!(!c.is_virtual());
    }

    #[test]
    fn virtual_clock_is_deterministic_and_shared() {
        let c = Clock::virtual_ns(10);
        assert!(c.is_virtual());
        assert_eq!(c.now_ns(), 10);
        assert_eq!(c.now_ns(), 20);
        // Clones advance the same counter.
        let d = c.clone();
        assert_eq!(d.now_ns(), 30);
        assert_eq!(c.now_ns(), 40);
        // A fresh virtual clock replays the same sequence.
        let e = Clock::virtual_ns(10);
        assert_eq!(e.now_ns(), 10);
    }

    #[test]
    fn zero_step_still_advances() {
        let c = Clock::virtual_ns(0);
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b > a);
    }
}
