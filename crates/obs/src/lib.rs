//! Observability for the `rmt` workspace.
//!
//! `rmt-obs` is dependency-free (std only) and provides three layers:
//!
//! - [`event`] — a structured [`RunEvent`] model for protocol executions and
//!   the [`RunObserver`] trait the simulator streams events through. The
//!   default [`NoopObserver`] has `ACTIVE = false`, so instrumented code
//!   monomorphizes to the uninstrumented hot path.
//! - [`registry`] — a global-free metrics [`Registry`]: atomic counters,
//!   gauges and power-of-two histograms with [`ScopedTimer`] for durations.
//! - [`json`] — a hand-rolled [`Json`] value with an encoder/parser whose
//!   `encode ∘ parse ∘ encode` composition is a textual fixpoint, plus JSONL
//!   helpers for trace files and `BENCH_E<k>.json` artifacts.
//! - [`trace`] — node-view extraction and trace diffing over recorded event
//!   streams, the machinery behind the `rmt-trace` tool's Figure 2
//!   indistinguishability check.

pub mod event;
pub mod json;
pub mod registry;
pub mod trace;

pub use event::{
    DropReason, JsonlObserver, NoopObserver, RejectReason, RunEvent, RunObserver, VecObserver,
};
pub use json::{parse_jsonl, to_jsonl, Json, ParseError};
pub use registry::{Counter, Gauge, Histogram, Registry, ScopedTimer};
pub use trace::{
    diff_node_views, diff_traces, node_view, render_node_view, render_trace, TraceDiff, ViewLine,
};
