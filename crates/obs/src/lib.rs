//! Observability for the `rmt` workspace.
//!
//! `rmt-obs` is dependency-free (std only) and provides three layers:
//!
//! - [`event`] — a structured [`RunEvent`] model for protocol executions and
//!   the [`RunObserver`] trait the simulator streams events through. The
//!   default [`NoopObserver`] has `ACTIVE = false`, so instrumented code
//!   monomorphizes to the uninstrumented hot path.
//! - [`registry`] — a global-free metrics [`Registry`]: atomic counters,
//!   gauges and power-of-two histograms with [`ScopedTimer`] for durations,
//!   stamped by a pluggable [`Clock`] (wall or deterministic virtual).
//! - [`profile`] — phase profiling: a [`Profiler`] hands out RAII [`Span`]
//!   guards whose open/close events ride the [`RunEvent`] stream;
//!   [`span_tree`] parses a recording back into a forest and
//!   [`render_span_tree`] draws it as a text flamegraph.
//! - [`wire`] — [`WireStats`] folds a recorded stream into a per-link
//!   ledger of messages, bits and drops.
//! - [`json`] — a hand-rolled [`Json`] value with an encoder/parser whose
//!   `encode ∘ parse ∘ encode` composition is a textual fixpoint, plus JSONL
//!   helpers for trace files and `BENCH_E<k>.json` artifacts.
//! - [`trace`] — node-view extraction and trace diffing over recorded event
//!   streams, the machinery behind the `rmt-trace` tool's Figure 2
//!   indistinguishability check.

pub mod clock;
pub mod event;
pub mod json;
pub mod profile;
pub mod registry;
pub mod trace;
pub mod wire;

pub use clock::Clock;
pub use event::{
    DropReason, JsonlObserver, NoopObserver, RejectReason, RunEvent, RunObserver, VecObserver,
};
pub use json::{parse_jsonl, to_jsonl, Json, ParseError};
pub use profile::{
    fmt_ns, render_round_profile, render_span_tree, span_tree, Profiler, Span, SpanNode,
};
pub use registry::{intern, Counter, Gauge, Histogram, Registry, ScopedTimer};
pub use trace::{
    diff_node_views, diff_traces, node_view, render_node_view, render_trace, TraceDiff, ViewLine,
};
pub use wire::{LinkStats, WireStats};
