//! A hand-rolled JSON value, encoder and parser.
//!
//! The build environment is offline, so instead of serde this module
//! implements the small slice of JSON the observability layer needs:
//! a [`Json`] tree whose objects **preserve insertion order** (so
//! encode → parse → encode is a textual fixpoint, which the trace tooling
//! relies on), a compact encoder, and a recursive-descent parser.
//!
//! Numbers are kept in two lexical classes — integers ([`Json::Int`]) and
//! floats ([`Json::Num`]) — and floats always encode with a decimal point,
//! so the class survives a round-trip.

use std::fmt;

/// A JSON value. Objects preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional part or exponent.
    Int(i64),
    /// A floating-point number (always encoded with a decimal point).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as f64 (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact one-line encoding.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Num(x) => {
                if !x.is_finite() {
                    // JSON has no NaN/∞; degrade explicitly.
                    out.push_str("null");
                } else if x.fract() == 0.0 && x.abs() < 1e15 {
                    // Keep the lexical class: floats carry a decimal point.
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&format!("{x}"));
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (surrounding whitespace allowed).
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content"));
        }
        Ok(value)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Json {
            fn from(n: $t) -> Json {
                Json::Int(n as i64)
            }
        }
    )*};
}

from_int!(i64, i32, u32, u64, usize);

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

/// A parse failure, with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the failure.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            // hex4 advanced past the digits; compensate for
                            // the shared `pos += 1` below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this is
                    // always well-formed).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input is valid UTF-8");
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u digits"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| self.err("invalid number"))
        } else {
            // Digit strings wider than i64 (e.g. an encoded 1e300) fall back
            // to f64 so parse(encode(x)) never rejects our own output.
            match text.parse::<i64>() {
                Ok(n) => Ok(Json::Int(n)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Json::Num)
                    .map_err(|_| self.err("invalid number")),
            }
        }
    }
}

/// Encodes a sequence of values as JSON Lines.
pub fn to_jsonl(values: &[Json]) -> String {
    let mut out = String::new();
    for v in values {
        out.push_str(&v.encode());
        out.push('\n');
    }
    out
}

/// Parses JSON Lines (blank lines ignored).
pub fn parse_jsonl(input: &str) -> Result<Vec<Json>, ParseError> {
    input
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(Json::parse)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in [
            "null", "true", "false", "0", "-17", "2.5", "1e300", "\"hi\"",
        ] {
            let v = Json::parse(text).unwrap();
            let enc = v.encode();
            assert_eq!(Json::parse(&enc).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn encode_parse_encode_is_a_fixpoint() {
        let v = Json::obj([
            ("experiment", Json::from("e3_safety")),
            ("params", Json::obj([("trials", Json::from(50u64))])),
            (
                "measurements",
                Json::Arr(vec![Json::obj([
                    ("attack", Json::from("silent")),
                    ("wrong", Json::from(0u64)),
                    ("rate", Json::from(0.25)),
                    ("whole", Json::from(2.0)),
                ])]),
            ),
            ("note", Json::from("line\nbreak \"quoted\" \\ tab\t")),
            ("nothing", Json::Null),
        ]);
        let once = v.encode();
        let twice = Json::parse(&once).unwrap().encode();
        assert_eq!(once, twice);
        // And a third pass for good measure.
        assert_eq!(Json::parse(&twice).unwrap().encode(), twice);
    }

    #[test]
    fn floats_keep_their_lexical_class() {
        assert_eq!(Json::Num(2.0).encode(), "2.0");
        assert_eq!(Json::parse("2.0").unwrap(), Json::Num(2.0));
        assert_eq!(Json::parse("2").unwrap(), Json::Int(2));
        assert_eq!(Json::Num(f64::NAN).encode(), "null");
    }

    #[test]
    fn object_order_is_preserved() {
        let text = r#"{"z":1,"a":2,"m":[3,{"q":4}]}"#;
        assert_eq!(Json::parse(text).unwrap().encode(), text);
    }

    #[test]
    fn string_escapes() {
        let s = "tab\t nl\n quote\" back\\ unicode\u{1F600}\u{1}";
        let enc = Json::Str(s.to_string()).encode();
        assert_eq!(Json::parse(&enc).unwrap(), Json::Str(s.to_string()));
        // Surrogate pair escape parses.
        assert_eq!(
            Json::parse(r#""😀""#).unwrap(),
            Json::Str("\u{1F600}".to_string())
        );
    }

    #[test]
    fn jsonl_round_trips() {
        let values = vec![
            Json::obj([
                ("type", Json::from("round_start")),
                ("round", Json::from(1u64)),
            ]),
            Json::obj([("type", Json::from("delivery")), ("from", Json::from(0u64))]),
        ];
        let text = to_jsonl(&values);
        assert_eq!(parse_jsonl(&text).unwrap(), values);
        assert_eq!(to_jsonl(&parse_jsonl(&text).unwrap()), text);
    }

    #[test]
    fn errors_carry_offsets() {
        let e = Json::parse("{\"a\": }").unwrap_err();
        assert!(e.offset > 0);
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn accessors() {
        let v = Json::obj([("k", Json::from(3u64)), ("s", Json::from("x"))]);
        assert_eq!(v.get("k").and_then(Json::as_i64), Some(3));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::from(1.5).as_f64(), Some(1.5));
        assert_eq!(Json::from(vec![1u64]).as_arr().map(<[Json]>::len), Some(1));
    }
}
