//! Trace-level views over recorded event streams.
//!
//! A *trace* is the `Vec<RunEvent>` a [`crate::VecObserver`] collects (or the
//! parse of a JSONL file an observer wrote). This module answers the
//! questions the `rmt-trace` tool asks of one: what did a given node see
//! (its *view*), how does a whole run render as text, and where do two
//! traces differ — globally or restricted to one node's view.
//!
//! The node-restricted diff is the mechanical form of the paper's Figure 2
//! indistinguishability argument: two coupled executions e₀/e₁ differ as
//! full traces (different corruption sets, different honest senders) yet
//! the receiver's view is identical line for line, so no protocol the
//! receiver runs can decide safely.

use crate::event::RunEvent;

/// One line of a node's view: something the node locally observed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ViewLine {
    pub round: u32,
    pub text: String,
}

/// The events node `node` can locally observe, in stream order.
///
/// A node sees its own sends, every delivery addressed to it, and its own
/// decision. It does *not* see other nodes' traffic, who is corrupted, or
/// whether an incoming message was honestly or adversarially produced —
/// deliveries and (undetected) adversarial sends are rendered identically,
/// which is exactly the point.
pub fn node_view(events: &[RunEvent], node: u32) -> Vec<ViewLine> {
    let mut view = Vec::new();
    for ev in events {
        match ev {
            RunEvent::HonestSend {
                round,
                from,
                to,
                payload,
                ..
            } if *from == node => view.push(ViewLine {
                round: *round,
                text: format!("send -> v{to}: {payload}"),
            }),
            RunEvent::AdversarialSend {
                round,
                from,
                to,
                payload,
            } if *from == node => view.push(ViewLine {
                round: *round,
                text: format!("send -> v{to}: {payload}"),
            }),
            RunEvent::Delivery {
                round,
                from,
                to,
                payload,
            } if *to == node => view.push(ViewLine {
                round: *round,
                text: format!("recv <- v{from}: {payload}"),
            }),
            RunEvent::Decision {
                round,
                node: n,
                value,
            } if *n == node => view.push(ViewLine {
                round: *round,
                text: format!("decide: {value}"),
            }),
            _ => {}
        }
    }
    view
}

/// Renders a node's view as indented text grouped by round.
pub fn render_node_view(events: &[RunEvent], node: u32) -> String {
    let view = node_view(events, node);
    if view.is_empty() {
        return format!("view of v{node}: (empty)\n");
    }
    let mut out = format!("view of v{node}:\n");
    let mut current_round = None;
    for line in &view {
        if current_round != Some(line.round) {
            current_round = Some(line.round);
            out.push_str(&format!("  round {}:\n", line.round));
        }
        out.push_str(&format!("    {}\n", line.text));
    }
    out
}

/// Renders a whole trace as one line per event (the omniscient view).
pub fn render_trace(events: &[RunEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        let line = match ev {
            RunEvent::RunStart { nodes, corrupted } => {
                let c: Vec<String> = corrupted.iter().map(|v| format!("v{v}")).collect();
                format!("run start: {nodes} nodes, corrupted {{{}}}", c.join(", "))
            }
            RunEvent::RoundStart { round } => format!("round {round}:"),
            RunEvent::HonestSend {
                round: _,
                from,
                to,
                bits,
                payload,
            } => format!("  v{from} -> v{to} ({bits} bits): {payload}"),
            RunEvent::AdversarialSend {
                round: _,
                from,
                to,
                payload,
            } => format!("  v{from} -> v{to} [adversarial]: {payload}"),
            RunEvent::RejectedSend {
                round: _,
                from,
                to,
                reason,
            } => format!("  v{from} -> v{to} rejected: {}", reason.as_str()),
            RunEvent::Delivery {
                round: _,
                from,
                to,
                payload,
            } => format!("  v{to} <- v{from}: {payload}"),
            RunEvent::FaultDrop {
                round: _,
                from,
                to,
                reason,
            } => format!("  v{from} -> v{to} lost by network: {}", reason.as_str()),
            RunEvent::FaultDelay {
                round: _,
                from,
                to,
                delay,
                deliver_round,
            } => format!("  v{from} -> v{to} delayed +{delay} (arrives round {deliver_round})"),
            RunEvent::FaultDuplicate {
                round: _,
                from,
                to,
                deliver_round,
            } => format!("  v{from} -> v{to} duplicated (copy arrives round {deliver_round})"),
            RunEvent::NodeCrashed { round: _, node } => format!("  v{node} crashed"),
            RunEvent::ConnUp {
                round: _,
                from,
                to,
                attempt,
            } => format!("  link v{from} -> v{to} up (attempt {attempt})"),
            RunEvent::ConnDown {
                round: _,
                from,
                to,
                reason,
            } => format!("  link v{from} -> v{to} down: {reason}"),
            RunEvent::ConnRetry {
                round: _,
                from,
                to,
                attempt,
                backoff_ms,
            } => format!("  link v{from} -> v{to} retry #{attempt} in {backoff_ms}ms"),
            RunEvent::RoundEnd {
                round: _,
                ns,
                messages,
                bits,
                drops,
            } => format!("  round end: {ns}ns, {messages} msgs, {bits} bits, {drops} drops"),
            RunEvent::SpanOpen { name, at_ns } => format!("  span open '{name}' @ {at_ns}ns"),
            RunEvent::SpanClose { name, at_ns } => format!("  span close '{name}' @ {at_ns}ns"),
            RunEvent::Decision {
                round: _,
                node,
                value,
            } => format!("  v{node} decides: {value}"),
            RunEvent::RunEnd { rounds } => format!("run end after {rounds} rounds"),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// One difference between two traces (or two node views).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceDiff {
    /// 0-based position in the compared sequences.
    pub index: usize,
    /// Rendering of the left side's entry, if present.
    pub left: Option<String>,
    /// Rendering of the right side's entry, if present.
    pub right: Option<String>,
}

impl std::fmt::Display for TraceDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "@ {}", self.index)?;
        match &self.left {
            Some(l) => writeln!(f, "  - {l}")?,
            None => writeln!(f, "  - <absent>")?,
        }
        match &self.right {
            Some(r) => write!(f, "  + {r}"),
            None => write!(f, "  + <absent>"),
        }
    }
}

fn diff_rendered(left: &[String], right: &[String]) -> Vec<TraceDiff> {
    let mut diffs = Vec::new();
    let len = left.len().max(right.len());
    for i in 0..len {
        let l = left.get(i);
        let r = right.get(i);
        if l != r {
            diffs.push(TraceDiff {
                index: i,
                left: l.cloned(),
                right: r.cloned(),
            });
        }
    }
    diffs
}

/// Positional diff of two full traces. Empty iff the traces are identical
/// event for event.
pub fn diff_traces(left: &[RunEvent], right: &[RunEvent]) -> Vec<TraceDiff> {
    let render =
        |evs: &[RunEvent]| -> Vec<String> { evs.iter().map(|e| format!("{e:?}")).collect() };
    diff_rendered(&render(left), &render(right))
}

/// Positional diff of two traces restricted to `node`'s view. Empty iff
/// the node's local observations are identical in both runs.
pub fn diff_node_views(left: &[RunEvent], right: &[RunEvent], node: u32) -> Vec<TraceDiff> {
    let render = |evs: &[RunEvent]| -> Vec<String> {
        node_view(evs, node)
            .into_iter()
            .map(|l| format!("round {}: {}", l.round, l.text))
            .collect()
    };
    diff_rendered(&render(left), &render(right))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::RejectReason;

    fn sample() -> Vec<RunEvent> {
        vec![
            RunEvent::RunStart {
                nodes: 4,
                corrupted: vec![2],
            },
            RunEvent::RoundStart { round: 0 },
            RunEvent::HonestSend {
                round: 0,
                from: 0,
                to: 1,
                bits: 8,
                payload: "x".into(),
            },
            RunEvent::AdversarialSend {
                round: 0,
                from: 2,
                to: 1,
                payload: "y".into(),
            },
            RunEvent::RejectedSend {
                round: 0,
                from: 2,
                to: 3,
                reason: RejectReason::NoSuchEdge,
            },
            RunEvent::RoundStart { round: 1 },
            RunEvent::Delivery {
                round: 1,
                from: 0,
                to: 1,
                payload: "x".into(),
            },
            RunEvent::Delivery {
                round: 1,
                from: 2,
                to: 1,
                payload: "y".into(),
            },
            RunEvent::Decision {
                round: 1,
                node: 1,
                value: "x".into(),
            },
            RunEvent::RunEnd { rounds: 1 },
        ]
    }

    #[test]
    fn node_view_shows_only_local_observations() {
        let view = node_view(&sample(), 1);
        let texts: Vec<&str> = view.iter().map(|l| l.text.as_str()).collect();
        assert_eq!(texts, vec!["recv <- v0: x", "recv <- v2: y", "decide: x"]);
        // The rejected send to v3 never reached it.
        assert!(node_view(&sample(), 3).is_empty());
    }

    #[test]
    fn adversarial_and_honest_deliveries_render_identically_to_receiver() {
        // Same payload from the same neighbour: the receiver's view line is
        // byte-identical whether the sender was honest or corrupted.
        let honest = [RunEvent::Delivery {
            round: 1,
            from: 2,
            to: 1,
            payload: "m".into(),
        }];
        let view = node_view(&honest, 1);
        assert_eq!(view[0].text, "recv <- v2: m");
    }

    #[test]
    fn full_diff_nonempty_but_node_diff_empty() {
        // Two runs that differ in who is corrupted and in traffic the
        // receiver never sees, while v1's view is unchanged.
        let mut a = sample();
        let mut b = sample();
        b[0] = RunEvent::RunStart {
            nodes: 4,
            corrupted: vec![0],
        };
        a.insert(
            5,
            RunEvent::HonestSend {
                round: 0,
                from: 3,
                to: 0,
                bits: 8,
                payload: "hidden".into(),
            },
        );
        assert!(!diff_traces(&a, &b).is_empty());
        assert!(diff_node_views(&a, &b, 1).is_empty());
    }

    #[test]
    fn node_diff_reports_position_and_sides() {
        let a = sample();
        let mut b = sample();
        b[6] = RunEvent::Delivery {
            round: 1,
            from: 0,
            to: 1,
            payload: "z".into(),
        };
        let diffs = diff_node_views(&a, &b, 1);
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].index, 0);
        assert_eq!(diffs[0].left.as_deref(), Some("round 1: recv <- v0: x"));
        assert_eq!(diffs[0].right.as_deref(), Some("round 1: recv <- v0: z"));
        let shown = diffs[0].to_string();
        assert!(shown.contains("- round 1: recv <- v0: x"));
        assert!(shown.contains("+ round 1: recv <- v0: z"));
    }

    #[test]
    fn renderings_are_stable() {
        let text = render_trace(&sample());
        assert!(text.contains("run start: 4 nodes, corrupted {v2}"));
        assert!(text.contains("v2 -> v1 [adversarial]: y"));
        assert!(text.contains("v2 -> v3 rejected: no_such_edge"));
        let view = render_node_view(&sample(), 1);
        assert!(view.starts_with("view of v1:\n"));
        assert!(view.contains("  round 1:\n    recv <- v0: x"));
        assert_eq!(render_node_view(&sample(), 3), "view of v3: (empty)\n");
    }

    #[test]
    fn fault_events_render_globally_but_stay_out_of_node_views() {
        // A node cannot tell a network-dropped message from one that was
        // never sent, nor a delayed delivery from a slow sender — fault
        // events are omniscient-view only.
        let events = vec![
            RunEvent::FaultDrop {
                round: 1,
                from: 0,
                to: 1,
                reason: crate::event::DropReason::Partitioned,
            },
            RunEvent::FaultDelay {
                round: 1,
                from: 0,
                to: 1,
                delay: 2,
                deliver_round: 4,
            },
            RunEvent::FaultDuplicate {
                round: 1,
                from: 0,
                to: 1,
                deliver_round: 2,
            },
            RunEvent::NodeCrashed { round: 2, node: 1 },
        ];
        let text = render_trace(&events);
        assert!(text.contains("v0 -> v1 lost by network: partitioned"));
        assert!(text.contains("v0 -> v1 delayed +2 (arrives round 4)"));
        assert!(text.contains("v0 -> v1 duplicated (copy arrives round 2)"));
        assert!(text.contains("v1 crashed"));
        assert!(node_view(&events, 0).is_empty());
        assert!(node_view(&events, 1).is_empty());
    }

    #[test]
    fn profiling_events_render_globally_but_stay_out_of_node_views() {
        // Timing is an omniscient-view concern: spans and round latencies
        // are not something any single node locally observes.
        let events = vec![
            RunEvent::SpanOpen {
                name: "decide".into(),
                at_ns: 5,
            },
            RunEvent::SpanClose {
                name: "decide".into(),
                at_ns: 12,
            },
            RunEvent::RoundEnd {
                round: 1,
                ns: 7,
                messages: 2,
                bits: 128,
                drops: 0,
            },
        ];
        let text = render_trace(&events);
        assert!(text.contains("span open 'decide' @ 5ns"));
        assert!(text.contains("span close 'decide' @ 12ns"));
        assert!(text.contains("round end: 7ns, 2 msgs, 128 bits, 0 drops"));
        for v in 0..4 {
            assert!(node_view(&events, v).is_empty());
        }
    }

    #[test]
    fn length_mismatch_is_a_diff() {
        let a = sample();
        let b = &a[..a.len() - 1];
        let diffs = diff_traces(&a, b);
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].right.is_none());
    }
}
