//! The structured run-event model and observer interface.
//!
//! The paper's arguments are about *what a node can observe*: the lower
//! bounds (Theorems 3/8, Figure 2) hinge on a receiver seeing identical
//! message traces across two coupled runs. [`RunEvent`] makes a run's
//! observable history first-class — every send, rejection, delivery and
//! decision — so indistinguishability can be checked from traces instead of
//! argued informally.
//!
//! Observers implement [`RunObserver`]; the scheduler in `rmt-sim` only
//! constructs events when `O::ACTIVE` is `true`, so the default
//! [`NoopObserver`] is zero-overhead (monomorphization removes both the
//! event construction and the call).
//!
//! Payload and decision values are carried as strings (their `Debug` form):
//! the event model is protocol-agnostic and serializes losslessly to JSONL.

use std::io::{self, Write};

use crate::json::Json;

/// Why the scheduler rejected an adversarial envelope.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The claimed sender is not in the corrupted set (authenticated
    /// channels forbid forging honest senders).
    ForgedSender,
    /// The graph has no such edge.
    NoSuchEdge,
}

impl RejectReason {
    /// Snake-case wire name (used in JSON and text renderings).
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::ForgedSender => "forged_sender",
            RejectReason::NoSuchEdge => "no_such_edge",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "forged_sender" => Some(RejectReason::ForgedSender),
            "no_such_edge" => Some(RejectReason::NoSuchEdge),
            _ => None,
        }
    }
}

/// Why the network layer dropped a message.
///
/// Unlike [`RejectReason`] (a *model violation* by the adversary), these are
/// *injected faults* of the fault-injecting scheduler in `rmt-net`: the send
/// was perfectly valid, the network simply misbehaved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// The link's drop policy fired.
    LinkDrop,
    /// The message crossed an active transient partition.
    Partitioned,
    /// The sender had crashed by the send round (only adversarial traffic
    /// can hit this: crashed honest nodes are never invoked).
    SenderCrashed,
    /// A message adversary spent one unit of its per-round suppression
    /// budget on the message (`rmt-net`'s `MessageAdversary` mode).
    Suppressed,
    /// The socket transport shed the message because the recipient's link
    /// was down and the bounded send queue had reached its budget
    /// (`rmt-netd`'s graceful-degradation path).
    PeerDown,
    /// The socket transport shed the message because the bounded send queue
    /// was full while the link was still up (backpressure overflow).
    Backpressure,
}

impl DropReason {
    /// Snake-case wire name (used in JSON and text renderings).
    pub fn as_str(self) -> &'static str {
        match self {
            DropReason::LinkDrop => "link_drop",
            DropReason::Partitioned => "partitioned",
            DropReason::SenderCrashed => "sender_crashed",
            DropReason::Suppressed => "suppressed",
            DropReason::PeerDown => "peer_down",
            DropReason::Backpressure => "backpressure",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "link_drop" => Some(DropReason::LinkDrop),
            "partitioned" => Some(DropReason::Partitioned),
            "sender_crashed" => Some(DropReason::SenderCrashed),
            "suppressed" => Some(DropReason::Suppressed),
            "peer_down" => Some(DropReason::PeerDown),
            "backpressure" => Some(DropReason::Backpressure),
            _ => None,
        }
    }
}

/// One observable step of a run.
///
/// Rounds follow the scheduler's numbering: messages produced in round `r`
/// are delivered in round `r + 1`; round 0 is the initial send phase.
#[derive(Clone, Debug, PartialEq)]
pub enum RunEvent {
    /// The run began.
    RunStart {
        /// Number of nodes in the graph.
        nodes: u32,
        /// The corrupted set.
        corrupted: Vec<u32>,
    },
    /// A delivery round began.
    RoundStart {
        /// The round number (≥ 1).
        round: u32,
    },
    /// An honest node handed a message to the scheduler.
    HonestSend {
        /// Round in which the send was produced.
        round: u32,
        /// Sender.
        from: u32,
        /// Recipient.
        to: u32,
        /// Wire size per the payload's own accounting.
        bits: u64,
        /// `Debug` rendering of the payload.
        payload: String,
    },
    /// The adversary injected a (model-valid) message.
    AdversarialSend {
        /// Round in which the send was produced.
        round: u32,
        /// Sender (a corrupted node).
        from: u32,
        /// Recipient.
        to: u32,
        /// `Debug` rendering of the payload.
        payload: String,
    },
    /// An adversarial envelope violated the physical model and was dropped.
    RejectedSend {
        /// Round in which the attempt happened.
        round: u32,
        /// Claimed sender.
        from: u32,
        /// Recipient.
        to: u32,
        /// Which rule it violated.
        reason: RejectReason,
    },
    /// A message arrived at its recipient.
    Delivery {
        /// The delivery round.
        round: u32,
        /// Sender.
        from: u32,
        /// Recipient.
        to: u32,
        /// `Debug` rendering of the payload.
        payload: String,
    },
    /// The network dropped a (valid) message — an injected fault.
    FaultDrop {
        /// Round in which the message was sent.
        round: u32,
        /// Sender.
        from: u32,
        /// Recipient.
        to: u32,
        /// Which fault fired.
        reason: DropReason,
    },
    /// The network delayed a message past the synchronous `r + 1` bound.
    FaultDelay {
        /// Round in which the message was sent.
        round: u32,
        /// Sender.
        from: u32,
        /// Recipient.
        to: u32,
        /// Extra rounds beyond the synchronous bound (≥ 1).
        delay: u32,
        /// The round at which the message will actually arrive
        /// (`round + 1 + delay`).
        deliver_round: u32,
    },
    /// The network duplicated a message (this event announces the extra
    /// copy; the original is unaffected).
    FaultDuplicate {
        /// Round in which the message was sent.
        round: u32,
        /// Sender.
        from: u32,
        /// Recipient.
        to: u32,
        /// The round at which the duplicate arrives.
        deliver_round: u32,
    },
    /// A node crash-stopped: from this round on it neither sends nor
    /// processes deliveries.
    NodeCrashed {
        /// First round the node is dead.
        round: u32,
        /// The crashed node.
        node: u32,
    },
    /// A socket link came up (initial connect or reconnect) — emitted by
    /// the `rmt-netd` transport, never by the in-process schedulers.
    ConnUp {
        /// Session round at which the link became usable (best effort).
        round: u32,
        /// Dialing node.
        from: u32,
        /// Accepting node.
        to: u32,
        /// Connection attempt that succeeded (0 = first dial).
        attempt: u32,
    },
    /// A socket link went down (I/O error, severed connection, or peer
    /// declared dead after missed heartbeats).
    ConnDown {
        /// Session round at which the loss was noticed (best effort).
        round: u32,
        /// Dialing node.
        from: u32,
        /// Accepting node.
        to: u32,
        /// Human-readable cause (I/O error text, "severed", "heartbeat").
        reason: String,
    },
    /// The connection supervisor scheduled a reconnect attempt with
    /// jittered exponential backoff.
    ConnRetry {
        /// Session round at which the retry was scheduled (best effort).
        round: u32,
        /// Dialing node.
        from: u32,
        /// Accepting node.
        to: u32,
        /// The upcoming attempt number (1-based).
        attempt: u32,
        /// Backoff applied before the attempt, in milliseconds.
        backoff_ms: u64,
    },
    /// An honest node decided (first round at which its decision became
    /// non-`None`).
    Decision {
        /// Round after which the decision was observed.
        round: u32,
        /// The deciding node.
        node: u32,
        /// `Debug` rendering of the decision value.
        value: String,
    },
    /// A delivery round finished (profiled runs only): its latency and the
    /// round's wire bill.
    RoundEnd {
        /// The round that ended.
        round: u32,
        /// Wall (or virtual) nanoseconds the round took.
        ns: u64,
        /// Messages admitted this round (honest + adversarial).
        messages: u64,
        /// Honest bits admitted this round.
        bits: u64,
        /// Messages the network destroyed this round.
        drops: u64,
    },
    /// A profiling span opened (see [`crate::Profiler`]).
    SpanOpen {
        /// The span name.
        name: String,
        /// Opening timestamp in clock nanoseconds.
        at_ns: u64,
    },
    /// A profiling span closed. Streams are well-nested: this closes the
    /// innermost open span, which carries the same name.
    SpanClose {
        /// The span name.
        name: String,
        /// Closing timestamp in clock nanoseconds.
        at_ns: u64,
    },
    /// The run ended.
    RunEnd {
        /// Rounds executed.
        rounds: u32,
    },
}

impl RunEvent {
    /// The event's JSON object form (`{"type": ..., ...}`).
    pub fn to_json(&self) -> Json {
        match self {
            RunEvent::RunStart { nodes, corrupted } => Json::obj([
                ("type", Json::from("run_start")),
                ("nodes", Json::from(*nodes)),
                ("corrupted", Json::from(corrupted.clone())),
            ]),
            RunEvent::RoundStart { round } => Json::obj([
                ("type", Json::from("round_start")),
                ("round", Json::from(*round)),
            ]),
            RunEvent::HonestSend {
                round,
                from,
                to,
                bits,
                payload,
            } => Json::obj([
                ("type", Json::from("honest_send")),
                ("round", Json::from(*round)),
                ("from", Json::from(*from)),
                ("to", Json::from(*to)),
                ("bits", Json::from(*bits)),
                ("payload", Json::from(payload.clone())),
            ]),
            RunEvent::AdversarialSend {
                round,
                from,
                to,
                payload,
            } => Json::obj([
                ("type", Json::from("adversarial_send")),
                ("round", Json::from(*round)),
                ("from", Json::from(*from)),
                ("to", Json::from(*to)),
                ("payload", Json::from(payload.clone())),
            ]),
            RunEvent::RejectedSend {
                round,
                from,
                to,
                reason,
            } => Json::obj([
                ("type", Json::from("rejected_send")),
                ("round", Json::from(*round)),
                ("from", Json::from(*from)),
                ("to", Json::from(*to)),
                ("reason", Json::from(reason.as_str())),
            ]),
            RunEvent::Delivery {
                round,
                from,
                to,
                payload,
            } => Json::obj([
                ("type", Json::from("delivery")),
                ("round", Json::from(*round)),
                ("from", Json::from(*from)),
                ("to", Json::from(*to)),
                ("payload", Json::from(payload.clone())),
            ]),
            RunEvent::FaultDrop {
                round,
                from,
                to,
                reason,
            } => Json::obj([
                ("type", Json::from("fault_drop")),
                ("round", Json::from(*round)),
                ("from", Json::from(*from)),
                ("to", Json::from(*to)),
                ("reason", Json::from(reason.as_str())),
            ]),
            RunEvent::FaultDelay {
                round,
                from,
                to,
                delay,
                deliver_round,
            } => Json::obj([
                ("type", Json::from("fault_delay")),
                ("round", Json::from(*round)),
                ("from", Json::from(*from)),
                ("to", Json::from(*to)),
                ("delay", Json::from(*delay)),
                ("deliver_round", Json::from(*deliver_round)),
            ]),
            RunEvent::FaultDuplicate {
                round,
                from,
                to,
                deliver_round,
            } => Json::obj([
                ("type", Json::from("fault_duplicate")),
                ("round", Json::from(*round)),
                ("from", Json::from(*from)),
                ("to", Json::from(*to)),
                ("deliver_round", Json::from(*deliver_round)),
            ]),
            RunEvent::NodeCrashed { round, node } => Json::obj([
                ("type", Json::from("node_crashed")),
                ("round", Json::from(*round)),
                ("node", Json::from(*node)),
            ]),
            RunEvent::ConnUp {
                round,
                from,
                to,
                attempt,
            } => Json::obj([
                ("type", Json::from("conn_up")),
                ("round", Json::from(*round)),
                ("from", Json::from(*from)),
                ("to", Json::from(*to)),
                ("attempt", Json::from(*attempt)),
            ]),
            RunEvent::ConnDown {
                round,
                from,
                to,
                reason,
            } => Json::obj([
                ("type", Json::from("conn_down")),
                ("round", Json::from(*round)),
                ("from", Json::from(*from)),
                ("to", Json::from(*to)),
                ("reason", Json::from(reason.clone())),
            ]),
            RunEvent::ConnRetry {
                round,
                from,
                to,
                attempt,
                backoff_ms,
            } => Json::obj([
                ("type", Json::from("conn_retry")),
                ("round", Json::from(*round)),
                ("from", Json::from(*from)),
                ("to", Json::from(*to)),
                ("attempt", Json::from(*attempt)),
                ("backoff_ms", Json::from(*backoff_ms)),
            ]),
            RunEvent::Decision { round, node, value } => Json::obj([
                ("type", Json::from("decision")),
                ("round", Json::from(*round)),
                ("node", Json::from(*node)),
                ("value", Json::from(value.clone())),
            ]),
            RunEvent::RoundEnd {
                round,
                ns,
                messages,
                bits,
                drops,
            } => Json::obj([
                ("type", Json::from("round_end")),
                ("round", Json::from(*round)),
                ("ns", Json::from(*ns)),
                ("messages", Json::from(*messages)),
                ("bits", Json::from(*bits)),
                ("drops", Json::from(*drops)),
            ]),
            RunEvent::SpanOpen { name, at_ns } => Json::obj([
                ("type", Json::from("span_open")),
                ("name", Json::from(name.clone())),
                ("at_ns", Json::from(*at_ns)),
            ]),
            RunEvent::SpanClose { name, at_ns } => Json::obj([
                ("type", Json::from("span_close")),
                ("name", Json::from(name.clone())),
                ("at_ns", Json::from(*at_ns)),
            ]),
            RunEvent::RunEnd { rounds } => Json::obj([
                ("type", Json::from("run_end")),
                ("rounds", Json::from(*rounds)),
            ]),
        }
    }

    /// Parses the JSON object form back into an event.
    pub fn from_json(v: &Json) -> Result<RunEvent, String> {
        let ty = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event without type: {v}"))?;
        let u32_field = |k: &str| -> Result<u32, String> {
            v.get(k)
                .and_then(Json::as_i64)
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| format!("{ty}: missing/invalid field '{k}'"))
        };
        let u64_field = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Json::as_i64)
                .and_then(|n| u64::try_from(n).ok())
                .ok_or_else(|| format!("{ty}: missing/invalid field '{k}'"))
        };
        let str_field = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{ty}: missing/invalid field '{k}'"))
        };
        match ty {
            "run_start" => {
                let corrupted = v
                    .get("corrupted")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| "run_start: missing corrupted".to_string())?
                    .iter()
                    .map(|x| {
                        x.as_i64()
                            .and_then(|n| u32::try_from(n).ok())
                            .ok_or_else(|| "run_start: bad corrupted entry".to_string())
                    })
                    .collect::<Result<Vec<u32>, String>>()?;
                Ok(RunEvent::RunStart {
                    nodes: u32_field("nodes")?,
                    corrupted,
                })
            }
            "round_start" => Ok(RunEvent::RoundStart {
                round: u32_field("round")?,
            }),
            "honest_send" => Ok(RunEvent::HonestSend {
                round: u32_field("round")?,
                from: u32_field("from")?,
                to: u32_field("to")?,
                bits: u64_field("bits")?,
                payload: str_field("payload")?,
            }),
            "adversarial_send" => Ok(RunEvent::AdversarialSend {
                round: u32_field("round")?,
                from: u32_field("from")?,
                to: u32_field("to")?,
                payload: str_field("payload")?,
            }),
            "rejected_send" => Ok(RunEvent::RejectedSend {
                round: u32_field("round")?,
                from: u32_field("from")?,
                to: u32_field("to")?,
                reason: RejectReason::parse(&str_field("reason")?)
                    .ok_or_else(|| "rejected_send: unknown reason".to_string())?,
            }),
            "delivery" => Ok(RunEvent::Delivery {
                round: u32_field("round")?,
                from: u32_field("from")?,
                to: u32_field("to")?,
                payload: str_field("payload")?,
            }),
            "fault_drop" => Ok(RunEvent::FaultDrop {
                round: u32_field("round")?,
                from: u32_field("from")?,
                to: u32_field("to")?,
                reason: DropReason::parse(&str_field("reason")?)
                    .ok_or_else(|| "fault_drop: unknown reason".to_string())?,
            }),
            "fault_delay" => Ok(RunEvent::FaultDelay {
                round: u32_field("round")?,
                from: u32_field("from")?,
                to: u32_field("to")?,
                delay: u32_field("delay")?,
                deliver_round: u32_field("deliver_round")?,
            }),
            "fault_duplicate" => Ok(RunEvent::FaultDuplicate {
                round: u32_field("round")?,
                from: u32_field("from")?,
                to: u32_field("to")?,
                deliver_round: u32_field("deliver_round")?,
            }),
            "node_crashed" => Ok(RunEvent::NodeCrashed {
                round: u32_field("round")?,
                node: u32_field("node")?,
            }),
            "conn_up" => Ok(RunEvent::ConnUp {
                round: u32_field("round")?,
                from: u32_field("from")?,
                to: u32_field("to")?,
                attempt: u32_field("attempt")?,
            }),
            "conn_down" => Ok(RunEvent::ConnDown {
                round: u32_field("round")?,
                from: u32_field("from")?,
                to: u32_field("to")?,
                reason: str_field("reason")?,
            }),
            "conn_retry" => Ok(RunEvent::ConnRetry {
                round: u32_field("round")?,
                from: u32_field("from")?,
                to: u32_field("to")?,
                attempt: u32_field("attempt")?,
                backoff_ms: u64_field("backoff_ms")?,
            }),
            "decision" => Ok(RunEvent::Decision {
                round: u32_field("round")?,
                node: u32_field("node")?,
                value: str_field("value")?,
            }),
            "round_end" => Ok(RunEvent::RoundEnd {
                round: u32_field("round")?,
                ns: u64_field("ns")?,
                messages: u64_field("messages")?,
                bits: u64_field("bits")?,
                drops: u64_field("drops")?,
            }),
            "span_open" => Ok(RunEvent::SpanOpen {
                name: str_field("name")?,
                at_ns: u64_field("at_ns")?,
            }),
            "span_close" => Ok(RunEvent::SpanClose {
                name: str_field("name")?,
                at_ns: u64_field("at_ns")?,
            }),
            "run_end" => Ok(RunEvent::RunEnd {
                rounds: u32_field("rounds")?,
            }),
            other => Err(format!("unknown event type '{other}'")),
        }
    }
}

/// A sink for [`RunEvent`]s.
///
/// Implementations with `ACTIVE = false` (the [`NoopObserver`]) cost
/// nothing: instrumented code checks the constant before constructing
/// events, and monomorphization eliminates the dead branch.
pub trait RunObserver {
    /// Whether events should be constructed and delivered at all.
    const ACTIVE: bool = true;

    /// Receives one event.
    fn on_event(&mut self, event: &RunEvent);
}

/// The zero-overhead default observer.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl RunObserver for NoopObserver {
    const ACTIVE: bool = false;

    fn on_event(&mut self, _event: &RunEvent) {}
}

/// Collects every event in memory.
#[derive(Clone, Debug, Default)]
pub struct VecObserver {
    /// The events, in emission order.
    pub events: Vec<RunEvent>,
}

impl VecObserver {
    /// Creates an empty collector.
    pub fn new() -> Self {
        VecObserver::default()
    }
}

impl RunObserver for VecObserver {
    fn on_event(&mut self, event: &RunEvent) {
        self.events.push(event.clone());
    }
}

/// Streams events as JSON Lines to a writer.
pub struct JsonlObserver<W: Write> {
    writer: W,
    error: Option<io::Error>,
}

impl<W: Write> JsonlObserver<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        JsonlObserver {
            writer,
            error: None,
        }
    }

    /// Unwraps, surfacing any deferred I/O error.
    pub fn into_inner(mut self) -> io::Result<W> {
        match self.error.take() {
            Some(e) => Err(e),
            None => Ok(self.writer),
        }
    }
}

impl<W: Write> RunObserver for JsonlObserver<W> {
    fn on_event(&mut self, event: &RunEvent) {
        if self.error.is_some() {
            return;
        }
        let line = event.to_json().encode();
        if let Err(e) = writeln!(self.writer, "{line}") {
            self.error = Some(e);
        }
    }
}

/// Fans events out to two observers; active if either is.
impl<A: RunObserver, B: RunObserver> RunObserver for (A, B) {
    const ACTIVE: bool = A::ACTIVE || B::ACTIVE;

    fn on_event(&mut self, event: &RunEvent) {
        if A::ACTIVE {
            self.0.on_event(event);
        }
        if B::ACTIVE {
            self.1.on_event(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<RunEvent> {
        vec![
            RunEvent::RunStart {
                nodes: 4,
                corrupted: vec![1],
            },
            RunEvent::HonestSend {
                round: 0,
                from: 0,
                to: 2,
                bits: 64,
                payload: "7".into(),
            },
            RunEvent::RoundStart { round: 1 },
            RunEvent::Delivery {
                round: 1,
                from: 0,
                to: 2,
                payload: "7".into(),
            },
            RunEvent::AdversarialSend {
                round: 1,
                from: 1,
                to: 3,
                payload: "9".into(),
            },
            RunEvent::RejectedSend {
                round: 1,
                from: 0,
                to: 1,
                reason: RejectReason::ForgedSender,
            },
            RunEvent::FaultDrop {
                round: 1,
                from: 0,
                to: 3,
                reason: DropReason::LinkDrop,
            },
            RunEvent::FaultDelay {
                round: 1,
                from: 2,
                to: 3,
                delay: 2,
                deliver_round: 4,
            },
            RunEvent::FaultDuplicate {
                round: 1,
                from: 2,
                to: 3,
                deliver_round: 2,
            },
            RunEvent::NodeCrashed { round: 2, node: 1 },
            RunEvent::ConnUp {
                round: 2,
                from: 0,
                to: 3,
                attempt: 1,
            },
            RunEvent::ConnDown {
                round: 2,
                from: 0,
                to: 3,
                reason: "severed".into(),
            },
            RunEvent::ConnRetry {
                round: 2,
                from: 0,
                to: 3,
                attempt: 2,
                backoff_ms: 40,
            },
            RunEvent::Decision {
                round: 2,
                node: 2,
                value: "7".into(),
            },
            RunEvent::RoundEnd {
                round: 2,
                ns: 316_000,
                messages: 3,
                bits: 192,
                drops: 1,
            },
            RunEvent::SpanOpen {
                name: "decide".into(),
                at_ns: 10,
            },
            RunEvent::SpanClose {
                name: "decide".into(),
                at_ns: 42,
            },
            RunEvent::RunEnd { rounds: 2 },
        ]
    }

    #[test]
    fn events_round_trip_through_json() {
        for ev in sample_events() {
            let back = RunEvent::from_json(&ev.to_json()).unwrap();
            assert_eq!(back, ev);
        }
    }

    #[test]
    fn jsonl_observer_streams_parseable_lines() {
        let mut obs = JsonlObserver::new(Vec::<u8>::new());
        for ev in sample_events() {
            obs.on_event(&ev);
        }
        let bytes = obs.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let parsed: Vec<RunEvent> = crate::json::parse_jsonl(&text)
            .unwrap()
            .iter()
            .map(|v| RunEvent::from_json(v).unwrap())
            .collect();
        assert_eq!(parsed, sample_events());
    }

    #[test]
    fn noop_is_inactive_and_vec_collects() {
        const { assert!(!NoopObserver::ACTIVE) };
        const { assert!(VecObserver::ACTIVE) };
        const { assert!(<(NoopObserver, VecObserver)>::ACTIVE) };
        const { assert!(!<(NoopObserver, NoopObserver)>::ACTIVE) };
        let mut v = VecObserver::new();
        v.on_event(&RunEvent::RoundStart { round: 1 });
        assert_eq!(v.events.len(), 1);
    }

    #[test]
    fn malformed_events_are_rejected() {
        assert!(RunEvent::from_json(&Json::obj([("type", Json::from("nope"))])).is_err());
        assert!(RunEvent::from_json(&Json::Null).is_err());
        assert!(RunEvent::from_json(&Json::obj([
            ("type", Json::from("decision")),
            ("round", Json::from(1u64)),
        ]))
        .is_err());
        // Fault variants: unknown reasons and missing fields are rejected too.
        assert!(RunEvent::from_json(&Json::obj([
            ("type", Json::from("fault_drop")),
            ("round", Json::from(1u64)),
            ("from", Json::from(0u64)),
            ("to", Json::from(1u64)),
            ("reason", Json::from("gremlins")),
        ]))
        .is_err());
        assert!(RunEvent::from_json(&Json::obj([
            ("type", Json::from("fault_delay")),
            ("round", Json::from(1u64)),
        ]))
        .is_err());
    }

    #[test]
    fn drop_reason_wire_names_round_trip() {
        for reason in [
            DropReason::LinkDrop,
            DropReason::Partitioned,
            DropReason::SenderCrashed,
            DropReason::Suppressed,
            DropReason::PeerDown,
            DropReason::Backpressure,
        ] {
            assert_eq!(DropReason::parse(reason.as_str()), Some(reason));
        }
        assert_eq!(DropReason::parse("nope"), None);
    }
}
