//! A global-free metrics registry.
//!
//! No statics, no global singleton: a [`Registry`] is created where it is
//! needed and handed (or cloned — handles share state) to the code being
//! instrumented. Metric handles ([`Counter`], [`Gauge`], [`Histogram`]) are
//! cheap `Arc`-backed atomics, so hot loops resolve a handle once by name
//! and then pay a relaxed atomic op per update.
//!
//! Duration measurement goes through [`Registry::timer`], whose guard
//! records elapsed nanoseconds into a histogram on drop.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::Json;

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Creates a free-standing counter (not registered anywhere).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Adds `other`'s count to this counter (shard merge).
    pub fn merge_from(&self, other: &Counter) {
        self.add(other.get());
    }
}

/// A last-value-wins gauge that also tracks its maximum.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    value: Arc<AtomicU64>,
    max: Arc<AtomicU64>,
}

impl Gauge {
    /// Creates a free-standing gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the current value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The largest value ever set.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Merges `other` into this gauge element-wise by maximum.
    ///
    /// Gauges merged from worker shards are peak-style readings (the
    /// last-writer-wins semantics of `set` has no cross-shard meaning), so
    /// the merge keeps the larger of both `value`s and both `max`es.
    pub fn merge_from(&self, other: &Gauge) {
        self.value.fetch_max(other.get(), Ordering::Relaxed);
        self.max.fetch_max(other.max(), Ordering::Relaxed);
    }
}

/// A histogram over `u64` samples with power-of-two buckets.
///
/// Bucket `i` counts samples whose value needs `i` bits (i.e. is in
/// `[2^(i-1), 2^i)`, with bucket 0 for zero), which is plenty of resolution
/// for durations and combinatorial sizes alike.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<HistogramInner>);

#[derive(Debug)]
struct HistogramInner {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; 65],
}

impl Default for HistogramInner {
    fn default() -> Self {
        HistogramInner {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Creates a free-standing histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        let inner = &self.0;
        if inner.count.fetch_add(1, Ordering::Relaxed) == 0 {
            inner.min.store(v, Ordering::Relaxed);
        } else {
            inner.min.fetch_min(v, Ordering::Relaxed);
        }
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.max.fetch_max(v, Ordering::Relaxed);
        let bucket = 64 - v.leading_zeros() as usize; // 0 → 0, 1 → 1, 2..3 → 2, …
        inner.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded sample (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.0.min.load(Ordering::Relaxed)
        }
    }

    /// Largest recorded sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples (0.0 if empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Merges all of `other`'s samples into this histogram (shard merge).
    ///
    /// Exact when `other` is quiescent (its workers have finished), which is
    /// the shard-merge situation: counts, sums, extrema and buckets all end
    /// up as if every sample had been recorded here directly.
    pub fn merge_from(&self, other: &Histogram) {
        let n = other.count();
        if n == 0 {
            return;
        }
        let inner = &self.0;
        if inner.count.fetch_add(n, Ordering::Relaxed) == 0 {
            inner.min.store(other.min(), Ordering::Relaxed);
        } else {
            inner.min.fetch_min(other.min(), Ordering::Relaxed);
        }
        inner.sum.fetch_add(other.sum(), Ordering::Relaxed);
        inner.max.fetch_max(other.max(), Ordering::Relaxed);
        for (bucket, src) in inner.buckets.iter().zip(&other.0.buckets) {
            let c = src.load(Ordering::Relaxed);
            if c > 0 {
                bucket.fetch_add(c, Ordering::Relaxed);
            }
        }
    }

    /// Non-empty buckets as `(upper_bound_exclusive, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.0
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let count = c.load(Ordering::Relaxed);
                (count > 0).then(|| {
                    let upper = if i >= 64 { u64::MAX } else { 1u64 << i };
                    (upper, count)
                })
            })
            .collect()
    }
}

/// Records elapsed wall-clock nanoseconds into a histogram when dropped.
pub struct ScopedTimer {
    histogram: Histogram,
    start: Instant,
}

impl ScopedTimer {
    /// Starts timing into `histogram`.
    pub fn new(histogram: Histogram) -> Self {
        ScopedTimer {
            histogram,
            start: Instant::now(),
        }
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        let ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.histogram.record(ns);
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// A named collection of metrics. Cloning shares the underlying state.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name` (created on first use).
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().expect("registry lock");
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().expect("registry lock");
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name` (created on first use).
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.inner.lock().expect("registry lock");
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Starts a scoped timer recording into histogram `name` (in ns).
    pub fn timer(&self, name: &str) -> ScopedTimer {
        ScopedTimer::new(self.histogram(name))
    }

    /// Merges every metric of `other` into this registry by name, creating
    /// missing metrics on the fly.
    ///
    /// This is how per-worker **shards** flow back into a run's registry:
    /// give each worker a fresh `Registry`, let it record freely without
    /// contending on the shared one, then `merge_from` each shard after the
    /// join. Counters and histograms add; gauges merge by maximum. Merging a
    /// quiescent shard is exact — totals equal single-registry recording.
    pub fn merge_from(&self, other: &Registry) {
        let (counters, gauges, histograms) = {
            let inner = other.inner.lock().expect("registry lock");
            (
                inner
                    .counters
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect::<Vec<_>>(),
                inner
                    .gauges
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect::<Vec<_>>(),
                inner
                    .histograms
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect::<Vec<_>>(),
            )
        };
        for (name, c) in counters {
            self.counter(&name).merge_from(&c);
        }
        for (name, g) in gauges {
            self.gauge(&name).merge_from(&g);
        }
        for (name, h) in histograms {
            self.histogram(&name).merge_from(&h);
        }
    }

    /// All metrics as a JSON object, names sorted, suitable for the
    /// `counters` field of an experiment artifact.
    ///
    /// Counters render as integers, gauges as `{value, max}`, histograms as
    /// `{count, sum, min, max, mean}`.
    pub fn to_json(&self) -> Json {
        let inner = self.inner.lock().expect("registry lock");
        let mut pairs: Vec<(String, Json)> = Vec::new();
        for (name, c) in &inner.counters {
            pairs.push((name.clone(), Json::from(c.get())));
        }
        for (name, g) in &inner.gauges {
            pairs.push((
                name.clone(),
                Json::obj([("value", Json::from(g.get())), ("max", Json::from(g.max()))]),
            ));
        }
        for (name, h) in &inner.histograms {
            pairs.push((
                name.clone(),
                Json::obj([
                    ("count", Json::from(h.count())),
                    ("sum", Json::from(h.sum())),
                    ("min", Json::from(h.min())),
                    ("max", Json::from(h.max())),
                    ("mean", Json::from(h.mean())),
                ]),
            ));
        }
        pairs.sort_by(|(a, _), (b, _)| a.cmp(b));
        Json::Obj(pairs)
    }

    /// Renders a sorted `name value` line per metric (for text output).
    pub fn render(&self) -> String {
        let inner = self.inner.lock().expect("registry lock");
        let mut lines: Vec<String> = Vec::new();
        for (name, c) in &inner.counters {
            lines.push(format!("{name} {}", c.get()));
        }
        for (name, g) in &inner.gauges {
            lines.push(format!("{name} {} (max {})", g.get(), g.max()));
        }
        for (name, h) in &inner.histograms {
            lines.push(format!(
                "{name} count={} sum={} min={} max={} mean={:.1}",
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                h.mean(),
            ));
        }
        lines.sort();
        lines.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_state_by_name() {
        let reg = Registry::new();
        reg.counter("x").inc();
        reg.counter("x").add(4);
        assert_eq!(reg.counter("x").get(), 5);
        assert_eq!(reg.counter("y").get(), 0);
        // Cloned registries share everything.
        let reg2 = reg.clone();
        reg2.counter("x").inc();
        assert_eq!(reg.counter("x").get(), 6);
    }

    #[test]
    fn gauges_track_max() {
        let g = Gauge::new();
        g.set(3);
        g.set(9);
        g.set(5);
        assert_eq!(g.get(), 5);
        assert_eq!(g.max(), 9);
    }

    #[test]
    fn histogram_statistics() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 21.2).abs() < 1e-9);
        let buckets = h.nonzero_buckets();
        // 0 → bucket 0; 1 → bucket 1; 2,3 → bucket 2; 100 → bucket 7.
        assert_eq!(buckets, vec![(1, 1), (2, 1), (4, 2), (128, 1)]);
    }

    #[test]
    fn scoped_timer_records_on_drop() {
        let reg = Registry::new();
        {
            let _t = reg.timer("op_ns");
            std::hint::black_box(1 + 1);
        }
        assert_eq!(reg.histogram("op_ns").count(), 1);
    }

    #[test]
    fn shard_merge_equals_direct_recording() {
        // Record a sample stream directly…
        let direct = Registry::new();
        // …and the same stream split across two shards, then merged.
        let merged = Registry::new();
        let shard_a = Registry::new();
        let shard_b = Registry::new();
        for (i, v) in [3u64, 0, 17, 9, 1024, 2].iter().enumerate() {
            direct.counter("c").add(*v);
            direct.histogram("h").record(*v);
            direct.gauge("g").set(*v);
            let shard = if i % 2 == 0 { &shard_a } else { &shard_b };
            shard.counter("c").add(*v);
            shard.histogram("h").record(*v);
            shard.gauge("g").set(*v);
        }
        merged.merge_from(&shard_a);
        merged.merge_from(&shard_b);
        assert_eq!(merged.counter("c").get(), direct.counter("c").get());
        let (dh, mh) = (direct.histogram("h"), merged.histogram("h"));
        assert_eq!(mh.count(), dh.count());
        assert_eq!(mh.sum(), dh.sum());
        assert_eq!(mh.min(), dh.min());
        assert_eq!(mh.max(), dh.max());
        assert_eq!(mh.nonzero_buckets(), dh.nonzero_buckets());
        assert_eq!(merged.gauge("g").max(), direct.gauge("g").max());
        // Merging an empty shard is a no-op, even for min tracking.
        merged.merge_from(&Registry::new());
        assert_eq!(merged.histogram("h").min(), dh.min());
    }

    #[test]
    fn json_snapshot_is_sorted_and_typed() {
        let reg = Registry::new();
        reg.counter("b.count").add(2);
        reg.counter("a.count").add(1);
        reg.gauge("g").set(7);
        reg.histogram("h").record(10);
        let j = reg.to_json();
        match &j {
            Json::Obj(pairs) => {
                let names: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(names, vec!["a.count", "b.count", "g", "h"]);
            }
            other => panic!("expected object, got {other}"),
        }
        assert_eq!(j.get("a.count").and_then(Json::as_i64), Some(1));
        assert_eq!(
            j.get("g").and_then(|g| g.get("max")).and_then(Json::as_i64),
            Some(7)
        );
        assert_eq!(
            j.get("h")
                .and_then(|h| h.get("count"))
                .and_then(Json::as_i64),
            Some(1)
        );
        assert!(reg.render().contains("a.count 1"));
    }
}
