//! A global-free metrics registry.
//!
//! No statics, no global singleton: a [`Registry`] is created where it is
//! needed and handed (or cloned — handles share state) to the code being
//! instrumented. Metric handles ([`Counter`], [`Gauge`], [`Histogram`]) are
//! cheap `Arc`-backed atomics, so hot loops resolve a handle once by name
//! and then pay a relaxed atomic op per update.
//!
//! Metric names are `&'static str`: resolving a handle never allocates, and
//! the registry maps are keyed by the interned pointer-free literal itself.
//! Names composed at runtime go through [`intern`] once and are then static
//! for the life of the process.
//!
//! Duration measurement goes through [`Registry::timer`], whose guard
//! records elapsed nanoseconds into a histogram on drop — stamped by the
//! registry's [`Clock`], so a virtual-clock registry produces deterministic
//! `*_ns` histograms. A registry can also carry a [`Profiler`]
//! ([`Registry::attach_profiler`]); instrumented code opens per-phase spans
//! through [`Registry::phase`], which is a no-op when none is attached.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::clock::Clock;
use crate::json::Json;
use crate::profile::{Profiler, Span};

/// Interns a runtime-composed metric name, returning a `&'static str`.
///
/// Repeated calls with the same name return the same leaked allocation, so
/// the total leak is bounded by the set of distinct names ever interned.
/// Names written as literals never need this.
pub fn intern(name: &str) -> &'static str {
    static POOL: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(BTreeSet::new()));
    let mut pool = pool.lock().expect("intern pool lock");
    if let Some(existing) = pool.get(name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    pool.insert(leaked);
    leaked
}

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Creates a free-standing counter (not registered anywhere).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Adds `other`'s count to this counter (shard merge).
    pub fn merge_from(&self, other: &Counter) {
        self.add(other.get());
    }
}

/// A last-value-wins gauge that also tracks its maximum.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    value: Arc<AtomicU64>,
    max: Arc<AtomicU64>,
}

impl Gauge {
    /// Creates a free-standing gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the current value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The largest value ever set.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Merges `other` into this gauge element-wise by maximum.
    ///
    /// Gauges merged from worker shards are peak-style readings (the
    /// last-writer-wins semantics of `set` has no cross-shard meaning), so
    /// the merge keeps the larger of both `value`s and both `max`es.
    pub fn merge_from(&self, other: &Gauge) {
        self.value.fetch_max(other.get(), Ordering::Relaxed);
        self.max.fetch_max(other.max(), Ordering::Relaxed);
    }
}

/// A histogram over `u64` samples with power-of-two buckets.
///
/// Bucket `i` counts samples whose value needs `i` bits (i.e. is in
/// `[2^(i-1), 2^i)`, with bucket 0 for zero), which is plenty of resolution
/// for durations and combinatorial sizes alike.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<HistogramInner>);

#[derive(Debug)]
struct HistogramInner {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; 65],
}

impl Default for HistogramInner {
    fn default() -> Self {
        HistogramInner {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Creates a free-standing histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        let inner = &self.0;
        if inner.count.fetch_add(1, Ordering::Relaxed) == 0 {
            inner.min.store(v, Ordering::Relaxed);
        } else {
            inner.min.fetch_min(v, Ordering::Relaxed);
        }
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.max.fetch_max(v, Ordering::Relaxed);
        let bucket = 64 - v.leading_zeros() as usize; // 0 → 0, 1 → 1, 2..3 → 2, …
        inner.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded sample (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.0.min.load(Ordering::Relaxed)
        }
    }

    /// Largest recorded sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples (0.0 if empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// The `q`-quantile (`0 < q ≤ 1`) at bucket resolution: the inclusive
    /// upper bound of the first bucket whose cumulative count reaches
    /// `ceil(q · count)`. Exact for exact-bucket values (0 and 1); an upper
    /// bound within 2× otherwise. 0 if empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.0.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return match i {
                    0 => 0,
                    1..=63 => (1u64 << i) - 1,
                    _ => u64::MAX,
                };
            }
        }
        self.max()
    }

    /// Merges all of `other`'s samples into this histogram (shard merge).
    ///
    /// Exact when `other` is quiescent (its workers have finished), which is
    /// the shard-merge situation: counts, sums, extrema and buckets all end
    /// up as if every sample had been recorded here directly.
    pub fn merge_from(&self, other: &Histogram) {
        let n = other.count();
        if n == 0 {
            return;
        }
        let inner = &self.0;
        if inner.count.fetch_add(n, Ordering::Relaxed) == 0 {
            inner.min.store(other.min(), Ordering::Relaxed);
        } else {
            inner.min.fetch_min(other.min(), Ordering::Relaxed);
        }
        inner.sum.fetch_add(other.sum(), Ordering::Relaxed);
        inner.max.fetch_max(other.max(), Ordering::Relaxed);
        for (bucket, src) in inner.buckets.iter().zip(&other.0.buckets) {
            let c = src.load(Ordering::Relaxed);
            if c > 0 {
                bucket.fetch_add(c, Ordering::Relaxed);
            }
        }
    }

    /// Non-empty buckets as `(upper_bound_exclusive, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.0
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let count = c.load(Ordering::Relaxed);
                (count > 0).then(|| {
                    let upper = if i >= 64 { u64::MAX } else { 1u64 << i };
                    (upper, count)
                })
            })
            .collect()
    }

    /// The artifact summary: `{count, sum, min, max, mean, p50, p90, p99}`.
    pub fn summary_json(&self) -> Json {
        Json::obj([
            ("count", Json::from(self.count())),
            ("sum", Json::from(self.sum())),
            ("min", Json::from(self.min())),
            ("max", Json::from(self.max())),
            ("mean", Json::from(self.mean())),
            ("p50", Json::from(self.quantile(0.50))),
            ("p90", Json::from(self.quantile(0.90))),
            ("p99", Json::from(self.quantile(0.99))),
        ])
    }
}

/// Records elapsed clock nanoseconds into a histogram when dropped.
pub struct ScopedTimer {
    histogram: Histogram,
    clock: Clock,
    start_ns: u64,
}

impl ScopedTimer {
    /// Starts timing into `histogram` on a fresh wall clock.
    pub fn new(histogram: Histogram) -> Self {
        ScopedTimer::with_clock(histogram, Clock::wall())
    }

    /// Starts timing into `histogram` on `clock`.
    pub fn with_clock(histogram: Histogram, clock: Clock) -> Self {
        let start_ns = clock.now_ns();
        ScopedTimer {
            histogram,
            clock,
            start_ns,
        }
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        let ns = self.clock.now_ns().saturating_sub(self.start_ns);
        self.histogram.record(ns);
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<&'static str, Counter>,
    gauges: BTreeMap<&'static str, Gauge>,
    histograms: BTreeMap<&'static str, Histogram>,
    clock: Clock,
    profiler: Option<Profiler>,
}

/// A named collection of metrics. Cloning shares the underlying state.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl Registry {
    /// Creates an empty registry on a wall clock.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Sets the clock timers stamp durations with. A virtual clock
    /// ([`Clock::virtual_ns`]) makes every `*_ns` histogram deterministic.
    pub fn with_clock(self, clock: Clock) -> Self {
        self.inner.lock().expect("registry lock").clock = clock;
        self
    }

    /// The registry's clock (shared with its timers).
    pub fn clock(&self) -> Clock {
        self.inner.lock().expect("registry lock").clock.clone()
    }

    /// Attaches a profiler: subsequent [`Registry::phase`] calls open spans
    /// on it.
    pub fn attach_profiler(&self, profiler: Profiler) {
        self.inner.lock().expect("registry lock").profiler = Some(profiler);
    }

    /// The attached profiler, if any.
    pub fn profiler(&self) -> Option<Profiler> {
        self.inner.lock().expect("registry lock").profiler.clone()
    }

    /// Opens a per-phase span on the attached profiler; `None` (and no
    /// work at all) when no profiler is attached. Hold the guard for the
    /// phase's extent:
    ///
    /// ```
    /// # let reg = rmt_obs::Registry::new();
    /// let _phase = reg.phase("decide.paths");
    /// ```
    pub fn phase(&self, name: &'static str) -> Option<Span> {
        self.profiler().map(|p| p.span(name))
    }

    /// The counter named `name` (created on first use).
    pub fn counter(&self, name: &'static str) -> Counter {
        let mut inner = self.inner.lock().expect("registry lock");
        inner.counters.entry(name).or_default().clone()
    }

    /// The gauge named `name` (created on first use).
    pub fn gauge(&self, name: &'static str) -> Gauge {
        let mut inner = self.inner.lock().expect("registry lock");
        inner.gauges.entry(name).or_default().clone()
    }

    /// The histogram named `name` (created on first use).
    pub fn histogram(&self, name: &'static str) -> Histogram {
        let mut inner = self.inner.lock().expect("registry lock");
        inner.histograms.entry(name).or_default().clone()
    }

    /// Starts a scoped timer recording into histogram `name` (in ns),
    /// stamped by the registry's clock.
    pub fn timer(&self, name: &'static str) -> ScopedTimer {
        let (histogram, clock) = {
            let mut inner = self.inner.lock().expect("registry lock");
            let h = inner.histograms.entry(name).or_default().clone();
            (h, inner.clock.clone())
        };
        ScopedTimer::with_clock(histogram, clock)
    }

    /// Merges every metric of `other` into this registry by name, creating
    /// missing metrics on the fly.
    ///
    /// This is how per-worker **shards** flow back into a run's registry:
    /// give each worker a fresh `Registry`, let it record freely without
    /// contending on the shared one, then `merge_from` each shard after the
    /// join. Counters and histograms add; gauges merge by maximum. Merging a
    /// quiescent shard is exact — totals equal single-registry recording —
    /// and iteration is in sorted name order, so repeated merges visit
    /// metrics deterministically.
    pub fn merge_from(&self, other: &Registry) {
        let (counters, gauges, histograms) = {
            let inner = other.inner.lock().expect("registry lock");
            (
                inner
                    .counters
                    .iter()
                    .map(|(&k, v)| (k, v.clone()))
                    .collect::<Vec<_>>(),
                inner
                    .gauges
                    .iter()
                    .map(|(&k, v)| (k, v.clone()))
                    .collect::<Vec<_>>(),
                inner
                    .histograms
                    .iter()
                    .map(|(&k, v)| (k, v.clone()))
                    .collect::<Vec<_>>(),
            )
        };
        for (name, c) in counters {
            self.counter(name).merge_from(&c);
        }
        for (name, g) in gauges {
            self.gauge(name).merge_from(&g);
        }
        for (name, h) in histograms {
            self.histogram(name).merge_from(&h);
        }
    }

    /// All metric names currently registered, sorted.
    pub fn metric_names(&self) -> Vec<&'static str> {
        let inner = self.inner.lock().expect("registry lock");
        let mut names: Vec<&'static str> = inner
            .counters
            .keys()
            .chain(inner.gauges.keys())
            .chain(inner.histograms.keys())
            .copied()
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// All metrics as a JSON object, names sorted, suitable for the
    /// `counters` field of an experiment artifact.
    ///
    /// Counters render as integers, gauges as `{value, max}`, histograms as
    /// `{count, sum, min, max, mean, p50, p90, p99}`.
    pub fn to_json(&self) -> Json {
        let inner = self.inner.lock().expect("registry lock");
        let mut pairs: Vec<(String, Json)> = Vec::new();
        for (name, c) in &inner.counters {
            pairs.push((name.to_string(), Json::from(c.get())));
        }
        for (name, g) in &inner.gauges {
            pairs.push((
                name.to_string(),
                Json::obj([("value", Json::from(g.get())), ("max", Json::from(g.max()))]),
            ));
        }
        for (name, h) in &inner.histograms {
            pairs.push((name.to_string(), h.summary_json()));
        }
        pairs.sort_by(|(a, _), (b, _)| a.cmp(b));
        Json::Obj(pairs)
    }

    /// Renders a sorted `name value` line per metric (for text output).
    pub fn render(&self) -> String {
        let inner = self.inner.lock().expect("registry lock");
        let mut lines: Vec<String> = Vec::new();
        for (name, c) in &inner.counters {
            lines.push(format!("{name} {}", c.get()));
        }
        for (name, g) in &inner.gauges {
            lines.push(format!("{name} {} (max {})", g.get(), g.max()));
        }
        for (name, h) in &inner.histograms {
            lines.push(format!(
                "{name} count={} sum={} min={} max={} mean={:.1} p50={} p99={}",
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99),
            ));
        }
        lines.sort();
        lines.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_state_by_name() {
        let reg = Registry::new();
        reg.counter("x").inc();
        reg.counter("x").add(4);
        assert_eq!(reg.counter("x").get(), 5);
        assert_eq!(reg.counter("y").get(), 0);
        // Cloned registries share everything.
        let reg2 = reg.clone();
        reg2.counter("x").inc();
        assert_eq!(reg.counter("x").get(), 6);
    }

    #[test]
    fn interned_names_are_stable_and_deduplicated() {
        let a = intern(&format!("dyn.{}", 7));
        let b = intern("dyn.7");
        assert_eq!(a, "dyn.7");
        assert!(std::ptr::eq(a, b), "same allocation for the same name");
        let reg = Registry::new();
        reg.counter(a).inc();
        reg.counter(b).inc();
        assert_eq!(reg.counter(intern("dyn.7")).get(), 2);
    }

    #[test]
    fn gauges_track_max() {
        let g = Gauge::new();
        g.set(3);
        g.set(9);
        g.set(5);
        assert_eq!(g.get(), 5);
        assert_eq!(g.max(), 9);
    }

    #[test]
    fn histogram_statistics() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 21.2).abs() < 1e-9);
        let buckets = h.nonzero_buckets();
        // 0 → bucket 0; 1 → bucket 1; 2,3 → bucket 2; 100 → bucket 7.
        assert_eq!(buckets, vec![(1, 1), (2, 1), (4, 2), (128, 1)]);
    }

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0); // empty
        for v in [0u64, 1, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.2), 0); // first sample is the zero bucket
        assert_eq!(h.quantile(0.4), 1);
        assert_eq!(h.quantile(0.5), 3); // 2 and 3 share bucket [2,4)
        assert_eq!(h.quantile(0.8), 3);
        assert_eq!(h.quantile(1.0), 127); // 100 lands in [64,128)
        let j = h.summary_json();
        assert_eq!(j.get("p50").and_then(Json::as_i64), Some(3));
        assert_eq!(j.get("p99").and_then(Json::as_i64), Some(127));
        // A saturated sample resolves to the open top bucket.
        let top = Histogram::new();
        top.record(u64::MAX);
        assert_eq!(top.quantile(0.5), u64::MAX);
    }

    #[test]
    fn scoped_timer_records_on_drop() {
        let reg = Registry::new();
        {
            let _t = reg.timer("op_ns");
            std::hint::black_box(1 + 1);
        }
        assert_eq!(reg.histogram("op_ns").count(), 1);
    }

    #[test]
    fn virtual_clock_timers_are_deterministic() {
        let run = || {
            let reg = Registry::new().with_clock(Clock::virtual_ns(100));
            {
                let _outer = reg.timer("a_ns");
                let _inner = reg.timer("b_ns");
            }
            (reg.histogram("a_ns").sum(), reg.histogram("b_ns").sum())
        };
        // Two reads per timer, inner drops first: b spans one tick (100ns),
        // a spans three (300ns). Identical on every run.
        assert_eq!(run(), (300, 100));
        assert_eq!(run(), run());
    }

    #[test]
    fn phase_spans_flow_through_an_attached_profiler() {
        let reg = Registry::new();
        assert!(reg.phase("nothing").is_none()); // no profiler: free no-op
        let prof = Profiler::new(Clock::virtual_ns(1));
        reg.attach_profiler(prof.clone());
        {
            let _p = reg.phase("decide");
            let _q = reg.phase("decide.paths");
        }
        let roots = crate::profile::span_tree(&prof.events()).unwrap();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "decide");
        assert_eq!(roots[0].children[0].name, "decide.paths");
    }

    #[test]
    fn shard_merge_equals_direct_recording() {
        // Record a sample stream directly…
        let direct = Registry::new();
        // …and the same stream split across two shards, then merged.
        let merged = Registry::new();
        let shard_a = Registry::new();
        let shard_b = Registry::new();
        for (i, v) in [3u64, 0, 17, 9, 1024, 2].iter().enumerate() {
            direct.counter("c").add(*v);
            direct.histogram("h").record(*v);
            direct.gauge("g").set(*v);
            let shard = if i % 2 == 0 { &shard_a } else { &shard_b };
            shard.counter("c").add(*v);
            shard.histogram("h").record(*v);
            shard.gauge("g").set(*v);
        }
        merged.merge_from(&shard_a);
        merged.merge_from(&shard_b);
        assert_eq!(merged.counter("c").get(), direct.counter("c").get());
        let (dh, mh) = (direct.histogram("h"), merged.histogram("h"));
        assert_eq!(mh.count(), dh.count());
        assert_eq!(mh.sum(), dh.sum());
        assert_eq!(mh.min(), dh.min());
        assert_eq!(mh.max(), dh.max());
        assert_eq!(mh.nonzero_buckets(), dh.nonzero_buckets());
        assert_eq!(merged.gauge("g").max(), direct.gauge("g").max());
        // Merging an empty shard is a no-op, even for min tracking.
        merged.merge_from(&Registry::new());
        assert_eq!(merged.histogram("h").min(), dh.min());
    }

    #[test]
    fn json_snapshot_is_sorted_and_typed() {
        let reg = Registry::new();
        reg.counter("b.count").add(2);
        reg.counter("a.count").add(1);
        reg.gauge("g").set(7);
        reg.histogram("h").record(10);
        let j = reg.to_json();
        match &j {
            Json::Obj(pairs) => {
                let names: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(names, vec!["a.count", "b.count", "g", "h"]);
            }
            other => panic!("expected object, got {other}"),
        }
        assert_eq!(j.get("a.count").and_then(Json::as_i64), Some(1));
        assert_eq!(
            j.get("g").and_then(|g| g.get("max")).and_then(Json::as_i64),
            Some(7)
        );
        assert_eq!(
            j.get("h")
                .and_then(|h| h.get("count"))
                .and_then(Json::as_i64),
            Some(1)
        );
        assert_eq!(
            j.get("h").and_then(|h| h.get("p50")).and_then(Json::as_i64),
            Some(15) // 10 lands in [8,16)
        );
        assert!(reg.render().contains("a.count 1"));
        assert_eq!(reg.metric_names(), vec!["a.count", "b.count", "g", "h"]);
    }
}
