//! Phase profiling: spans, span trees and text flamegraphs.
//!
//! A [`Profiler`] hands out RAII [`Span`] guards: opening a span records a
//! [`RunEvent::SpanOpen`] stamped by the profiler's [`Clock`], dropping the
//! guard records the matching [`RunEvent::SpanClose`]. Because guards close
//! in reverse opening order (Rust drop order), the recorded stream is
//! **well-nested** by construction; [`span_tree`] parses any such stream
//! back into a forest and [`render_span_tree`] renders it as an indented
//! text flamegraph.
//!
//! Spans ride the same [`RunEvent`] stream and JSONL codec as every other
//! observable step, so a profile is just another recorded trace:
//! `rmt-trace profile` renders one from any `.jsonl` file. Under a virtual
//! clock ([`Clock::virtual_ns`]) the recorded timestamps are deterministic,
//! which is how the determinism gate checks profiled runs byte for byte.

use std::sync::{Arc, Mutex};

use crate::clock::Clock;
use crate::event::RunEvent;

struct ProfInner {
    events: Vec<RunEvent>,
    depth: usize,
}

/// Records well-nested [`RunEvent::SpanOpen`]/[`RunEvent::SpanClose`] pairs
/// stamped by a [`Clock`]. Cloning shares the underlying recording.
#[derive(Clone)]
pub struct Profiler {
    inner: Arc<Mutex<ProfInner>>,
    clock: Clock,
}

impl Profiler {
    /// Creates a profiler stamping spans with `clock`.
    pub fn new(clock: Clock) -> Self {
        Profiler {
            inner: Arc::new(Mutex::new(ProfInner {
                events: Vec::new(),
                depth: 0,
            })),
            clock,
        }
    }

    /// The profiler's clock (shared: reads advance a virtual clock).
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Opens a span named `name`; the returned guard closes it on drop.
    pub fn span(&self, name: &'static str) -> Span {
        let at_ns = self.clock.now_ns();
        let mut inner = self.inner.lock().expect("profiler lock");
        inner.depth += 1;
        inner.events.push(RunEvent::SpanOpen {
            name: name.to_string(),
            at_ns,
        });
        Span {
            profiler: self.clone(),
            name,
        }
    }

    /// The recorded span events so far, in emission order.
    pub fn events(&self) -> Vec<RunEvent> {
        self.inner.lock().expect("profiler lock").events.clone()
    }

    /// Number of currently open spans.
    pub fn open_spans(&self) -> usize {
        self.inner.lock().expect("profiler lock").depth
    }

    fn close(&self, name: &'static str) {
        let at_ns = self.clock.now_ns();
        let mut inner = self.inner.lock().expect("profiler lock");
        inner.depth = inner.depth.saturating_sub(1);
        inner.events.push(RunEvent::SpanClose {
            name: name.to_string(),
            at_ns,
        });
    }
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profiler")
            .field("open_spans", &self.open_spans())
            .finish()
    }
}

/// An open span; closes (records [`RunEvent::SpanClose`]) when dropped.
#[must_use = "a span guard closes its span when dropped"]
pub struct Span {
    profiler: Profiler,
    name: &'static str,
}

impl Drop for Span {
    fn drop(&mut self) {
        self.profiler.close(self.name);
    }
}

/// One node of a parsed span tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanNode {
    /// The span name.
    pub name: String,
    /// Opening timestamp (ns).
    pub start_ns: u64,
    /// Closing timestamp (ns).
    pub end_ns: u64,
    /// Spans opened and closed while this one was open.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// The span's duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Parses the span events of a stream into a forest, ignoring every
/// non-span event.
///
/// Errors when the stream is not well-nested: a close without a matching
/// open, a close naming a span other than the innermost open one, a close
/// stamped before its open, or a span left open at the end.
pub fn span_tree(events: &[RunEvent]) -> Result<Vec<SpanNode>, String> {
    let mut roots: Vec<SpanNode> = Vec::new();
    // Open spans, outermost first; children accumulate in the node itself.
    let mut stack: Vec<SpanNode> = Vec::new();
    for ev in events {
        match ev {
            RunEvent::SpanOpen { name, at_ns } => stack.push(SpanNode {
                name: name.clone(),
                start_ns: *at_ns,
                end_ns: *at_ns,
                children: Vec::new(),
            }),
            RunEvent::SpanClose { name, at_ns } => {
                let mut node = stack
                    .pop()
                    .ok_or_else(|| format!("span_close '{name}' without an open span"))?;
                if &node.name != name {
                    return Err(format!(
                        "span_close '{name}' while '{}' is innermost",
                        node.name
                    ));
                }
                if *at_ns < node.start_ns {
                    return Err(format!("span '{name}' closes before it opens"));
                }
                node.end_ns = *at_ns;
                match stack.last_mut() {
                    Some(parent) => parent.children.push(node),
                    None => roots.push(node),
                }
            }
            _ => {}
        }
    }
    if let Some(open) = stack.last() {
        return Err(format!("span '{}' is never closed", open.name));
    }
    Ok(roots)
}

/// Formats nanoseconds compactly (ns/µs/ms/s).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

/// Renders a span forest as an indented text flamegraph: one line per span
/// with its duration, share of the forest total, and a bar scaled to it.
pub fn render_span_tree(roots: &[SpanNode]) -> String {
    const BAR: usize = 24;
    let total: u64 = roots.iter().map(SpanNode::duration_ns).sum();
    let mut out = format!("span profile (total {})\n", fmt_ns(total));
    fn walk(node: &SpanNode, depth: usize, total: u64, out: &mut String) {
        let d = node.duration_ns();
        let frac = if total == 0 {
            0.0
        } else {
            d as f64 / total as f64
        };
        let filled = ((frac * BAR as f64).round() as usize).min(BAR);
        let label = format!("{}{}", "  ".repeat(depth + 1), node.name);
        out.push_str(&format!(
            "{label:<40} {:>9}  {:>5.1}%  {}{}\n",
            fmt_ns(d),
            frac * 100.0,
            "█".repeat(filled),
            "·".repeat(BAR - filled),
        ));
        for child in &node.children {
            walk(child, depth + 1, total, out);
        }
    }
    for root in roots {
        walk(root, 0, total, &mut out);
    }
    out
}

/// Renders the per-round latency/wire rows of a stream (its
/// [`RunEvent::RoundEnd`] events) as an aligned table; empty string when the
/// stream has none.
pub fn render_round_profile(events: &[RunEvent]) -> String {
    let rows: Vec<(u32, u64, u64, u64, u64)> = events
        .iter()
        .filter_map(|ev| match ev {
            RunEvent::RoundEnd {
                round,
                ns,
                messages,
                bits,
                drops,
            } => Some((*round, *ns, *messages, *bits, *drops)),
            _ => None,
        })
        .collect();
    if rows.is_empty() {
        return String::new();
    }
    let mut out = String::from("round profile\n");
    out.push_str(&format!(
        "  {:>5}  {:>9}  {:>6}  {:>8}  {:>5}\n",
        "round", "latency", "msgs", "bits", "drops"
    ));
    let (mut ns, mut msgs, mut bits, mut drops) = (0u64, 0u64, 0u64, 0u64);
    for (round, r_ns, r_msgs, r_bits, r_drops) in &rows {
        out.push_str(&format!(
            "  {:>5}  {:>9}  {:>6}  {:>8}  {:>5}\n",
            round,
            fmt_ns(*r_ns),
            r_msgs,
            r_bits,
            r_drops
        ));
        ns += r_ns;
        msgs += r_msgs;
        bits += r_bits;
        drops += r_drops;
    }
    out.push_str(&format!(
        "  {:>5}  {:>9}  {:>6}  {:>8}  {:>5}\n",
        "total",
        fmt_ns(ns),
        msgs,
        bits,
        drops
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_well_nested_events() {
        let prof = Profiler::new(Clock::virtual_ns(1));
        {
            let _outer = prof.span("outer");
            {
                let _inner = prof.span("inner");
            }
            let _second = prof.span("second");
        }
        assert_eq!(prof.open_spans(), 0);
        let events = prof.events();
        assert_eq!(events.len(), 6);
        let roots = span_tree(&events).expect("well nested");
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "outer");
        let kids: Vec<&str> = roots[0].children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(kids, vec!["inner", "second"]);
        // Virtual clock: open at 1, close at 6.
        assert_eq!(roots[0].start_ns, 1);
        assert_eq!(roots[0].end_ns, 6);
        assert_eq!(roots[0].duration_ns(), 5);
    }

    #[test]
    fn span_tree_rejects_malformed_streams() {
        let close = |name: &str, at_ns| RunEvent::SpanClose {
            name: name.into(),
            at_ns,
        };
        let open = |name: &str, at_ns| RunEvent::SpanOpen {
            name: name.into(),
            at_ns,
        };
        assert!(span_tree(&[close("a", 1)]).is_err());
        assert!(span_tree(&[open("a", 1)]).is_err());
        assert!(span_tree(&[open("a", 1), close("b", 2)]).is_err());
        assert!(span_tree(&[open("a", 5), close("a", 2)]).is_err());
        assert!(span_tree(&[open("a", 1), close("a", 2)]).is_ok());
    }

    #[test]
    fn non_span_events_are_ignored_by_the_tree() {
        let events = vec![
            RunEvent::RoundStart { round: 1 },
            RunEvent::SpanOpen {
                name: "x".into(),
                at_ns: 1,
            },
            RunEvent::RunEnd { rounds: 1 },
            RunEvent::SpanClose {
                name: "x".into(),
                at_ns: 9,
            },
        ];
        let roots = span_tree(&events).unwrap();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].duration_ns(), 8);
    }

    #[test]
    fn renderings_are_stable() {
        let prof = Profiler::new(Clock::virtual_ns(1_000));
        {
            let _a = prof.span("decide");
            let _b = prof.span("paths");
        }
        let roots = span_tree(&prof.events()).unwrap();
        let text = render_span_tree(&roots);
        assert!(text.starts_with("span profile (total "));
        assert!(text.contains("decide"));
        assert!(text.contains("  paths"));
        assert!(text.contains('%'));

        let rounds = vec![
            RunEvent::RoundEnd {
                round: 0,
                ns: 1_500,
                messages: 4,
                bits: 256,
                drops: 0,
            },
            RunEvent::RoundEnd {
                round: 1,
                ns: 2_500,
                messages: 2,
                bits: 128,
                drops: 1,
            },
        ];
        let table = render_round_profile(&rounds);
        assert!(table.contains("round profile"));
        assert!(table.contains("1.5µs"));
        assert!(table.contains("total"));
        assert_eq!(render_round_profile(&[]), "");
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(2_500), "2.5µs");
        assert_eq!(fmt_ns(316_000), "316.0µs");
        assert_eq!(fmt_ns(4_300_000), "4.3ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
