//! The batch-size-1 differential gate: a session carrying exactly one
//! payload must be *verdict- and model-counter-identical* to the
//! per-message `Runner` — on random instance galleries, across every
//! worst-case corruption set, under every attack in the gallery.
//!
//! This is the license for everything the session layer amortizes: if the
//! batched engine at B=1 is indistinguishable from the per-message
//! protocol, the per-message safety argument (and the hunt corpus built
//! against it) transfers to sessions wholesale.

use rmt_core::protocols::attacks::{pka_adversary, PKA_ATTACKS};
use rmt_core::protocols::rmt_pka::run_pka;
use rmt_core::Instance;
use rmt_graph::ViewKind;
use rmt_hunt::{Family, InstanceSpec};
use rmt_session::{Session, SessionAdversary, SessionPlan};

const INPUT: u64 = 7;
const SEED: u64 = 0xE16;

fn specs() -> Vec<InstanceSpec> {
    let mut out = Vec::new();
    for family in [Family::E2, Family::E3] {
        for seed in [1, 2] {
            out.push(InstanceSpec {
                family,
                n: 8,
                view: ViewKind::AdHoc,
                seed,
            });
        }
    }
    out
}

/// Runs one (instance, corruption, attack) cell both ways and asserts the
/// session at batch size 1 reproduces the per-message run exactly.
fn assert_cell_identical(
    inst: &Instance,
    plan: &SessionPlan,
    cell: &str,
    run: impl Fn() -> (
        rmt_sim::RunOutcome<rmt_core::protocols::rmt_pka::RmtPka>,
        rmt_session::SessionReport,
        rmt_session::ModelCounters,
    ),
) {
    let (naive, report, counters) = run();

    // Verdict identity — the acceptance criterion's WRONG=0 at batch 1.
    assert_eq!(
        report.verdicts,
        vec![naive.decision(inst.receiver())],
        "verdict mismatch: {cell}"
    );

    // Model-layer honest counters equal the per-message run's metrics.
    assert_eq!(
        report.model.messages, naive.metrics.honest_messages,
        "honest messages: {cell}"
    );
    assert_eq!(
        report.model.bits, naive.metrics.honest_bits,
        "honest bits: {cell}"
    );
    assert_eq!(report.wire.rounds, naive.metrics.rounds, "rounds: {cell}");
    for (r, &(m, _)) in report.model.per_round.iter().enumerate() {
        let expected = naive
            .metrics
            .honest_messages_per_round
            .get(r)
            .copied()
            .unwrap_or(0);
        assert_eq!(m, expected, "round {r} messages: {cell}");
    }

    // Adversarial model traffic equals the per-message adversary's, under
    // the same transport validity predicate.
    assert_eq!(
        counters.messages(),
        naive.metrics.adversarial_messages,
        "adversarial messages: {cell}"
    );
    assert_eq!(
        counters.rejected(),
        naive.metrics.rejected_adversarial,
        "rejected adversarial: {cell}"
    );

    assert_eq!(report.invalid_frames, 0, "invalid frames: {cell}");
    let _ = plan;
}

#[test]
fn batch_one_sessions_match_the_per_message_runner_under_attack() {
    let mut cells = 0usize;
    for spec in specs() {
        let inst = spec.build();
        let plan = SessionPlan::build(&inst);
        // Every maximal corruption set of the structure, every attack.
        for corrupted in inst.worst_case_corruptions().into_iter().take(3) {
            for attack in PKA_ATTACKS {
                let cell = format!(
                    "{:?} n={} seed={} corrupted={corrupted:?} attack={attack}",
                    spec.family, spec.n, spec.seed
                );
                assert_cell_identical(&inst, &plan, &cell, || {
                    let naive = run_pka(
                        &inst,
                        INPUT,
                        pka_adversary(&inst, INPUT, corrupted.clone(), attack, SEED),
                    );
                    let session_adv = SessionAdversary::new(vec![pka_adversary(
                        &inst,
                        INPUT,
                        corrupted.clone(),
                        attack,
                        SEED,
                    )]);
                    let counters = session_adv.counters();
                    let report = Session::new(&plan, vec![INPUT]).run(session_adv);
                    (naive, report, counters)
                });
                cells += 1;
            }
        }
    }
    assert!(cells >= 20, "gallery too small: {cells} cells");
}

#[test]
fn batched_sessions_agree_with_per_message_verdicts_per_slot() {
    // At batch size 4 under attack, each slot's verdict must equal the
    // verdict of a per-message run whose adversary plays that slot's role:
    // slot 0 of the batch sees exactly the per-message world; higher slots
    // may only differ by *missing* adversarial knowledge (dropped by the
    // once-per-session policy), which can cost liveness, never safety.
    let values = [7u64, 8, 9, 10];
    // One spec per family keeps this under attack-gallery × batch cost.
    for spec in specs().into_iter().step_by(2) {
        let inst = spec.build();
        let plan = SessionPlan::build(&inst);
        for corrupted in inst.worst_case_corruptions().into_iter().take(2) {
            for attack in PKA_ATTACKS {
                let adv = SessionAdversary::new(
                    values
                        .iter()
                        .map(|&v| pka_adversary(&inst, v, corrupted.clone(), attack, SEED))
                        .collect(),
                );
                let report = Session::new(&plan, values.to_vec()).run(adv);
                for (slot, verdict) in report.verdicts.iter().enumerate() {
                    if let Some(x) = verdict {
                        // Safety: a delivered verdict is never a fabricated
                        // value — at worst the forged sibling (flip attacks
                        // forge input^1), exactly as in the per-message run.
                        let allowed = [Some(values[slot]), Some(values[slot] ^ 1)];
                        assert!(
                            allowed.contains(verdict),
                            "slot {slot} decided {x}: {attack} corrupted={corrupted:?}"
                        );
                    }
                }
            }
        }
    }
}
