//! Property tests for the compact session codec: every frame round-trips
//! through its encoding byte-exactly, pack/expand are mutually inverse, and
//! no byte sequence — arbitrary, truncated, or bit-flipped — can make the
//! decoder panic or allocate unboundedly. Frames cross real sockets in the
//! `rmt-netd` backend; the decoder's only legal failure mode is `Err`.

use proptest::prelude::*;
use rmt_adversary::AdversaryStructure;
use rmt_core::protocols::rmt_pka::PkaPayload;
use rmt_graph::Graph;
use rmt_session::{SessionEntry, SessionFrame};
use rmt_sets::{NodeId, NodeSet};
use rmt_sim::WirePayload;

/// The vendored proptest stub has no `u8` support; derive bytes from `u32`.
fn arb_byte() -> impl Strategy<Value = u8> {
    any::<u32>().prop_map(|x| x as u8)
}

fn arb_bytes(max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(arb_byte(), 0..max)
}

/// Node ids drawn from a small range so trails share prefixes (exercising
/// the front-coder) while still hitting duplicates and gaps.
fn arb_node() -> impl Strategy<Value = NodeId> {
    (0u32..24).prop_map(NodeId::new)
}

fn arb_trail() -> impl Strategy<Value = Vec<NodeId>> {
    proptest::collection::vec(arb_node(), 0..6)
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        proptest::collection::vec(arb_node(), 0..6),
        proptest::collection::vec((arb_node(), arb_node()), 0..8),
    )
        .prop_map(|(nodes, edges)| {
            let mut g = Graph::new();
            for v in nodes {
                g.add_node(v);
            }
            for (u, v) in edges {
                if u != v {
                    g.add_edge(u, v);
                }
            }
            g
        })
}

fn arb_structure() -> impl Strategy<Value = AdversaryStructure> {
    proptest::collection::vec(proptest::collection::vec(arb_node(), 0..4), 0..4).prop_map(|sets| {
        AdversaryStructure::from_sets(
            sets.into_iter()
                .map(|ids| ids.into_iter().collect::<NodeSet>()),
        )
    })
}

/// An arbitrary *valid* frame: every entry references a trail that exists.
fn arb_frame() -> impl Strategy<Value = SessionFrame> {
    (
        proptest::collection::vec(arb_trail(), 1..5),
        proptest::collection::vec(
            (
                (any::<u32>(), 0u32..10_000, any::<u32>()),
                proptest::collection::vec(any::<u64>(), 1..5),
                (arb_node(), arb_graph(), arb_structure()),
            ),
            0..6,
        ),
    )
        .prop_map(|(trails, raw_entries)| {
            let n_trails = trails.len() as u32;
            let entries = raw_entries
                .into_iter()
                .map(
                    |((kind, first_slot, trail), values, (node, view, structure))| {
                        let trail = trail % n_trails;
                        if kind % 2 == 0 {
                            SessionEntry::Values {
                                trail,
                                first_slot,
                                values,
                            }
                        } else {
                            SessionEntry::Knowledge {
                                node,
                                view,
                                structure,
                                trail,
                            }
                        }
                    },
                )
                .collect();
            SessionFrame { trails, entries }
        })
}

/// Per-message payloads for the pack/expand inverse property. Trails are
/// nonempty (as every protocol-generated trail is).
fn arb_payload_item() -> impl Strategy<Value = (u32, PkaPayload)> {
    (
        (0u32..8, any::<u32>(), any::<u64>()),
        proptest::collection::vec(arb_node(), 1..5),
        (arb_node(), arb_graph(), arb_structure()),
    )
        .prop_map(|((slot, kind, value), trail, (node, view, structure))| {
            if kind % 2 == 0 {
                (slot, PkaPayload::DealerValue { value, trail })
            } else {
                (
                    0,
                    PkaPayload::Knowledge {
                        node,
                        view,
                        structure,
                        trail,
                    },
                )
            }
        })
}

proptest! {
    /// Every frame survives encode → decode unchanged, and decode reports
    /// exactly how many bytes it consumed.
    #[test]
    fn frame_round_trips(frame in arb_frame()) {
        let bytes = frame.to_bytes();
        let (decoded, used) = SessionFrame::decode(&bytes).expect("own encoding must decode");
        prop_assert_eq!(decoded, frame);
        prop_assert_eq!(used, bytes.len());
    }

    /// pack → expand recovers the logical messages exactly (order, slots,
    /// payloads), modulo the documented slot-0 normalization of knowledge.
    #[test]
    fn pack_expand_is_identity(items in proptest::collection::vec(arb_payload_item(), 0..12)) {
        let frame = SessionFrame::pack(&items);
        let expanded = frame.expand().expect("packed frames always expand");
        prop_assert_eq!(expanded, items);
    }

    /// The model cost of a packed frame equals the per-message accounting of
    /// what it expands to.
    #[test]
    fn model_cost_matches_expansion(items in proptest::collection::vec(arb_payload_item(), 0..12)) {
        use rmt_sim::Payload;
        let frame = SessionFrame::pack(&items);
        let expanded = frame.expand().unwrap();
        let msgs = expanded.len() as u64;
        let bits: u64 = expanded.iter().map(|(_, p)| p.encoded_bits() as u64).sum();
        prop_assert_eq!(frame.model_cost(), (msgs, bits));
    }

    /// Arbitrary garbage never panics the decoder.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in arb_bytes(192)) {
        let _ = SessionFrame::decode(&bytes);
        let _ = SessionFrame::from_bytes(&bytes);
    }

    /// Every truncation of a valid encoding fails cleanly — a session frame
    /// is self-delimiting, so no strict prefix is itself a frame.
    #[test]
    fn truncations_fail_cleanly(frame in arb_frame()) {
        let bytes = frame.to_bytes();
        for cut in 0..bytes.len() {
            prop_assert!(SessionFrame::decode(&bytes[..cut]).is_err(), "cut {}", cut);
        }
    }

    /// Single bit flips anywhere in a valid encoding either decode to *some*
    /// frame (whose re-encoding round-trips) or fail with an error — never
    /// a panic, never an out-of-bounds read or unbounded allocation.
    #[test]
    fn bit_flips_never_panic(frame in arb_frame(), byte_idx in any::<u32>(), bit in 0u32..8) {
        let mut bytes = frame.to_bytes();
        let idx = byte_idx as usize % bytes.len();
        bytes[idx] ^= 1u8 << bit;
        if let Ok((decoded, _)) = SessionFrame::decode(&bytes) {
            let again = decoded.to_bytes();
            let (twice, _) = SessionFrame::decode(&again).expect("re-encoding decodes");
            prop_assert_eq!(twice, decoded);
        }
        let _ = SessionFrame::from_bytes(&bytes);
    }
}
