//! [`SessionPlan`]: the per-(instance, dealer, receiver) state a batched
//! session precomputes **once** instead of once per payload.
//!
//! The per-message protocol rebuilds the same data for every transmitted
//! value: each node's view clone, each node's local adversary structure
//! (`Instance::local_structure` intersects the global structure with the
//! view — the expensive part), and the receiver's validation state. A
//! `SessionPlan` hoists all of that out of the per-payload path; a
//! [`Session`](crate::Session) then streams any number of payloads through
//! one set of protocol instances built from the plan.

use rmt_adversary::AdversaryStructure;
use rmt_core::protocols::pka_decision::DecisionConfig;
use rmt_core::Instance;
use rmt_graph::Graph;
use rmt_sets::NodeId;

/// One node's precomputed announcement content: what its type-2 knowledge
/// message carries, fixed for the whole session.
#[derive(Clone, Debug)]
pub struct NodeKnowledge {
    /// The node's view γ(v).
    pub view: Graph,
    /// The node's local structure 𝒵_v.
    pub structure: AdversaryStructure,
}

/// Precomputed routing/knowledge state for one (instance, dealer, receiver)
/// triple, shared by every payload of a session.
#[derive(Clone, Debug)]
pub struct SessionPlan {
    graph: Graph,
    dealer: NodeId,
    receiver: NodeId,
    cfg: DecisionConfig,
    /// Indexed by `NodeId::index()`; `None` for gaps in the id space.
    knowledge: Vec<Option<NodeKnowledge>>,
}

impl SessionPlan {
    /// Precomputes the plan for `inst` with default decision budgets.
    pub fn build(inst: &Instance) -> Self {
        SessionPlan::with_config(inst, DecisionConfig::default())
    }

    /// Precomputes the plan for `inst` with explicit decision budgets.
    pub fn with_config(inst: &Instance, cfg: DecisionConfig) -> Self {
        let graph = inst.graph().clone();
        let size = graph.nodes().last().map_or(0, |v| v.index() + 1);
        let mut knowledge: Vec<Option<NodeKnowledge>> = (0..size).map(|_| None).collect();
        for v in graph.nodes() {
            knowledge[v.index()] = Some(NodeKnowledge {
                view: inst.view(v).clone(),
                structure: inst.local_structure(v),
            });
        }
        SessionPlan {
            graph,
            dealer: inst.dealer(),
            receiver: inst.receiver(),
            cfg,
            knowledge,
        }
    }

    /// The communication graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The dealer D.
    pub fn dealer(&self) -> NodeId {
        self.dealer
    }

    /// The receiver R.
    pub fn receiver(&self) -> NodeId {
        self.receiver
    }

    /// The receiver's decision budgets.
    pub fn decision_config(&self) -> &DecisionConfig {
        &self.cfg
    }

    /// Node `v`'s precomputed knowledge content.
    ///
    /// # Panics
    ///
    /// If `v` is not a node of the plan's graph.
    pub fn knowledge(&self, v: NodeId) -> &NodeKnowledge {
        self.knowledge
            .get(v.index())
            .and_then(Option::as_ref)
            .unwrap_or_else(|| panic!("node {v} is not in the session plan"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt_core::gallery;
    use rmt_graph::ViewKind;

    #[test]
    fn plan_matches_instance_knowledge() {
        let inst = gallery::tolerant_diamond(ViewKind::AdHoc);
        let plan = SessionPlan::build(&inst);
        assert_eq!(plan.dealer(), inst.dealer());
        assert_eq!(plan.receiver(), inst.receiver());
        assert_eq!(plan.graph(), inst.graph());
        for v in inst.graph().nodes() {
            let k = plan.knowledge(v);
            assert_eq!(&k.view, inst.view(v), "view of {v}");
            assert_eq!(k.structure, inst.local_structure(v), "structure of {v}");
        }
    }

    #[test]
    #[should_panic(expected = "not in the session plan")]
    fn unknown_node_panics() {
        let inst = gallery::tolerant_diamond(ViewKind::AdHoc);
        let plan = SessionPlan::build(&inst);
        let _ = plan.knowledge(99.into());
    }
}
