//! [`Session`]: stream many payloads through one precomputed
//! [`SessionPlan`], over any of the three transport backends.
//!
//! A session builds its node set from the plan once, runs the batched
//! engine, and reports *two* cost ledgers side by side:
//!
//! * **wire** — what actually crossed the links: frames and their compact
//!   encoding's bits ([`Metrics`] from the scheduler, whose `honest_bits`
//!   bill the codec's real byte length);
//! * **model** — what the per-message protocol would have sent for the same
//!   traffic: the frames' [`model_cost`](SessionFrame::model_cost),
//!   payload-for-payload identical to the naive runner's accounting at
//!   batch size 1.
//!
//! The ratio of the two, per payload, is the amortization experiment E16
//! measures across batch sizes.

use rmt_core::Value;
use rmt_net::{FaultPlan, NetRunner};
use rmt_netd::{ChaosPlan, NetdConfig};
use rmt_obs::Registry;
use rmt_sim::{Adversary, Metrics, Runner, SilentAdversary};

use crate::codec::SessionFrame;
use crate::engine::{ReceiverStats, SessionNode};
use crate::plan::SessionPlan;

/// Model-layer (per-message-equivalent) accounting of one session's honest
/// traffic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ModelMetrics {
    /// Logical messages the session's frames carry.
    pub messages: u64,
    /// Their bits under the per-message protocol's estimate.
    pub bits: u64,
    /// Per-round `(messages, bits)`; index 0 = initial sends.
    pub per_round: Vec<(u64, u64)>,
}

/// Everything one session run produces.
#[derive(Clone, Debug)]
pub struct SessionReport {
    /// The receiver's verdict per payload slot.
    pub verdicts: Vec<Option<Value>>,
    /// Wire-layer accounting: frames and compact-codec bits.
    pub wire: Metrics,
    /// Model-layer accounting: the expanded per-message equivalent.
    pub model: ModelMetrics,
    /// Receiver search counters (decide cache, truncation, effort).
    pub receiver: ReceiverStats,
    /// Frames honest nodes received that failed to expand.
    pub invalid_frames: u64,
    /// The number of payloads transmitted.
    pub payloads: u64,
}

impl SessionReport {
    /// Wire bits per payload (the headline amortization figure).
    pub fn wire_bits_per_payload(&self) -> f64 {
        self.wire.honest_bits as f64 / self.payloads.max(1) as f64
    }

    /// Records the session's counters into `reg` under the `session.*` and
    /// `wire.*` names catalogued in `METRICS.md`.
    pub fn record_into(&self, reg: &Registry) {
        reg.counter("session.payloads").add(self.payloads);
        reg.counter("session.frames").add(self.wire.honest_messages);
        reg.counter("session.rounds")
            .add(u64::from(self.wire.rounds));
        reg.counter("session.decide_cache_hits")
            .add(self.receiver.decide_cache_hits);
        reg.counter("session.decide_cache_misses")
            .add(self.receiver.decide_cache_misses);
        reg.counter("session.invalid_frames")
            .add(self.invalid_frames);
        reg.counter("wire.frame_bits").add(self.wire.honest_bits);
        reg.counter("wire.model_messages").add(self.model.messages);
        reg.counter("wire.model_bits").add(self.model.bits);
    }

    fn collect<F>(plan: &SessionPlan, payloads: u64, wire: Metrics, protocol: F) -> SessionReport
    where
        F: Fn(rmt_sets::NodeId) -> Option<SessionNode>,
    {
        let mut model = ModelMetrics::default();
        let mut invalid_frames = 0u64;
        let mut verdicts = Vec::new();
        let mut receiver = ReceiverStats::default();
        for v in plan.graph().nodes() {
            let Some(node) = protocol(v) else { continue };
            invalid_frames += node.invalid_frames();
            for (r, &(m, b)) in node.model_sent().iter().enumerate() {
                if model.per_round.len() <= r {
                    model.per_round.resize(r + 1, (0, 0));
                }
                model.per_round[r].0 += m;
                model.per_round[r].1 += b;
                model.messages += m;
                model.bits += b;
            }
            if v == plan.receiver() {
                verdicts = node.receiver_verdicts().unwrap_or_default();
                receiver = node.receiver_stats().unwrap_or_default();
            }
        }
        SessionReport {
            verdicts,
            wire,
            model,
            receiver,
            invalid_frames,
            payloads,
        }
    }
}

/// A batched multi-payload transmission over a precomputed plan.
pub struct Session<'p> {
    plan: &'p SessionPlan,
    values: Vec<Value>,
}

impl<'p> Session<'p> {
    /// A session transmitting `values` (one payload slot each) over `plan`.
    pub fn new(plan: &'p SessionPlan, values: impl Into<Vec<Value>>) -> Self {
        Session {
            plan,
            values: values.into(),
        }
    }

    /// The payload values this session transmits.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Runs over the synchronous in-process scheduler.
    pub fn run<A: Adversary<SessionFrame>>(&self, adversary: A) -> SessionReport {
        let out = Runner::new(
            self.plan.graph().clone(),
            |v| SessionNode::new(self.plan, v, &self.values),
            adversary,
        )
        .run();
        SessionReport::collect(
            self.plan,
            self.values.len() as u64,
            out.metrics.clone(),
            |v| out.protocol(v).cloned(),
        )
    }

    /// Runs honestly (no corruptions) over the synchronous scheduler.
    pub fn run_honest(&self) -> SessionReport {
        self.run(SilentAdversary::new(rmt_sets::NodeSet::new()))
    }

    /// Runs over the fault-injecting `NetRunner` backend.
    pub fn run_over_net<A: Adversary<SessionFrame>>(
        &self,
        adversary: A,
        fault_plan: FaultPlan,
    ) -> SessionReport {
        let out = NetRunner::new(
            self.plan.graph().clone(),
            |v| SessionNode::new(self.plan, v, &self.values),
            adversary,
            fault_plan,
        )
        .run();
        SessionReport::collect(
            self.plan,
            self.values.len() as u64,
            out.metrics.clone(),
            |v| out.protocol(v).cloned(),
        )
    }

    /// Runs over the socket-backed `rmt-netd` backend (frames cross real
    /// TCP connections through the compact codec).
    pub fn run_over_netd<A: Adversary<SessionFrame>>(
        &self,
        adversary: A,
        chaos: &ChaosPlan,
        cfg: NetdConfig,
    ) -> std::io::Result<SessionReport> {
        let out = rmt_netd::run_session(
            self.plan.graph().clone(),
            |v| SessionNode::new(self.plan, v, &self.values),
            adversary,
            chaos,
            cfg,
        )?;
        Ok(SessionReport::collect(
            self.plan,
            self.values.len() as u64,
            out.metrics.clone(),
            |v| out.protocol(v).cloned(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt_core::gallery;
    use rmt_core::protocols::rmt_pka::run_pka;
    use rmt_graph::ViewKind;
    use rmt_sets::NodeSet;

    #[test]
    fn report_carries_both_ledgers() {
        let inst = gallery::tolerant_diamond(ViewKind::AdHoc);
        let plan = SessionPlan::build(&inst);
        let report = Session::new(&plan, vec![7, 8, 9]).run_honest();
        assert_eq!(report.verdicts, vec![Some(7), Some(8), Some(9)]);
        assert_eq!(report.payloads, 3);
        // The wire ledger bills frames; the model ledger bills the expanded
        // messages — more numerous, and (batched) costlier in total.
        assert!(report.model.messages > report.wire.honest_messages);
        assert!(report.model.bits > report.wire.honest_bits);
        assert_eq!(report.invalid_frames, 0);
    }

    #[test]
    fn batch_one_wire_metrics_match_naive_counters() {
        // At batch size 1 the *model* ledger equals the per-message run's
        // metrics exactly (the wire ledger differs: compact codec bits).
        let inst = gallery::tolerant_diamond(ViewKind::AdHoc);
        let plan = SessionPlan::build(&inst);
        let naive = run_pka(&inst, 7, SilentAdversary::new(NodeSet::new()));
        let report = Session::new(&plan, vec![7]).run_honest();
        assert_eq!(report.verdicts, vec![naive.decision(inst.receiver())]);
        assert_eq!(report.model.messages, naive.metrics.honest_messages);
        assert_eq!(report.model.bits, naive.metrics.honest_bits);
        assert_eq!(report.wire.rounds, naive.metrics.rounds);
    }

    #[test]
    fn runs_over_the_fault_free_net_backend_identically() {
        let inst = gallery::tolerant_diamond(ViewKind::AdHoc);
        let plan = SessionPlan::build(&inst);
        let sync = Session::new(&plan, vec![5, 6]).run_honest();
        let net = Session::new(&plan, vec![5, 6])
            .run_over_net(SilentAdversary::new(NodeSet::new()), FaultPlan::new(1));
        assert_eq!(net.verdicts, sync.verdicts);
        assert_eq!(net.wire, sync.wire);
        assert_eq!(net.model, sync.model);
    }

    #[test]
    fn counters_record_under_catalogued_names() {
        let inst = gallery::tolerant_diamond(ViewKind::AdHoc);
        let plan = SessionPlan::build(&inst);
        let report = Session::new(&plan, vec![7, 8]).run_honest();
        let reg = Registry::new();
        report.record_into(&reg);
        assert_eq!(reg.counter("session.payloads").get(), 2);
        assert_eq!(
            reg.counter("session.frames").get(),
            report.wire.honest_messages
        );
        assert_eq!(
            reg.counter("wire.frame_bits").get(),
            report.wire.honest_bits
        );
        assert_eq!(reg.counter("wire.model_bits").get(), report.model.bits);
        assert!(reg.counter("session.decide_cache_hits").get() >= 1);
    }
}
