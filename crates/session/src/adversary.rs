//! [`SessionAdversary`]: lifts per-message adversaries to the batched frame
//! layer, so the existing attack gallery (`rmt_core::protocols::attacks`)
//! runs against sessions unchanged.
//!
//! One inner [`Adversary<PkaPayload>`] drives each payload slot. Delivered
//! frames are expanded back to per-message envelopes and fed to each slot's
//! inner adversary (knowledge messages, being slot-independent, go to slot
//! 0); the inner adversaries' outputs are packed into per-link frames,
//! preserving each link's message order. At batch size 1 the single inner
//! adversary therefore sees and sends exactly what it would under the
//! per-message runner — which is what makes the differential gate
//! meaningful under active attacks, not just honest runs.
//!
//! Because the outer [`Transport`](rmt_sim::Transport) counts *frames*, the
//! adapter separately tallies the model-layer (per-message) adversarial
//! traffic in shared [`ModelCounters`], applying the same validity predicate
//! the transport applies to the frames: sender corrupted and edge present.
//! A packed frame groups messages of one (from, to) link, so the transport's
//! frame-level verdict coincides with the per-message verdicts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rmt_core::protocols::rmt_pka::PkaPayload;
use rmt_graph::Graph;
use rmt_sets::{NodeId, NodeSet};
use rmt_sim::{Adversary, Envelope, Payload, RoundInboxes};

use crate::codec::SessionFrame;

/// Shared model-layer counters of adversarial traffic (cloneable handle;
/// clones observe the same counts).
#[derive(Clone, Debug, Default)]
pub struct ModelCounters {
    messages: Arc<AtomicU64>,
    bits: Arc<AtomicU64>,
    rejected: Arc<AtomicU64>,
}

impl ModelCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        ModelCounters::default()
    }

    /// Model-layer adversarial messages that passed the validity predicate.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Model-layer bits of those messages (per-message bit estimate).
    pub fn bits(&self) -> u64 {
        self.bits.load(Ordering::Relaxed)
    }

    /// Model-layer messages the transport will reject (forged sender or
    /// non-edge).
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }
}

/// A frame-layer adversary driving one inner per-message adversary per slot.
pub struct SessionAdversary {
    corrupted: NodeSet,
    inner: Vec<Box<dyn Adversary<PkaPayload>>>,
    counters: ModelCounters,
}

impl SessionAdversary {
    /// Wraps one inner adversary per payload slot. All inner adversaries
    /// must corrupt the same node set.
    ///
    /// # Panics
    ///
    /// If `inner` is empty or the inner corrupted sets disagree.
    pub fn new(inner: Vec<Box<dyn Adversary<PkaPayload>>>) -> Self {
        let corrupted = inner
            .first()
            .expect("at least one slot adversary")
            .corrupted()
            .clone();
        assert!(
            inner.iter().all(|a| *a.corrupted() == corrupted),
            "slot adversaries must corrupt the same set"
        );
        SessionAdversary {
            corrupted,
            inner,
            counters: ModelCounters::new(),
        }
    }

    /// A handle onto the model-layer counters (readable after the run).
    pub fn counters(&self) -> ModelCounters {
        self.counters.clone()
    }

    /// Packs the inner adversaries' per-message sends into per-link frames,
    /// tallying the model-layer counters with the transport's predicate.
    ///
    /// Knowledge messages from slots other than 0 are dropped: knowledge is
    /// slot-independent and flows once per session, mirroring the honest
    /// engine's amortization (slot 0's adversary retains full control of
    /// the session's knowledge traffic).
    fn pack_outputs(
        &self,
        graph: &Graph,
        per_slot: Vec<Vec<Envelope<PkaPayload>>>,
    ) -> Vec<Envelope<SessionFrame>> {
        type LinkBatch = ((NodeId, NodeId), Vec<(u32, PkaPayload)>);
        let mut links: Vec<LinkBatch> = Vec::new();
        for (slot, envs) in per_slot.into_iter().enumerate() {
            for env in envs {
                if slot > 0 && matches!(env.payload, PkaPayload::Knowledge { .. }) {
                    continue;
                }
                if self.corrupted.contains(env.from) && graph.has_edge(env.from, env.to) {
                    self.counters.messages.fetch_add(1, Ordering::Relaxed);
                    self.counters
                        .bits
                        .fetch_add(env.payload.encoded_bits() as u64, Ordering::Relaxed);
                } else {
                    self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                }
                let key = (env.from, env.to);
                match links.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, items)) => items.push((slot as u32, env.payload)),
                    None => links.push((key, vec![(slot as u32, env.payload)])),
                }
            }
        }
        links
            .into_iter()
            .map(|((from, to), items)| Envelope::new(from, to, SessionFrame::pack(&items)))
            .collect()
    }

    /// Expands one round's delivered frames into per-slot inboxes for the
    /// inner adversaries (frames that fail to expand are skipped).
    fn expand_inboxes(
        &self,
        graph: &Graph,
        delivered: &RoundInboxes<SessionFrame>,
    ) -> Vec<RoundInboxes<PkaPayload>> {
        let size = graph.nodes().last().map_or(0, |v| v.index() + 1);
        let mut per_slot: Vec<RoundInboxes<PkaPayload>> = (0..self.inner.len())
            .map(|_| RoundInboxes::new(size))
            .collect();
        for v in graph.nodes() {
            for env in delivered.inbox(v) {
                let Ok(msgs) = env.payload.expand() else {
                    continue;
                };
                for (slot, payload) in msgs {
                    if let Some(inbox) = per_slot.get_mut(slot as usize) {
                        inbox.push(Envelope::new(env.from, env.to, payload));
                    }
                }
            }
        }
        per_slot
    }
}

impl Adversary<SessionFrame> for SessionAdversary {
    fn corrupted(&self) -> &NodeSet {
        &self.corrupted
    }

    fn start(&mut self, graph: &Graph) -> Vec<Envelope<SessionFrame>> {
        let per_slot: Vec<_> = self.inner.iter_mut().map(|a| a.start(graph)).collect();
        self.pack_outputs(graph, per_slot)
    }

    fn on_round(
        &mut self,
        round: u32,
        graph: &Graph,
        delivered: &RoundInboxes<SessionFrame>,
    ) -> Vec<Envelope<SessionFrame>> {
        let inboxes = self.expand_inboxes(graph, delivered);
        let per_slot: Vec<_> = self
            .inner
            .iter_mut()
            .zip(&inboxes)
            .map(|(a, inbox)| a.on_round(round, graph, inbox))
            .collect();
        self.pack_outputs(graph, per_slot)
    }

    fn is_quiescent(&self) -> bool {
        self.inner.iter().all(|a| a.is_quiescent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt_sim::{FnAdversary, SilentAdversary};

    fn set(ids: &[u32]) -> NodeSet {
        ids.iter().copied().collect()
    }

    fn line3() -> Graph {
        let mut g = Graph::new();
        g.add_edge(0.into(), 1.into());
        g.add_edge(1.into(), 2.into());
        g
    }

    fn value_env(from: u32, to: u32, value: u64) -> Envelope<PkaPayload> {
        Envelope::new(
            from.into(),
            to.into(),
            PkaPayload::DealerValue {
                value,
                trail: vec![from.into()],
            },
        )
    }

    #[test]
    fn packs_per_link_frames_and_counts_model_traffic() {
        let g = line3();
        let mk = |value: u64| -> Box<dyn Adversary<PkaPayload>> {
            Box::new(FnAdversary::new(set(&[1]), move |round, _, _| {
                if round == 0 {
                    vec![
                        value_env(1, 0, value),
                        value_env(1, 2, value),
                        value_env(1, 9, value), // non-edge: model-rejected
                    ]
                } else {
                    vec![]
                }
            }))
        };
        let mut adv = SessionAdversary::new(vec![mk(7), mk(8)]);
        let counters = adv.counters();
        let out = adv.start(&g);
        // Two links (1→0, 1→2), each carrying both slots in one frame.
        assert_eq!(out.len(), 3); // 1→0, 1→2, 1→9 (transport rejects the last)
        let to0 = out.iter().find(|e| e.to == 0.into()).unwrap();
        let expanded = to0.payload.expand().unwrap();
        assert_eq!(expanded.len(), 2);
        assert_eq!(expanded[0].0, 0);
        assert_eq!(expanded[1].0, 1);
        assert_eq!(counters.messages(), 4);
        assert_eq!(counters.rejected(), 2);
        assert!(counters.bits() > 0);
    }

    #[test]
    fn knowledge_from_secondary_slots_is_dropped() {
        let g = line3();
        let knowledge = |from: u32| -> Envelope<PkaPayload> {
            Envelope::new(
                from.into(),
                2.into(),
                PkaPayload::Knowledge {
                    node: from.into(),
                    view: line3(),
                    structure: rmt_adversary::AdversaryStructure::trivial(),
                    trail: vec![from.into()],
                },
            )
        };
        let mk = || -> Box<dyn Adversary<PkaPayload>> {
            Box::new(FnAdversary::new(set(&[1]), move |round, _, _| {
                if round == 0 {
                    vec![knowledge(1)]
                } else {
                    vec![]
                }
            }))
        };
        let mut adv = SessionAdversary::new(vec![mk(), mk()]);
        let out = adv.start(&g);
        assert_eq!(out.len(), 1);
        let expanded = out[0].payload.expand().unwrap();
        assert_eq!(expanded.len(), 1, "slot 1's knowledge dropped");
    }

    #[test]
    fn quiescence_requires_all_slots() {
        let silent =
            || -> Box<dyn Adversary<PkaPayload>> { Box::new(SilentAdversary::new(set(&[1]))) };
        let adv = SessionAdversary::new(vec![silent(), silent()]);
        assert!(adv.is_quiescent());
    }

    #[test]
    #[should_panic(expected = "same set")]
    fn mismatched_corruption_sets_panic() {
        let a: Box<dyn Adversary<PkaPayload>> = Box::new(SilentAdversary::new(set(&[1])));
        let b: Box<dyn Adversary<PkaPayload>> = Box::new(SilentAdversary::new(set(&[2])));
        let _ = SessionAdversary::new(vec![a, b]);
    }
}
