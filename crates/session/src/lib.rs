//! Batched multi-payload sessions over a compact wire codec.
//!
//! The per-message RMT-PKA protocol pays its full routing cost — trails,
//! knowledge announcements, per-node state derivation — *per transmitted
//! value*. Real deployments transmit streams, and almost all of that cost
//! is payload-independent. This crate amortizes it:
//!
//! * [`SessionPlan`] precomputes, once per (instance, dealer, receiver)
//!   triple, everything the per-message protocol re-derives on every send:
//!   per-node views and local structures (the knowledge announcements) and
//!   the receiver's validation state.
//! * [`SessionNode`] (built from the plan) runs the protocol for N payload
//!   slots at once: knowledge flows once per session, and all same-round
//!   messages on a link coalesce into one [`SessionFrame`].
//! * [`SessionFrame`] is the compact wire codec: varint ids, a front-coded
//!   per-frame trail table that value runs and knowledge entries reference
//!   by index, and the shared `rmt_sim::framing` length prefix. It
//!   round-trips losslessly to the per-message representation
//!   ([`SessionFrame::expand`]/[`SessionFrame::pack`]), so the per-message
//!   safety argument transfers.
//! * [`Session`] drives a whole transmission over any of the three
//!   backends — the synchronous `Runner`, the fault-injecting `NetRunner`,
//!   and the socket daemon `rmt-netd` — and reports wire-layer and
//!   model-layer cost side by side ([`SessionReport`]).
//! * [`SessionAdversary`] lifts the per-message attack gallery to the frame
//!   layer, one inner adversary per slot.
//!
//! At batch size 1 a session is verdict-identical to — and model-counter
//! identical with — the per-message runner (enforced by the differential
//! gate in `tests/differential.rs`); at batch size B the wire cost per
//! payload drops by the amortization factors experiment E16 measures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod codec;
pub mod engine;
pub mod plan;
pub mod session;
pub mod varint;

pub use adversary::{ModelCounters, SessionAdversary};
pub use codec::{SessionEntry, SessionFrame};
pub use engine::{ReceiverStats, SessionNode};
pub use plan::{NodeKnowledge, SessionPlan};
pub use session::{ModelMetrics, Session, SessionReport};
