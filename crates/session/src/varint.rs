//! LEB128 variable-length integers — the primitive of the compact codec.
//!
//! Node ids, trail indices, slot numbers and collection lengths are all
//! small in practice (a few bits), so fixed 4-byte fields waste most of the
//! wire. LEB128 spends one byte per 7 payload bits: ids below 128 cost one
//! byte instead of four. Decoding is bounds- and overflow-checked and never
//! panics on adversarial input.

/// Appends the LEB128 encoding of `x` to `out`.
pub fn write_u64(mut x: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends the LEB128 encoding of `x` to `out`.
pub fn write_u32(x: u32, out: &mut Vec<u8>) {
    write_u64(u64::from(x), out);
}

/// The number of bytes [`write_u64`] would append for `x`.
pub fn encoded_len(x: u64) -> usize {
    (64 - x.leading_zeros() as usize).max(1).div_ceil(7)
}

/// Decodes one LEB128 `u64` from `bytes` starting at `*pos`, advancing
/// `*pos` past it. Truncated or overlong input yields a descriptive `Err`.
pub fn read_u64(bytes: &[u8], pos: &mut usize, what: &str) -> Result<u64, String> {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes
            .get(*pos)
            .ok_or_else(|| format!("truncated varint: {what} ends at offset {pos}", pos = *pos))?;
        *pos += 1;
        let payload = u64::from(byte & 0x7f);
        if shift == 63 && payload > 1 {
            return Err(format!("overlong varint: {what} overflows u64"));
        }
        if shift > 63 {
            return Err(format!("overlong varint: {what} exceeds 10 bytes"));
        }
        x |= payload << shift;
        if byte & 0x80 == 0 {
            return Ok(x);
        }
        shift += 7;
    }
}

/// [`read_u64`] restricted to the `u32` range (node ids, indices, lengths).
pub fn read_u32(bytes: &[u8], pos: &mut usize, what: &str) -> Result<u32, String> {
    let x = read_u64(bytes, pos, what)?;
    u32::try_from(x).map_err(|_| format!("varint out of range: {what} = {x} exceeds u32"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_across_the_range() {
        for x in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut out = Vec::new();
            write_u64(x, &mut out);
            assert_eq!(out.len(), encoded_len(x), "len of {x}");
            let mut pos = 0;
            assert_eq!(read_u64(&out, &mut pos, "x"), Ok(x));
            assert_eq!(pos, out.len());
        }
    }

    #[test]
    fn small_ids_cost_one_byte() {
        let mut out = Vec::new();
        write_u32(19, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn truncation_and_overflow_error_cleanly() {
        // Continuation bit set but input ends.
        let mut pos = 0;
        assert!(read_u64(&[0x80], &mut pos, "t").is_err());
        // 11 continuation bytes overflow the shift.
        let mut pos = 0;
        assert!(read_u64(&[0x80; 11], &mut pos, "t").is_err());
        // 10 bytes whose top payload exceeds the u64 range.
        let mut bytes = vec![0xff; 9];
        bytes.push(0x7f);
        let mut pos = 0;
        assert!(read_u64(&bytes, &mut pos, "t").is_err());
        // u32 range check.
        let mut out = Vec::new();
        write_u64(u64::from(u32::MAX) + 1, &mut out);
        let mut pos = 0;
        assert!(read_u32(&out, &mut pos, "t").is_err());
    }
}
