//! The batched session engine: [`SessionNode`] runs RMT-PKA for N payload
//! slots at once, exchanging [`SessionFrame`]s instead of per-message
//! payloads.
//!
//! Semantics are defined by expansion: a node receiving a frame behaves
//! exactly as the per-message protocol would on the frame's
//! [`expand`](SessionFrame::expand)ed logical messages, in order, and its
//! emissions are the per-recipient [`pack`](SessionFrame::pack) of what the
//! per-message protocol would have sent. At batch size 1 this makes a
//! session verdict- and (model-)counter-identical to the per-message
//! [`Runner`](rmt_sim::Runner) — the differential gate in
//! `tests/differential.rs` enforces it on the attack galleries.
//!
//! Three amortizations make bigger batches cheaper per payload:
//!
//! * **knowledge once** — type-2 messages are payload-independent and flow
//!   once per session, not once per payload;
//! * **trail sharing** — a frame's value runs reference one trail-table
//!   entry however many slots ride it;
//! * **decide caching** — the receiver's exponential decision search runs
//!   once per *equivalence class* of slots: undecided slots share their
//!   claim sets by construction, so slots whose received value/trail sets
//!   are equal up to value renaming must decide alike (the renaming maps
//!   sorted value positions; `decide` treats values opaquely except for
//!   their sorted iteration order, so positions are preserved).

use std::collections::{BTreeMap, BTreeSet};

use rmt_core::protocols::pka_decision::{DecisionConfig, ReceiverState};
use rmt_core::protocols::rmt_pka::PkaPayload;
use rmt_core::Value;
use rmt_sets::NodeId;
use rmt_sim::{Envelope, NodeContext, Protocol};

use crate::codec::SessionFrame;
use crate::plan::{NodeKnowledge, SessionPlan};

/// Receiver-side counters of one session, for reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReceiverStats {
    /// Decide calls answered from an equivalent slot's result this round.
    pub decide_cache_hits: u64,
    /// Decide calls actually executed (group representatives).
    pub decide_cache_misses: u64,
    /// Claim selections examined, summed over all slots.
    pub selections_examined: u64,
    /// `true` if any slot's search ran into a budget (abstained
    /// conservatively).
    pub truncated: bool,
    /// Malformed claims dropped (maximum over slots — undecided slots see
    /// the same claim stream, so the longest-running slot saw them all).
    pub malformed_claims: u64,
}

/// One payload slot of the receiver.
#[derive(Clone, Debug)]
struct Slot {
    state: ReceiverState,
    decision: Option<Value>,
    /// Mirror of the slot's ingested type-1 messages: value ↦ stored D–R
    /// paths (trail ‖ me), exactly as `ReceiverState` keeps them. The
    /// decide cache compares these across slots (values renamed away).
    mirror: BTreeMap<Value, BTreeSet<Vec<NodeId>>>,
}

/// The receiver's session state: one `ReceiverState` per slot plus the
/// cross-slot decide cache.
#[derive(Clone, Debug)]
struct ReceiverRole {
    cfg: DecisionConfig,
    slots: Vec<Slot>,
    cache_hits: u64,
    cache_misses: u64,
}

#[derive(Clone, Debug)]
enum Role {
    Dealer {
        values: Vec<Value>,
        knowledge: NodeKnowledge,
    },
    Relay {
        knowledge: NodeKnowledge,
    },
    Receiver(Box<ReceiverRole>),
}

/// One player of a batched session (a [`Protocol`] over [`SessionFrame`]s).
#[derive(Clone, Debug)]
pub struct SessionNode {
    id: NodeId,
    dealer: NodeId,
    role: Role,
    /// Model-layer accounting: per-round `(messages, bits)` of the
    /// *expanded* per-message traffic this node's frames carry, using the
    /// per-message protocol's bit estimate. Index 0 = initial sends.
    model_sent: Vec<(u64, u64)>,
    /// Frames that failed to expand (possible only for adversarial
    /// hand-built frames; honest and decoded frames always expand).
    invalid_frames: u64,
}

impl SessionNode {
    /// Builds node `v` of a session transmitting `values` under `plan`.
    pub fn new(plan: &SessionPlan, v: NodeId, values: &[Value]) -> Self {
        let knowledge = plan.knowledge(v).clone();
        let role = if v == plan.dealer() {
            Role::Dealer {
                values: values.to_vec(),
                knowledge,
            }
        } else if v == plan.receiver() {
            let slot = Slot {
                state: ReceiverState::new(
                    v,
                    plan.dealer(),
                    knowledge.view.clone(),
                    knowledge.structure.clone(),
                ),
                decision: None,
                mirror: BTreeMap::new(),
            };
            Role::Receiver(Box::new(ReceiverRole {
                cfg: *plan.decision_config(),
                slots: vec![slot; values.len()],
                cache_hits: 0,
                cache_misses: 0,
            }))
        } else {
            Role::Relay { knowledge }
        };
        SessionNode {
            id: v,
            dealer: plan.dealer(),
            role,
            model_sent: Vec::new(),
            invalid_frames: 0,
        }
    }

    /// The receiver's per-slot verdicts (receiver node only).
    pub fn receiver_verdicts(&self) -> Option<Vec<Option<Value>>> {
        match &self.role {
            Role::Receiver(r) => Some(r.slots.iter().map(|s| s.decision).collect()),
            _ => None,
        }
    }

    /// The receiver's search counters (receiver node only).
    pub fn receiver_stats(&self) -> Option<ReceiverStats> {
        match &self.role {
            Role::Receiver(r) => Some(ReceiverStats {
                decide_cache_hits: r.cache_hits,
                decide_cache_misses: r.cache_misses,
                selections_examined: r.slots.iter().map(|s| s.state.selections_examined).sum(),
                truncated: r.slots.iter().any(|s| s.state.truncated),
                malformed_claims: r
                    .slots
                    .iter()
                    .map(|s| s.state.malformed_claims)
                    .max()
                    .unwrap_or(0),
            }),
            _ => None,
        }
    }

    /// Per-round model-layer `(messages, bits)` this node sent.
    pub fn model_sent(&self) -> &[(u64, u64)] {
        &self.model_sent
    }

    /// Frames this node received that failed to expand.
    pub fn invalid_frames(&self) -> u64 {
        self.invalid_frames
    }

    /// Trail validation of a logical message, identical to the per-message
    /// protocol: `tail(p) = sender` and `self ∉ p`.
    fn valid_arrival(&self, from: NodeId, payload: &PkaPayload) -> bool {
        let trail = payload.trail();
        trail.last() == Some(&from) && !trail.contains(&self.id)
    }

    fn tally(&mut self, round: u32, frame: &SessionFrame, copies: u64) {
        let (msgs, bits) = frame.model_cost();
        let r = round as usize;
        if self.model_sent.len() <= r {
            self.model_sent.resize(r + 1, (0, 0));
        }
        self.model_sent[r].0 += msgs * copies;
        self.model_sent[r].1 += bits * copies;
    }
}

/// Position-wise pathset equality, value names renamed away: slot A with
/// values {7 ↦ P, 9 ↦ Q} matches slot B with {3 ↦ P, 5 ↦ Q}.
fn mirrors_equal(
    a: &BTreeMap<Value, BTreeSet<Vec<NodeId>>>,
    b: &BTreeMap<Value, BTreeSet<Vec<NodeId>>>,
) -> bool {
    a.len() == b.len() && a.values().zip(b.values()).all(|(x, y)| x == y)
}

impl ReceiverRole {
    /// Runs the decision subroutine over the undecided slots, executing the
    /// exponential search once per renamed-mirror equivalence class.
    ///
    /// Soundness: all undecided slots have ingested the same claim stream
    /// (claims are slot-independent and fed to every undecided slot), and
    /// `decide` is a pure function of (claims, type-1 paths, budgets) apart
    /// from sticky effort counters. Its only value-dependence is the sorted
    /// iteration order of the type-1 map, so a decision at sorted position
    /// `k` of the representative maps to position `k` of each member.
    fn decide_pass(&mut self) {
        // (representative slot, its decision as a sorted-value position).
        let mut reps: Vec<(usize, Option<usize>)> = Vec::new();
        for i in 0..self.slots.len() {
            if self.slots[i].decision.is_some() {
                continue;
            }
            let cached = reps.iter().find_map(|&(rep, renamed)| {
                mirrors_equal(&self.slots[rep].mirror, &self.slots[i].mirror).then_some(renamed)
            });
            match cached {
                Some(renamed) => {
                    self.cache_hits += 1;
                    if let Some(k) = renamed {
                        let value = *self.slots[i]
                            .mirror
                            .keys()
                            .nth(k)
                            .expect("renamed position within mirror");
                        self.slots[i].decision = Some(value);
                    }
                }
                None => {
                    self.cache_misses += 1;
                    let slot = &mut self.slots[i];
                    let decided = slot.state.decide(&self.cfg);
                    let renamed = decided.map(|x| {
                        slot.mirror
                            .keys()
                            .position(|&v| v == x)
                            .expect("decided value was ingested")
                    });
                    slot.decision = decided;
                    reps.push((i, renamed));
                }
            }
        }
    }
}

impl Protocol for SessionNode {
    type Payload = SessionFrame;
    type Decision = Vec<Option<Value>>;

    fn start(&mut self, ctx: &NodeContext) -> Vec<(NodeId, SessionFrame)> {
        let frame = match &self.role {
            Role::Dealer { values, knowledge } => {
                // Per neighbour: every slot's value over the trail [D], then
                // the dealer's knowledge — the batched form of the
                // per-message dealer's [value, knowledge] send order.
                let mut items: Vec<(u32, PkaPayload)> = values
                    .iter()
                    .enumerate()
                    .map(|(slot, &value)| {
                        (
                            slot as u32,
                            PkaPayload::DealerValue {
                                value,
                                trail: vec![self.id],
                            },
                        )
                    })
                    .collect();
                items.push((
                    0,
                    PkaPayload::Knowledge {
                        node: self.id,
                        view: knowledge.view.clone(),
                        structure: knowledge.structure.clone(),
                        trail: vec![self.id],
                    },
                ));
                Some(SessionFrame::pack(&items))
            }
            Role::Relay { knowledge } => Some(SessionFrame::pack(&[(
                0,
                PkaPayload::Knowledge {
                    node: self.id,
                    view: knowledge.view.clone(),
                    structure: knowledge.structure.clone(),
                    trail: vec![self.id],
                },
            )])),
            // The receiver only listens.
            Role::Receiver(_) => None,
        };
        match frame {
            Some(frame) => {
                self.tally(ctx.round, &frame, ctx.neighbors.len() as u64);
                ctx.neighbors.iter().map(|n| (n, frame.clone())).collect()
            }
            None => Vec::new(),
        }
    }

    fn on_round(
        &mut self,
        ctx: &NodeContext,
        inbox: &[Envelope<SessionFrame>],
    ) -> Vec<(NodeId, SessionFrame)> {
        match &mut self.role {
            Role::Dealer { .. } => Vec::new(), // terminated after start
            Role::Relay { .. } => {
                // Forward every valid logical message with the trail
                // extended, re-batched into one frame per neighbour.
                let mut forwarded: Vec<(u32, PkaPayload)> = Vec::new();
                for env in inbox {
                    let Ok(msgs) = env.payload.expand() else {
                        self.invalid_frames += 1;
                        continue;
                    };
                    for (slot, payload) in msgs {
                        if self.valid_arrival(env.from, &payload) {
                            let mut fwd = payload;
                            match &mut fwd {
                                PkaPayload::DealerValue { trail, .. }
                                | PkaPayload::Knowledge { trail, .. } => trail.push(self.id),
                            }
                            forwarded.push((slot, fwd));
                        }
                    }
                }
                if forwarded.is_empty() {
                    return Vec::new();
                }
                let frame = SessionFrame::pack(&forwarded);
                self.tally(ctx.round, &frame, ctx.neighbors.len() as u64);
                ctx.neighbors.iter().map(|n| (n, frame.clone())).collect()
            }
            Role::Receiver(receiver) => {
                if receiver.slots.iter().all(|s| s.decision.is_some()) {
                    return Vec::new(); // all slots delivered; terminated
                }
                let me = self.id;
                let dealer = self.dealer;
                let mut changed = false;
                for env in inbox {
                    let Ok(msgs) = env.payload.expand() else {
                        self.invalid_frames += 1;
                        continue;
                    };
                    for (slot, payload) in msgs {
                        let trail_ok = payload.trail().last() == Some(&env.from)
                            && !payload.trail().contains(&me);
                        if !trail_ok {
                            continue;
                        }
                        match payload {
                            PkaPayload::DealerValue { value, trail } => {
                                let Some(s) = receiver.slots.get_mut(slot as usize) else {
                                    continue; // out-of-range slot: ignorable noise
                                };
                                if s.decision.is_some() {
                                    continue;
                                }
                                // Dealer propagation rule: the authenticated
                                // channel from the dealer is definitive.
                                if env.from == dealer && trail.as_slice() == [dealer] {
                                    s.decision = Some(value);
                                    continue;
                                }
                                s.state.ingest_value(value, &trail);
                                let mut path = trail;
                                path.push(me);
                                s.mirror.entry(value).or_default().insert(path);
                                changed = true;
                            }
                            PkaPayload::Knowledge {
                                node,
                                view,
                                structure,
                                ..
                            } => {
                                // Knowledge is slot-independent: every
                                // undecided slot ingests it (keeping their
                                // claim sets identical — the cache invariant).
                                for s in &mut receiver.slots {
                                    if s.decision.is_none() {
                                        s.state.ingest_claim(node, view.clone(), structure.clone());
                                    }
                                }
                                changed = true;
                            }
                        }
                    }
                }
                if changed {
                    receiver.decide_pass();
                }
                Vec::new()
            }
        }
    }

    fn decision(&self) -> Option<Vec<Option<Value>>> {
        match &self.role {
            Role::Dealer { values, .. } => Some(values.iter().map(|&v| Some(v)).collect()),
            Role::Relay { .. } => None,
            Role::Receiver(r) => Some(r.slots.iter().map(|s| s.decision).collect()),
        }
    }

    fn is_terminated(&self) -> bool {
        match &self.role {
            Role::Dealer { .. } | Role::Relay { .. } => true,
            Role::Receiver(r) => r.slots.iter().all(|s| s.decision.is_some()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt_core::gallery;
    use rmt_core::protocols::rmt_pka::run_pka;
    use rmt_graph::ViewKind;
    use rmt_sets::NodeSet;
    use rmt_sim::{Runner, SilentAdversary};

    fn set(ids: &[u32]) -> NodeSet {
        ids.iter().copied().collect()
    }

    fn run_session_runner(
        plan: &SessionPlan,
        values: &[Value],
        corrupted: NodeSet,
    ) -> rmt_sim::RunOutcome<SessionNode> {
        Runner::new(
            plan.graph().clone(),
            |v| SessionNode::new(plan, v, values),
            SilentAdversary::new(corrupted),
        )
        .run()
    }

    #[test]
    fn batched_session_delivers_every_slot() {
        let inst = gallery::tolerant_diamond(ViewKind::AdHoc);
        let plan = SessionPlan::build(&inst);
        let values = [7, 8, 9, 1000];
        let out = run_session_runner(&plan, &values, NodeSet::new());
        let verdicts = out
            .protocol(inst.receiver())
            .and_then(SessionNode::receiver_verdicts)
            .expect("receiver present");
        assert_eq!(verdicts, vec![Some(7), Some(8), Some(9), Some(1000)]);
    }

    #[test]
    fn batch_one_matches_per_message_protocol_exactly() {
        let inst = gallery::tolerant_diamond(ViewKind::AdHoc);
        let plan = SessionPlan::build(&inst);
        for corrupted in [NodeSet::new(), set(&[1])] {
            let naive = run_pka(&inst, 7, SilentAdversary::new(corrupted.clone()));
            let session = run_session_runner(&plan, &[7], corrupted.clone());
            let verdicts = session
                .protocol(inst.receiver())
                .and_then(SessionNode::receiver_verdicts)
                .unwrap();
            assert_eq!(
                verdicts,
                vec![naive.decision(inst.receiver())],
                "corrupted {corrupted:?}"
            );
            // Model-layer accounting equals the per-message run's counters.
            let mut per_round: Vec<(u64, u64)> = Vec::new();
            for v in plan.graph().nodes() {
                if let Some(node) = session.protocol(v) {
                    for (r, &(m, b)) in node.model_sent().iter().enumerate() {
                        if per_round.len() <= r {
                            per_round.resize(r + 1, (0, 0));
                        }
                        per_round[r].0 += m;
                        per_round[r].1 += b;
                    }
                }
            }
            let msgs: u64 = per_round.iter().map(|&(m, _)| m).sum();
            let bits: u64 = per_round.iter().map(|&(_, b)| b).sum();
            assert_eq!(msgs, naive.metrics.honest_messages, "messages");
            assert_eq!(bits, naive.metrics.honest_bits, "bits");
            let naive_per_round: Vec<u64> = naive.metrics.honest_messages_per_round.clone();
            for (r, &(m, _)) in per_round.iter().enumerate() {
                assert_eq!(m, naive_per_round.get(r).copied().unwrap_or(0), "round {r}");
            }
        }
    }

    #[test]
    fn dealer_rule_decides_adjacent_receiver_per_slot() {
        // Diamond plus a direct D–R edge: every slot decides via the
        // authenticated dealer channel even with both relays corrupted.
        let mut g = rmt_graph::Graph::new();
        g.add_edge(0.into(), 1.into());
        g.add_edge(0.into(), 2.into());
        g.add_edge(1.into(), 3.into());
        g.add_edge(2.into(), 3.into());
        g.add_edge(0.into(), 3.into());
        let z = rmt_adversary::AdversaryStructure::from_sets([set(&[1, 2])]);
        let inst =
            rmt_core::Instance::new(g, z, ViewKind::AdHoc, 0.into(), 3.into()).expect("instance");
        let plan = SessionPlan::build(&inst);
        let out = run_session_runner(&plan, &[5, 6], set(&[1, 2]));
        let verdicts = out
            .protocol(3.into())
            .and_then(SessionNode::receiver_verdicts)
            .unwrap();
        assert_eq!(verdicts, vec![Some(5), Some(6)]);
    }

    #[test]
    fn decide_cache_collapses_equivalent_slots() {
        let inst = gallery::tolerant_diamond(ViewKind::AdHoc);
        let plan = SessionPlan::build(&inst);
        let values: Vec<Value> = (0..16).collect();
        let out = run_session_runner(&plan, &values, NodeSet::new());
        let stats = out
            .protocol(inst.receiver())
            .and_then(SessionNode::receiver_stats)
            .unwrap();
        // All 16 slots receive the same trails (values renamed), so each
        // decide round runs one real search and serves 15 from the cache.
        assert!(stats.decide_cache_hits >= 15, "stats: {stats:?}");
        assert!(stats.decide_cache_misses >= 1);
        let verdicts = out
            .protocol(inst.receiver())
            .and_then(SessionNode::receiver_verdicts)
            .unwrap();
        assert_eq!(
            verdicts,
            values.iter().map(|&v| Some(v)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn wire_bits_amortize_with_batch_size() {
        let inst = gallery::tolerant_diamond(ViewKind::AdHoc);
        let plan = SessionPlan::build(&inst);
        let one = run_session_runner(&plan, &[7], NodeSet::new());
        let values: Vec<Value> = (0..64).collect();
        let many = run_session_runner(&plan, &values, NodeSet::new());
        let per_payload_one = one.metrics.honest_bits as f64;
        let per_payload_many = many.metrics.honest_bits as f64 / 64.0;
        assert!(
            per_payload_many * 5.0 < per_payload_one,
            "batch 64: {per_payload_many} bits/payload vs batch 1: {per_payload_one}"
        );
    }
}
