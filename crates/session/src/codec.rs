//! The compact batch codec: one [`SessionFrame`] per link per round.
//!
//! A frame carries everything one node sends one neighbour in one round:
//!
//! * a **trail table** — every distinct propagation trail referenced by the
//!   frame, front-coded (each trail stores only the suffix it does not
//!   share with its predecessor) with varint node ids;
//! * **entries** referencing trails by table index: a [`Values`] entry
//!   ships a contiguous run of payload slots over one shared trail (the
//!   batched form of type-1 dealer-value messages), a [`Knowledge`] entry
//!   is one type-2 message.
//!
//! The codec is *stateless per frame*: a frame decodes alone, with no
//! session-global template registry to keep consistent across drops,
//! reorders or reconnects — which is what lets the same bytes run over the
//! synchronous `Runner`, the fault-injecting `NetRunner` and the socket
//! backend `rmt-netd` unchanged. Compression comes from three sources:
//! batching (one trail serves every payload slot), front-coding (sibling
//! trails share long prefixes), and varints (small ids cost one byte).
//!
//! [`expand`](SessionFrame::expand) losslessly recovers the per-message
//! [`PkaPayload`] representation, so the safety arguments and the coupled
//! run attacks of the per-message protocol transfer unchanged — the
//! differential gate (`tests/differential.rs`) and the proptest round-trip
//! suite (`tests/codec_props.rs`) enforce exactly that.
//!
//! [`Values`]: SessionEntry::Values
//! [`Knowledge`]: SessionEntry::Knowledge

use std::collections::HashMap;

use rmt_adversary::AdversaryStructure;
use rmt_core::protocols::rmt_pka::PkaPayload;
use rmt_core::Value;
use rmt_graph::Graph;
use rmt_sets::{NodeId, NodeSet};
use rmt_sim::framing;
use rmt_sim::{Payload, WirePayload};

use crate::varint;

/// Wire tag for [`SessionEntry::Values`].
const TAG_VALUES: u8 = 0;
/// Wire tag for [`SessionEntry::Knowledge`].
const TAG_KNOWLEDGE: u8 = 1;

/// One batched item of a [`SessionFrame`].
#[derive(Clone, Debug, PartialEq)]
pub enum SessionEntry {
    /// A run of type-1 dealer-value messages for consecutive payload slots
    /// `first_slot .. first_slot + values.len()`, all sharing one trail.
    Values {
        /// Index into the frame's trail table.
        trail: u32,
        /// The payload slot of `values[0]`.
        first_slot: u32,
        /// One claimed dealer value per consecutive slot.
        values: Vec<Value>,
    },
    /// A type-2 knowledge message (payload-independent: sent once per
    /// session, not once per payload — the main amortization win).
    Knowledge {
        /// The node the claim is about.
        node: NodeId,
        /// The claimed view γ(node).
        view: Graph,
        /// The claimed local structure 𝒵_node.
        structure: AdversaryStructure,
        /// Index into the frame's trail table.
        trail: u32,
    },
}

/// Everything one node sends one neighbour in one round.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionFrame {
    /// The trail table: every distinct propagation trail this frame uses.
    pub trails: Vec<Vec<NodeId>>,
    /// The batched messages, referencing trails by index.
    pub entries: Vec<SessionEntry>,
}

impl SessionFrame {
    /// An empty frame.
    pub fn new() -> Self {
        SessionFrame {
            trails: Vec::new(),
            entries: Vec::new(),
        }
    }

    /// `true` if the frame carries no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Packs per-message `(slot, payload)` logical messages into one frame,
    /// interning trails and coalescing consecutive same-trail value runs.
    ///
    /// `Knowledge` payloads are slot-independent; their slot component is
    /// ignored (and comes back as `0` from [`expand`](Self::expand)).
    pub fn pack(items: &[(u32, PkaPayload)]) -> SessionFrame {
        let mut frame = SessionFrame::new();
        let mut interned: HashMap<Vec<NodeId>, u32> = HashMap::new();
        for (slot, payload) in items {
            let trail_id = {
                let trail = payload.trail();
                match interned.get(trail) {
                    Some(&id) => id,
                    None => {
                        let id = frame.trails.len() as u32;
                        interned.insert(trail.to_vec(), id);
                        frame.trails.push(trail.to_vec());
                        id
                    }
                }
            };
            match payload {
                PkaPayload::DealerValue { value, .. } => {
                    // Extend the previous run when the slot is consecutive
                    // and the trail identical.
                    if let Some(SessionEntry::Values {
                        trail,
                        first_slot,
                        values,
                    }) = frame.entries.last_mut()
                    {
                        if *trail == trail_id
                            && *first_slot as u64 + values.len() as u64 == u64::from(*slot)
                        {
                            values.push(*value);
                            continue;
                        }
                    }
                    frame.entries.push(SessionEntry::Values {
                        trail: trail_id,
                        first_slot: *slot,
                        values: vec![*value],
                    });
                }
                PkaPayload::Knowledge {
                    node,
                    view,
                    structure,
                    ..
                } => {
                    frame.entries.push(SessionEntry::Knowledge {
                        node: *node,
                        view: view.clone(),
                        structure: structure.clone(),
                        trail: trail_id,
                    });
                }
            }
        }
        frame
    }

    /// Expands the frame back to per-message `(slot, payload)` logical
    /// messages, in entry order — the exact multiset (and order) the
    /// per-message protocol would have put on this link. `Knowledge`
    /// messages carry slot `0` (they are payload-independent).
    ///
    /// Fails only when an entry references a trail index outside the table
    /// (impossible for decoded frames — the decoder validates indices — but
    /// hand-built frames are checked rather than trusted).
    pub fn expand(&self) -> Result<Vec<(u32, PkaPayload)>, String> {
        let mut out = Vec::new();
        for entry in &self.entries {
            match entry {
                SessionEntry::Values {
                    trail,
                    first_slot,
                    values,
                } => {
                    let trail = self
                        .trails
                        .get(*trail as usize)
                        .ok_or_else(|| format!("entry references missing trail {trail}"))?;
                    for (i, value) in values.iter().enumerate() {
                        out.push((
                            first_slot + i as u32,
                            PkaPayload::DealerValue {
                                value: *value,
                                trail: trail.clone(),
                            },
                        ));
                    }
                }
                SessionEntry::Knowledge {
                    node,
                    view,
                    structure,
                    trail,
                } => {
                    let trail = self
                        .trails
                        .get(*trail as usize)
                        .ok_or_else(|| format!("entry references missing trail {trail}"))?;
                    out.push((
                        0,
                        PkaPayload::Knowledge {
                            node: *node,
                            view: view.clone(),
                            structure: structure.clone(),
                            trail: trail.clone(),
                        },
                    ));
                }
            }
        }
        Ok(out)
    }

    /// The frame's cost in the *model layer*: `(messages, bits)` of the
    /// per-message representation it batches, using the same accounting as
    /// [`PkaPayload::encoded_bits`]. This is what makes a batch-size-1
    /// session counter-identical to the per-message `Runner` — and what the
    /// amortized-vs-naive columns of E16 compare against.
    ///
    /// Entries referencing a missing trail (hand-built frames only) are
    /// costed with trail length 0.
    pub fn model_cost(&self) -> (u64, u64) {
        const ID_BITS: u64 = 32;
        let trail_bits = |idx: u32| -> u64 {
            self.trails.get(idx as usize).map_or(0, |t| t.len() as u64) * ID_BITS
        };
        let mut msgs = 0u64;
        let mut bits = 0u64;
        for entry in &self.entries {
            match entry {
                SessionEntry::Values { trail, values, .. } => {
                    msgs += values.len() as u64;
                    bits += (64 + trail_bits(*trail)) * values.len() as u64;
                }
                SessionEntry::Knowledge {
                    view,
                    structure,
                    trail,
                    ..
                } => {
                    msgs += 1;
                    bits += ID_BITS
                        + view.node_count() as u64 * ID_BITS
                        + view.edge_count() as u64 * 2 * ID_BITS
                        + structure
                            .maximal_sets()
                            .iter()
                            .map(|m| m.len() as u64 * ID_BITS)
                            .sum::<u64>()
                        + trail_bits(*trail);
                }
            }
        }
        (msgs, bits)
    }

    /// Total number of node ids stored in the trail table after
    /// front-coding (the `wire.trail_suffix_nodes` counter).
    pub fn trail_suffix_nodes(&self) -> u64 {
        let mut total = 0u64;
        let mut prev: &[NodeId] = &[];
        for trail in &self.trails {
            total += (trail.len() - shared_prefix(prev, trail)) as u64;
            prev = trail;
        }
        total
    }

    fn encode_body(&self, out: &mut Vec<u8>) {
        varint::write_u64(self.trails.len() as u64, out);
        let mut prev: &[NodeId] = &[];
        for trail in &self.trails {
            let shared = shared_prefix(prev, trail);
            varint::write_u64(shared as u64, out);
            varint::write_u64((trail.len() - shared) as u64, out);
            for v in &trail[shared..] {
                varint::write_u32(v.raw(), out);
            }
            prev = trail;
        }
        varint::write_u64(self.entries.len() as u64, out);
        for entry in &self.entries {
            match entry {
                SessionEntry::Values {
                    trail,
                    first_slot,
                    values,
                } => {
                    out.push(TAG_VALUES);
                    varint::write_u32(*trail, out);
                    varint::write_u32(*first_slot, out);
                    varint::write_u64(values.len() as u64, out);
                    for v in values {
                        varint::write_u64(*v, out);
                    }
                }
                SessionEntry::Knowledge {
                    node,
                    view,
                    structure,
                    trail,
                } => {
                    out.push(TAG_KNOWLEDGE);
                    varint::write_u32(node.raw(), out);
                    encode_graph(view, out);
                    encode_structure(structure, out);
                    varint::write_u32(*trail, out);
                }
            }
        }
    }

    fn decode_body(body: &[u8]) -> Result<SessionFrame, String> {
        let pos = &mut 0usize;
        let n_trails = read_len(body, pos, "trail count", 2)?;
        let mut trails: Vec<Vec<NodeId>> = Vec::with_capacity(n_trails);
        for i in 0..n_trails {
            let shared = varint::read_u64(body, pos, "trail shared prefix")? as usize;
            let prev_len = trails.last().map_or(0, Vec::len);
            if shared > prev_len {
                return Err(format!(
                    "trail {i} shares a {shared}-node prefix but the previous trail has {prev_len}"
                ));
            }
            let suffix = read_len(body, pos, "trail suffix length", 1)?;
            let mut trail: Vec<NodeId> = Vec::with_capacity(shared + suffix);
            trail.extend_from_slice(&trails.last().map_or(&[][..], Vec::as_slice)[..shared]);
            for _ in 0..suffix {
                trail.push(NodeId::new(varint::read_u32(body, pos, "trail node")?));
            }
            trails.push(trail);
        }
        let n_entries = read_len(body, pos, "entry count", 1)?;
        let mut entries = Vec::with_capacity(n_entries);
        let trail_idx = |body: &[u8], pos: &mut usize| -> Result<u32, String> {
            let idx = varint::read_u32(body, pos, "trail index")?;
            if idx as usize >= n_trails {
                return Err(format!(
                    "entry references trail {idx} but the table has {n_trails}"
                ));
            }
            Ok(idx)
        };
        for _ in 0..n_entries {
            let tag = *body
                .get(*pos)
                .ok_or_else(|| "truncated frame: entry tag missing".to_string())?;
            *pos += 1;
            match tag {
                TAG_VALUES => {
                    let trail = trail_idx(body, pos)?;
                    let first_slot = varint::read_u32(body, pos, "first slot")?;
                    let count = read_len(body, pos, "value count", 1)?;
                    if u64::from(first_slot) + count as u64 > u64::from(u32::MAX) {
                        return Err(format!(
                            "value run {first_slot}+{count} overflows the slot range"
                        ));
                    }
                    let mut values = Vec::with_capacity(count);
                    for _ in 0..count {
                        values.push(varint::read_u64(body, pos, "value")?);
                    }
                    entries.push(SessionEntry::Values {
                        trail,
                        first_slot,
                        values,
                    });
                }
                TAG_KNOWLEDGE => {
                    let node = NodeId::new(varint::read_u32(body, pos, "knowledge node")?);
                    let view = decode_graph(body, pos)?;
                    let structure = decode_structure(body, pos)?;
                    let trail = trail_idx(body, pos)?;
                    entries.push(SessionEntry::Knowledge {
                        node,
                        view,
                        structure,
                        trail,
                    });
                }
                other => return Err(format!("unknown session entry tag {other}")),
            }
        }
        if *pos != body.len() {
            return Err(format!(
                "frame body has {} trailing bytes after the last entry",
                body.len() - *pos
            ));
        }
        Ok(SessionFrame { trails, entries })
    }
}

impl Default for SessionFrame {
    fn default() -> Self {
        SessionFrame::new()
    }
}

/// The longest common prefix of two trails, in nodes.
fn shared_prefix(a: &[NodeId], b: &[NodeId]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

/// A collection length, sanity-checked against the bytes actually left
/// (each element occupies at least `min_elem_bytes` on the wire) so a
/// corrupt length cannot force a giant allocation.
fn read_len(
    body: &[u8],
    pos: &mut usize,
    what: &str,
    min_elem_bytes: usize,
) -> Result<usize, String> {
    let n = varint::read_u64(body, pos, what)? as usize;
    let remaining = body.len() - *pos;
    if n.saturating_mul(min_elem_bytes.max(1)) > remaining {
        return Err(format!(
            "corrupt frame: {what} claims {n} elements but only {remaining} bytes remain"
        ));
    }
    Ok(n)
}

fn encode_graph(g: &Graph, out: &mut Vec<u8>) {
    varint::write_u64(g.nodes().len() as u64, out);
    for v in g.nodes().iter() {
        varint::write_u32(v.raw(), out);
    }
    varint::write_u64(g.edge_count() as u64, out);
    for (u, v) in g.edges() {
        varint::write_u32(u.raw(), out);
        varint::write_u32(v.raw(), out);
    }
}

fn decode_graph(body: &[u8], pos: &mut usize) -> Result<Graph, String> {
    let n = read_len(body, pos, "view node count", 1)?;
    let mut g = Graph::new();
    for _ in 0..n {
        g.add_node(NodeId::new(varint::read_u32(body, pos, "view node")?));
    }
    let edges = read_len(body, pos, "view edge count", 2)?;
    for _ in 0..edges {
        let u = NodeId::new(varint::read_u32(body, pos, "view edge endpoint")?);
        let v = NodeId::new(varint::read_u32(body, pos, "view edge endpoint")?);
        if !g.contains_node(u) || !g.contains_node(v) {
            return Err(format!(
                "corrupt frame: view edge ({u}, {v}) references a node absent from the view"
            ));
        }
        g.add_edge(u, v);
    }
    Ok(g)
}

fn encode_structure(z: &AdversaryStructure, out: &mut Vec<u8>) {
    let sets = z.maximal_sets();
    varint::write_u64(sets.len() as u64, out);
    for set in sets {
        varint::write_u64(set.len() as u64, out);
        for v in set.iter() {
            varint::write_u32(v.raw(), out);
        }
    }
}

fn decode_structure(body: &[u8], pos: &mut usize) -> Result<AdversaryStructure, String> {
    let n = read_len(body, pos, "structure set count", 1)?;
    let mut sets = Vec::with_capacity(n);
    for _ in 0..n {
        let len = read_len(body, pos, "structure set length", 1)?;
        let mut set = NodeSet::new();
        for _ in 0..len {
            set.insert(NodeId::new(varint::read_u32(body, pos, "structure node")?));
        }
        sets.push(set);
    }
    Ok(AdversaryStructure::from_sets(sets))
}

impl Payload for SessionFrame {
    /// The *actual* encoded size — the compact codec is the wire format, so
    /// wire accounting bills real bytes, not the per-message estimate
    /// (which [`model_cost`](SessionFrame::model_cost) reports separately).
    fn encoded_bits(&self) -> usize {
        let mut out = Vec::new();
        self.encode(&mut out);
        out.len() * 8
    }
}

impl WirePayload for SessionFrame {
    fn encode(&self, out: &mut Vec<u8>) {
        let mark = framing::begin_frame(out);
        self.encode_body(out);
        framing::end_frame(out, mark);
    }

    fn decode(bytes: &[u8]) -> Result<(Self, usize), String> {
        let (body, used) = framing::split_frame(bytes).map_err(|e| e.to_string())?;
        let frame = Self::decode_body(body)?;
        Ok((frame, used))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        let mut g = Graph::new();
        g.add_edge(0.into(), 1.into());
        g.add_edge(0.into(), 2.into());
        g.add_edge(1.into(), 3.into());
        g.add_edge(2.into(), 3.into());
        g
    }

    fn set(ids: &[u32]) -> NodeSet {
        ids.iter().copied().collect()
    }

    fn sample() -> SessionFrame {
        SessionFrame {
            trails: vec![
                vec![0.into()],
                vec![0.into(), 1.into()],
                vec![0.into(), 1.into(), 4.into()],
            ],
            entries: vec![
                SessionEntry::Values {
                    trail: 1,
                    first_slot: 0,
                    values: vec![7, 8, 9],
                },
                SessionEntry::Knowledge {
                    node: 1.into(),
                    view: diamond(),
                    structure: AdversaryStructure::from_sets([set(&[2]), set(&[1, 3])]),
                    trail: 2,
                },
                SessionEntry::Values {
                    trail: 0,
                    first_slot: 5,
                    values: vec![u64::MAX],
                },
            ],
        }
    }

    #[test]
    fn wire_round_trip() {
        let frame = sample();
        let bytes = frame.to_bytes();
        assert_eq!(SessionFrame::from_bytes(&bytes), Ok(frame.clone()));
        let (back, used) = SessionFrame::decode(&bytes).expect("decode");
        assert_eq!(back, frame);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn pack_expand_round_trip_preserves_order_and_slots() {
        let items: Vec<(u32, PkaPayload)> = vec![
            (
                0,
                PkaPayload::DealerValue {
                    value: 7,
                    trail: vec![0.into(), 1.into()],
                },
            ),
            (
                1,
                PkaPayload::DealerValue {
                    value: 8,
                    trail: vec![0.into(), 1.into()],
                },
            ),
            (
                0,
                PkaPayload::Knowledge {
                    node: 1.into(),
                    view: diamond(),
                    structure: AdversaryStructure::from_sets([set(&[2])]),
                    trail: vec![1.into()],
                },
            ),
            // Non-consecutive slot on the same trail: a second run.
            (
                5,
                PkaPayload::DealerValue {
                    value: 9,
                    trail: vec![0.into(), 1.into()],
                },
            ),
        ];
        let frame = SessionFrame::pack(&items);
        assert_eq!(frame.trails.len(), 2); // the two distinct trails interned
        assert_eq!(frame.entries.len(), 3); // slots 0..2 coalesced into one run
        assert_eq!(frame.expand().expect("expand"), items);
    }

    #[test]
    fn batching_amortizes_wire_bytes() {
        let one = SessionFrame::pack(&[(
            0,
            PkaPayload::DealerValue {
                value: 7,
                trail: vec![0.into(), 1.into(), 2.into()],
            },
        )]);
        let many_items: Vec<(u32, PkaPayload)> = (0..64)
            .map(|slot| {
                (
                    slot,
                    PkaPayload::DealerValue {
                        value: 7,
                        trail: vec![0.into(), 1.into(), 2.into()],
                    },
                )
            })
            .collect();
        let many = SessionFrame::pack(&many_items);
        // 64 payloads cost far less than 64 single-payload frames.
        assert!(many.encoded_bits() < 8 * one.encoded_bits());
    }

    #[test]
    fn model_cost_matches_per_message_accounting() {
        let frame = sample();
        let expanded = frame.expand().expect("expand");
        let msgs = expanded.len() as u64;
        let bits: u64 = expanded.iter().map(|(_, p)| p.encoded_bits() as u64).sum();
        assert_eq!(frame.model_cost(), (msgs, bits));
    }

    #[test]
    fn front_coding_counts_suffix_nodes() {
        let frame = sample();
        // Trails: [0], [0,1], [0,1,4] → suffixes 1 + 1 + 1.
        assert_eq!(frame.trail_suffix_nodes(), 3);
    }

    #[test]
    fn decode_rejects_malformed_input_without_panicking() {
        // Unknown entry tag.
        let mut frame_bytes = Vec::new();
        let mark = framing::begin_frame(&mut frame_bytes);
        varint::write_u64(0, &mut frame_bytes); // no trails
        varint::write_u64(1, &mut frame_bytes); // one entry
        frame_bytes.push(9); // bad tag
        framing::end_frame(&mut frame_bytes, mark);
        assert!(SessionFrame::from_bytes(&frame_bytes).is_err());

        // Entry referencing a missing trail.
        let mut body = Vec::new();
        varint::write_u64(0, &mut body); // no trails
        varint::write_u64(1, &mut body);
        body.push(TAG_VALUES);
        varint::write_u32(0, &mut body); // trail 0 of an empty table
        varint::write_u32(0, &mut body);
        varint::write_u64(1, &mut body);
        varint::write_u64(7, &mut body);
        let mut wire = Vec::new();
        let mark = framing::begin_frame(&mut wire);
        wire.extend_from_slice(&body);
        framing::end_frame(&mut wire, mark);
        assert!(SessionFrame::from_bytes(&wire).is_err());

        // A length bomb is caught before allocation.
        let mut bomb = Vec::new();
        let mark = framing::begin_frame(&mut bomb);
        varint::write_u64(u64::from(u32::MAX), &mut bomb); // trail count
        framing::end_frame(&mut bomb, mark);
        assert!(SessionFrame::from_bytes(&bomb).is_err());

        // Every truncation of a valid encoding errors cleanly.
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            assert!(SessionFrame::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }

        // Trailing garbage inside the announced body is rejected.
        let mut padded = Vec::new();
        let mark = framing::begin_frame(&mut padded);
        varint::write_u64(0, &mut padded);
        varint::write_u64(0, &mut padded);
        padded.push(0xAB);
        framing::end_frame(&mut padded, mark);
        assert!(SessionFrame::from_bytes(&padded).is_err());
    }

    #[test]
    fn shared_prefix_beyond_previous_trail_is_rejected() {
        let mut body = Vec::new();
        varint::write_u64(1, &mut body); // one trail
        varint::write_u64(3, &mut body); // shares 3 nodes with a non-existent predecessor
        varint::write_u64(0, &mut body);
        varint::write_u64(0, &mut body); // no entries
        let mut wire = Vec::new();
        let mark = framing::begin_frame(&mut wire);
        wire.extend_from_slice(&body);
        framing::end_frame(&mut wire, mark);
        assert!(SessionFrame::from_bytes(&wire).is_err());
    }
}
