//! Differential suite: every parallel decider must be **byte-identical** to
//! its sequential original — same witness on solvable instances, the same
//! `None` on unsolvable ones — at 1, 2 and 8 threads, on proptest-generated
//! instances.
//!
//! The case count scales with `PROPTEST_CASES` (CI raises it for this
//! suite); the default keeps local runs fast.

use proptest::prelude::*;
use rmt_core::cuts::{
    find_rmt_cut, find_rmt_cut_par, zpp_cut_by_enumeration, zpp_cut_by_enumeration_par,
    zpp_cut_by_fixpoint, zpp_cut_by_fixpoint_par,
};
use rmt_core::sampling::random_instance;
use rmt_core::KnowledgeCache;
use rmt_graph::{generators, ViewKind};

const THREADS: [usize; 3] = [1, 2, 8];

fn cases() -> ProptestConfig {
    let n = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(24);
    ProptestConfig::with_cases(n)
}

fn instance_params() -> impl Strategy<Value = (usize, u64)> {
    (5usize..9, 0u64..u64::MAX)
}

proptest! {
    #![proptest_config(cases())]

    /// `find_rmt_cut_par` returns the sequential witness (or `None`) for
    /// every thread count. Adjacent-endpoint and disconnected instances are
    /// all reachable through the sampler.
    #[test]
    fn rmt_cut_decider_is_thread_count_invariant((n, seed) in instance_params(), adhoc in any::<bool>()) {
        let mut rng = generators::seeded(seed);
        let views = if adhoc { ViewKind::AdHoc } else { ViewKind::Full };
        let inst = random_instance(n, 0.4, views, 3, 2, &mut rng);
        let sequential = find_rmt_cut(&inst);
        for threads in THREADS {
            prop_assert_eq!(&sequential, &find_rmt_cut_par(&inst, threads), "threads = {}", threads);
        }
    }

    /// Same for the 𝒵-pp enumeration decider.
    #[test]
    fn zpp_enumeration_is_thread_count_invariant((n, seed) in instance_params()) {
        let mut rng = generators::seeded(seed);
        let inst = random_instance(n, 0.4, ViewKind::AdHoc, 3, 2, &mut rng);
        let sequential = zpp_cut_by_enumeration(&inst);
        for threads in THREADS {
            prop_assert_eq!(&sequential, &zpp_cut_by_enumeration_par(&inst, threads), "threads = {}", threads);
        }
    }

    /// Same for the fixpoint decider: the corruption-set scan is searched in
    /// parallel, and the witness must come from the same (first) failing set.
    #[test]
    fn zpp_fixpoint_is_thread_count_invariant((n, seed) in instance_params()) {
        let mut rng = generators::seeded(seed);
        let inst = random_instance(n, 0.35, ViewKind::AdHoc, 3, 2, &mut rng);
        let sequential = zpp_cut_by_fixpoint(&inst);
        for threads in THREADS {
            prop_assert_eq!(&sequential, &zpp_cut_by_fixpoint_par(&inst, threads), "threads = {}", threads);
        }
    }

    /// The bounded joint-view materialization: the parallel fold must make
    /// the same `Some`/`None` blow-up decision and, when it materializes,
    /// produce the identical antichain.
    #[test]
    fn bounded_materialize_is_thread_count_invariant((n, seed) in instance_params(), bound_sel in 0usize..4) {
        let mut rng = generators::seeded(seed);
        let inst = random_instance(n, 0.5, ViewKind::AdHoc, 3, 2, &mut rng);
        let cache = KnowledgeCache::new(&inst);
        let b = inst.graph().nodes().clone();
        let view = cache.joint_view(&b);
        let bound = [0usize, 1, 4, usize::MAX][bound_sel];
        let sequential = view.materialize_bounded(bound);
        for threads in THREADS {
            let parallel = view.materialize_bounded_par(bound, threads);
            match (&sequential, &parallel) {
                (Some(s), Some(p)) => prop_assert_eq!(
                    s.structure().maximal_sets(),
                    p.structure().maximal_sets(),
                    "threads = {}", threads
                ),
                (None, None) => {}
                _ => prop_assert!(false, "Some/None divergence at threads = {}", threads),
            }
        }
    }
}
