//! Differential gate for the incremental decision engine: after every delta
//! of a random mutation stream, [`IncrementalEngine::decide_rmt`] /
//! [`IncrementalEngine::decide_zpp`] must return the **byte-identical**
//! witness of the from-scratch anchored deciders on the mutated instance —
//! certificate reuse must be unobservable in results. Budget-starved
//! engines must stay exact through their fallbacks too.

use proptest::prelude::*;
use rmt_core::cuts::{
    find_rmt_cut_anchored, find_rmt_cut_anchored_with, zpp_cut_by_enumeration_anchored,
    zpp_cut_by_enumeration_anchored_with, AnchorBudget,
};
use rmt_core::engine::{Delta, IncrementalEngine};
use rmt_core::sampling::random_instance_nonadjacent;
use rmt_graph::{generators, ViewKind};
use rmt_sets::NodeId;

fn cases() -> ProptestConfig {
    let n = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    ProptestConfig::with_cases(n)
}

fn view_of(sel: usize) -> ViewKind {
    [ViewKind::AdHoc, ViewKind::Full, ViewKind::Radius(2)][sel]
}

/// A delta stream as raw numbers: `(kind, u, v)` per step, decoded against
/// the current node count so streams stay well-formed as nodes appear.
fn stream() -> impl Strategy<Value = Vec<(u32, u32, u32)>> {
    proptest::collection::vec((0u32..4, 0u32..12, 0u32..12), 1..10)
}

fn decode(step: (u32, u32, u32), n: u32, dealer: NodeId, receiver: NodeId) -> Option<Delta> {
    let (kind, u, v) = step;
    let (u, v) = (NodeId::new(u % n), NodeId::new(v % n));
    match kind {
        0 | 3 if u != v => Some(Delta::AddEdge(u, v)),
        1 if u != v => Some(Delta::RemoveEdge(u, v)),
        2 => Some(Delta::AddNode(NodeId::new(n))),
        _ => {
            // Degenerate pair: fall back to toggling an edge off the dealer
            // side, keeping the endpoints distinct.
            let w = if u == dealer || u == receiver {
                return None;
            } else {
                u
            };
            Some(Delta::RemoveEdge(dealer, w))
        }
    }
}

proptest! {
    #![proptest_config(cases())]

    /// Engine ≡ from-scratch anchored deciders after every delta, on random
    /// instances and mutation streams, across view kinds.
    #[test]
    fn incremental_equals_from_scratch(
        (n, seed, view_sel) in (6usize..10, 0u64..u64::MAX, 0usize..3),
        steps in stream(),
    ) {
        let view = view_of(view_sel);
        let mut rng = generators::seeded(seed);
        let inst = random_instance_nonadjacent(n, 0.35, view, 3, 2, &mut rng);
        let mut engine = IncrementalEngine::from_instance(&inst, view);
        prop_assert_eq!(engine.decide_rmt(), find_rmt_cut_anchored(engine.instance()));
        prop_assert_eq!(
            engine.decide_zpp(),
            zpp_cut_by_enumeration_anchored(engine.instance())
        );
        for step in steps {
            let nodes = engine.instance().graph().nodes().len() as u32;
            let Some(delta) = decode(step, nodes, inst.dealer(), inst.receiver()) else {
                continue;
            };
            engine.apply(delta.clone()).unwrap();
            prop_assert_eq!(
                engine.decide_rmt(),
                find_rmt_cut_anchored(engine.instance()),
                "rmt diverged after {:?}", delta
            );
            prop_assert_eq!(
                engine.decide_zpp(),
                zpp_cut_by_enumeration_anchored(engine.instance()),
                "zpp diverged after {:?}", delta
            );
        }
    }

    /// Budget-starved engines agree with equally starved from-scratch
    /// deciders (the fallback paths are part of the byte-identity contract).
    #[test]
    fn starved_engine_matches_starved_decider(
        (n, seed) in (6usize..9, 0u64..u64::MAX),
        steps in stream(),
    ) {
        let budget = AnchorBudget { max_separators: 2, max_components_per_anchor: 4 };
        let mut rng = generators::seeded(seed);
        let inst = random_instance_nonadjacent(n, 0.35, ViewKind::AdHoc, 3, 2, &mut rng);
        let mut engine =
            IncrementalEngine::from_instance(&inst, ViewKind::AdHoc).with_budget(budget);
        for step in steps {
            let nodes = engine.instance().graph().nodes().len() as u32;
            let Some(delta) = decode(step, nodes, inst.dealer(), inst.receiver()) else {
                continue;
            };
            engine.apply(delta).unwrap();
            prop_assert_eq!(
                engine.decide_rmt(),
                find_rmt_cut_anchored_with(engine.instance(), &budget)
            );
            prop_assert_eq!(
                engine.decide_zpp(),
                zpp_cut_by_enumeration_anchored_with(engine.instance(), &budget)
            );
        }
    }

    /// Structure changes mid-stream: the full-rebuild path stays exact.
    #[test]
    fn structure_churn_stays_exact(
        (n, seed) in (6usize..9, 0u64..u64::MAX),
        ts in proptest::collection::vec(0usize..4, 1..4),
    ) {
        let mut rng = generators::seeded(seed);
        let inst = random_instance_nonadjacent(n, 0.4, ViewKind::AdHoc, 3, 2, &mut rng);
        let mut engine = IncrementalEngine::from_instance(&inst, ViewKind::AdHoc);
        engine.decide_rmt();
        for t in ts {
            let z = rmt_adversary::threshold(engine.instance().graph().nodes(), t);
            let stats = engine.apply(Delta::StructureChange(z)).unwrap();
            prop_assert!(stats.full_rebuild);
            prop_assert_eq!(engine.decide_rmt(), find_rmt_cut_anchored(engine.instance()));
            prop_assert_eq!(
                engine.decide_zpp(),
                zpp_cut_by_enumeration_anchored(engine.instance())
            );
        }
    }
}
