//! Property tests on the core invariants: unconditional safety, fixpoint
//! monotonicity, knowledge monotonicity, joint-knowledge laws and the star
//! solvability condition — all against proptest-generated instances.

use proptest::prelude::*;
use rmt_core::cuts::{find_rmt_cut, zcpa_fixpoint};
use rmt_core::protocols::attacks::{pka_adversary, PKA_ATTACKS};
use rmt_core::protocols::rmt_pka::run_pka;
use rmt_core::reduction::StarInstance;
use rmt_core::sampling::{random_instance, random_structure};
use rmt_core::{Instance, KnowledgeCache};
use rmt_graph::{generators, ViewKind};
use rmt_sets::NodeSet;

fn instance_params() -> impl Strategy<Value = (usize, u64)> {
    (5usize..9, any::<u64>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 4, property-test form: for any generated instance, any
    /// worst-case corruption and any scripted attack, the receiver decides
    /// the dealer's value or nothing.
    #[test]
    fn pka_is_safe_everywhere((n, seed) in instance_params(), attack_idx in 0usize..PKA_ATTACKS.len()) {
        let mut rng = generators::seeded(seed);
        let inst = random_instance(n, 0.4, ViewKind::AdHoc, 3, 2, &mut rng);
        let attack = PKA_ATTACKS[attack_idx];
        for t in inst.worst_case_corruptions() {
            let adv = pka_adversary(&inst, 7, t.clone(), attack, seed);
            let d = run_pka(&inst, 7, adv).decision(inst.receiver());
            prop_assert!(d.is_none() || d == Some(7), "T = {}, attack {}", t, attack);
        }
    }

    /// The Z-CPA fixpoint is antitone in the corruption set: corrupting more
    /// nodes never certifies more honest nodes.
    #[test]
    fn fixpoint_is_antitone((n, seed) in instance_params(), extra in 1u32..5) {
        let mut rng = generators::seeded(seed);
        let inst = random_instance(n, 0.45, ViewKind::AdHoc, 3, 2, &mut rng);
        for t in inst.worst_case_corruptions() {
            let mut smaller = t.clone();
            let removed = smaller.iter().nth(extra as usize % (t.len().max(1)));
            if let Some(v) = removed {
                smaller.remove(v);
                let with_more = zcpa_fixpoint(&inst, &t);
                let with_less = zcpa_fixpoint(&inst, &smaller);
                // Certified sets compare on the common honest ground.
                let common = with_more.difference(&smaller);
                prop_assert!(common.is_subset(&with_less), "T = {t}");
            }
        }
    }

    /// Knowledge monotonicity at the characterization level: enlarging every
    /// view (radius k → k+1) cannot create an RMT-cut.
    #[test]
    fn more_knowledge_never_hurts((n, seed) in instance_params(), k in 0usize..3) {
        let mut rng = generators::seeded(seed);
        let g = generators::gnp_connected(n, 0.4, &mut rng);
        let z = random_structure(g.nodes(), 3, 2, &mut rng);
        let at = |k| {
            let inst = Instance::new(g.clone(), z.clone(), ViewKind::Radius(k), 0.into(), (n as u32 - 1).into()).unwrap();
            find_rmt_cut(&inst).is_none()
        };
        prop_assert!(!at(k) || at(k + 1));
    }

    /// Joint-knowledge law: enlarging B only *constrains* the joint
    /// structure — any set admissible for B' ⊇ B stays admissible for B
    /// after restriction to B's domain.
    #[test]
    fn joint_knowledge_shrinks_with_more_views((n, seed) in instance_params()) {
        let mut rng = generators::seeded(seed);
        let inst = random_instance(n, 0.5, ViewKind::AdHoc, 3, 2, &mut rng);
        let cache = KnowledgeCache::new(&inst);
        let nodes: Vec<_> = inst.graph().nodes().iter().collect();
        let b: NodeSet = nodes.iter().take(n / 2).copied().collect();
        let b_big: NodeSet = nodes.iter().take(n / 2 + 2).copied().collect();
        let dom = cache.joint_domain(&b);
        for cand in cache.joint_domain(&b_big).subsets().take(256) {
            if cache.joint_contains(&b_big, &cand) {
                prop_assert!(cache.joint_contains(&b, &cand.intersection(&dom)));
            }
        }
    }

    /// Star solvability (used by the self-reduction) equals the brute-force
    /// partition condition: no split of the middle into two admissible
    /// halves.
    #[test]
    fn star_solvability_matches_partition_brute_force(m in 2usize..6, seed in any::<u64>()) {
        let mut rng = generators::seeded(seed);
        let middle: NodeSet = (1..=m as u32).collect();
        let z = random_structure(&middle, 3, 3, &mut rng);
        let star = StarInstance::new(middle.clone(), &z);
        let brute = !middle.subsets().any(|c1| {
            let c2 = middle.difference(&c1);
            star.structure().contains(&c1) && star.structure().contains(&c2)
        });
        prop_assert_eq!(star.solvable(), brute, "𝒵′ = {}", star.structure());
    }
}
