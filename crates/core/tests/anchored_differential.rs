//! Differential suite for the separator-anchored cut deciders: anchored,
//! anchored-parallel and budget-starved (fallback) searches must all agree
//! with the exhaustive ground truth on the **verdict**, and every witness
//! they return must verify against the ground-truth cut checkers.
//!
//! The case count scales with `PROPTEST_CASES` (CI raises it for this
//! suite); the default keeps local runs fast.

use proptest::prelude::*;
use rmt_core::cuts::{
    find_rmt_cut, find_rmt_cut_anchored, find_rmt_cut_anchored_par, find_rmt_cut_anchored_with,
    is_rmt_cut, is_zpp_cut, zpp_cut_by_enumeration, zpp_cut_by_enumeration_anchored,
    zpp_cut_by_enumeration_anchored_par, zpp_cut_by_enumeration_anchored_with, AnchorBudget,
};
use rmt_core::sampling::{random_instance, random_instance_nonadjacent};
use rmt_core::{Instance, KnowledgeCache};
use rmt_graph::{generators, ViewKind};

const THREADS: [usize; 3] = [1, 2, 8];

/// Budgets that force the separator-enumeration and the per-anchor
/// component-scan fallback paths respectively.
const STARVED: [AnchorBudget; 2] = [
    AnchorBudget {
        max_separators: 1,
        max_components_per_anchor: 1 << 20,
    },
    AnchorBudget {
        max_separators: 4096,
        max_components_per_anchor: 1,
    },
];

fn cases() -> ProptestConfig {
    let n = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(24);
    ProptestConfig::with_cases(n)
}

fn instance_params() -> impl Strategy<Value = (usize, u64, usize)> {
    // n ≤ 10 keeps the exhaustive ground truth affordable; the view selector
    // covers the ad hoc model, full knowledge and an intermediate radius.
    (5usize..11, 0u64..u64::MAX, 0usize..3)
}

fn view_of(sel: usize) -> ViewKind {
    [ViewKind::AdHoc, ViewKind::Full, ViewKind::Radius(2)][sel]
}

fn check_rmt(inst: &Instance) {
    let exhaustive = find_rmt_cut(inst);
    let anchored = find_rmt_cut_anchored(inst);
    assert_eq!(exhaustive.is_some(), anchored.is_some());
    if let Some(w) = &anchored {
        let cache = KnowledgeCache::new(inst);
        assert!(
            is_rmt_cut(inst, &cache, &w.cut).is_some(),
            "anchored witness fails ground-truth verification: {:?}",
            w
        );
    }
    for threads in THREADS {
        assert_eq!(
            &anchored,
            &find_rmt_cut_anchored_par(inst, threads),
            "threads = {}",
            threads
        );
    }
    for budget in &STARVED {
        assert_eq!(
            exhaustive.is_some(),
            find_rmt_cut_anchored_with(inst, budget).is_some(),
            "budget = {:?}",
            budget
        );
    }
}

fn check_zpp(inst: &Instance) {
    let exhaustive = zpp_cut_by_enumeration(inst);
    let anchored = zpp_cut_by_enumeration_anchored(inst);
    assert_eq!(exhaustive.is_some(), anchored.is_some());
    if let Some(w) = &anchored {
        assert!(
            is_zpp_cut(inst, &w.cut).is_some(),
            "anchored witness fails ground-truth verification: {:?}",
            w
        );
    }
    for threads in THREADS {
        assert_eq!(
            &anchored,
            &zpp_cut_by_enumeration_anchored_par(inst, threads),
            "threads = {}",
            threads
        );
    }
    for budget in &STARVED {
        assert_eq!(
            exhaustive.is_some(),
            zpp_cut_by_enumeration_anchored_with(inst, budget).is_some(),
            "budget = {:?}",
            budget
        );
    }
}

proptest! {
    #![proptest_config(cases())]

    /// Anchored RMT-cut search: verdict equals the exhaustive decider's,
    /// witnesses verify, the parallel twin matches at every thread count and
    /// the budget-starved fallback path stays verdict-exact.
    #[test]
    fn anchored_rmt_cut_agrees_with_exhaustive((n, seed, view) in instance_params()) {
        let mut rng = generators::seeded(seed);
        let inst = random_instance(n, 0.4, view_of(view), 3, 2, &mut rng);
        check_rmt(&inst);
    }

    /// Same contract for the 𝒵-pp enumeration decider.
    #[test]
    fn anchored_zpp_cut_agrees_with_exhaustive((n, seed, view) in instance_params()) {
        let mut rng = generators::seeded(seed);
        let inst = random_instance(n, 0.4, view_of(view), 3, 2, &mut rng);
        check_zpp(&inst);
    }

    /// Sparser instances reach richer separator structure (more anchors,
    /// larger regions) than the dense default.
    #[test]
    fn anchored_deciders_agree_on_sparse_instances((n, seed, view) in instance_params()) {
        let mut rng = generators::seeded(seed);
        let inst = random_instance(n, 0.25, view_of(view), 4, 3, &mut rng);
        check_rmt(&inst);
        check_zpp(&inst);
    }
}

/// The exact instance family of experiment E2 (seed and sampler parameters
/// from `e2_characterization.rs`): the anchored deciders must reproduce the
/// committed characterization verdicts instance by instance.
#[test]
fn anchored_deciders_replay_the_e2_family() {
    for views in [ViewKind::AdHoc, ViewKind::Radius(2)] {
        let mut rng = generators::seeded(0xE2);
        for trial in 0..40usize {
            let n = 6 + trial % 4;
            let inst = random_instance_nonadjacent(n, 0.35, views, 3, 2, &mut rng);
            let exhaustive = find_rmt_cut(&inst);
            let anchored = find_rmt_cut_anchored(&inst);
            assert_eq!(
                exhaustive.is_some(),
                anchored.is_some(),
                "trial {trial}, views {views:?}"
            );
            if let Some(w) = &anchored {
                let cache = KnowledgeCache::new(&inst);
                assert!(is_rmt_cut(&inst, &cache, &w.cut).is_some());
            }
            assert_eq!(anchored, find_rmt_cut_anchored_par(&inst, 8));
        }
    }
}
