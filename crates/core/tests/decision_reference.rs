//! Differential test of the RMT-PKA receiver: a deliberately naive,
//! literal implementation of Definitions 4–6 (enumerate all valid message
//! sets; materialize 𝒵_B with the antichain ⊕ from `rmt-adversary`) is run
//! against the production decision engine on the receiver's *actual*
//! delivered messages under real attacks.
//!
//! The two implementations share no code path for the interesting parts:
//! the engine searches exclusions/selections with budgets and checks 𝒵_B
//! membership lazily; the reference enumerates subsets directly and folds
//! the join explicitly.

use rmt_adversary::{AdversaryStructure, JointView, RestrictedStructure};
use rmt_core::protocols::attacks::{pka_adversary, PKA_ATTACKS};
use rmt_core::protocols::rmt_pka::{PkaPayload, RmtPka};
use rmt_core::sampling::random_instance_nonadjacent;
use rmt_core::Instance;
use rmt_graph::{paths, traversal, Graph, ViewKind};
use rmt_sets::{NodeId, NodeSet};
use rmt_sim::{Envelope, Runner};

#[derive(Clone, Debug)]
struct Claim {
    node: NodeId,
    view: Graph,
    structure: AdversaryStructure,
}

/// Replays R's delivered messages through the paper's trail-validation rule
/// and collects the pools the decision subroutine sees.
fn collect_pools(
    inst: &Instance,
    log: &[(u32, Envelope<PkaPayload>)],
) -> (Vec<(u64, Vec<NodeId>)>, Vec<Claim>) {
    let me = inst.receiver();
    let mut type1 = Vec::new();
    let mut claims: Vec<Claim> = Vec::new();
    for (_, env) in log {
        let trail = env.payload.trail();
        if trail.last() != Some(&env.from) || trail.contains(&me) {
            continue;
        }
        match &env.payload {
            PkaPayload::DealerValue { value, trail } => {
                let mut p = trail.clone();
                p.push(me);
                if !type1.contains(&(*value, p.clone())) {
                    type1.push((*value, p));
                }
            }
            PkaPayload::Knowledge {
                node,
                view,
                structure,
                ..
            } => {
                // The same well-formedness filter the receiver applies.
                if *node == me
                    || !view.contains_node(*node)
                    || structure
                        .maximal_sets()
                        .iter()
                        .any(|m| !m.is_subset(view.nodes()))
                {
                    continue;
                }
                let candidate = Claim {
                    node: *node,
                    view: view.clone(),
                    structure: structure.clone(),
                };
                if !claims.iter().any(|c| {
                    c.node == candidate.node
                        && c.view == candidate.view
                        && c.structure == candidate.structure
                }) {
                    claims.push(candidate);
                }
            }
        }
    }
    (type1, claims)
}

/// The literal decision rule: try every value × every consistent claim
/// subset; full + cover-free decides.
fn reference_decide(
    inst: &Instance,
    type1: &[(u64, Vec<NodeId>)],
    claims: &[Claim],
) -> Option<u64> {
    let me = inst.receiver();
    let dealer = inst.dealer();
    let my_view = inst.view(me).clone();
    let my_structure = inst.local_structure(me);

    // Dealer rule.
    if type1
        .iter()
        .any(|(_, p)| p.as_slice() == [dealer, me] && inst.graph().has_edge(dealer, me))
    {
        // The direct message was validated on arrival; its value decides.
        return type1
            .iter()
            .find(|(_, p)| p.as_slice() == [dealer, me])
            .map(|(x, _)| *x);
    }

    let mut values: Vec<u64> = type1.iter().map(|(x, _)| *x).collect();
    values.sort_unstable();
    values.dedup();

    let n_claims = claims.len();
    assert!(n_claims <= 16, "reference enumeration is for tiny pools");
    for mask in 0u32..(1 << n_claims) {
        let chosen: Vec<&Claim> = (0..n_claims)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| &claims[i])
            .collect();
        // Consistency: at most one claim per node.
        let mut nodes = NodeSet::new();
        if !chosen.iter().all(|c| nodes.insert(c.node)) {
            continue;
        }
        let mut v_m = nodes.clone();
        v_m.insert(me);
        if !v_m.contains(dealer) {
            continue;
        }
        let mut joint = my_view.clone();
        for c in &chosen {
            joint.union_with(&c.view);
        }
        let g_m = joint.induced(&v_m);
        let Ok(all_paths) = paths::simple_paths(&g_m, dealer, me, 10_000) else {
            continue;
        };
        if all_paths.is_empty() {
            continue;
        }

        // Adversary cover via explicit ⊕ materialization.
        let mut candidates = v_m.clone();
        candidates.remove(dealer);
        candidates.remove(me);
        let knowledge = |u: NodeId| -> Option<(&Graph, &AdversaryStructure)> {
            if u == me {
                Some((&my_view, &my_structure))
            } else {
                chosen
                    .iter()
                    .find(|c| c.node == u)
                    .map(|c| (&c.view, &c.structure))
            }
        };
        let has_cover = candidates.subsets().any(|c| {
            let b = traversal::reachable_avoiding(&g_m, me, &c);
            if b.contains(dealer) {
                return false;
            }
            let view: JointView = b
                .iter()
                .filter_map(|u| {
                    knowledge(u).map(|(g, z)| {
                        RestrictedStructure::from_parts(
                            g.nodes().clone(),
                            z.maximal_sets().iter().cloned(),
                        )
                    })
                })
                .collect();
            let z_b = view.materialize();
            let gamma_b = z_b.domain().clone();
            z_b.contains(&c.intersection(&gamma_b))
        });
        if has_cover {
            continue;
        }

        for &x in &values {
            let received: Vec<&Vec<NodeId>> = type1
                .iter()
                .filter(|(v, _)| *v == x)
                .map(|(_, p)| p)
                .collect();
            if all_paths.iter().all(|p| received.contains(&p)) {
                return Some(x);
            }
        }
    }
    None
}

#[test]
fn engine_matches_the_literal_semantics_under_attacks() {
    let mut rng = rmt_graph::generators::seeded(4242);
    let mut compared = 0;
    for trial in 0..30 {
        let n = 5 + trial % 2; // tiny: the reference is exponential in claims
        let inst = random_instance_nonadjacent(n, 0.5, ViewKind::AdHoc, 2, 2, &mut rng);
        for (ai, &attack) in PKA_ATTACKS.iter().enumerate() {
            for t in inst.worst_case_corruptions() {
                let adv = pka_adversary(&inst, 7, t.clone(), attack, trial as u64 * 7 + ai as u64);
                let out = Runner::new(inst.graph().clone(), |v| RmtPka::node(&inst, v, 7), adv)
                    .watch(NodeSet::singleton(inst.receiver()))
                    .run();
                let (type1, claims) = collect_pools(&inst, out.delivered_to(inst.receiver()));
                if claims.len() > 12 {
                    continue; // keep the reference enumeration tractable
                }
                let reference = reference_decide(&inst, &type1, &claims);
                let engine = out.decision(inst.receiver());
                assert_eq!(
                    engine, reference,
                    "trial {trial}, attack {attack}, T = {t}: {inst:?}"
                );
                compared += 1;
            }
        }
    }
    assert!(compared > 20, "enough comparisons ran: {compared}");
}
