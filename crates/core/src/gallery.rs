//! A gallery of named instances with known ground truth, used across tests,
//! examples and experiments.
//!
//! Each constructor documents *why* the instance behaves the way it does;
//! the claims are verified by this module's tests and re-verified wherever
//! the instances are used.

use rmt_adversary::AdversaryStructure;
use rmt_graph::{Graph, ViewKind};
use rmt_sets::NodeSet;

use crate::instance::Instance;

/// The canonical **unsolvable diamond**: dealer 0, parallel relays 1 and 2,
/// receiver 3, 𝒵 = {{1}, {2}}.
///
/// Either relay may fall, and `{1} ∪ {2}` is a D–R cut — a pair cut, so the
/// instance is unsolvable under *every* level of knowledge (Theorem 3 /
/// Theorem 8). It is the smallest witness for the lower-bound constructions
/// and the default target of the scenario-swap attack demos.
pub fn unsolvable_diamond(views: ViewKind) -> Instance {
    let mut g = Graph::new();
    for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
        g.add_edge(u.into(), v.into());
    }
    let z = AdversaryStructure::from_sets([
        NodeSet::singleton(1u32.into()),
        NodeSet::singleton(2u32.into()),
    ]);
    Instance::new(g, z, views, 0.into(), 3.into()).expect("valid gallery instance")
}

/// The **tolerant diamond**: same graph, but only relay 1 is corruptible
/// (𝒵 = {{1}}). Solvable at every knowledge level; the smallest instance on
/// which all protocols deliver under the worst corruption.
pub fn tolerant_diamond(views: ViewKind) -> Instance {
    let mut g = Graph::new();
    for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
        g.add_edge(u.into(), v.into());
    }
    let z = AdversaryStructure::from_sets([NodeSet::singleton(1u32.into())]);
    Instance::new(g, z, views, 0.into(), 3.into()).expect("valid gallery instance")
}

/// The **staggered theta** — the knowledge-gap witness.
///
/// Three internally disjoint D–R routes of staggered lengths:
///
/// ```text
///        1 ─ 2 ───────┐
///      /               \
///  D=0 ── 3 ─ 4 ─ 7 ── 9=R
///      \               /
///        5 ─ 6 ─ 8 ───┘
/// ```
///
/// with 𝒵 = {{1}, {4}, {6}} (one corruptible node per route, at staggered
/// distances). No *pair* of structure members cuts D from R, so the
/// instance is solvable with full knowledge; but the triple
/// `C = {1} ∪ {4, 6}` is a D–R cut whose C₂ = {4, 6} is *locally* plausible
/// to every radius-1 view of the receiver-side component B = {2, 7, 8, 9}
/// (node 7 attributes {4} to the member {4}, node 8 attributes {6} to {6},
/// and nobody sees both) — an RMT-cut in the ad hoc and radius-1 models.
/// At radius 2 the receiver's view contains both 4 and 6, no single member
/// explains the pair, and the cut dissolves:
///
/// * minimal knowledge radius = **2**;
/// * RMT-PKA with radius-2 views delivers where Z-CPA (ad hoc, radius-1
///   local rule) provably cannot — the strict uniqueness gap between the
///   partial-knowledge and ad hoc models, exercised in tests and E4.
pub fn staggered_theta(views: ViewKind) -> Instance {
    let (g, z) = staggered_theta_parts();
    Instance::new(g, z, views, 0.into(), 9.into()).expect("valid gallery instance")
}

/// The graph and structure of [`staggered_theta`], for callers that sweep
/// view kinds themselves.
pub fn staggered_theta_parts() -> (Graph, AdversaryStructure) {
    let mut g = Graph::new();
    for (u, v) in [
        (0, 1),
        (1, 2),
        (2, 9), // route A (short, corruptible near D)
        (0, 3),
        (3, 4),
        (4, 7),
        (7, 9), // route B (corruptible in the middle)
        (0, 5),
        (5, 6),
        (6, 8),
        (8, 9), // route C (corruptible in the middle)
    ] {
        g.add_edge(u.into(), v.into());
    }
    let z = AdversaryStructure::from_sets([
        NodeSet::singleton(1u32.into()),
        NodeSet::singleton(4u32.into()),
        NodeSet::singleton(6u32.into()),
    ]);
    (g, z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{minimal_knowledge_radius, pka_attack_suite};
    use crate::cuts::{find_rmt_cut, zcpa_resilient};
    use crate::protocols::attacks::PKA_ATTACKS;
    use crate::protocols::ppa::pair_cut_exists;

    #[test]
    fn diamonds_have_the_documented_ground_truth() {
        assert!(find_rmt_cut(&unsolvable_diamond(ViewKind::AdHoc)).is_some());
        assert!(find_rmt_cut(&unsolvable_diamond(ViewKind::Full)).is_some());
        assert!(find_rmt_cut(&tolerant_diamond(ViewKind::AdHoc)).is_none());
    }

    #[test]
    fn staggered_theta_has_no_pair_cut() {
        let inst = staggered_theta(ViewKind::Full);
        assert!(!pair_cut_exists(&inst));
        assert!(
            find_rmt_cut(&inst).is_none(),
            "solvable with full knowledge"
        );
    }

    #[test]
    fn staggered_theta_is_unsolvable_ad_hoc() {
        let inst = staggered_theta(ViewKind::AdHoc);
        let w = find_rmt_cut(&inst).expect("the triple cut is locally plausible");
        // The documented witness (or an equivalent one) is found.
        assert!(w.cut.len() >= 3);
        assert!(!zcpa_resilient(&inst), "Z-CPA cannot solve it either");
    }

    #[test]
    fn staggered_theta_minimal_radius_is_two() {
        let (g, z) = staggered_theta_parts();
        assert_eq!(
            minimal_knowledge_radius(&g, &z, 0.into(), 9.into(), 4),
            Some(2)
        );
    }

    #[test]
    fn pka_at_radius_two_beats_zcpa_ad_hoc() {
        // The strict gap: the *same* network and adversary, solvable by
        // RMT-PKA with radius-2 knowledge, unsolvable by any safe ad hoc
        // algorithm (in particular Z-CPA).
        let inst = staggered_theta(ViewKind::Radius(2));
        let report = pka_attack_suite(&inst, 7, &PKA_ATTACKS, 99);
        assert!(report.all_correct(), "{report:?}");
        assert!(!zcpa_resilient(&staggered_theta(ViewKind::AdHoc)));
    }
}
