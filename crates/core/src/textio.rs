//! A plain-text instance format and parser, for the `rmt-cli` inspector and
//! for keeping regression instances in files.
//!
//! Line-oriented; `#` starts a comment; directives:
//!
//! ```text
//! # the tolerant diamond
//! edge 0 1
//! edge 0 2
//! edge 1 3
//! edge 2 3
//! corrupt 1          # one admissible corruption set per line
//! dealer 0
//! receiver 3
//! views adhoc        # adhoc | full | radius K   (default: adhoc)
//! ```
//!
//! Nodes are implicit from edges; `node K` adds an isolated node.

use std::fmt;
use std::str::FromStr;

use rmt_adversary::AdversaryStructure;
use rmt_graph::{Graph, ViewKind};
use rmt_sets::{NodeId, NodeSet};

use crate::instance::{Instance, InstanceError};

/// A parse failure, with the 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseInstanceError {
    /// 1-based line of the offending directive (0 for file-level errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseInstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseInstanceError {}

impl From<InstanceError> for ParseInstanceError {
    fn from(e: InstanceError) -> Self {
        ParseInstanceError {
            line: 0,
            message: e.to_string(),
        }
    }
}

/// Parses the text format into an [`Instance`].
///
/// # Errors
///
/// Returns a [`ParseInstanceError`] naming the offending line for syntax
/// problems, or wrapping the [`InstanceError`] for semantic ones (missing
/// endpoints, escaping structure, …).
pub fn parse_instance(text: &str) -> Result<Instance, ParseInstanceError> {
    let mut graph = Graph::new();
    let mut sets: Vec<NodeSet> = Vec::new();
    let mut dealer: Option<NodeId> = None;
    let mut receiver: Option<NodeId> = None;
    let mut views = ViewKind::AdHoc;

    let err = |line: usize, message: &str| ParseInstanceError {
        line,
        message: message.to_string(),
    };
    let parse_id = |line: usize, tok: &str| -> Result<NodeId, ParseInstanceError> {
        u32::from_str(tok)
            .map(NodeId::new)
            .map_err(|_| err(line, &format!("expected a node id, got `{tok}`")))
    };

    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut tokens = content.split_whitespace();
        let directive = tokens.next().expect("non-empty line has a token");
        let rest: Vec<&str> = tokens.collect();
        match directive {
            "edge" => {
                let [u, v] = rest.as_slice() else {
                    return Err(err(line, "edge takes exactly two node ids"));
                };
                graph.add_edge(parse_id(line, u)?, parse_id(line, v)?);
            }
            "node" => {
                let [v] = rest.as_slice() else {
                    return Err(err(line, "node takes exactly one node id"));
                };
                graph.add_node(parse_id(line, v)?);
            }
            "corrupt" => {
                if rest.is_empty() {
                    return Err(err(line, "corrupt needs at least one node id"));
                }
                let set: NodeSet = rest
                    .iter()
                    .map(|t| parse_id(line, t))
                    .collect::<Result<_, _>>()?;
                sets.push(set);
            }
            "dealer" => {
                let [v] = rest.as_slice() else {
                    return Err(err(line, "dealer takes exactly one node id"));
                };
                dealer = Some(parse_id(line, v)?);
            }
            "receiver" => {
                let [v] = rest.as_slice() else {
                    return Err(err(line, "receiver takes exactly one node id"));
                };
                receiver = Some(parse_id(line, v)?);
            }
            "views" => {
                views = match rest.as_slice() {
                    ["adhoc"] => ViewKind::AdHoc,
                    ["full"] => ViewKind::Full,
                    ["radius", k] => ViewKind::Radius(
                        usize::from_str(k).map_err(|_| err(line, "radius takes an integer"))?,
                    ),
                    _ => return Err(err(line, "views is `adhoc`, `full` or `radius K`")),
                };
            }
            other => return Err(err(line, &format!("unknown directive `{other}`"))),
        }
    }

    let dealer = dealer.ok_or_else(|| err(0, "missing `dealer` directive"))?;
    let receiver = receiver.ok_or_else(|| err(0, "missing `receiver` directive"))?;
    let z = AdversaryStructure::from_sets(sets);
    Ok(Instance::new(graph, z, views, dealer, receiver)?)
}

/// Serializes an instance back into the text format (round-trip friendly).
pub fn format_instance(inst: &Instance, views_label: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for v in inst.graph().nodes() {
        if inst.graph().degree(v) == 0 {
            let _ = writeln!(out, "node {}", v.raw());
        }
    }
    for (u, v) in inst.graph().edges() {
        let _ = writeln!(out, "edge {} {}", u.raw(), v.raw());
    }
    for m in inst.adversary().maximal_sets() {
        let ids: Vec<String> = m.iter().map(|v| v.raw().to_string()).collect();
        let _ = writeln!(out, "corrupt {}", ids.join(" "));
    }
    let _ = writeln!(out, "dealer {}", inst.dealer().raw());
    let _ = writeln!(out, "receiver {}", inst.receiver().raw());
    let _ = writeln!(out, "views {views_label}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIAMOND: &str = "\
# tolerant diamond
edge 0 1
edge 0 2
edge 1 3
edge 2 3
corrupt 1
dealer 0
receiver 3
views adhoc
";

    #[test]
    fn parses_the_diamond() {
        let inst = parse_instance(DIAMOND).unwrap();
        assert_eq!(inst.graph().node_count(), 4);
        assert_eq!(inst.graph().edge_count(), 4);
        assert_eq!(inst.dealer(), 0.into());
        assert_eq!(inst.receiver(), 3.into());
        assert!(inst.adversary().contains(&NodeSet::singleton(1.into())));
        assert!(crate::cuts::find_rmt_cut(&inst).is_none());
    }

    #[test]
    fn round_trips_through_format() {
        let inst = parse_instance(DIAMOND).unwrap();
        let text = format_instance(&inst, "adhoc");
        let again = parse_instance(&text).unwrap();
        assert_eq!(again.graph(), inst.graph());
        assert_eq!(again.adversary(), inst.adversary());
        assert_eq!(again.dealer(), inst.dealer());
    }

    #[test]
    fn views_variants_parse() {
        for (label, expect_nodes) in [("full", 4), ("radius 0", 1)] {
            let text = DIAMOND.replace("views adhoc", &format!("views {label}"));
            let inst = parse_instance(&text).unwrap();
            assert_eq!(inst.view(3.into()).node_count(), expect_nodes, "{label}");
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "edge 0 1\nedge nonsense\n";
        let e = parse_instance(bad).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));

        let e = parse_instance("edge 0 1 2\n").unwrap_err();
        assert!(e.message.contains("exactly two"));

        let e = parse_instance("teleport 0\n").unwrap_err();
        assert!(e.message.contains("unknown directive"));

        let e = parse_instance("edge 0 1\ndealer 0\n").unwrap_err();
        assert!(e.message.contains("receiver"));
    }

    #[test]
    fn semantic_errors_surface_from_instance_validation() {
        let e = parse_instance("edge 0 1\ncorrupt 9\ndealer 0\nreceiver 1\n").unwrap_err();
        assert!(e.message.contains("outside the graph"));
    }

    #[test]
    fn comments_and_isolated_nodes() {
        let text = "node 5 # lonely\nedge 0 1\ndealer 0\nreceiver 1\n";
        let inst = parse_instance(text).unwrap();
        assert!(inst.graph().contains_node(5.into()));
        assert_eq!(inst.graph().degree(5.into()), 0);
    }
}
