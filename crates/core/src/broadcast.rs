//! Reliable Broadcast with an honest dealer — the setting Z-CPA was born in
//! (Koo '04, Pelc–Peleg '05, PPS '14), which the paper's Section 4 adapts to
//! RMT.
//!
//! In Broadcast *every* honest player must decide on the dealer's value, not
//! just one receiver. The obstruction is the original **𝒵-pp cut**
//! (Definition 10 of the paper's appendix): a cut `C` partitioning the rest
//! into `A ∋ D` and `B ≠ ∅` with `C = C₁ ∪ C₂`, `C₁ ∈ 𝒵`, and
//! `𝒩(u) ∩ C₂ ∈ 𝒵_u` for all `u ∈ B`. Because the RMT notion is the same
//! condition anchored at a specific receiver, Broadcast is solvable iff RMT
//! is solvable *for every receiver* — which this module exploits: the
//! polynomial decider is one Z-CPA fixpoint per worst-case corruption set,
//! checked against full coverage.

use rmt_sets::{NodeId, NodeSet};

use crate::cuts::zcpa_fixpoint_broadcast;
use crate::instance::Instance;
use crate::protocols::zcpa::{ExplicitOracle, ZCpa};
use crate::protocols::Value;

/// A witness that a (broadcast) 𝒵-pp cut exists: some honest node is left
/// undecided by the worst-case fixpoint for corruption `c1 ∈ 𝒵`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BroadcastCutWitness {
    /// The admissible part C₁ of the cut.
    pub c1: NodeSet,
    /// The decided honest nodes (the C₂ part of the proof's cut).
    pub c2: NodeSet,
    /// The honest nodes left undecided (the component B).
    pub undecided: NodeSet,
}

/// Broadcast instances reuse [`Instance`]; the receiver field is irrelevant
/// (any non-dealer node works) and only the dealer is consulted here.
///
/// Returns the set of honest nodes the worst-case Z-CPA fixpoint certifies
/// against corruption `corrupted` — the broadcast *coverage*.
pub fn coverage(inst: &Instance, corrupted: &NodeSet) -> NodeSet {
    zcpa_fixpoint_broadcast(inst, corrupted)
}

/// The worst-case corruption sets for broadcast: maximal sets of 𝒵 minus
/// the (honest) dealer.
pub fn worst_case_corruptions(inst: &Instance) -> Vec<NodeSet> {
    let dealer = NodeSet::singleton(inst.dealer());
    rmt_adversary::AdversaryStructure::from_sets(
        inst.adversary()
            .maximal_sets()
            .iter()
            .map(|m| m.difference(&dealer)),
    )
    .maximal_sets()
    .to_vec()
}

/// Polynomial decider for Definition 10: a 𝒵-pp cut exists iff some
/// worst-case corruption leaves an honest node undecided.
pub fn zpp_cut_exists(inst: &Instance) -> Option<BroadcastCutWitness> {
    let d = inst.dealer();
    let everyone: NodeSet = inst.graph().nodes().clone();
    let corruptions = {
        let mut c = worst_case_corruptions(inst);
        if c.is_empty() {
            c.push(NodeSet::new()); // the trivial structure still needs connectivity
        }
        c
    };
    for t in corruptions {
        let decided = coverage(inst, &t);
        let mut required = everyone.difference(&t);
        required.remove(d);
        if !required.is_subset(&decided) {
            return Some(BroadcastCutWitness {
                c1: t.clone(),
                c2: decided.clone(),
                undecided: required.difference(&decided),
            });
        }
    }
    None
}

/// `true` iff Broadcast (with honest dealer) is solvable on the instance's
/// graph/structure/views — no Definition-10 𝒵-pp cut.
///
/// # Example
///
/// ```
/// use rmt_core::{broadcast, gallery};
/// use rmt_graph::ViewKind;
///
/// // RMT to the diamond's receiver is fine with 𝒵 = {{1}} — and so is
/// // broadcasting to everyone, since every node is a solvable receiver.
/// assert!(broadcast::solvable(&gallery::tolerant_diamond(ViewKind::AdHoc)));
/// assert!(!broadcast::solvable(&gallery::unsolvable_diamond(ViewKind::AdHoc)));
/// ```
pub fn solvable(inst: &Instance) -> bool {
    zpp_cut_exists(inst).is_none()
}

/// Exhaustive Definition-10 decider over all cuts, for cross-validation:
/// `C` with partition sides `A ∋ D`, `B ≠ ∅`, `C₁ = C ∩ T` maximal-WLOG.
pub fn zpp_cut_by_enumeration(inst: &Instance) -> bool {
    let d = inst.dealer();
    let g = inst.graph();
    let mut candidates = g.nodes().clone();
    candidates.remove(d);
    for c in candidates.subsets() {
        // WLOG B is one far component or any union thereof; taking the whole
        // far side is hardest for the ∀u∈B condition, but any component
        // works — so check per component, sharing the partition logic (and
        // the masked traversal) with the point-to-point decider.
        for comp in rmt_graph::traversal::components_avoiding(g, &c) {
            if comp.contains(d) {
                continue;
            }
            if crate::cuts::zpp::zpp_admissible_partition(inst, &c, &comp, None).is_some() {
                return true;
            }
        }
    }
    false
}

/// Builds the Z-CPA node for *broadcast*: identical to the RMT node except
/// that every node (there is no distinguished receiver) relays on deciding.
pub fn zcpa_broadcast_node(inst: &Instance, v: NodeId, input: Value) -> ZCpa<ExplicitOracle> {
    let mut node = ZCpa::node(inst, v, input);
    node.set_broadcast_mode();
    node
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt_adversary::AdversaryStructure;
    use rmt_graph::{generators, Graph, ViewKind};
    use rmt_sim::{Runner, SilentAdversary};

    fn adhoc(g: Graph, z_sets: &[&[u32]], d: u32) -> Instance {
        let z = AdversaryStructure::from_sets(
            z_sets
                .iter()
                .map(|s| s.iter().copied().collect::<NodeSet>()),
        );
        // Receiver is irrelevant for broadcast; pick any non-dealer node.
        let r = g.nodes().iter().find(|v| v.raw() != d).unwrap();
        Instance::new(g, z, ViewKind::AdHoc, d.into(), r).unwrap()
    }

    #[test]
    fn broadcast_on_complete_graph_tolerates_a_minority_structure() {
        let inst = adhoc(generators::complete(5), &[&[1], &[2]], 0);
        assert!(solvable(&inst));
    }

    #[test]
    fn broadcast_fails_where_one_receiver_fails() {
        // Diamond with both relays individually corruptible: node 3 cannot
        // be certified, so broadcast is unsolvable.
        let mut g = Graph::new();
        g.add_edge(0.into(), 1.into());
        g.add_edge(0.into(), 2.into());
        g.add_edge(1.into(), 3.into());
        g.add_edge(2.into(), 3.into());
        let inst = adhoc(g, &[&[1], &[2]], 0);
        let w = zpp_cut_exists(&inst).expect("cut exists");
        assert!(w.undecided.contains(3.into()));
    }

    #[test]
    fn deciders_agree_on_random_instances() {
        let mut rng = generators::seeded(808);
        for trial in 0..40 {
            let n = 5 + trial % 4;
            let g = generators::gnp_connected(n, 0.4, &mut rng);
            let z = crate::sampling::random_structure(g.nodes(), 3, 2, &mut rng);
            let inst = Instance::new(g, z, ViewKind::AdHoc, 0.into(), 1.into()).unwrap();
            assert_eq!(
                zpp_cut_exists(&inst).is_some(),
                zpp_cut_by_enumeration(&inst),
                "trial {trial}: {inst:?}"
            );
        }
    }

    #[test]
    fn simulated_broadcast_matches_coverage() {
        let mut rng = generators::seeded(809);
        for trial in 0..25 {
            let n = 5 + trial % 4;
            let g = generators::gnp_connected(n, 0.45, &mut rng);
            let z = crate::sampling::random_structure(g.nodes(), 2, 2, &mut rng);
            let inst = Instance::new(g.clone(), z, ViewKind::AdHoc, 0.into(), 1.into()).unwrap();
            for t in worst_case_corruptions(&inst) {
                let predicted = coverage(&inst, &t);
                let out = Runner::new(
                    g.clone(),
                    |v| zcpa_broadcast_node(&inst, v, 9),
                    SilentAdversary::new(t.clone()),
                )
                .run();
                for v in g.nodes() {
                    if v == inst.dealer() || t.contains(v) {
                        continue;
                    }
                    assert_eq!(
                        out.decision(v) == Some(9),
                        predicted.contains(v),
                        "trial {trial}, T = {t}, node {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn broadcast_solvable_iff_every_receiver_solvable() {
        // The RMT-per-receiver view of broadcast.
        let mut rng = generators::seeded(810);
        for trial in 0..25 {
            let n = 5 + trial % 3;
            let g = generators::gnp_connected(n, 0.4, &mut rng);
            let z = crate::sampling::random_structure(g.nodes(), 3, 2, &mut rng);
            let inst =
                Instance::new(g.clone(), z.clone(), ViewKind::AdHoc, 0.into(), 1.into()).unwrap();
            let broadcast_ok = solvable(&inst);
            let all_receivers_ok = g.nodes().iter().filter(|v| v.raw() != 0).all(|r| {
                let i = Instance::new(g.clone(), z.clone(), ViewKind::AdHoc, 0.into(), r).unwrap();
                crate::cuts::zcpa_resilient(&i)
            });
            assert_eq!(broadcast_ok, all_receivers_ok, "trial {trial}");
        }
    }
}
