//! The incremental decision engine: exact cut decisions under graph churn.
//!
//! A production deployment does not decide one frozen instance — links come
//! and go, nodes join, the adversary model gets re-estimated. Re-deciding
//! from scratch after every mutation pays the full anchored search again
//! even when the delta cannot possibly change the verdict's evidence.
//! [`IncrementalEngine`] keeps, per separator anchor, a *certificate* of the
//! last scan outcome together with the **footprint** the scan depended on,
//! and on each [`Delta`] invalidates only the certificates whose footprint
//! the delta touches.
//!
//! # Why the footprint rule is sound
//!
//! The outcome of scanning one anchor `(S, region)` (see
//! [`cuts::anchored`](crate::cuts::anchored)) is a pure function of:
//!
//! * the adjacency of `S ∪ region` — the connected-subset enumeration walks
//!   neighbours of region nodes, and every candidate cut is `N(B)` for some
//!   `B ⊆ region`;
//! * the per-node knowledge of region nodes — both partition checks
//!   ([`admissible_partition`](crate::cuts::rmt_cut) and its 𝒵-pp twin)
//!   consult only `𝒵_b` resp. local structures for `b ⊆ region`;
//! * the global structure 𝒵, the receiver, and the budget.
//!
//! So the certificate footprint `S ∪ region ∪ N(S ∪ region)` (taken at scan
//! time) covers everything but 𝒵: an edge delta `{u, v}` disjoint from it
//! cannot alter adjacency *inside* the scan (any edge changing a region
//! node's neighbourhood has an endpoint in the region), and a view-domain
//! change at a node outside the region cannot alter any `𝒵_b`. Footprints
//! cannot silently go stale either: extending `N(region)` requires an edge
//! at a region node, which invalidates the certificate first. Structure
//! changes invalidate everything ([`KnowledgeCache::rebuild`]).
//!
//! Decisions replay the sequential anchored deciders' control flow anchor
//! by anchor (fresh anchor enumeration, first witness in anchor order,
//! identical overflow and budget fallbacks) against the refreshed
//! [`KnowledgeCache`], so [`IncrementalEngine::decide_rmt`] /
//! [`IncrementalEngine::decide_zpp`] return **byte-identical** witnesses to
//! [`find_rmt_cut_anchored`](crate::cuts::find_rmt_cut_anchored) /
//! [`zpp_cut_by_enumeration_anchored`](crate::cuts::zpp_cut_by_enumeration_anchored)
//! on the mutated instance — the from-scratch deciders remain the
//! differential ground truth (`crates/core/tests/incremental_differential.rs`,
//! and E17 asserts the identity per delta).

use std::collections::HashMap;

use rmt_adversary::AdversaryStructure;
use rmt_graph::separators::CutAnchor;
use rmt_graph::traversal::neighborhood;
use rmt_graph::{Graph, ViewKind};
use rmt_obs::Registry;
use rmt_sets::{NodeId, NodeSet};

use crate::cuts::anchored::{
    instance_anchors, scan_rmt_anchor, scan_zpp_anchor, AnchorBudget, AnchorOutcome,
};
use crate::cuts::rmt_cut::{find_rmt_cut, RmtCutWitness};
use crate::cuts::zpp::{zpp_cut_by_enumeration, ZppCutWitness};
use crate::instance::{Instance, InstanceError};
use crate::knowledge::KnowledgeCache;

/// One instance mutation the engine can absorb incrementally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Delta {
    /// Add the edge `{u, v}` (endpoints are created if absent).
    AddEdge(NodeId, NodeId),
    /// Remove the edge `{u, v}` (a no-op if absent).
    RemoveEdge(NodeId, NodeId),
    /// Add an isolated node.
    AddNode(NodeId),
    /// Replace the global adversary structure.
    StructureChange(AdversaryStructure),
}

/// What one [`IncrementalEngine::apply`] invalidated.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ApplyStats {
    /// Per-node knowledge parts rebuilt by the cache refresh.
    pub parts_rebuilt: u64,
    /// Joint-domain memo entries dropped by the cache refresh.
    pub domains_dropped: u64,
    /// Anchor certificates (RMT and 𝒵-pp combined) dropped because their
    /// footprint touched the delta.
    pub certs_dropped: u64,
    /// `true` iff the delta forced a full rebuild (structure change).
    pub full_rebuild: bool,
}

/// A cached per-anchor scan outcome plus the state it depends on.
#[derive(Clone, Debug)]
struct Cert<W> {
    /// `None` = anchor exhausted without witness or overflow.
    outcome: Option<AnchorOutcome<W>>,
    /// `S ∪ region ∪ N(S ∪ region)` at scan time.
    footprint: NodeSet,
}

type CertKey = (NodeSet, NodeSet); // (separator, region)

/// An [`Instance`] plus the cached state needed to re-decide cheaply after
/// mutations: a refreshable [`KnowledgeCache`] and per-anchor scan
/// certificates keyed `(separator, region)`.
///
/// # Example
///
/// ```
/// use rmt_core::engine::{Delta, IncrementalEngine};
/// use rmt_core::{cuts, gallery};
/// use rmt_graph::ViewKind;
///
/// let inst = gallery::unsolvable_diamond(ViewKind::AdHoc);
/// let mut engine = IncrementalEngine::from_instance(&inst, ViewKind::AdHoc);
/// assert!(engine.decide_rmt().is_some()); // cut exists
/// engine.apply(Delta::AddEdge(0.into(), 3.into())).unwrap();
/// assert!(engine.decide_rmt().is_none()); // adjacent endpoints: no cut
/// // Every decision equals the from-scratch anchored decider's.
/// assert_eq!(
///     engine.decide_rmt(),
///     cuts::find_rmt_cut_anchored(engine.instance())
/// );
/// ```
pub struct IncrementalEngine {
    inst: Instance,
    views: ViewKind,
    budget: AnchorBudget,
    cache: KnowledgeCache,
    rmt_certs: HashMap<CertKey, Cert<RmtCutWitness>>,
    zpp_certs: HashMap<CertKey, Cert<ZppCutWitness>>,
}

impl IncrementalEngine {
    /// Builds an engine over a fresh instance. `views` is remembered so the
    /// view assignment can be re-derived after every mutation.
    pub fn new(
        graph: Graph,
        adversary: AdversaryStructure,
        views: ViewKind,
        dealer: NodeId,
        receiver: NodeId,
    ) -> Result<Self, InstanceError> {
        let inst = Instance::new(graph, adversary, views, dealer, receiver)?;
        Ok(IncrementalEngine::from_instance(&inst, views))
    }

    /// Builds an engine from an existing instance whose views were assigned
    /// uniformly with `views`.
    pub fn from_instance(inst: &Instance, views: ViewKind) -> Self {
        IncrementalEngine {
            cache: KnowledgeCache::new(inst),
            inst: inst.clone(),
            views,
            budget: AnchorBudget::default(),
            rmt_certs: HashMap::new(),
            zpp_certs: HashMap::new(),
        }
    }

    /// Replaces the anchor budget (dropping all certificates, which were
    /// scanned under the old one).
    pub fn with_budget(mut self, budget: AnchorBudget) -> Self {
        self.budget = budget;
        self.rmt_certs.clear();
        self.zpp_certs.clear();
        self
    }

    /// The current instance.
    pub fn instance(&self) -> &Instance {
        &self.inst
    }

    /// Live anchor certificates: `(rmt, zpp)` counts.
    pub fn cert_counts(&self) -> (usize, usize) {
        (self.rmt_certs.len(), self.zpp_certs.len())
    }

    /// Applies one mutation, invalidating only the cached knowledge and
    /// certificates whose footprint the delta touches.
    ///
    /// # Errors
    ///
    /// Returns the [`InstanceError`] if the mutated instance is ill-formed
    /// (e.g. a structure change whose support escapes the node set). The
    /// engine is left unchanged in that case.
    pub fn apply(&mut self, delta: Delta) -> Result<ApplyStats, InstanceError> {
        self.apply_inner(delta, None)
    }

    /// [`IncrementalEngine::apply`] with the invalidation recorded in `reg`:
    /// `cache.invalidate.parts`, `cache.invalidate.domains`,
    /// `cache.invalidate.certs`, `cache.invalidate.full`. All values are
    /// pure functions of the delta stream, so they are deterministic across
    /// runs and thread counts.
    pub fn apply_observed(
        &mut self,
        delta: Delta,
        reg: &Registry,
    ) -> Result<ApplyStats, InstanceError> {
        self.apply_inner(delta, Some(reg))
    }

    fn apply_inner(
        &mut self,
        delta: Delta,
        reg: Option<&Registry>,
    ) -> Result<ApplyStats, InstanceError> {
        let mut graph = self.inst.graph().clone();
        let mut endpoints = NodeSet::new();
        let mut new_structure = None;
        match delta {
            Delta::AddEdge(u, v) => {
                graph.add_edge(u, v);
                endpoints.insert(u);
                endpoints.insert(v);
            }
            Delta::RemoveEdge(u, v) => {
                graph.remove_edge(u, v);
                endpoints.insert(u);
                endpoints.insert(v);
            }
            Delta::AddNode(v) => {
                graph.add_node(v);
            }
            Delta::StructureChange(z) => new_structure = Some(z),
        }
        let structure_changed = new_structure.is_some();
        self.inst = match new_structure {
            Some(z) => Instance::new(
                graph,
                z,
                self.views,
                self.inst.dealer(),
                self.inst.receiver(),
            )?,
            // Graph-only delta: share 𝒵 instead of cloning and revalidating
            // it — the dominant apply cost on large structures.
            None => self.inst.with_graph(graph, self.views)?,
        };

        let mut stats = ApplyStats::default();
        if structure_changed {
            let cache = self.cache.rebuild(&self.inst);
            stats.parts_rebuilt = cache.parts_rebuilt;
            stats.domains_dropped = cache.domains_dropped;
            stats.certs_dropped = (self.rmt_certs.len() + self.zpp_certs.len()) as u64;
            stats.full_rebuild = true;
            self.rmt_certs.clear();
            self.zpp_certs.clear();
        } else {
            let (changed, cache) = self.cache.refresh(&self.inst);
            stats.parts_rebuilt = cache.parts_rebuilt;
            stats.domains_dropped = cache.domains_dropped;
            // Touched = delta endpoints (adjacency changed there even when
            // no view domain did, e.g. under Full views) ∪ changed-domain
            // nodes.
            let mut touched = endpoints;
            touched.union_with(&changed);
            if !touched.is_empty() {
                let before = self.rmt_certs.len() + self.zpp_certs.len();
                self.rmt_certs
                    .retain(|_, cert| cert.footprint.is_disjoint(&touched));
                self.zpp_certs
                    .retain(|_, cert| cert.footprint.is_disjoint(&touched));
                stats.certs_dropped = (before - self.rmt_certs.len() - self.zpp_certs.len()) as u64;
            }
        }
        if let Some(reg) = reg {
            reg.counter("cache.invalidate.parts")
                .add(stats.parts_rebuilt);
            reg.counter("cache.invalidate.domains")
                .add(stats.domains_dropped);
            reg.counter("cache.invalidate.certs")
                .add(stats.certs_dropped);
            reg.counter("cache.invalidate.full")
                .add(stats.full_rebuild as u64);
        }
        Ok(stats)
    }

    /// Decides the RMT-cut question on the current instance, re-scanning
    /// only anchors without a live certificate. Byte-identical to
    /// [`find_rmt_cut_anchored`](crate::cuts::find_rmt_cut_anchored).
    pub fn decide_rmt(&mut self) -> Option<RmtCutWitness> {
        self.decide_rmt_inner(None)
    }

    /// [`IncrementalEngine::decide_rmt`] with certificate reuse recorded in
    /// `reg` as `cache.cert_hits` / `cache.cert_misses`.
    pub fn decide_rmt_observed(&mut self, reg: &Registry) -> Option<RmtCutWitness> {
        self.decide_rmt_inner(Some(reg))
    }

    fn decide_rmt_inner(&mut self, reg: Option<&Registry>) -> Option<RmtCutWitness> {
        if self
            .inst
            .graph()
            .has_edge(self.inst.dealer(), self.inst.receiver())
        {
            return None;
        }
        let anchors = match instance_anchors(&self.inst, &self.budget) {
            Ok(anchors) => anchors,
            Err(_) => return find_rmt_cut(&self.inst),
        };
        let mut reuse = CertReuse::default();
        let mut verdict = None;
        for anchor in &anchors {
            let key = (anchor.separator.clone(), anchor.region.clone());
            let cert = match self.rmt_certs.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    reuse.hits += 1;
                    e.into_mut()
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    reuse.misses += 1;
                    let (outcome, _emitted) =
                        scan_rmt_anchor(&self.inst, &self.cache, anchor, &self.budget, None);
                    e.insert(Cert {
                        outcome,
                        footprint: anchor_footprint(self.inst.graph(), anchor),
                    })
                }
            };
            match &cert.outcome {
                Some(AnchorOutcome::Witness(w)) => {
                    verdict = Some(Some(w.clone()));
                    break;
                }
                Some(AnchorOutcome::Overflow) => {
                    verdict = Some(find_rmt_cut(&self.inst));
                    break;
                }
                None => {}
            }
        }
        reuse.record(reg);
        verdict.unwrap_or(None)
    }

    /// Decides the 𝒵-pp-cut question on the current instance, re-scanning
    /// only anchors without a live certificate. Byte-identical to
    /// [`zpp_cut_by_enumeration_anchored`](crate::cuts::zpp_cut_by_enumeration_anchored).
    pub fn decide_zpp(&mut self) -> Option<ZppCutWitness> {
        self.decide_zpp_inner(None)
    }

    /// [`IncrementalEngine::decide_zpp`] with certificate reuse recorded in
    /// `reg` as `cache.cert_hits` / `cache.cert_misses`.
    pub fn decide_zpp_observed(&mut self, reg: &Registry) -> Option<ZppCutWitness> {
        self.decide_zpp_inner(Some(reg))
    }

    fn decide_zpp_inner(&mut self, reg: Option<&Registry>) -> Option<ZppCutWitness> {
        if self
            .inst
            .graph()
            .has_edge(self.inst.dealer(), self.inst.receiver())
        {
            return None;
        }
        let anchors = match instance_anchors(&self.inst, &self.budget) {
            Ok(anchors) => anchors,
            Err(_) => return zpp_cut_by_enumeration(&self.inst),
        };
        let mut reuse = CertReuse::default();
        let mut verdict = None;
        for anchor in &anchors {
            let key = (anchor.separator.clone(), anchor.region.clone());
            let cert = match self.zpp_certs.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    reuse.hits += 1;
                    e.into_mut()
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    reuse.misses += 1;
                    let (outcome, _emitted) =
                        scan_zpp_anchor(&self.inst, anchor, &self.budget, None);
                    e.insert(Cert {
                        outcome,
                        footprint: anchor_footprint(self.inst.graph(), anchor),
                    })
                }
            };
            match &cert.outcome {
                Some(AnchorOutcome::Witness(w)) => {
                    verdict = Some(Some(w.clone()));
                    break;
                }
                Some(AnchorOutcome::Overflow) => {
                    verdict = Some(zpp_cut_by_enumeration(&self.inst));
                    break;
                }
                None => {}
            }
        }
        reuse.record(reg);
        verdict.unwrap_or(None)
    }
}

impl std::fmt::Debug for IncrementalEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IncrementalEngine")
            .field("instance", &self.inst)
            .field("rmt_certs", &self.rmt_certs.len())
            .field("zpp_certs", &self.zpp_certs.len())
            .finish()
    }
}

#[derive(Default)]
struct CertReuse {
    hits: u64,
    misses: u64,
}

impl CertReuse {
    fn record(&self, reg: Option<&Registry>) {
        if let Some(reg) = reg {
            reg.counter("cache.cert_hits").add(self.hits);
            reg.counter("cache.cert_misses").add(self.misses);
        }
    }
}

/// Everything a `(S, region)` anchor scan reads from the graph:
/// `S ∪ region ∪ N(S ∪ region)`.
fn anchor_footprint(g: &Graph, anchor: &CutAnchor) -> NodeSet {
    let mut fp = anchor.separator.union(&anchor.region);
    fp.union_with(&neighborhood(g, &fp));
    fp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cuts::{find_rmt_cut_anchored, zpp_cut_by_enumeration_anchored};
    use rmt_graph::generators;

    fn engine_and_mirror() -> (IncrementalEngine, Instance) {
        let g = generators::ring_with_chords(10, 2, &mut generators::seeded(0xE17));
        let z = rmt_adversary::threshold(g.nodes(), 2);
        let inst = Instance::new(g, z, ViewKind::AdHoc, 0.into(), 5.into()).unwrap();
        (
            IncrementalEngine::from_instance(&inst, ViewKind::AdHoc),
            inst,
        )
    }

    #[test]
    fn decisions_match_from_scratch_over_a_mutation_stream() {
        let (mut engine, _) = engine_and_mirror();
        let deltas = [
            Delta::AddEdge(1.into(), 4.into()),
            Delta::RemoveEdge(1.into(), 4.into()),
            Delta::RemoveEdge(0.into(), 1.into()),
            Delta::AddNode(12.into()),
            Delta::AddEdge(12.into(), 3.into()),
            Delta::AddEdge(0.into(), 1.into()),
        ];
        assert_eq!(
            engine.decide_rmt(),
            find_rmt_cut_anchored(engine.instance())
        );
        for (i, delta) in deltas.into_iter().enumerate() {
            engine.apply(delta).unwrap();
            assert_eq!(
                engine.decide_rmt(),
                find_rmt_cut_anchored(engine.instance()),
                "rmt after delta {i}"
            );
            assert_eq!(
                engine.decide_zpp(),
                zpp_cut_by_enumeration_anchored(engine.instance()),
                "zpp after delta {i}"
            );
        }
    }

    #[test]
    fn untouched_certificates_survive_a_far_away_delta() {
        let (mut engine, _) = engine_and_mirror();
        engine.decide_rmt();
        engine.decide_zpp();
        let (rmt, zpp) = engine.cert_counts();
        assert!(rmt > 0);
        // Mutate an edge; only footprint-touching certificates may drop.
        let stats = engine.apply(Delta::RemoveEdge(7.into(), 8.into())).unwrap();
        assert!(!stats.full_rebuild);
        let (rmt2, zpp2) = engine.cert_counts();
        assert_eq!(rmt + zpp - rmt2 - zpp2, stats.certs_dropped as usize);
        // And the next decision is still exact.
        assert_eq!(
            engine.decide_rmt(),
            find_rmt_cut_anchored(engine.instance())
        );
    }

    #[test]
    fn structure_change_invalidates_everything() {
        let (mut engine, inst) = engine_and_mirror();
        engine.decide_rmt();
        let z1 = rmt_adversary::threshold(inst.graph().nodes(), 1);
        let stats = engine.apply(Delta::StructureChange(z1)).unwrap();
        assert!(stats.full_rebuild);
        assert_eq!(engine.cert_counts(), (0, 0));
        assert_eq!(
            engine.decide_rmt(),
            find_rmt_cut_anchored(engine.instance())
        );
        assert_eq!(
            engine.decide_zpp(),
            zpp_cut_by_enumeration_anchored(engine.instance())
        );
    }

    #[test]
    fn ill_formed_delta_leaves_the_engine_unchanged() {
        let (mut engine, _) = engine_and_mirror();
        let before = engine.decide_rmt();
        // Structure support escapes the node set: rejected.
        let bad = AdversaryStructure::from_sets([NodeSet::singleton(99.into())]);
        assert!(engine.apply(Delta::StructureChange(bad)).is_err());
        assert_eq!(engine.decide_rmt(), before);
    }

    #[test]
    fn observed_apply_and_decide_record_counters() {
        let (mut engine, _) = engine_and_mirror();
        let reg = Registry::new();
        engine.decide_rmt_observed(&reg);
        assert!(reg.counter("cache.cert_misses").get() > 0);
        // Re-deciding an unchanged instance reuses every certificate.
        let misses = reg.counter("cache.cert_misses").get();
        engine.decide_rmt_observed(&reg);
        assert!(reg.counter("cache.cert_hits").get() > 0);
        assert_eq!(reg.counter("cache.cert_misses").get(), misses);
        engine
            .apply_observed(Delta::AddEdge(2.into(), 6.into()), &reg)
            .unwrap();
        assert!(reg.counter("cache.invalidate.parts").get() > 0);
        engine.decide_rmt_observed(&reg);
        // Plain and observed twins agree.
        let (mut twin, _) = engine_and_mirror();
        let twin_reg = Registry::new();
        twin.decide_rmt();
        twin.apply(Delta::AddEdge(2.into(), 6.into())).unwrap();
        assert_eq!(twin.decide_rmt(), engine.decide_rmt_observed(&twin_reg));
    }
}
