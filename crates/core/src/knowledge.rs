//! Joint-knowledge computations over an instance.
//!
//! The cut deciders evaluate `𝒵_B = ⊕_{v∈B} 𝒵^{V(γ(v))}` for very many node
//! sets `B`. [`KnowledgeCache`] precomputes every player's restricted
//! structure once and answers joint-membership queries with the cylinder
//! characterization (see `rmt-adversary`), avoiding any antichain blow-up.
//!
//! Since many candidate cuts induce the *same* receiver component `B`, the
//! cache additionally memoizes the joint domain `V(γ(B))` keyed on `B`'s
//! bitset: [`KnowledgeCache::joint_domain`] (and through it
//! [`KnowledgeCache::joint_contains`]) consults the memo first. The memo is
//! semantics-neutral shared state behind an `RwLock` — concurrent readers
//! never block each other after warm-up — and its effectiveness is reported
//! through [`KnowledgeCache::memo_hits`] / [`KnowledgeCache::memo_misses`],
//! which the sequential `_observed` deciders surface as
//! `rmt_cut.cache_hits` / `rmt_cut.cache_misses` counters.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use rmt_adversary::{JointView, RestrictedStructure};
use rmt_graph::Graph;
use rmt_sets::{NodeId, NodeSet};

use crate::instance::Instance;

/// What one [`KnowledgeCache::refresh`] (or full rebuild) invalidated.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InvalidationStats {
    /// Per-node restricted structures rebuilt because their view domain
    /// changed (or the node was new).
    pub parts_rebuilt: u64,
    /// Joint-domain memo entries dropped because they touched a changed
    /// node.
    pub domains_dropped: u64,
}

/// Precomputed per-node knowledge for fast joint queries.
pub struct KnowledgeCache {
    /// v ↦ 𝒵^{V(γ(v))}, indexed by node id.
    parts: Vec<Option<RestrictedStructure>>,
    /// B ↦ V(γ(B)) memo shared by all queries on this cache.
    domains: RwLock<HashMap<NodeSet, NodeSet>>,
    /// Memo lookups answered from the map.
    hits: AtomicU64,
    /// Memo lookups that had to compute (and then inserted).
    misses: AtomicU64,
}

impl Clone for KnowledgeCache {
    fn clone(&self) -> Self {
        KnowledgeCache {
            parts: self.parts.clone(),
            domains: RwLock::new(self.domains.read().expect("domain memo lock").clone()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for KnowledgeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KnowledgeCache")
            .field("parts", &self.parts)
            .field(
                "memoized_domains",
                &self.domains.read().expect("domain memo lock").len(),
            )
            .finish()
    }
}

impl KnowledgeCache {
    /// Builds the cache for an instance.
    pub fn new(inst: &Instance) -> Self {
        let size = inst.graph().nodes().last().map_or(0, |v| v.index() + 1);
        let mut parts = vec![None; size];
        for v in inst.graph().nodes() {
            let domain = inst.view_domain(v);
            parts[v.index()] = Some(RestrictedStructure::restrict(inst.adversary(), domain));
        }
        KnowledgeCache {
            parts,
            domains: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Reconciles the cache with `inst` after a topology mutation,
    /// rebuilding only what the mutation actually touched.
    ///
    /// For every node of `inst`, the cached part is kept iff its domain
    /// still equals the node's current view domain — valid because
    /// `𝒵^{V(γ(v))}` is a pure function of the (unchanged) global structure
    /// and that domain. Joint-domain memo entries are dropped iff their key
    /// intersects a changed node, for the same reason. Nodes removed from
    /// the graph lose their parts.
    ///
    /// Returns the set of nodes whose knowledge changed (rebuilt, added, or
    /// removed) plus invalidation statistics. **Precondition:** the global
    /// adversary structure of `inst` is the one this cache was built from;
    /// after a structure change call [`KnowledgeCache::rebuild`] instead.
    pub fn refresh(&mut self, inst: &Instance) -> (NodeSet, InvalidationStats) {
        let size = inst.graph().nodes().last().map_or(0, |v| v.index() + 1);
        if self.parts.len() < size {
            self.parts.resize(size, None);
        }
        let mut changed = NodeSet::new();
        let mut stats = InvalidationStats::default();
        for (index, slot) in self.parts.iter_mut().enumerate() {
            let v = NodeId::new(index as u32);
            if !inst.graph().nodes().contains(v) {
                if slot.take().is_some() {
                    changed.insert(v);
                }
                continue;
            }
            let domain = inst.view_domain(v);
            let stale = match slot.as_ref() {
                Some(part) => part.domain() != &domain,
                None => true,
            };
            if stale {
                *slot = Some(RestrictedStructure::restrict(inst.adversary(), domain));
                changed.insert(v);
                stats.parts_rebuilt += 1;
            }
        }
        if !changed.is_empty() {
            let mut memo = self.domains.write().expect("domain memo lock");
            let before = memo.len();
            memo.retain(|b, _| b.is_disjoint(&changed));
            stats.domains_dropped = (before - memo.len()) as u64;
        }
        (changed, stats)
    }

    /// Rebuilds every part and empties the memo — the refresh path for
    /// adversary-structure changes, where no cached knowledge survives.
    /// Returns the same statistics shape as [`KnowledgeCache::refresh`].
    pub fn rebuild(&mut self, inst: &Instance) -> InvalidationStats {
        let dropped = self.domains.read().expect("domain memo lock").len() as u64;
        let rebuilt = KnowledgeCache::new(inst);
        let stats = InvalidationStats {
            parts_rebuilt: inst.graph().nodes().len() as u64,
            domains_dropped: dropped,
        };
        self.parts = rebuilt.parts;
        *self.domains.write().expect("domain memo lock") = HashMap::new();
        stats
    }

    /// The restricted structure 𝒵^{V(γ(v))} of one player.
    ///
    /// # Panics
    ///
    /// Panics if `v` has no cached knowledge (not a node of the instance).
    pub fn part(&self, v: NodeId) -> &RestrictedStructure {
        self.parts
            .get(v.index())
            .and_then(Option::as_ref)
            .unwrap_or_else(|| panic!("no knowledge cached for {v}"))
    }

    /// The domain V(γ(B)) = ∪_{v∈B} V(γ(v)), memoized on `B`'s bitset.
    pub fn joint_domain(&self, b: &NodeSet) -> NodeSet {
        if let Some(domain) = self.domains.read().expect("domain memo lock").get(b) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return domain.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut out = NodeSet::new();
        for v in b {
            out.union_with(self.part(v).domain());
        }
        self.domains
            .write()
            .expect("domain memo lock")
            .insert(b.clone(), out.clone());
        out
    }

    /// Memo lookups served from the component-keyed domain memo.
    pub fn memo_hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Memo lookups that computed the domain fresh.
    pub fn memo_misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Membership in 𝒵_B = ⊕_{v∈B} 𝒵^{V(γ(v))}, via the cylinder test:
    /// `set ⊆ V(γ(B))` and `set ∩ V(γ(v)) ∈ 𝒵_v` for every `v ∈ B`.
    pub fn joint_contains(&self, b: &NodeSet, set: &NodeSet) -> bool {
        set.is_subset(&self.joint_domain(b))
            && b.iter().all(|v| {
                let p = self.part(v);
                p.contains(&set.intersection(p.domain()))
            })
    }

    /// Materializes 𝒵_B as a [`JointView`] (for callers needing the antichain
    /// or repeated heavy queries).
    pub fn joint_view(&self, b: &NodeSet) -> JointView {
        b.iter().map(|v| self.part(v).clone()).collect()
    }

    /// The joint *topology* view γ(B) for the same node set, from the
    /// instance's assignment.
    pub fn joint_graph(inst: &Instance, b: &NodeSet) -> Graph {
        inst.views().joint_view(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt_graph::{generators, ViewKind};

    fn set(ids: &[u32]) -> NodeSet {
        ids.iter().copied().collect()
    }

    fn instance() -> Instance {
        let g = generators::cycle(6);
        let z = rmt_adversary::threshold(g.nodes(), 2);
        Instance::new(g, z, ViewKind::AdHoc, 0.into(), 3.into()).unwrap()
    }

    #[test]
    fn joint_domain_unions_view_domains() {
        let inst = instance();
        let cache = KnowledgeCache::new(&inst);
        // Stars of 1 and 2 on the 6-cycle: {0,1,2} ∪ {1,2,3}.
        assert_eq!(cache.joint_domain(&set(&[1, 2])), set(&[0, 1, 2, 3]));
    }

    #[test]
    fn joint_contains_matches_materialized_join() {
        let inst = instance();
        let cache = KnowledgeCache::new(&inst);
        let b = set(&[1, 2, 4]);
        let view = cache.joint_view(&b);
        let materialized = view.materialize();
        for cand in cache.joint_domain(&b).subsets() {
            assert_eq!(
                cache.joint_contains(&b, &cand),
                materialized.contains(&cand),
                "{cand}"
            );
        }
    }

    #[test]
    fn joint_knowledge_can_exceed_global_structure() {
        // Corollary 2 in action: the joint structure is a (possibly strict)
        // superset of the true restriction.
        let inst = instance();
        let cache = KnowledgeCache::new(&inst);
        let b = set(&[1, 4]); // disjoint stars: {0,1,2} and {3,4,5}
                              // {0, 2, 3, 5} has two nodes in each view domain... t = 2 traces: each
                              // trace has 2 nodes, admissible locally, so jointly admissible —
        let cand = set(&[0, 2, 3, 5]);
        assert!(cache.joint_contains(&b, &cand));
        // — although globally inadmissible (4 > t = 2).
        assert!(!inst.adversary().contains(&cand));
    }

    #[test]
    fn empty_b_admits_only_empty_set() {
        let inst = instance();
        let cache = KnowledgeCache::new(&inst);
        assert!(cache.joint_contains(&NodeSet::new(), &NodeSet::new()));
        assert!(!cache.joint_contains(&NodeSet::new(), &set(&[1])));
    }

    #[test]
    fn refresh_rebuilds_only_touched_parts() {
        let inst = instance();
        let mut cache = KnowledgeCache::new(&inst);
        let _ = cache.joint_domain(&set(&[0, 1])); // touches the delta
        let _ = cache.joint_domain(&set(&[4, 5])); // does not
                                                   // Add the chord 0–3: under AdHoc views only 0 and 3 see new domains.
        let mut g = inst.graph().clone();
        g.add_edge(0.into(), 3.into());
        let inst2 = Instance::new(
            g,
            inst.adversary().clone(),
            ViewKind::AdHoc,
            0.into(),
            3.into(),
        )
        .unwrap();
        let (changed, stats) = cache.refresh(&inst2);
        assert_eq!(changed, set(&[0, 3]));
        assert_eq!(stats.parts_rebuilt, 2);
        assert_eq!(stats.domains_dropped, 1); // {0,1} out, {4,5} kept
        let fresh = KnowledgeCache::new(&inst2);
        for v in inst2.graph().nodes() {
            assert_eq!(cache.part(v), fresh.part(v), "{v}");
            assert_eq!(
                cache.joint_domain(&NodeSet::singleton(v)),
                fresh.joint_domain(&NodeSet::singleton(v))
            );
        }
        // A refresh against an unchanged instance is a no-op.
        let (changed, stats) = cache.refresh(&inst2);
        assert!(changed.is_empty());
        assert_eq!(stats, InvalidationStats::default());
    }

    #[test]
    fn rebuild_matches_a_fresh_cache() {
        let inst = instance();
        let mut cache = KnowledgeCache::new(&inst);
        let _ = cache.joint_domain(&set(&[1, 2]));
        let z2 = rmt_adversary::threshold(inst.graph().nodes(), 1);
        let inst2 = Instance::new(
            inst.graph().clone(),
            z2,
            ViewKind::AdHoc,
            0.into(),
            3.into(),
        )
        .unwrap();
        let stats = cache.rebuild(&inst2);
        assert_eq!(stats.parts_rebuilt, 6);
        assert_eq!(stats.domains_dropped, 1);
        let fresh = KnowledgeCache::new(&inst2);
        for v in inst2.graph().nodes() {
            assert_eq!(cache.part(v), fresh.part(v), "{v}");
        }
    }

    #[test]
    fn domain_memo_hits_on_repeats_and_stays_correct() {
        let inst = instance();
        let cache = KnowledgeCache::new(&inst);
        let fresh = KnowledgeCache::new(&inst);
        for b in [set(&[1, 2]), set(&[2, 4]), set(&[1, 2]), set(&[1, 2])] {
            // Memoized answers equal a never-memoizing baseline's.
            let mut expected = NodeSet::new();
            for v in &b {
                expected.union_with(fresh.part(v).domain());
            }
            assert_eq!(cache.joint_domain(&b), expected);
        }
        assert_eq!(cache.memo_misses(), 2);
        assert_eq!(cache.memo_hits(), 2);
        // Cloning keeps the memo content but resets the statistics.
        let cloned = cache.clone();
        assert_eq!(cloned.memo_hits(), 0);
        assert_eq!(cloned.joint_domain(&set(&[1, 2])), set(&[0, 1, 2, 3]));
        assert_eq!(cloned.memo_hits(), 1);
    }
}
