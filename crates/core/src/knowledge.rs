//! Joint-knowledge computations over an instance.
//!
//! The cut deciders evaluate `𝒵_B = ⊕_{v∈B} 𝒵^{V(γ(v))}` for very many node
//! sets `B`. [`KnowledgeCache`] precomputes every player's restricted
//! structure once and answers joint-membership queries with the cylinder
//! characterization (see `rmt-adversary`), avoiding any antichain blow-up.

use rmt_adversary::{JointView, RestrictedStructure};
use rmt_graph::Graph;
use rmt_sets::{NodeId, NodeSet};

use crate::instance::Instance;

/// Precomputed per-node knowledge for fast joint queries.
#[derive(Clone, Debug)]
pub struct KnowledgeCache {
    /// v ↦ 𝒵^{V(γ(v))}, indexed by node id.
    parts: Vec<Option<RestrictedStructure>>,
}

impl KnowledgeCache {
    /// Builds the cache for an instance.
    pub fn new(inst: &Instance) -> Self {
        let size = inst.graph().nodes().last().map_or(0, |v| v.index() + 1);
        let mut parts = vec![None; size];
        for v in inst.graph().nodes() {
            let domain = inst.view_domain(v);
            parts[v.index()] = Some(RestrictedStructure::restrict(inst.adversary(), domain));
        }
        KnowledgeCache { parts }
    }

    /// The restricted structure 𝒵^{V(γ(v))} of one player.
    ///
    /// # Panics
    ///
    /// Panics if `v` has no cached knowledge (not a node of the instance).
    pub fn part(&self, v: NodeId) -> &RestrictedStructure {
        self.parts
            .get(v.index())
            .and_then(Option::as_ref)
            .unwrap_or_else(|| panic!("no knowledge cached for {v}"))
    }

    /// The domain V(γ(B)) = ∪_{v∈B} V(γ(v)).
    pub fn joint_domain(&self, b: &NodeSet) -> NodeSet {
        let mut out = NodeSet::new();
        for v in b {
            out.union_with(self.part(v).domain());
        }
        out
    }

    /// Membership in 𝒵_B = ⊕_{v∈B} 𝒵^{V(γ(v))}, via the cylinder test:
    /// `set ⊆ V(γ(B))` and `set ∩ V(γ(v)) ∈ 𝒵_v` for every `v ∈ B`.
    pub fn joint_contains(&self, b: &NodeSet, set: &NodeSet) -> bool {
        set.is_subset(&self.joint_domain(b))
            && b.iter().all(|v| {
                let p = self.part(v);
                p.contains(&set.intersection(p.domain()))
            })
    }

    /// Materializes 𝒵_B as a [`JointView`] (for callers needing the antichain
    /// or repeated heavy queries).
    pub fn joint_view(&self, b: &NodeSet) -> JointView {
        b.iter().map(|v| self.part(v).clone()).collect()
    }

    /// The joint *topology* view γ(B) for the same node set, from the
    /// instance's assignment.
    pub fn joint_graph(inst: &Instance, b: &NodeSet) -> Graph {
        inst.views().joint_view(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt_graph::{generators, ViewKind};

    fn set(ids: &[u32]) -> NodeSet {
        ids.iter().copied().collect()
    }

    fn instance() -> Instance {
        let g = generators::cycle(6);
        let z = rmt_adversary::threshold(g.nodes(), 2);
        Instance::new(g, z, ViewKind::AdHoc, 0.into(), 3.into()).unwrap()
    }

    #[test]
    fn joint_domain_unions_view_domains() {
        let inst = instance();
        let cache = KnowledgeCache::new(&inst);
        // Stars of 1 and 2 on the 6-cycle: {0,1,2} ∪ {1,2,3}.
        assert_eq!(cache.joint_domain(&set(&[1, 2])), set(&[0, 1, 2, 3]));
    }

    #[test]
    fn joint_contains_matches_materialized_join() {
        let inst = instance();
        let cache = KnowledgeCache::new(&inst);
        let b = set(&[1, 2, 4]);
        let view = cache.joint_view(&b);
        let materialized = view.materialize();
        for cand in cache.joint_domain(&b).subsets() {
            assert_eq!(
                cache.joint_contains(&b, &cand),
                materialized.contains(&cand),
                "{cand}"
            );
        }
    }

    #[test]
    fn joint_knowledge_can_exceed_global_structure() {
        // Corollary 2 in action: the joint structure is a (possibly strict)
        // superset of the true restriction.
        let inst = instance();
        let cache = KnowledgeCache::new(&inst);
        let b = set(&[1, 4]); // disjoint stars: {0,1,2} and {3,4,5}
                              // {0, 2, 3, 5} has two nodes in each view domain... t = 2 traces: each
                              // trace has 2 nodes, admissible locally, so jointly admissible —
        let cand = set(&[0, 2, 3, 5]);
        assert!(cache.joint_contains(&b, &cand));
        // — although globally inadmissible (4 > t = 2).
        assert!(!inst.adversary().contains(&cand));
    }

    #[test]
    fn empty_b_admits_only_empty_set() {
        let inst = instance();
        let cache = KnowledgeCache::new(&inst);
        assert!(cache.joint_contains(&NodeSet::new(), &NodeSet::new()));
        assert!(!cache.joint_contains(&NodeSet::new(), &set(&[1])));
    }
}
