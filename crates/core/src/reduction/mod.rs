//! The self-reducibility of RMT (Section 5, Theorem 9) and poly-time
//! uniqueness of Z-CPA (Corollary 10).
//!
//! * [`star`] — the 𝒢′ family of Figure 1 and the protocol Π solving RMT on
//!   it.
//! * [`oracle`] — the Decision Protocol: Z-CPA's membership check
//!   `N ∉ 𝒵_v` answered by simulating the coupled runs `e₀ˡ / e₁ˡ` of Π,
//!   making Z-CPA-with-Π a fully polynomial algorithm whenever Π is.

pub mod oracle;
pub mod star;

pub use oracle::PiSimulationOracle;
pub use star::{PiStar, StarInstance};
