//! The family 𝒢′ of Figure 1 and the protocol Π for it.
//!
//! A 𝒢′ instance has a dealer `D′`, a middle set `A(G′)` and a receiver
//! `R′`; the only edges connect every middle node to both endpoints. In the
//! self-reduction, a node `v` running Z-CPA derives such an instance from
//! its own neighbourhood: `A(G′)` is the set of neighbours that relayed
//! values, `𝒵′ = 𝒵_v` (restricted to the middle set), and `R′ = v`.
//!
//! The protocol Π here is the natural 2-round RMT protocol on stars: the
//! dealer sends its value to the middle, the middle relays, and the
//! receiver decides on `x` iff the class of middle nodes that relayed `x`
//! is **not** admissible in 𝒵′ (so it contains an honest witness). Π is
//! trivially fully polynomial — which by Theorem 9 is exactly what makes
//! Z-CPA-with-Π fully polynomial on the corresponding promise family.

use std::collections::BTreeMap;

use rmt_adversary::AdversaryStructure;
use rmt_graph::Graph;
use rmt_sets::{NodeId, NodeSet};
use rmt_sim::{Envelope, NodeContext, Protocol};

use crate::protocols::Value;

/// A 𝒢′ (Figure 1) instance: `D′ — A(G′) — R′` with structure 𝒵′ over the
/// middle set.
#[derive(Clone, Debug)]
pub struct StarInstance {
    graph: Graph,
    dealer: NodeId,
    middle: NodeSet,
    receiver: NodeId,
    structure: AdversaryStructure,
}

impl StarInstance {
    /// Builds the instance over an explicit middle set, keeping the middle
    /// nodes' identities and allocating fresh ids for `D′` and `R′`.
    ///
    /// `structure` is clipped to the middle set (the paper's footnote 3).
    ///
    /// # Panics
    ///
    /// Panics if `middle` is empty.
    pub fn new(middle: NodeSet, structure: &AdversaryStructure) -> Self {
        assert!(!middle.is_empty(), "a star instance needs a middle set");
        let first_free = middle.last().expect("non-empty").raw() + 1;
        let dealer = NodeId::new(first_free);
        let receiver = NodeId::new(first_free + 1);
        let mut graph = Graph::new();
        for m in &middle {
            graph.add_edge(dealer, m);
            graph.add_edge(m, receiver);
        }
        StarInstance {
            graph,
            dealer,
            middle: middle.clone(),
            receiver,
            structure: structure.restrict_sets(&middle),
        }
    }

    /// The star graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The dealer `D′`.
    pub fn dealer(&self) -> NodeId {
        self.dealer
    }

    /// The middle set `A(G′)`.
    pub fn middle(&self) -> &NodeSet {
        &self.middle
    }

    /// The receiver `R′`.
    pub fn receiver(&self) -> NodeId {
        self.receiver
    }

    /// The structure 𝒵′ (over the middle set).
    pub fn structure(&self) -> &AdversaryStructure {
        &self.structure
    }

    /// Whether RMT is solvable on this instance — i.e. whether it belongs
    /// to the promise family 𝒢′ of Figure 1 (no RMT 𝒵-pp cut).
    ///
    /// On a star the only D′–R′ cut is the whole middle set, so a cut
    /// exists iff some partition `A = C₁ ∪ C₂` has `C₁ ∈ 𝒵′` and
    /// `C₂ ∈ 𝒵′` (the receiver sees the whole middle). Equivalently:
    /// solvable iff `A ∖ Z ∉ 𝒵′` for every maximal `Z ∈ 𝒵′`.
    pub fn solvable(&self) -> bool {
        if self.structure.is_trivial() {
            return true;
        }
        self.structure
            .maximal_sets()
            .iter()
            .all(|z| !self.structure.contains(&self.middle.difference(z)))
    }

    /// Builds node `v`'s Π instance for this star (see [`PiStar`]).
    pub fn pi_node(&self, v: NodeId, input: Value) -> PiStar {
        PiStar {
            id: v,
            dealer: self.dealer,
            receiver: self.receiver,
            structure: self.structure.clone(),
            input: (v == self.dealer).then_some(input),
            decision: (v == self.dealer).then_some(input),
            relayed: false,
            local_steps: 0,
        }
    }
}

/// Π — the natural RMT protocol on 𝒢′ instances.
///
/// Fully polynomial: two rounds, one message per edge, and local
/// computation linear in the middle set times |𝒵′| (tracked in
/// [`PiStar::local_steps`] so the self-reduction can enforce the paper's
/// explicit bound B on subroutine computations).
#[derive(Clone, Debug)]
pub struct PiStar {
    id: NodeId,
    dealer: NodeId,
    receiver: NodeId,
    structure: AdversaryStructure,
    input: Option<Value>,
    decision: Option<Value>,
    relayed: bool,
    /// Local computation steps spent in decision checks.
    pub local_steps: u64,
}

impl Protocol for PiStar {
    type Payload = Value;
    type Decision = Value;

    fn start(&mut self, ctx: &NodeContext) -> Vec<(NodeId, Value)> {
        match self.input {
            Some(x) if self.id == self.dealer => ctx.neighbors.iter().map(|n| (n, x)).collect(),
            _ => Vec::new(),
        }
    }

    fn on_round(&mut self, _ctx: &NodeContext, inbox: &[Envelope<Value>]) -> Vec<(NodeId, Value)> {
        if self.id == self.dealer || self.decision.is_some() {
            return Vec::new();
        }
        if self.id == self.receiver {
            // Accumulate one value per middle sender; decide when a class
            // escapes 𝒵′.
            let mut classes: BTreeMap<Value, NodeSet> = BTreeMap::new();
            for env in inbox {
                classes.entry(env.payload).or_default().insert(env.from);
            }
            for (x, class) in &classes {
                self.local_steps += self.structure.maximal_sets().len().max(1) as u64;
                if !self.structure.contains(class) {
                    self.decision = Some(*x);
                    break;
                }
            }
            return Vec::new();
        }
        // Middle node: relay the dealer's value once.
        if !self.relayed {
            if let Some(env) = inbox.iter().find(|e| e.from == self.dealer) {
                self.relayed = true;
                self.decision = Some(env.payload);
                return vec![(self.receiver, env.payload)];
            }
        }
        Vec::new()
    }

    fn decision(&self) -> Option<Value> {
        self.decision
    }

    fn is_terminated(&self) -> bool {
        self.decision.is_some() || self.relayed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt_sim::{Runner, SilentAdversary};

    fn set(ids: &[u32]) -> NodeSet {
        ids.iter().copied().collect()
    }

    fn star(middle: &[u32], z_sets: &[&[u32]]) -> StarInstance {
        let z = AdversaryStructure::from_sets(
            z_sets
                .iter()
                .map(|s| s.iter().copied().collect::<NodeSet>()),
        );
        StarInstance::new(middle.iter().copied().collect(), &z)
    }

    #[test]
    fn construction_matches_figure_1() {
        let s = star(&[1, 2, 3], &[&[1]]);
        assert_eq!(s.graph().node_count(), 5);
        assert_eq!(s.graph().edge_count(), 6);
        assert_eq!(s.graph().degree(s.dealer()), 3);
        assert_eq!(s.graph().degree(s.receiver()), 3);
        assert!(!s.graph().has_edge(s.dealer(), s.receiver()));
    }

    #[test]
    fn solvability_is_the_partition_condition() {
        // 𝒵′ = {{1}}: complement {2,3} ∉ 𝒵′ → solvable.
        assert!(star(&[1, 2, 3], &[&[1]]).solvable());
        // 𝒵′ = {{1},{2,3}}: partition {1} ∪ {2,3} both admissible → not.
        assert!(!star(&[1, 2, 3], &[&[1], &[2, 3]]).solvable());
        // Trivial structure: always solvable.
        assert!(star(&[1], &[]).solvable());
    }

    #[test]
    fn pi_delivers_on_solvable_stars_under_silence() {
        let s = star(&[1, 2, 3], &[&[1]]);
        let out = Runner::new(
            s.graph().clone(),
            |v| s.pi_node(v, 9),
            SilentAdversary::new(set(&[1])),
        )
        .run();
        // Honest class {2,3} ∉ 𝒵′ certifies.
        assert_eq!(out.decision(s.receiver()), Some(9));
    }

    #[test]
    fn pi_abstains_when_the_honest_class_is_admissible() {
        let s = star(&[1, 2], &[&[1], &[2]]);
        assert!(!s.solvable());
        let out = Runner::new(
            s.graph().clone(),
            |v| s.pi_node(v, 9),
            SilentAdversary::new(set(&[1])),
        )
        .run();
        assert_eq!(out.decision(s.receiver()), None);
    }

    #[test]
    fn pi_counts_local_steps() {
        let s = star(&[1, 2], &[&[1]]);
        let out = Runner::new(
            s.graph().clone(),
            |v| s.pi_node(v, 3),
            SilentAdversary::new(NodeSet::new()),
        )
        .run();
        let r = out.protocol(s.receiver()).unwrap();
        assert!(r.local_steps > 0);
    }
}
