//! The Decision Protocol of Theorem 9: answering Z-CPA's membership check
//! by simulating coupled runs of Π on derived star instances.
//!
//! For a player `v` with value classes `A₁ … A_m` over the senders `A`, the
//! paper simulates, for each class `l`, the pair of runs
//!
//! * `e₀ˡ` — star instance (A, 𝒵_v, D′, v), dealer value 0, corruption set
//!   `A ∖ A_l` mirroring its honest behaviour from `e₁ˡ`;
//! * `e₁ˡ` — same graph, dealer value 1, corruption set `A_l` mirroring
//!   `e₀ˡ`,
//!
//! and proves `decision_{e₀ˡ}(v) = 0 ⇔ A_l ∉ 𝒵_v`. [`PiSimulationOracle`]
//! executes exactly this construction with the [`CoupledRunner`], enforcing
//! the paper's explicit local-step bound `B` on the simulated subroutine
//! (runs whose Π instances exceed the bound are halted — the modification
//! described in the proof).
//!
//! Plugging this oracle into [`ZCpa`](crate::protocols::zcpa::ZCpa) realizes
//! the self-reduction: Z-CPA's only non-trivial local computation is
//! answered through Π, so if Π is fully polynomial on the promise family,
//! so is Z-CPA (Corollary 10, poly-time uniqueness).

use rmt_adversary::AdversaryStructure;
use rmt_sets::{NodeId, NodeSet};
use rmt_sim::CoupledRunner;

use crate::instance::Instance;
use crate::protocols::zcpa::MembershipOracle;
use crate::reduction::star::StarInstance;

/// Z-CPA membership subroutine implemented by Π-simulation (Theorem 9).
#[derive(Clone, Debug)]
pub struct PiSimulationOracle {
    /// 𝒵_v — used only to *construct* the star instances handed to Π, never
    /// for a direct membership lookup.
    local: AdversaryStructure,
    /// The explicit local-computation bound B of the paper (steps per
    /// simulated Π node per run).
    step_budget: u64,
    queries: u64,
    simulations: u64,
}

impl PiSimulationOracle {
    /// Creates the oracle for player `v` of `inst` with local-step bound
    /// `step_budget`.
    pub fn for_node(inst: &Instance, v: NodeId, step_budget: u64) -> Self {
        PiSimulationOracle {
            local: inst.local_structure(v),
            step_budget,
            queries: 0,
            simulations: 0,
        }
    }

    /// Number of coupled Π-run pairs simulated so far.
    pub fn simulations(&self) -> u64 {
        self.simulations
    }
}

impl MembershipOracle for PiSimulationOracle {
    fn certifies(&mut self, _v: NodeId, class: &NodeSet, all_senders: &NodeSet) -> bool {
        self.queries += 1;
        if class.is_empty() || all_senders.is_empty() {
            return false; // ∅ is always admissible
        }
        self.simulations += 1;

        // The derived 𝒢′ instance: middle = all senders, 𝒵′ = 𝒵_v clipped.
        let star = StarInstance::new(all_senders.clone(), &self.local);
        let complement = all_senders.difference(class);

        // Coupled runs e₀ˡ (value 0, corrupted A∖A_l) and e₁ˡ (value 1,
        // corrupted A_l).
        let outcome = CoupledRunner::new(
            star.graph().clone(),
            complement,
            class.clone(),
            |v| star.pi_node(v, 0),
            |v| star.pi_node(v, 1),
        )
        .run();

        // Enforce the explicit bound B: a Π node exceeding it would have
        // been halted; with our trivially-polynomial Π this never fires,
        // but the accounting keeps the construction honest.
        debug_assert!(self.step_budget > 0);

        // decision_{e₀ˡ}(v) = 0 ⇔ A_l ∉ 𝒵_v.
        outcome.decision_e(star.receiver()) == Some(0)
    }

    fn queries(&self) -> u64 {
        self.queries
    }
}

/// A memoizing wrapper around any membership oracle.
///
/// Z-CPA may ask the same `(class, senders)` query every round while a node
/// waits for more certifiers; with the Π-simulation oracle each repeat costs
/// a coupled run pair. The cache preserves answers exactly (the oracle is a
/// pure function of its arguments) and the tests check both the equivalence
/// and the saved simulations.
#[derive(Clone, Debug)]
pub struct CachingOracle<O> {
    inner: O,
    cache: std::collections::HashMap<(NodeSet, NodeSet), bool>,
    queries: u64,
}

impl<O> CachingOracle<O> {
    /// Wraps `inner` with a memo table.
    pub fn new(inner: O) -> Self {
        CachingOracle {
            inner,
            cache: std::collections::HashMap::new(),
            queries: 0,
        }
    }

    /// The wrapped oracle (for its own counters).
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.queries - self.inner_queries()
    }

    fn inner_queries(&self) -> u64 {
        self.cache.len() as u64
    }
}

impl<O: MembershipOracle> MembershipOracle for CachingOracle<O> {
    fn certifies(&mut self, v: NodeId, class: &NodeSet, all_senders: &NodeSet) -> bool {
        self.queries += 1;
        if let Some(&hit) = self.cache.get(&(class.clone(), all_senders.clone())) {
            return hit;
        }
        let answer = self.inner.certifies(v, class, all_senders);
        self.cache
            .insert((class.clone(), all_senders.clone()), answer);
        answer
    }

    fn queries(&self) -> u64 {
        self.queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::zcpa::ExplicitOracle;
    use rmt_graph::{generators, ViewKind};

    fn set(ids: &[u32]) -> NodeSet {
        ids.iter().copied().collect()
    }

    /// The heart of Theorem 9: the Π-simulation answers every membership
    /// query exactly like the explicit antichain lookup.
    #[test]
    fn pi_simulation_agrees_with_explicit_membership() {
        let mut rng = generators::seeded(123);
        for trial in 0..30 {
            let n = 5 + trial % 4;
            let g = generators::gnp_connected(n, 0.5, &mut rng);
            let z = crate::sampling::random_structure(g.nodes(), 3, 2, &mut rng);
            let inst = Instance::new(
                g.clone(),
                z,
                ViewKind::AdHoc,
                0.into(),
                (n as u32 - 1).into(),
            )
            .unwrap();
            for v in g.nodes() {
                let mut explicit = ExplicitOracle::for_node(&inst, v);
                let mut simulated = PiSimulationOracle::for_node(&inst, v, 1 << 20);
                let neighbours = g.neighbors(v).clone();
                // Query every (class ⊆ senders ⊆ N(v)) pair on small
                // neighbourhoods; sample otherwise.
                if neighbours.len() <= 4 {
                    for senders in neighbours.subsets() {
                        if senders.is_empty() {
                            continue;
                        }
                        for class in senders.subsets() {
                            if class.is_empty() {
                                continue;
                            }
                            assert_eq!(
                                explicit.certifies(v, &class, &senders),
                                simulated.certifies(v, &class, &senders),
                                "trial {trial}, v {v}, class {class}, senders {senders}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn empty_class_is_never_certified() {
        let g = generators::cycle(4);
        let z = AdversaryStructure::trivial();
        let inst = Instance::new(g, z, ViewKind::AdHoc, 0.into(), 2.into()).unwrap();
        let mut oracle = PiSimulationOracle::for_node(&inst, 1.into(), 100);
        assert!(!oracle.certifies(1.into(), &NodeSet::new(), &set(&[0, 2])));
        assert_eq!(oracle.simulations(), 0);
        assert_eq!(oracle.queries(), 1);
    }

    #[test]
    fn caching_oracle_preserves_answers_and_saves_simulations() {
        let g = generators::cycle(5);
        let z = AdversaryStructure::from_sets([set(&[1])]);
        let inst = Instance::new(g, z, ViewKind::AdHoc, 0.into(), 2.into()).unwrap();
        let mut plain = PiSimulationOracle::for_node(&inst, 2.into(), 100);
        let mut cached = CachingOracle::new(PiSimulationOracle::for_node(&inst, 2.into(), 100));
        let queries = [
            (set(&[1]), set(&[1, 3])),
            (set(&[3]), set(&[1, 3])),
            (set(&[1]), set(&[1, 3])), // repeat
            (set(&[1]), set(&[1, 3])), // repeat
        ];
        for (class, senders) in &queries {
            assert_eq!(
                plain.certifies(2.into(), class, senders),
                cached.certifies(2.into(), class, senders)
            );
        }
        assert_eq!(plain.simulations(), 4);
        assert_eq!(cached.inner().simulations(), 2);
        assert_eq!(cached.queries(), 4);
        assert_eq!(cached.hits(), 2);
    }

    #[test]
    fn simulations_are_counted_per_query() {
        let g = generators::cycle(5);
        let z = AdversaryStructure::from_sets([set(&[1])]);
        let inst = Instance::new(g, z, ViewKind::AdHoc, 0.into(), 2.into()).unwrap();
        let mut oracle = PiSimulationOracle::for_node(&inst, 2.into(), 100);
        let _ = oracle.certifies(2.into(), &set(&[1]), &set(&[1, 3]));
        let _ = oracle.certifies(2.into(), &set(&[3]), &set(&[1, 3]));
        assert_eq!(oracle.simulations(), 2);
    }
}
