//! Classical adversary models expressed as general structures.
//!
//! The general adversary model subsumes the earlier threshold models; this
//! module materializes them so the classical results become test cases of
//! the general machinery:
//!
//! * global threshold — re-exported from `rmt_adversary::threshold`;
//! * **t-locally bounded** (Koo '04): at most `t` corruptions in *every*
//!   neighbourhood — the model CPA was designed for. Its trace on a
//!   neighbourhood is the local threshold trace, which is why classic CPA is
//!   Z-CPA's threshold instantiation (tested in `protocols::cpa` and here at
//!   the characterization level).

use rmt_adversary::AdversaryStructure;
use rmt_graph::Graph;
use rmt_sets::{NodeId, NodeSet};

/// The t-locally-bounded structure on `g`: all node sets `S` with
/// `|S ∩ 𝒩(v)| ≤ t` for every node `v`, as an explicit antichain.
///
/// Enumerated by a DFS over include/exclude decisions with saturation
/// pruning; exponential in the worst case and intended for the
/// experiment-scale instances (`n ≲ 20`). Returns `None` if more than
/// `max_antichain` maximal sets accumulate.
pub fn local_threshold_structure(
    g: &Graph,
    t: usize,
    max_antichain: usize,
) -> Option<AdversaryStructure> {
    let nodes: Vec<NodeId> = g.nodes().iter().collect();
    let mut acc = AdversaryStructure::trivial();
    let mut current = NodeSet::new();

    fn admissible(g: &Graph, s: &NodeSet, t: usize) -> bool {
        g.nodes()
            .iter()
            .all(|v| g.neighbors(v).intersection(s).len() <= t)
    }

    fn dfs(
        g: &Graph,
        nodes: &[NodeId],
        idx: usize,
        current: &mut NodeSet,
        t: usize,
        acc: &mut AdversaryStructure,
        max_antichain: usize,
    ) -> bool {
        if idx == nodes.len() {
            // `current` is admissible by construction; record (the antichain
            // keeps only maximal sets).
            acc.add_set(current.clone());
            return acc.maximal_sets().len() <= max_antichain;
        }
        let v = nodes[idx];
        // Try including v first (finds maximal sets earlier, pruning more).
        current.insert(v);
        let ok_with = admissible(g, current, t);
        let mut alive = true;
        if ok_with {
            alive = dfs(g, nodes, idx + 1, current, t, acc, max_antichain);
        }
        current.remove(v);
        if alive {
            // Excluding v can still lead to maximal sets not containing v.
            alive = dfs(g, nodes, idx + 1, current, t, acc, max_antichain);
        }
        alive
    }

    let within_budget = dfs(g, &nodes, 0, &mut current, t, &mut acc, max_antichain);
    within_budget.then_some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use crate::protocols::cpa::CpaClassic;
    use rmt_graph::{generators, ViewKind};
    use rmt_sim::{Runner, SilentAdversary};

    #[test]
    fn every_member_respects_every_neighbourhood() {
        let g = generators::cycle(6);
        let z = local_threshold_structure(&g, 1, 1 << 12).unwrap();
        for m in z.maximal_sets() {
            for v in g.nodes() {
                assert!(g.neighbors(v).intersection(m).len() <= 1, "{m} at {v}");
            }
        }
        // On a 6-cycle with t = 1, opposite pairs like {0,3} are admissible…
        assert!(z.contains(&[0u32, 3].into_iter().collect()));
        // …but adjacent-in-some-neighbourhood pairs are not.
        assert!(!z.contains(&[0u32, 2].into_iter().collect()));
    }

    #[test]
    fn trace_on_a_neighbourhood_is_the_threshold_trace() {
        // The defining property connecting Koo's model to Z-CPA's local view.
        let mut rng = generators::seeded(42);
        let g = generators::gnp_connected(7, 0.5, &mut rng);
        let t = 1;
        let z = local_threshold_structure(&g, t, 1 << 14).unwrap();
        for v in g.nodes() {
            let nbrs = g.neighbors(v);
            let trace = z.restrict_sets(nbrs);
            let threshold = rmt_adversary::local_threshold_trace(nbrs, t);
            for s in nbrs.subsets() {
                // Every ≤t subset of a neighbourhood extends to an admissible
                // global set (it is itself admissible), so the traces agree.
                assert_eq!(trace.contains(&s), threshold.contains(&s), "{v}: {s}");
            }
        }
    }

    #[test]
    fn cpa_matches_the_general_characterization_in_koos_model() {
        // Classic CPA (the t+1 rule) is resilient exactly where the general
        // Z-CPA characterization says the t-local structure permits —
        // Koo's model as a special case of Theorems 7+8.
        let mut rng = generators::seeded(43);
        for trial in 0..12 {
            let n = 5 + trial % 3;
            let g = generators::gnp_connected(n, 0.55, &mut rng);
            let t = 1;
            let d = NodeId::new(0);
            let r = NodeId::new(n as u32 - 1);
            if g.has_edge(d, r) {
                continue;
            }
            let Some(z) = local_threshold_structure(&g, t, 1 << 14) else {
                continue;
            };
            let inst = Instance::new(g.clone(), z, ViewKind::AdHoc, d, r).unwrap();
            let predicted = crate::cuts::zcpa_resilient(&inst);
            // Check CPA against every worst-case silent corruption.
            let observed = inst.worst_case_corruptions().iter().all(|corr| {
                Runner::new(
                    g.clone(),
                    |v| CpaClassic::node(d, r, t, v, 6),
                    SilentAdversary::new(corr.clone()),
                )
                .run()
                .decision(r)
                    == Some(6)
            });
            assert_eq!(predicted, observed, "trial {trial}: {inst:?}");
        }
    }

    #[test]
    fn antichain_budget_is_respected() {
        let g = generators::complete(8);
        assert!(local_threshold_structure(&g, 2, 1).is_none());
        assert!(local_threshold_structure(&g, 2, 1 << 16).is_some());
    }
}
