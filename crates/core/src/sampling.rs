//! Randomized instance samplers shared by tests, property tests and the
//! experiment harness.
//!
//! Everything here takes an explicit RNG (see `rmt_graph::generators::seeded`)
//! so experiments are reproducible.

use rand::Rng;
use rmt_adversary::AdversaryStructure;
use rmt_graph::{generators, Graph, ViewKind};
use rmt_sets::{NodeId, NodeSet};

use crate::instance::Instance;

/// A random monotone adversary structure over `universe`: up to `max_sets`
/// maximal sets, each of up to `max_size` nodes.
pub fn random_structure(
    universe: &NodeSet,
    max_sets: usize,
    max_size: usize,
    rng: &mut impl Rng,
) -> AdversaryStructure {
    let pool: Vec<NodeId> = universe.iter().collect();
    let n_sets = rng.random_range(0..=max_sets);
    AdversaryStructure::from_sets((0..n_sets).map(|_| {
        let size = rng.random_range(0..=max_size.min(pool.len()));
        (0..size)
            .map(|_| pool[rng.random_range(0..pool.len())])
            .collect::<NodeSet>()
    }))
}

/// A random connected RMT instance: G(n, p) forced connected, a random
/// structure (avoiding making D or R all-powerful is left to
/// [`Instance::worst_case_corruptions`]), dealer 0, receiver n−1.
pub fn random_instance(
    n: usize,
    p: f64,
    views: ViewKind,
    max_sets: usize,
    max_size: usize,
    rng: &mut impl Rng,
) -> Instance {
    let g = generators::gnp_connected(n, p, rng);
    let z = random_structure(g.nodes(), max_sets, max_size, rng);
    let d = NodeId::new(0);
    let r = NodeId::new(n as u32 - 1);
    Instance::new(g, z, views, d, r).expect("sampler produces valid instances")
}

/// A random *non-adjacent-endpoints* instance (the interesting case for the
/// cut characterizations): resamples until D and R are not neighbours.
pub fn random_instance_nonadjacent(
    n: usize,
    p: f64,
    views: ViewKind,
    max_sets: usize,
    max_size: usize,
    rng: &mut impl Rng,
) -> Instance {
    loop {
        let inst = random_instance(n, p, views, max_sets, max_size, rng);
        if !inst.graph().has_edge(inst.dealer(), inst.receiver()) {
            return inst;
        }
    }
}

/// A threshold instance on an explicit graph: global threshold `t`, given
/// views.
pub fn threshold_instance(g: Graph, t: usize, views: ViewKind, d: u32, r: u32) -> Instance {
    let z = rmt_adversary::threshold(g.nodes(), t);
    Instance::new(g, z, views, d.into(), r.into()).expect("valid threshold instance")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_structure_stays_in_universe() {
        let mut rng = generators::seeded(5);
        let u: NodeSet = [0u32, 2, 4, 6].into_iter().collect();
        for _ in 0..50 {
            let z = random_structure(&u, 4, 3, &mut rng);
            assert!(z.invariant_holds());
            for m in z.maximal_sets() {
                assert!(m.is_subset(&u));
                assert!(m.len() <= 3);
            }
        }
    }

    #[test]
    fn random_instances_are_valid_and_connected() {
        let mut rng = generators::seeded(6);
        for _ in 0..20 {
            let inst = random_instance(8, 0.3, ViewKind::AdHoc, 3, 2, &mut rng);
            assert!(inst.endpoints_connected());
            assert_eq!(inst.graph().node_count(), 8);
        }
    }

    #[test]
    fn nonadjacent_sampler_avoids_the_edge() {
        let mut rng = generators::seeded(7);
        for _ in 0..20 {
            let inst = random_instance_nonadjacent(7, 0.4, ViewKind::AdHoc, 3, 2, &mut rng);
            assert!(!inst.graph().has_edge(inst.dealer(), inst.receiver()));
        }
    }
}
