//! Reliable Message Transmission under partial knowledge and general
//! adversaries — the core library of the PODC 2016 reproduction.
//!
//! This crate implements the paper's contribution on top of the workspace
//! substrates (`rmt-sets`, `rmt-adversary`, `rmt-graph`, `rmt-sim`):
//!
//! * [`Instance`] — the RMT instance 𝓘 = (G, 𝒵, γ, D, R) of the Partial
//!   Knowledge Model, with local structures 𝒵_v and joint knowledge 𝒵_B
//!   ([`knowledge`]);
//! * [`cuts`] — the **RMT-cut** (Definition 3) and **RMT 𝒵-pp cut**
//!   (Definition 7) deciders: the exact feasibility characterizations of
//!   Theorems 3+5 and 7+8;
//! * [`protocols`] — **RMT-PKA** (Protocol 1) with its full-message-set
//!   decision subroutine, **Z-CPA** for RMT as a protocol *scheme* with a
//!   pluggable membership oracle, the classic **CPA** baseline, and the
//!   Byzantine attack strategies;
//! * [`analysis`] — feasibility characterization, minimal-knowledge radius,
//!   attack-suite sweeps, and the executable scenario-swap lower bound;
//! * [`reduction`] — the 𝒢′ star family (Figure 1), the protocol Π, and the
//!   Π-simulation membership oracle realizing the self-reduction of
//!   Theorem 9 (poly-time uniqueness of Z-CPA, Corollary 10);
//! * [`sampling`] — reproducible random instance generators for tests and
//!   experiments.
//!
//! # Quickstart
//!
//! ```
//! use rmt_core::{analysis, protocols, Instance};
//! use rmt_graph::{generators, ViewKind};
//! use rmt_sets::NodeSet;
//! use rmt_sim::SilentAdversary;
//!
//! // A 5-cycle where one specific node may be Byzantine.
//! let g = generators::cycle(5);
//! let z = rmt_adversary::AdversaryStructure::from_sets(
//!     [NodeSet::singleton(1u32.into())],
//! );
//! let inst = Instance::new(g, z, ViewKind::AdHoc, 0.into(), 2.into()).unwrap();
//!
//! // The characterization says RMT is possible…
//! assert!(analysis::characterize(&inst).solvable());
//!
//! // …and RMT-PKA delivers even with node 1 refusing to cooperate.
//! let out = protocols::rmt_pka::run_pka(
//!     &inst,
//!     42,
//!     SilentAdversary::new(NodeSet::singleton(1u32.into())),
//! );
//! assert_eq!(out.decision(inst.receiver()), Some(42));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod broadcast;
pub mod cuts;
pub mod engine;
pub mod gallery;
mod instance;
pub mod knowledge;
pub mod models;
pub mod protocols;
pub mod reduction;
pub mod sampling;
pub mod textio;

pub use engine::{ApplyStats, Delta, IncrementalEngine};
pub use instance::{Instance, InstanceError};
pub use knowledge::{InvalidationStats, KnowledgeCache};
pub use protocols::Value;
