//! Separator-anchored cut search: the fast exact deciders.
//!
//! The exhaustive deciders scan all `2^(n-2)` subsets of `V∖{D,R}` even
//! though almost none of them are D–R cuts. This module searches the same
//! space through its *structure* instead:
//!
//! 1. **Only receiver components matter.** Both cut conditions
//!    (Definitions 3 and 7) are monotone in the cut for a fixed receiver
//!    component `B`: if any cut `C` with `comp_R(G∖C) = B` admits a
//!    partition, then so does the minimal one, `C = N(B)` (shrinking `C`
//!    shrinks every trace tested against the downward-closed structures).
//!    A cut therefore exists **iff** some valid component
//!    `B ∋ R` (connected, `D ∉ N[B]`) makes `N(B)` admissible.
//! 2. **Separator anchors partition the components.** Every valid `B` is
//!    charged to exactly one minimal D–R separator — the D-side
//!    minimalization `S*(B) = N(comp_D(G ∖ N(B))) ⊆ N(B)` — so scanning,
//!    per anchor `S` from [`rmt_graph::separators`], the connected subsets
//!    of `S`'s receiver-side region whose neighbourhood contains `S`
//!    visits every candidate exactly once, with no cross-anchor
//!    deduplication ([`rmt_graph::separators::scan_anchor`]). The anchors
//!    are independent, which is what the rmt-par twins parallelize over.
//! 3. **Everything is allocation-light.** Component extraction is masked
//!    BFS (no graph clones) and the [`KnowledgeCache`] memoizes
//!    `V(γ(B))` per component bitset.
//!
//! The searches are **budgeted**: if the separator enumeration or a
//! per-anchor component scan exceeds [`AnchorBudget`], the decider falls
//! back to the exhaustive scan — so the verdict is exact in every case,
//! and the exhaustive deciders remain the differential ground truth (see
//! `crates/core/tests/anchored_differential.rs`).
//!
//! Witnesses may differ from the exhaustive deciders' (the search order
//! differs), but they are always genuine: every returned witness verifies
//! via [`is_rmt_cut`](super::is_rmt_cut) / [`is_zpp_cut`](super::is_zpp_cut).

use rmt_graph::separators::{cut_anchors, scan_anchor, AnchorScan, CutAnchor};
use rmt_obs::{Counter, Registry};

use crate::instance::Instance;
use crate::knowledge::KnowledgeCache;

use super::rmt_cut::{admissible_partition, find_rmt_cut, find_rmt_cut_observed, RmtCutWitness};
use super::zpp::{zpp_admissible_partition, zpp_cut_by_enumeration, ZppCutWitness};

/// Budgets bounding the anchored search. Exceeding either one triggers the
/// exact exhaustive fallback (counted as `*.exhaustive_fallbacks`), so the
/// budgets trade speed, never correctness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AnchorBudget {
    /// Maximum number of minimal D–R separators to enumerate.
    pub max_separators: usize,
    /// Maximum connected subsets emitted per anchor scan.
    pub max_components_per_anchor: u64,
}

impl Default for AnchorBudget {
    fn default() -> Self {
        AnchorBudget {
            max_separators: 4096,
            max_components_per_anchor: 1 << 20,
        }
    }
}

/// How scanning one anchor ended, when it did not simply run dry: either a
/// witness was found or the component budget overflowed (→ exhaustive
/// fallback). `None` from the scan helpers means "anchor exhausted, keep
/// going" — exactly the shape [`rmt_par::search_min`] wants, which is how
/// the sequential scan and the parallel twins stay witness-identical.
#[derive(Clone, Debug)]
pub(crate) enum AnchorOutcome<W> {
    /// A witness was found at this anchor.
    Witness(W),
    /// The per-anchor component budget ran out.
    Overflow,
}

/// The anchor list for an instance's D–R cut search. Endpoint adjacency
/// must be ruled out by the caller (no cut exists then).
pub(crate) fn instance_anchors(
    inst: &Instance,
    budget: &AnchorBudget,
) -> Result<Vec<CutAnchor>, rmt_graph::separators::SeparatorBudgetExceeded> {
    cut_anchors(
        inst.graph(),
        inst.dealer(),
        inst.receiver(),
        budget.max_separators,
    )
}

/// Scans one anchor for an RMT-cut witness; returns the outcome and the
/// number of connected subsets emitted (for the `components_enumerated`
/// counter).
pub(crate) fn scan_rmt_anchor(
    inst: &Instance,
    cache: &KnowledgeCache,
    anchor: &CutAnchor,
    budget: &AnchorBudget,
    partition_checks: Option<&Counter>,
) -> (Option<AnchorOutcome<RmtCutWitness>>, u64) {
    let mut found = None;
    let stats = scan_anchor(
        inst.graph(),
        anchor,
        inst.receiver(),
        budget.max_components_per_anchor,
        |b, cut| match admissible_partition(inst, cache, cut, b, partition_checks) {
            Some((c1, c2)) => {
                found = Some(RmtCutWitness {
                    cut: cut.clone(),
                    c1,
                    c2,
                    receiver_component: b.clone(),
                });
                false
            }
            None => true,
        },
    );
    let outcome = match stats.outcome {
        AnchorScan::Exhausted => None,
        AnchorScan::Stopped => Some(AnchorOutcome::Witness(
            found.expect("scan stops only on a witness"),
        )),
        AnchorScan::BudgetExceeded => Some(AnchorOutcome::Overflow),
    };
    (outcome, stats.emitted)
}

/// Scans one anchor for a 𝒵-pp-cut witness; same contract as
/// [`scan_rmt_anchor`].
pub(crate) fn scan_zpp_anchor(
    inst: &Instance,
    anchor: &CutAnchor,
    budget: &AnchorBudget,
    plausibility_checks: Option<&Counter>,
) -> (Option<AnchorOutcome<ZppCutWitness>>, u64) {
    let mut found = None;
    let stats = scan_anchor(
        inst.graph(),
        anchor,
        inst.receiver(),
        budget.max_components_per_anchor,
        |b, cut| match zpp_admissible_partition(inst, cut, b, plausibility_checks) {
            Some((c1, c2)) => {
                found = Some(ZppCutWitness {
                    cut: cut.clone(),
                    c1,
                    c2,
                });
                false
            }
            None => true,
        },
    );
    let outcome = match stats.outcome {
        AnchorScan::Exhausted => None,
        AnchorScan::Stopped => Some(AnchorOutcome::Witness(
            found.expect("scan stops only on a witness"),
        )),
        AnchorScan::BudgetExceeded => Some(AnchorOutcome::Overflow),
    };
    (outcome, stats.emitted)
}

/// Separator-anchored RMT-cut search with the default [`AnchorBudget`]:
/// same verdict as [`find_rmt_cut`](super::find_rmt_cut), orders of
/// magnitude less work on instances beyond `n ≈ 14`.
///
/// # Example
///
/// ```
/// use rmt_core::{cuts, gallery};
/// use rmt_graph::ViewKind;
///
/// let inst = gallery::unsolvable_diamond(ViewKind::AdHoc);
/// let w = cuts::find_rmt_cut_anchored(&inst).expect("cut exists");
/// // Anchored witnesses always verify against the ground-truth checker.
/// let cache = rmt_core::KnowledgeCache::new(&inst);
/// assert!(cuts::is_rmt_cut(&inst, &cache, &w.cut).is_some());
/// ```
pub fn find_rmt_cut_anchored(inst: &Instance) -> Option<RmtCutWitness> {
    find_rmt_cut_anchored_with(inst, &AnchorBudget::default())
}

/// [`find_rmt_cut_anchored`] with an explicit budget (tests use tiny
/// budgets to exercise the exhaustive fallback).
pub fn find_rmt_cut_anchored_with(inst: &Instance, budget: &AnchorBudget) -> Option<RmtCutWitness> {
    if inst.graph().has_edge(inst.dealer(), inst.receiver()) {
        return None;
    }
    let anchors = match instance_anchors(inst, budget) {
        Ok(anchors) => anchors,
        Err(_) => return find_rmt_cut(inst),
    };
    let cache = KnowledgeCache::new(inst);
    for anchor in &anchors {
        match scan_rmt_anchor(inst, &cache, anchor, budget, None).0 {
            Some(AnchorOutcome::Witness(w)) => return Some(w),
            Some(AnchorOutcome::Overflow) => return find_rmt_cut(inst),
            None => {}
        }
    }
    None
}

/// [`find_rmt_cut_anchored`] with the search effort recorded in `reg`:
///
/// * `rmt_cut.separators_enumerated` — anchors scanned;
/// * `rmt_cut.components_enumerated` — connected subsets emitted across
///   the anchor scans;
/// * `rmt_cut.partition_checks` — `(C₁, C₂)` partitions tested against 𝒵_B
///   (same name and meaning as the exhaustive decider's);
/// * `rmt_cut.cache_hits` / `rmt_cut.cache_misses` — the
///   [`KnowledgeCache`] joint-domain memo's effectiveness;
/// * `rmt_cut.exhaustive_fallbacks` — budget overflows that re-ran the
///   exhaustive decider;
/// * `rmt_cut.anchored_ns` — wall time of the whole search (histogram).
///
/// The cache hit/miss counters are recorded by this sequential variant
/// only: under the parallel twin their values would depend on worker
/// interleaving, and the parallel observed deciders guarantee
/// thread-count-deterministic counters.
pub fn find_rmt_cut_anchored_observed(inst: &Instance, reg: &Registry) -> Option<RmtCutWitness> {
    find_rmt_cut_anchored_observed_with(inst, reg, &AnchorBudget::default())
}

/// [`find_rmt_cut_anchored_observed`] with an explicit budget.
pub fn find_rmt_cut_anchored_observed_with(
    inst: &Instance,
    reg: &Registry,
    budget: &AnchorBudget,
) -> Option<RmtCutWitness> {
    let _phase = reg.phase("rmt_cut.anchored");
    let _timer = reg.timer("rmt_cut.anchored_ns");
    if inst.graph().has_edge(inst.dealer(), inst.receiver()) {
        return None;
    }
    let anchors = {
        let _p = reg.phase("rmt_cut.anchored.anchors");
        instance_anchors(inst, budget)
    };
    let anchors = match anchors {
        Ok(anchors) => anchors,
        Err(_) => {
            reg.counter("rmt_cut.exhaustive_fallbacks").inc();
            return find_rmt_cut_observed(inst, reg);
        }
    };
    let _scan = reg.phase("rmt_cut.anchored.scan");
    let separators_enumerated = reg.counter("rmt_cut.separators_enumerated");
    let components_enumerated = reg.counter("rmt_cut.components_enumerated");
    let partition_checks = reg.counter("rmt_cut.partition_checks");
    let cache = KnowledgeCache::new(inst);
    let record_cache = |cache: &KnowledgeCache| {
        reg.counter("rmt_cut.cache_hits").add(cache.memo_hits());
        reg.counter("rmt_cut.cache_misses").add(cache.memo_misses());
    };
    for anchor in &anchors {
        separators_enumerated.inc();
        let (outcome, emitted) =
            scan_rmt_anchor(inst, &cache, anchor, budget, Some(&partition_checks));
        components_enumerated.add(emitted);
        match outcome {
            Some(AnchorOutcome::Witness(w)) => {
                record_cache(&cache);
                return Some(w);
            }
            Some(AnchorOutcome::Overflow) => {
                record_cache(&cache);
                reg.counter("rmt_cut.exhaustive_fallbacks").inc();
                return find_rmt_cut_observed(inst, reg);
            }
            None => {}
        }
    }
    record_cache(&cache);
    None
}

/// Separator-anchored 𝒵-pp-cut search with the default [`AnchorBudget`]:
/// same verdict as [`zpp_cut_by_enumeration`](super::zpp_cut_by_enumeration).
pub fn zpp_cut_by_enumeration_anchored(inst: &Instance) -> Option<ZppCutWitness> {
    zpp_cut_by_enumeration_anchored_with(inst, &AnchorBudget::default())
}

/// [`zpp_cut_by_enumeration_anchored`] with an explicit budget.
pub fn zpp_cut_by_enumeration_anchored_with(
    inst: &Instance,
    budget: &AnchorBudget,
) -> Option<ZppCutWitness> {
    if inst.graph().has_edge(inst.dealer(), inst.receiver()) {
        return None;
    }
    let anchors = match instance_anchors(inst, budget) {
        Ok(anchors) => anchors,
        Err(_) => return zpp_cut_by_enumeration(inst),
    };
    for anchor in &anchors {
        match scan_zpp_anchor(inst, anchor, budget, None).0 {
            Some(AnchorOutcome::Witness(w)) => return Some(w),
            Some(AnchorOutcome::Overflow) => return zpp_cut_by_enumeration(inst),
            None => {}
        }
    }
    None
}

/// [`zpp_cut_by_enumeration_anchored`] with the search effort recorded in
/// `reg`: `zpp.separators_enumerated`, `zpp.components_enumerated`,
/// `zpp.plausibility_checks`, `zpp.exhaustive_fallbacks` and the
/// `zpp.anchored_ns` wall-time histogram.
pub fn zpp_cut_by_enumeration_anchored_observed(
    inst: &Instance,
    reg: &Registry,
) -> Option<ZppCutWitness> {
    let _phase = reg.phase("zpp.anchored");
    let _timer = reg.timer("zpp.anchored_ns");
    if inst.graph().has_edge(inst.dealer(), inst.receiver()) {
        return None;
    }
    let budget = AnchorBudget::default();
    let anchors = {
        let _p = reg.phase("zpp.anchored.anchors");
        instance_anchors(inst, &budget)
    };
    let anchors = match anchors {
        Ok(anchors) => anchors,
        Err(_) => {
            reg.counter("zpp.exhaustive_fallbacks").inc();
            return zpp_cut_by_enumeration(inst);
        }
    };
    let _scan = reg.phase("zpp.anchored.scan");
    let separators_enumerated = reg.counter("zpp.separators_enumerated");
    let components_enumerated = reg.counter("zpp.components_enumerated");
    let plausibility_checks = reg.counter("zpp.plausibility_checks");
    for anchor in &anchors {
        separators_enumerated.inc();
        let (outcome, emitted) = scan_zpp_anchor(inst, anchor, &budget, Some(&plausibility_checks));
        components_enumerated.add(emitted);
        match outcome {
            Some(AnchorOutcome::Witness(w)) => return Some(w),
            Some(AnchorOutcome::Overflow) => {
                reg.counter("zpp.exhaustive_fallbacks").inc();
                return zpp_cut_by_enumeration(inst);
            }
            None => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cuts::{is_rmt_cut, is_zpp_cut};
    use crate::sampling::{random_instance, random_instance_nonadjacent};
    use rmt_adversary::AdversaryStructure;
    use rmt_graph::{generators, Graph, ViewKind};
    use rmt_sets::NodeSet;

    fn set(ids: &[u32]) -> NodeSet {
        ids.iter().copied().collect()
    }

    fn diamond() -> Graph {
        let mut g = Graph::new();
        g.add_edge(0.into(), 1.into());
        g.add_edge(0.into(), 2.into());
        g.add_edge(1.into(), 3.into());
        g.add_edge(2.into(), 3.into());
        g
    }

    #[test]
    fn anchored_agrees_with_exhaustive_on_the_diamonds() {
        for z in [
            AdversaryStructure::from_sets([set(&[1])]),
            AdversaryStructure::from_sets([set(&[1]), set(&[2])]),
        ] {
            let inst =
                crate::Instance::new(diamond(), z, ViewKind::AdHoc, 0.into(), 3.into()).unwrap();
            assert_eq!(
                find_rmt_cut_anchored(&inst).is_some(),
                find_rmt_cut(&inst).is_some()
            );
            assert_eq!(
                zpp_cut_by_enumeration_anchored(&inst).is_some(),
                zpp_cut_by_enumeration(&inst).is_some()
            );
        }
    }

    #[test]
    fn anchored_witnesses_verify_on_random_instances() {
        let mut rng = generators::seeded(0xA11C);
        for trial in 0..40 {
            let n = 5 + trial % 4;
            let inst = random_instance(n, 0.4, ViewKind::AdHoc, 3, 2, &mut rng);
            let cache = KnowledgeCache::new(&inst);
            let exhaustive = find_rmt_cut(&inst);
            let anchored = find_rmt_cut_anchored(&inst);
            assert_eq!(exhaustive.is_some(), anchored.is_some(), "trial {trial}");
            if let Some(w) = anchored {
                assert!(
                    is_rmt_cut(&inst, &cache, &w.cut).is_some(),
                    "trial {trial}: witness {w:?}"
                );
            }
            let anchored = zpp_cut_by_enumeration_anchored(&inst);
            assert_eq!(
                zpp_cut_by_enumeration(&inst).is_some(),
                anchored.is_some(),
                "trial {trial}"
            );
            if let Some(w) = anchored {
                assert!(is_zpp_cut(&inst, &w.cut).is_some(), "trial {trial}");
            }
        }
    }

    #[test]
    fn tiny_budgets_fall_back_to_the_exhaustive_verdict() {
        let budgets = [
            AnchorBudget {
                max_separators: 1,
                max_components_per_anchor: 1 << 20,
            },
            AnchorBudget {
                max_separators: 4096,
                max_components_per_anchor: 1,
            },
        ];
        let mut rng = generators::seeded(0xFA11);
        for trial in 0..20 {
            let n = 5 + trial % 4;
            let inst = random_instance_nonadjacent(n, 0.35, ViewKind::AdHoc, 3, 2, &mut rng);
            for budget in &budgets {
                assert_eq!(
                    find_rmt_cut_anchored_with(&inst, budget).is_some(),
                    find_rmt_cut(&inst).is_some(),
                    "trial {trial}, budget {budget:?}"
                );
                assert_eq!(
                    zpp_cut_by_enumeration_anchored_with(&inst, budget).is_some(),
                    zpp_cut_by_enumeration(&inst).is_some(),
                    "trial {trial}, budget {budget:?}"
                );
            }
        }
    }

    #[test]
    fn observed_variants_match_and_count() {
        let reg = rmt_obs::Registry::new();
        let mut rng = generators::seeded(0x0B5);
        for trial in 0..12 {
            let n = 5 + trial % 3;
            let inst = random_instance_nonadjacent(n, 0.35, ViewKind::AdHoc, 3, 2, &mut rng);
            assert_eq!(
                find_rmt_cut_anchored(&inst),
                find_rmt_cut_anchored_observed(&inst, &reg),
                "trial {trial}"
            );
            assert_eq!(
                zpp_cut_by_enumeration_anchored(&inst),
                zpp_cut_by_enumeration_anchored_observed(&inst, &reg),
                "trial {trial}"
            );
        }
        assert!(reg.counter("rmt_cut.separators_enumerated").get() > 0);
        assert!(reg.counter("rmt_cut.components_enumerated").get() > 0);
        assert!(reg.counter("rmt_cut.cache_misses").get() > 0);
        assert!(reg.counter("zpp.separators_enumerated").get() > 0);
        assert_eq!(reg.histogram("rmt_cut.anchored_ns").count(), 12);
    }

    #[test]
    fn profiled_decider_emits_well_nested_phase_spans() {
        let reg = rmt_obs::Registry::new().with_clock(rmt_obs::Clock::virtual_ns(1));
        let prof = rmt_obs::Profiler::new(reg.clock());
        reg.attach_profiler(prof.clone());
        let mut rng = generators::seeded(0x0B5);
        let inst = random_instance_nonadjacent(6, 0.35, ViewKind::AdHoc, 3, 2, &mut rng);
        let expected = find_rmt_cut_anchored(&inst);
        assert_eq!(find_rmt_cut_anchored_observed(&inst, &reg), expected);
        let roots = rmt_obs::span_tree(&prof.events()).expect("well nested");
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "rmt_cut.anchored");
        let kids: Vec<&str> = roots[0].children.iter().map(|c| c.name.as_str()).collect();
        assert!(kids.contains(&"rmt_cut.anchored.anchors"), "{kids:?}");
        // Virtual clock: a second identical run replays identical timestamps.
        let reg2 = rmt_obs::Registry::new().with_clock(rmt_obs::Clock::virtual_ns(1));
        let prof2 = rmt_obs::Profiler::new(reg2.clock());
        reg2.attach_profiler(prof2.clone());
        find_rmt_cut_anchored_observed(&inst, &reg2);
        assert_eq!(prof.events(), prof2.events());
        assert_eq!(reg.render(), reg2.render());
    }

    #[test]
    fn disconnected_endpoints_yield_the_empty_cut() {
        let mut g = generators::path_graph(2);
        g.add_node(4.into());
        let inst = crate::Instance::new(
            g,
            AdversaryStructure::trivial(),
            ViewKind::AdHoc,
            0.into(),
            4.into(),
        )
        .unwrap();
        // The empty-separator anchor's largest component is B = {4} itself,
        // whose neighbourhood is the empty cut.
        let w = find_rmt_cut_anchored(&inst).expect("empty cut separates");
        assert!(w.cut.is_empty());
        assert!(find_rmt_cut(&inst).is_some());
    }

    #[test]
    fn adjacent_endpoints_have_no_anchored_cut() {
        let mut g = diamond();
        g.add_edge(0.into(), 3.into());
        let z = AdversaryStructure::from_sets([set(&[1]), set(&[2])]);
        let inst = crate::Instance::new(g, z, ViewKind::AdHoc, 0.into(), 3.into()).unwrap();
        assert!(find_rmt_cut_anchored(&inst).is_none());
        assert!(zpp_cut_by_enumeration_anchored(&inst).is_none());
    }
}
