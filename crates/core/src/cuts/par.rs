//! Parallel twins of the cut deciders, differentially tested against the
//! sequential originals.
//!
//! Every decider here is **bit-identical** to its sequential counterpart for
//! any thread count (including the `None` cases):
//!
//! * the exhaustive searches ([`find_rmt_cut_par`],
//!   [`zpp_cut_by_enumeration_par`]) run [`rmt_par::search_min`] over the
//!   subset-index space of `V∖{D,R}`, and the least satisfying index is
//!   exactly the first hit of the ascending [`NodeSet::subsets`] scan the
//!   sequential deciders perform — so the returned cut, and therefore the
//!   whole witness (a pure function of the cut), is the same;
//! * the fixpoint decider ([`zpp_cut_by_fixpoint_par`]) searches the
//!   worst-case-corruption list for the least failing index the same way;
//! * the read-only [`KnowledgeCache`] is built once and shared by all
//!   workers.
//!
//! The `_observed` variants keep the metric names of the sequential
//! instrumented deciders and their **values** deterministic: search-extent
//! counters (`rmt_cut.candidates_examined`, `zpp.corruption_sets_checked`)
//! are derived from the winning index rather than from how far workers
//! overshot it, and per-candidate effort (partition checks, fixpoint sweeps)
//! is recorded into per-index shards that are merged into the caller's
//! [`Registry`] only for the indices the sequential scan would have visited
//! (`0..=winner`, or all of them on a `None` result).

use std::sync::Mutex;

use rmt_obs::{Counter, Registry};
use rmt_par::search_min;
use rmt_sets::NodeSet;

use crate::instance::Instance;
use crate::knowledge::KnowledgeCache;

use super::anchored::{
    instance_anchors, scan_rmt_anchor, scan_zpp_anchor, AnchorBudget, AnchorOutcome,
};
use super::rmt_cut::{is_rmt_cut, is_rmt_cut_counted, RmtCutWitness};
use super::zpp::{
    is_zpp_cut, witness_from_failed_corruption, zcpa_fixpoint, zcpa_fixpoint_observed,
    ZppCutWitness,
};

/// The cut-candidate base set V∖{D,R} shared by the exhaustive searches.
fn cut_candidates(inst: &Instance) -> NodeSet {
    let mut candidates = inst.graph().nodes().clone();
    candidates.remove(inst.dealer());
    candidates.remove(inst.receiver());
    candidates
}

/// Parallel [`find_rmt_cut`](super::find_rmt_cut): same witness (the
/// numerically least cut of the subset enumeration), searched on up to
/// `threads` OS threads sharing one read-only [`KnowledgeCache`].
pub fn find_rmt_cut_par(inst: &Instance, threads: usize) -> Option<RmtCutWitness> {
    if inst.graph().has_edge(inst.dealer(), inst.receiver()) {
        return None;
    }
    let cache = KnowledgeCache::new(inst);
    let candidates = cut_candidates(inst);
    search_min(candidates.subset_count(), threads, 0, |idx| {
        is_rmt_cut(inst, &cache, &candidates.subset_at(idx))
    })
    .map(|(_, w)| w)
}

/// [`find_rmt_cut_par`] with the search effort recorded in `reg`, under the
/// metric names of
/// [`find_rmt_cut_observed`](super::find_rmt_cut_observed) and with the
/// same deterministic values (`search_ns` wall time aside).
pub fn find_rmt_cut_par_observed(
    inst: &Instance,
    reg: &Registry,
    threads: usize,
) -> Option<RmtCutWitness> {
    // Opened before the fan-out, closed after the join: span events stay at
    // thread-count-independent positions (worker shards carry no profiler).
    let _phase = reg.phase("rmt_cut.search");
    let _timer = reg.timer("rmt_cut.search_ns");
    let candidates_examined = reg.counter("rmt_cut.candidates_examined");
    let partition_checks = reg.counter("rmt_cut.partition_checks");
    if inst.graph().has_edge(inst.dealer(), inst.receiver()) {
        return None;
    }
    let cache = KnowledgeCache::new(inst);
    let candidates = cut_candidates(inst);
    let total = candidates.subset_count();
    // (index, partition checks) shards; only cut candidates check partitions,
    // so the vector stays sparse even for large searches.
    let shards: Mutex<Vec<(u64, u64)>> = Mutex::new(Vec::new());
    let found = search_min(total, threads, 0, |idx| {
        let checks = Counter::new();
        let w = is_rmt_cut_counted(inst, &cache, &candidates.subset_at(idx), Some(&checks));
        if checks.get() > 0 {
            shards.lock().expect("shard lock").push((idx, checks.get()));
        }
        w
    });
    let winner = found.as_ref().map(|(idx, _)| *idx);
    candidates_examined.add(winner.map_or(total, |w| w + 1));
    partition_checks.add(
        shards
            .into_inner()
            .expect("shard lock")
            .into_iter()
            .filter(|(idx, _)| winner.is_none_or(|w| *idx <= w))
            .map(|(_, checks)| checks)
            .sum(),
    );
    found.map(|(_, w)| w)
}

/// Parallel
/// [`find_rmt_cut_anchored`](super::find_rmt_cut_anchored): the separator
/// anchors are scanned concurrently (they partition the candidate space, so
/// workers never duplicate work) and the witness comes from the least anchor
/// index with an outcome — exactly the sequential anchored scan's. A budget
/// overflow at the least outcome index triggers the same exhaustive
/// fallback, so the verdict stays exact and thread-count-independent.
pub fn find_rmt_cut_anchored_par(inst: &Instance, threads: usize) -> Option<RmtCutWitness> {
    let budget = AnchorBudget::default();
    if inst.graph().has_edge(inst.dealer(), inst.receiver()) {
        return None;
    }
    let anchors = match instance_anchors(inst, &budget) {
        Ok(anchors) => anchors,
        Err(_) => return find_rmt_cut_par(inst, threads),
    };
    let cache = KnowledgeCache::new(inst);
    let found = search_min(anchors.len() as u64, threads, 1, |idx| {
        scan_rmt_anchor(inst, &cache, &anchors[idx as usize], &budget, None).0
    });
    match found {
        Some((_, AnchorOutcome::Witness(w))) => Some(w),
        Some((_, AnchorOutcome::Overflow)) => find_rmt_cut_par(inst, threads),
        None => None,
    }
}

/// [`find_rmt_cut_anchored_par`] with the search effort recorded in `reg`,
/// under the metric names of
/// [`find_rmt_cut_anchored_observed`](super::find_rmt_cut_anchored_observed)
/// and with the same deterministic values — except the wall-time histograms
/// and the `rmt_cut.cache_hits`/`rmt_cut.cache_misses` pair, which only the
/// sequential variant reports (under concurrency those depend on worker
/// interleaving, and the observed counters here are guaranteed identical
/// for every thread count).
pub fn find_rmt_cut_anchored_par_observed(
    inst: &Instance,
    reg: &Registry,
    threads: usize,
) -> Option<RmtCutWitness> {
    let _phase = reg.phase("rmt_cut.anchored");
    let _timer = reg.timer("rmt_cut.anchored_ns");
    let budget = AnchorBudget::default();
    if inst.graph().has_edge(inst.dealer(), inst.receiver()) {
        return None;
    }
    let anchors = match instance_anchors(inst, &budget) {
        Ok(anchors) => anchors,
        Err(_) => {
            reg.counter("rmt_cut.exhaustive_fallbacks").inc();
            return find_rmt_cut_par_observed(inst, reg, threads);
        }
    };
    let cache = KnowledgeCache::new(inst);
    // (index, components emitted, partition checks) shards.
    let shards: Mutex<Vec<(u64, u64, u64)>> = Mutex::new(Vec::new());
    let found = search_min(anchors.len() as u64, threads, 1, |idx| {
        let checks = Counter::new();
        let (outcome, emitted) =
            scan_rmt_anchor(inst, &cache, &anchors[idx as usize], &budget, Some(&checks));
        shards
            .lock()
            .expect("shard lock")
            .push((idx, emitted, checks.get()));
        outcome
    });
    let winner = found.as_ref().map(|(idx, _)| *idx);
    reg.counter("rmt_cut.separators_enumerated")
        .add(winner.map_or(anchors.len() as u64, |w| w + 1));
    let (components_enumerated, partition_checks) = reg_totals(shards, winner);
    reg.counter("rmt_cut.components_enumerated")
        .add(components_enumerated);
    reg.counter("rmt_cut.partition_checks")
        .add(partition_checks);
    match found {
        Some((_, AnchorOutcome::Witness(w))) => Some(w),
        Some((_, AnchorOutcome::Overflow)) => {
            reg.counter("rmt_cut.exhaustive_fallbacks").inc();
            find_rmt_cut_par_observed(inst, reg, threads)
        }
        None => None,
    }
}

/// Sums the per-anchor shards the sequential scan would have visited.
fn reg_totals(shards: Mutex<Vec<(u64, u64, u64)>>, winner: Option<u64>) -> (u64, u64) {
    shards
        .into_inner()
        .expect("shard lock")
        .into_iter()
        .filter(|(idx, _, _)| winner.is_none_or(|w| *idx <= w))
        .fold((0, 0), |(e, c), (_, emitted, checks)| {
            (e + emitted, c + checks)
        })
}

/// Parallel
/// [`zpp_cut_by_enumeration_anchored`](super::zpp_cut_by_enumeration_anchored):
/// same anchor-index semantics as [`find_rmt_cut_anchored_par`].
pub fn zpp_cut_by_enumeration_anchored_par(
    inst: &Instance,
    threads: usize,
) -> Option<ZppCutWitness> {
    let budget = AnchorBudget::default();
    if inst.graph().has_edge(inst.dealer(), inst.receiver()) {
        return None;
    }
    let anchors = match instance_anchors(inst, &budget) {
        Ok(anchors) => anchors,
        Err(_) => return zpp_cut_by_enumeration_par(inst, threads),
    };
    let found = search_min(anchors.len() as u64, threads, 1, |idx| {
        scan_zpp_anchor(inst, &anchors[idx as usize], &budget, None).0
    });
    match found {
        Some((_, AnchorOutcome::Witness(w))) => Some(w),
        Some((_, AnchorOutcome::Overflow)) => zpp_cut_by_enumeration_par(inst, threads),
        None => None,
    }
}

/// Parallel [`zpp_cut_by_enumeration`](super::zpp_cut_by_enumeration): same
/// witness, searched on up to `threads` OS threads.
pub fn zpp_cut_by_enumeration_par(inst: &Instance, threads: usize) -> Option<ZppCutWitness> {
    if inst.graph().has_edge(inst.dealer(), inst.receiver()) {
        return None;
    }
    let candidates = cut_candidates(inst);
    search_min(candidates.subset_count(), threads, 0, |idx| {
        is_zpp_cut(inst, &candidates.subset_at(idx))
    })
    .map(|(_, w)| w)
}

/// Parallel [`zpp_cut_by_fixpoint`](super::zpp_cut_by_fixpoint): the
/// worst-case corruption sets are tried concurrently and the witness comes
/// from the **first** failing set in list order, as in the sequential scan.
pub fn zpp_cut_by_fixpoint_par(inst: &Instance, threads: usize) -> Option<ZppCutWitness> {
    let r = inst.receiver();
    if inst.graph().has_edge(inst.dealer(), r) {
        return None;
    }
    if !inst.endpoints_connected() {
        // The empty set separates; it is vacuously a 𝒵-pp cut.
        return Some(ZppCutWitness {
            cut: NodeSet::new(),
            c1: NodeSet::new(),
            c2: NodeSet::new(),
        });
    }
    let corruptions = inst.worst_case_corruptions();
    search_min(corruptions.len() as u64, threads, 1, |idx| {
        let t = &corruptions[idx as usize];
        let decided = zcpa_fixpoint(inst, t);
        (!decided.contains(r)).then(|| witness_from_failed_corruption(inst, t, &decided))
    })
    .map(|(_, w)| w)
}

/// [`zpp_cut_by_fixpoint_par`] with decision effort recorded in `reg`, under
/// the metric names of
/// [`zpp_cut_by_fixpoint_observed`](super::zpp_cut_by_fixpoint_observed):
/// each worker records its fixpoint runs into a private [`Registry`] shard
/// per corruption set, and the shards for the sets the sequential scan would
/// have visited are merged back into `reg` after the search.
pub fn zpp_cut_by_fixpoint_par_observed(
    inst: &Instance,
    reg: &Registry,
    threads: usize,
) -> Option<ZppCutWitness> {
    let _phase = reg.phase("zpp.decide");
    let _timer = reg.timer("zpp.decide_ns");
    let r = inst.receiver();
    if inst.graph().has_edge(inst.dealer(), r) {
        return None;
    }
    if !inst.endpoints_connected() {
        return Some(ZppCutWitness {
            cut: NodeSet::new(),
            c1: NodeSet::new(),
            c2: NodeSet::new(),
        });
    }
    let sets_checked = reg.counter("zpp.corruption_sets_checked");
    let corruptions = inst.worst_case_corruptions();
    let shards: Mutex<Vec<(u64, Registry)>> = Mutex::new(Vec::new());
    let found = search_min(corruptions.len() as u64, threads, 1, |idx| {
        let shard = Registry::new();
        let t = &corruptions[idx as usize];
        let decided = zcpa_fixpoint_observed(inst, t, &shard);
        shards.lock().expect("shard lock").push((idx, shard));
        (!decided.contains(r)).then(|| witness_from_failed_corruption(inst, t, &decided))
    });
    let winner = found.as_ref().map(|(idx, _)| *idx);
    sets_checked.add(winner.map_or(corruptions.len() as u64, |w| w + 1));
    for (idx, shard) in shards.into_inner().expect("shard lock") {
        if winner.is_none_or(|w| idx <= w) {
            reg.merge_from(&shard);
        }
    }
    found.map(|(_, w)| w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cuts::{find_rmt_cut, zpp_cut_by_enumeration, zpp_cut_by_fixpoint};
    use rmt_adversary::AdversaryStructure;
    use rmt_graph::{generators, Graph, ViewKind};

    fn set(ids: &[u32]) -> NodeSet {
        ids.iter().copied().collect()
    }

    fn diamond() -> Graph {
        let mut g = Graph::new();
        g.add_edge(0.into(), 1.into());
        g.add_edge(0.into(), 2.into());
        g.add_edge(1.into(), 3.into());
        g.add_edge(2.into(), 3.into());
        g
    }

    #[test]
    fn parallel_deciders_match_on_the_gallery_diamonds() {
        for z in [
            AdversaryStructure::from_sets([set(&[1])]),
            AdversaryStructure::from_sets([set(&[1]), set(&[2])]),
        ] {
            let inst = Instance::new(diamond(), z, ViewKind::AdHoc, 0.into(), 3.into()).unwrap();
            for threads in [1, 2, 8] {
                assert_eq!(find_rmt_cut(&inst), find_rmt_cut_par(&inst, threads));
                assert_eq!(
                    zpp_cut_by_enumeration(&inst),
                    zpp_cut_by_enumeration_par(&inst, threads)
                );
                assert_eq!(
                    zpp_cut_by_fixpoint(&inst),
                    zpp_cut_by_fixpoint_par(&inst, threads)
                );
            }
        }
    }

    #[test]
    fn parallel_observed_counters_match_sequential_totals() {
        let mut rng = generators::seeded(0x9A9);
        for trial in 0..12usize {
            let n = 5 + (trial % 3);
            let inst = crate::sampling::random_instance(n, 0.4, ViewKind::AdHoc, 3, 2, &mut rng);
            let (reg_seq, reg_par) = (Registry::new(), Registry::new());
            assert_eq!(
                crate::cuts::find_rmt_cut_observed(&inst, &reg_seq),
                find_rmt_cut_par_observed(&inst, &reg_par, 4),
                "trial {trial}"
            );
            for name in ["rmt_cut.candidates_examined", "rmt_cut.partition_checks"] {
                assert_eq!(
                    reg_seq.counter(name).get(),
                    reg_par.counter(name).get(),
                    "trial {trial}: {name}"
                );
            }
            let (reg_seq, reg_par) = (Registry::new(), Registry::new());
            assert_eq!(
                crate::cuts::zpp_cut_by_fixpoint_observed(&inst, &reg_seq),
                zpp_cut_by_fixpoint_par_observed(&inst, &reg_par, 4),
                "trial {trial}"
            );
            for name in [
                "zpp.corruption_sets_checked",
                "zcpa.sweeps",
                "zcpa.certification_checks",
            ] {
                assert_eq!(
                    reg_seq.counter(name).get(),
                    reg_par.counter(name).get(),
                    "trial {trial}: {name}"
                );
            }
        }
    }

    #[test]
    fn anchored_parallel_twins_match_sequential() {
        let mut rng = generators::seeded(0xA12);
        for trial in 0..12usize {
            let n = 5 + trial % 3;
            let inst = crate::sampling::random_instance_nonadjacent(
                n,
                0.35,
                ViewKind::AdHoc,
                3,
                2,
                &mut rng,
            );
            let seq_rmt = crate::cuts::find_rmt_cut_anchored(&inst);
            let seq_zpp = crate::cuts::zpp_cut_by_enumeration_anchored(&inst);
            for threads in [1, 2, 8] {
                assert_eq!(
                    seq_rmt,
                    find_rmt_cut_anchored_par(&inst, threads),
                    "trial {trial}, {threads} threads"
                );
                assert_eq!(
                    seq_zpp,
                    zpp_cut_by_enumeration_anchored_par(&inst, threads),
                    "trial {trial}, {threads} threads"
                );
            }
            let (reg_seq, reg_par) = (Registry::new(), Registry::new());
            assert_eq!(
                crate::cuts::find_rmt_cut_anchored_observed(&inst, &reg_seq),
                find_rmt_cut_anchored_par_observed(&inst, &reg_par, 4),
                "trial {trial}"
            );
            // Same deterministic counters as the sequential variant — the
            // cache hit/miss pair is sequential-only by design.
            for name in [
                "rmt_cut.separators_enumerated",
                "rmt_cut.components_enumerated",
                "rmt_cut.partition_checks",
                "rmt_cut.exhaustive_fallbacks",
            ] {
                assert_eq!(
                    reg_seq.counter(name).get(),
                    reg_par.counter(name).get(),
                    "trial {trial}: {name}"
                );
            }
        }
    }

    #[test]
    fn disconnected_and_adjacent_edge_cases_match() {
        let mut g = generators::path_graph(2);
        g.add_node(4.into());
        let inst = Instance::new(
            g,
            AdversaryStructure::trivial(),
            ViewKind::AdHoc,
            0.into(),
            4.into(),
        )
        .unwrap();
        assert_eq!(find_rmt_cut(&inst), find_rmt_cut_par(&inst, 4));
        assert_eq!(
            zpp_cut_by_fixpoint(&inst),
            zpp_cut_by_fixpoint_par(&inst, 4)
        );

        let mut g = diamond();
        g.add_edge(0.into(), 3.into());
        let z = AdversaryStructure::from_sets([set(&[1]), set(&[2])]);
        let inst = Instance::new(g, z, ViewKind::AdHoc, 0.into(), 3.into()).unwrap();
        assert_eq!(find_rmt_cut_par(&inst, 4), None);
        assert_eq!(zpp_cut_by_enumeration_par(&inst, 4), None);
        assert_eq!(zpp_cut_by_fixpoint_par(&inst, 4), None);
    }
}
