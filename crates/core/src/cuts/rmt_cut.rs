//! The RMT-cut of Definition 3.
//!
//! `C = C₁ ∪ C₂` is an **RMT-cut** for (G, 𝒵, γ, D, R) iff `C` is a D–R cut
//! (partitioning V∖C with D and R on different sides, B the connected
//! component of R), `C₁ ∈ 𝒵`, and `C₂ ∩ V(γ(B)) ∈ 𝒵_B`.
//!
//! By Theorems 3 and 5 of the paper the existence of an RMT-cut is *exactly*
//! the unsolvability of safe reliable message transmission, so these
//! deciders are the ground truth the protocol experiments are checked
//! against.
//!
//! Because membership in 𝒵 and 𝒵_B is monotone, it is WLOG to examine, for
//! each maximal `T ∈ 𝒵`, the partition `C₁ = C ∩ T`, `C₂ = C ∖ T` (any
//! admissible C₁ is contained in some maximal T, and shrinking C₂ only makes
//! its condition easier). This turns the partition search into a linear scan
//! over the antichain of 𝒵.
//!
//! The search over cuts `C` here is exhaustive over subsets of V∖{D,R} —
//! the characterization is NP-hard in general, and this decider is the
//! differential ground truth. The separator-anchored decider in
//! [`anchored`](super::anchored) skips the non-cut bulk of that lattice and
//! is the one to use beyond `n ≈ 16`.

use rmt_graph::traversal;
use rmt_obs::{Counter, Registry};
use rmt_sets::NodeSet;

use crate::instance::Instance;
use crate::knowledge::KnowledgeCache;

/// A witness that an RMT-cut exists.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RmtCutWitness {
    /// The whole cut C = C₁ ∪ C₂.
    pub cut: NodeSet,
    /// The admissible part (C₁ ∈ 𝒵).
    pub c1: NodeSet,
    /// The part only locally plausible to B (C₂ ∩ V(γ(B)) ∈ 𝒵_B).
    pub c2: NodeSet,
    /// R's connected component B of G ∖ C.
    pub receiver_component: NodeSet,
}

/// Checks whether `c` is an RMT-cut, returning the partition witness.
///
/// Returns `None` if `c` is not a D–R cut or no admissible partition exists.
pub fn is_rmt_cut(inst: &Instance, cache: &KnowledgeCache, c: &NodeSet) -> Option<RmtCutWitness> {
    is_rmt_cut_counted(inst, cache, c, None)
}

pub(crate) fn is_rmt_cut_counted(
    inst: &Instance,
    cache: &KnowledgeCache,
    c: &NodeSet,
    partition_checks: Option<&Counter>,
) -> Option<RmtCutWitness> {
    let (d, r) = (inst.dealer(), inst.receiver());
    if c.contains(d) || c.contains(r) {
        return None;
    }
    // Masked BFS: no per-candidate graph clone.
    let b = traversal::component_of_avoiding(inst.graph(), r, c);
    if b.contains(d) {
        return None; // not a cut
    }
    admissible_partition(inst, cache, c, &b, partition_checks).map(|(c1, c2)| RmtCutWitness {
        cut: c.clone(),
        c1,
        c2,
        receiver_component: b,
    })
}

/// The Definition-3 partition search for a fixed receiver component `b`:
/// the first maximal `T ∈ 𝒵` with `C₁ = C ∩ T`, `C₂ = C ∖ T` and
/// `C₂ ∩ V(γ(B)) ∈ 𝒵_B`. Shared by the exhaustive decider (which derives
/// `b` from the candidate cut) and the anchored decider (which enumerates
/// `b` directly), so the condition cannot drift between them.
pub(crate) fn admissible_partition(
    inst: &Instance,
    cache: &KnowledgeCache,
    c: &NodeSet,
    b: &NodeSet,
    partition_checks: Option<&Counter>,
) -> Option<(NodeSet, NodeSet)> {
    let gamma_b = cache.joint_domain(b);
    for t in inst.adversary().maximal_sets() {
        let c2 = c.difference(t);
        if let Some(counter) = partition_checks {
            counter.inc();
        }
        if cache.joint_contains(b, &c2.intersection(&gamma_b)) {
            return Some((c.intersection(t), c2));
        }
    }
    // The trivial structure admits C₁ = ∅ only; handled above iff the
    // antichain is non-empty. Cover the trivial case explicitly.
    if inst.adversary().maximal_sets().is_empty()
        && cache.joint_contains(b, &c.intersection(&gamma_b))
    {
        return Some((NodeSet::new(), c.clone()));
    }
    None
}

/// Finds an RMT-cut by exhaustive search, preferring smaller cuts (the
/// subset enumeration visits low-order combinations first).
///
/// # Example
///
/// ```
/// use rmt_core::{cuts, gallery};
/// use rmt_graph::ViewKind;
///
/// let witness = cuts::find_rmt_cut(&gallery::unsolvable_diamond(ViewKind::AdHoc))
///     .expect("the diamond is unsolvable");
/// assert_eq!(witness.cut.len(), 2);
/// assert!(cuts::find_rmt_cut(&gallery::tolerant_diamond(ViewKind::AdHoc)).is_none());
/// ```
pub fn find_rmt_cut(inst: &Instance) -> Option<RmtCutWitness> {
    let cache = KnowledgeCache::new(inst);
    let mut candidates = inst.graph().nodes().clone();
    candidates.remove(inst.dealer());
    candidates.remove(inst.receiver());
    // If D and R are adjacent no node cut exists at all.
    if inst.graph().has_edge(inst.dealer(), inst.receiver()) {
        return None;
    }
    candidates
        .subsets()
        .find_map(|c| is_rmt_cut(inst, &cache, &c))
}

/// [`find_rmt_cut`] with the search effort recorded in `reg`:
///
/// * `rmt_cut.candidates_examined` — candidate sets `C` tested;
/// * `rmt_cut.partition_checks` — `(C₁, C₂)` partitions membership-tested
///   against 𝒵_B (only reached when `C` is a D–R cut);
/// * `rmt_cut.search_ns` — wall time of the whole search (histogram);
///
/// plus a `rmt_cut.search` phase span when the registry carries a profiler.
pub fn find_rmt_cut_observed(inst: &Instance, reg: &Registry) -> Option<RmtCutWitness> {
    let _phase = reg.phase("rmt_cut.search");
    let _timer = reg.timer("rmt_cut.search_ns");
    let candidates_examined = reg.counter("rmt_cut.candidates_examined");
    let partition_checks = reg.counter("rmt_cut.partition_checks");
    let cache = KnowledgeCache::new(inst);
    let mut candidates = inst.graph().nodes().clone();
    candidates.remove(inst.dealer());
    candidates.remove(inst.receiver());
    if inst.graph().has_edge(inst.dealer(), inst.receiver()) {
        return None;
    }
    candidates.subsets().find_map(|c| {
        candidates_examined.inc();
        is_rmt_cut_counted(inst, &cache, &c, Some(&partition_checks))
    })
}

/// `true` iff the instance admits an RMT-cut — i.e. (Theorems 3 + 5) iff no
/// safe and resilient RMT algorithm exists for it.
pub fn rmt_cut_exists(inst: &Instance) -> bool {
    find_rmt_cut(inst).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt_adversary::AdversaryStructure;
    use rmt_graph::{generators, Graph, ViewKind};

    fn set(ids: &[u32]) -> NodeSet {
        ids.iter().copied().collect()
    }

    /// Diamond: D=0, two parallel relays 1,2, R=3.
    fn diamond() -> Graph {
        let mut g = Graph::new();
        g.add_edge(0.into(), 1.into());
        g.add_edge(0.into(), 2.into());
        g.add_edge(1.into(), 3.into());
        g.add_edge(2.into(), 3.into());
        g
    }

    #[test]
    fn one_corruptible_relay_is_not_an_rmt_cut() {
        // 𝒵 = {{1}}: only relay 1 can fall. {1} alone is not a cut; {1,2}
        // needs C₂ = {2} admissible for B = {3}, whose view sees 2 — and
        // {2} ∉ 𝒵_R. So no RMT-cut: RMT is solvable.
        let z = AdversaryStructure::from_sets([set(&[1])]);
        let inst = Instance::new(diamond(), z, ViewKind::AdHoc, 0.into(), 3.into()).unwrap();
        assert!(!rmt_cut_exists(&inst));
    }

    #[test]
    fn two_corruptible_relays_give_an_rmt_cut() {
        // 𝒵 = {{1},{2}}: either relay can fall. C = {1,2}, C₁ = {1} ∈ 𝒵,
        // C₂ = {2}: R's local trace of 𝒵 contains {2}, so C₂ ∩ V(γ(B)) ∈ 𝒵_B.
        let z = AdversaryStructure::from_sets([set(&[1]), set(&[2])]);
        let inst = Instance::new(diamond(), z, ViewKind::AdHoc, 0.into(), 3.into()).unwrap();
        let w = find_rmt_cut(&inst).expect("RMT-cut must exist");
        assert_eq!(w.cut, set(&[1, 2]));
        assert_eq!(w.receiver_component, set(&[3]));
        assert!(inst.adversary().contains(&w.c1));
    }

    #[test]
    fn full_knowledge_can_remove_the_cut() {
        // Same structure, but full topology knowledge: B = {3} now knows the
        // whole graph and the whole 𝒵, so 𝒵_B = 𝒵^{V}. C₂ = {2} with
        // C₁ = {1}: {2} ∈ 𝒵 — still a cut! Knowledge does not help here
        // because 𝒵 itself admits each relay.
        let z = AdversaryStructure::from_sets([set(&[1]), set(&[2])]);
        let inst = Instance::new(diamond(), z, ViewKind::Full, 0.into(), 3.into()).unwrap();
        assert!(rmt_cut_exists(&inst));

        // But when 𝒵's sets span *both* sides of a cheating scenario that
        // only limited views would conflate, knowledge matters: on the
        // 6-cycle with 𝒵 = {{1},{4}} and D=0, R=3, the ad hoc B = {2,3,4}…
        let g = generators::cycle(6);
        let z = AdversaryStructure::from_sets([set(&[1]), set(&[4])]);
        let adhoc =
            Instance::new(g.clone(), z.clone(), ViewKind::AdHoc, 0.into(), 3.into()).unwrap();
        let full = Instance::new(g, z, ViewKind::Full, 0.into(), 3.into()).unwrap();
        // Full knowledge: C = {1,4}, C₁ = {1}, C₂ = {4} ∈ 𝒵 ⊆ 𝒵_B: cut for
        // both. (Solvability here genuinely requires 2-connectivity beyond
        // 𝒵; this documents that the notions agree where they must.)
        assert_eq!(rmt_cut_exists(&adhoc), rmt_cut_exists(&full));
    }

    #[test]
    fn adjacent_endpoints_never_have_a_cut() {
        let mut g = diamond();
        g.add_edge(0.into(), 3.into());
        let z = AdversaryStructure::from_sets([set(&[1]), set(&[2])]);
        let inst = Instance::new(g, z, ViewKind::AdHoc, 0.into(), 3.into()).unwrap();
        assert!(!rmt_cut_exists(&inst));
    }

    #[test]
    fn trivial_structure_on_2_connected_graph_has_no_cut() {
        let g = generators::cycle(5);
        let inst = Instance::new(
            g,
            AdversaryStructure::trivial(),
            ViewKind::AdHoc,
            0.into(),
            2.into(),
        )
        .unwrap();
        assert!(!rmt_cut_exists(&inst));
    }

    #[test]
    fn observed_search_matches_and_counts() {
        let reg = rmt_obs::Registry::new();
        for z in [
            AdversaryStructure::from_sets([set(&[1])]),
            AdversaryStructure::from_sets([set(&[1]), set(&[2])]),
        ] {
            let inst = Instance::new(diamond(), z, ViewKind::AdHoc, 0.into(), 3.into()).unwrap();
            assert_eq!(find_rmt_cut(&inst), find_rmt_cut_observed(&inst, &reg));
        }
        assert!(reg.counter("rmt_cut.candidates_examined").get() > 0);
        assert!(reg.counter("rmt_cut.partition_checks").get() > 0);
        assert_eq!(reg.histogram("rmt_cut.search_ns").count(), 2);
    }

    #[test]
    fn disconnected_endpoints_have_the_empty_rmt_cut() {
        let mut g = generators::path_graph(2);
        g.add_node(4.into());
        let inst = Instance::new(
            g,
            AdversaryStructure::trivial(),
            ViewKind::AdHoc,
            0.into(),
            4.into(),
        )
        .unwrap();
        let w = find_rmt_cut(&inst).expect("empty cut separates");
        assert!(w.cut.is_empty());
    }
}
