//! The RMT 𝒵-pp cut of Definition 7 and the Z-CPA fixpoint.
//!
//! `C` is an **RMT 𝒵-pp cut** iff it is a D–R cut admitting a partition
//! `C = C₁ ∪ C₂` with `C₁ ∈ 𝒵` and `𝒩(u) ∩ C₂ ∈ 𝒵_u` for every `u` in the
//! receiver-side part `B`. As with the RMT-cut, the partition search
//! reduces WLOG to `C₁ = C ∩ T` over maximal `T ∈ 𝒵`.
//!
//! Two deciders are provided and property-tested against each other:
//!
//! * [`zpp_cut_by_enumeration`] — exhaustive over cuts (exact, exponential);
//! * [`zpp_cut_by_fixpoint`] — polynomial in `n·|𝒵|`, built on the
//!   observation from the proofs of Theorems 7/8 that a 𝒵-pp cut exists iff
//!   the worst-case Z-CPA *decided-set fixpoint* fails to reach R for some
//!   maximal corruption set: against corruption `T`, the honest decided set
//!   is the least fixpoint of
//!   `decided ← decided ∪ { honest u | 𝒩(u) ∩ decided ∉ 𝒵_u }`
//!   seeded with D's honest neighbours, and a failing `T` yields the witness
//!   `C₁ = T`, `C₂ = decided`.

use rmt_graph::traversal;
use rmt_obs::{Counter, Registry};
use rmt_sets::NodeSet;

use crate::instance::Instance;

/// A witness that an RMT 𝒵-pp cut exists.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ZppCutWitness {
    /// The whole cut C = C₁ ∪ C₂.
    pub cut: NodeSet,
    /// The admissible part (C₁ ∈ 𝒵).
    pub c1: NodeSet,
    /// The locally-plausible part (∀u ∈ B: 𝒩(u) ∩ C₂ ∈ 𝒵_u).
    pub c2: NodeSet,
}

/// Checks whether `c` is an RMT 𝒵-pp cut, returning the partition.
pub fn is_zpp_cut(inst: &Instance, c: &NodeSet) -> Option<ZppCutWitness> {
    let (d, r) = (inst.dealer(), inst.receiver());
    if c.contains(d) || c.contains(r) {
        return None;
    }
    // Masked BFS: no per-candidate graph clone.
    let b = traversal::component_of_avoiding(inst.graph(), r, c);
    if b.contains(d) {
        return None;
    }
    zpp_admissible_partition(inst, c, &b, None).map(|(c1, c2)| ZppCutWitness {
        cut: c.clone(),
        c1,
        c2,
    })
}

/// The Definition-7 partition search for a fixed far-side node set `b`: the
/// first maximal `T ∈ 𝒵` with `C₁ = C ∩ T`, `C₂ = C ∖ T` and
/// `𝒩(u) ∩ C₂ ∈ 𝒵_u` for every `u ∈ b`. Shared by [`is_zpp_cut`], the
/// anchored decider (which enumerates `b` directly) and the broadcast
/// decider (where `b` ranges over all far components), so the condition
/// cannot drift between them.
pub(crate) fn zpp_admissible_partition(
    inst: &Instance,
    c: &NodeSet,
    b: &NodeSet,
    plausibility_checks: Option<&Counter>,
) -> Option<(NodeSet, NodeSet)> {
    let locally_plausible = |c2: &NodeSet| {
        b.iter().all(|u| {
            let trace = inst.graph().neighbors(u).intersection(c2);
            inst.local_structure(u).contains(&trace)
        })
    };
    for t in inst.adversary().maximal_sets() {
        if let Some(counter) = plausibility_checks {
            counter.inc();
        }
        let c2 = c.difference(t);
        if locally_plausible(&c2) {
            return Some((c.intersection(t), c2));
        }
    }
    if inst.adversary().maximal_sets().is_empty() {
        if let Some(counter) = plausibility_checks {
            counter.inc();
        }
        if locally_plausible(c) {
            return Some((NodeSet::new(), c.clone()));
        }
    }
    None
}

/// Exhaustive 𝒵-pp-cut search over all subsets of V∖{D,R}.
pub fn zpp_cut_by_enumeration(inst: &Instance) -> Option<ZppCutWitness> {
    if inst.graph().has_edge(inst.dealer(), inst.receiver()) {
        return None;
    }
    let mut candidates = inst.graph().nodes().clone();
    candidates.remove(inst.dealer());
    candidates.remove(inst.receiver());
    candidates.subsets().find_map(|c| is_zpp_cut(inst, &c))
}

/// The worst-case Z-CPA decided set against corruption set `corrupted`:
/// the least fixpoint of the certified-propagation rule assuming corrupted
/// nodes never help.
///
/// A node decides iff it is an honest neighbour of the dealer, or the set of
/// its already-decided *relaying* neighbours is **not** in its local
/// structure 𝒵_v — then at least one of them is honest in every admissible
/// scenario, certifying the value. In the RMT protocol the receiver outputs
/// instead of relaying, so it never certifies others (this matters only for
/// nodes downstream of R: R's own status is unaffected, because any node
/// that would need R's relay decides strictly after R).
pub fn zcpa_fixpoint(inst: &Instance, corrupted: &NodeSet) -> NodeSet {
    certified_fixpoint(inst, corrupted, Some(inst.receiver()), None)
}

/// [`zcpa_fixpoint`] with the fixpoint effort recorded in `reg`:
///
/// * `zcpa.sweeps` — full passes over the node set until stabilization;
/// * `zcpa.certification_checks` — membership tests of a certifier set
///   against a local structure 𝒵_u.
pub fn zcpa_fixpoint_observed(inst: &Instance, corrupted: &NodeSet, reg: &Registry) -> NodeSet {
    let _phase = reg.phase("zcpa.fixpoint");
    let stats = FixpointStats {
        sweeps: reg.counter("zcpa.sweeps"),
        certification_checks: reg.counter("zcpa.certification_checks"),
    };
    certified_fixpoint(inst, corrupted, Some(inst.receiver()), Some(&stats))
}

/// The broadcast variant of [`zcpa_fixpoint`]: no distinguished receiver,
/// every decided node relays (used by [`broadcast`](crate::broadcast)).
pub fn zcpa_fixpoint_broadcast(inst: &Instance, corrupted: &NodeSet) -> NodeSet {
    certified_fixpoint(inst, corrupted, None, None)
}

struct FixpointStats {
    sweeps: Counter,
    certification_checks: Counter,
}

fn certified_fixpoint(
    inst: &Instance,
    corrupted: &NodeSet,
    non_relaying: Option<rmt_sets::NodeId>,
    stats: Option<&FixpointStats>,
) -> NodeSet {
    let g = inst.graph();
    let d = inst.dealer();
    let mut decided: NodeSet = g.neighbors(d).difference(corrupted).iter().collect();
    let mut changed = true;
    while changed {
        changed = false;
        if let Some(s) = stats {
            s.sweeps.inc();
        }
        for u in g.nodes() {
            if u == d || decided.contains(u) || corrupted.contains(u) {
                continue;
            }
            let mut certifiers = g.neighbors(u).intersection(&decided);
            if let Some(r) = non_relaying {
                certifiers.remove(r);
            }
            if let Some(s) = stats {
                s.certification_checks.inc();
            }
            if !inst.local_structure(u).contains(&certifiers) {
                decided.insert(u);
                changed = true;
            }
        }
    }
    decided
}

/// Polynomial 𝒵-pp-cut decider via the Z-CPA fixpoint (Theorems 7+8).
///
/// Returns a witness built from the first failing maximal corruption set:
/// `C₁ = T`, `C₂ = ` the decided honest nodes (they separate D from the
/// undecided region, and every undecided `u` has `𝒩(u) ∩ C₂ ∈ 𝒵_u` by
/// the fixpoint's stopping condition).
pub fn zpp_cut_by_fixpoint(inst: &Instance) -> Option<ZppCutWitness> {
    let (d, r) = (inst.dealer(), inst.receiver());
    if inst.graph().has_edge(d, r) {
        return None;
    }
    if !inst.endpoints_connected() {
        // The empty set separates; it is vacuously a 𝒵-pp cut.
        return Some(ZppCutWitness {
            cut: NodeSet::new(),
            c1: NodeSet::new(),
            c2: NodeSet::new(),
        });
    }
    zpp_fixpoint_search(inst, |t| zcpa_fixpoint(inst, t))
}

/// [`zpp_cut_by_fixpoint`] with decision effort recorded in `reg`:
/// everything [`zcpa_fixpoint_observed`] records, plus
///
/// * `zpp.corruption_sets_checked` — maximal corruption sets tried;
/// * `zpp.decide_ns` — wall time of the whole decision (histogram);
///
/// plus a `zpp.decide` phase span (with one `zcpa.fixpoint` child per
/// corruption set tried) when the registry carries a profiler.
pub fn zpp_cut_by_fixpoint_observed(inst: &Instance, reg: &Registry) -> Option<ZppCutWitness> {
    let _phase = reg.phase("zpp.decide");
    let _timer = reg.timer("zpp.decide_ns");
    let (d, r) = (inst.dealer(), inst.receiver());
    if inst.graph().has_edge(d, r) {
        return None;
    }
    if !inst.endpoints_connected() {
        return Some(ZppCutWitness {
            cut: NodeSet::new(),
            c1: NodeSet::new(),
            c2: NodeSet::new(),
        });
    }
    let sets_checked = reg.counter("zpp.corruption_sets_checked");
    zpp_fixpoint_search(inst, |t| {
        sets_checked.inc();
        zcpa_fixpoint_observed(inst, t, reg)
    })
}

fn zpp_fixpoint_search(
    inst: &Instance,
    mut fixpoint: impl FnMut(&NodeSet) -> NodeSet,
) -> Option<ZppCutWitness> {
    let r = inst.receiver();
    for t in inst.worst_case_corruptions() {
        let decided = fixpoint(&t);
        if !decided.contains(r) {
            return Some(witness_from_failed_corruption(inst, &t, &decided));
        }
    }
    None
}

/// The 𝒵-pp-cut witness a failing corruption set yields: `C₁ = T`,
/// `C₂ = ` the decided honest nodes (shared by the sequential and parallel
/// fixpoint deciders so their witnesses are byte-identical).
pub(crate) fn witness_from_failed_corruption(
    inst: &Instance,
    t: &NodeSet,
    decided: &NodeSet,
) -> ZppCutWitness {
    // Only the part of T that actually matters for separation needs
    // to be in the cut; T itself is admissible and sufficient.
    let mut cut = t.union(decided);
    cut.remove(inst.dealer());
    cut.remove(inst.receiver());
    ZppCutWitness {
        cut: cut.clone(),
        c1: t.clone(),
        c2: cut.difference(t),
    }
}

/// `true` iff the instance admits an RMT 𝒵-pp cut — i.e. (Theorems 7+8) iff
/// no safe RMT algorithm exists for the ad hoc instance.
///
/// Uses the polynomial fixpoint decider.
pub fn zpp_cut_exists(inst: &Instance) -> bool {
    zpp_cut_by_fixpoint(inst).is_some()
}

/// `true` iff Z-CPA certifies the receiver against **every** admissible
/// corruption (worst-case behaviour): the protocol-level notion of
/// resilience, computed analytically.
///
/// # Example
///
/// ```
/// use rmt_core::{cuts, gallery};
/// use rmt_graph::ViewKind;
///
/// assert!(cuts::zcpa_resilient(&gallery::tolerant_diamond(ViewKind::AdHoc)));
/// // The staggered theta is the gap witness: even Z-CPA cannot solve it
/// // ad hoc, although RMT-PKA solves it with radius-2 views.
/// assert!(!cuts::zcpa_resilient(&gallery::staggered_theta(ViewKind::AdHoc)));
/// ```
pub fn zcpa_resilient(inst: &Instance) -> bool {
    let r = inst.receiver();
    if inst.graph().has_edge(inst.dealer(), r) {
        return true;
    }
    inst.worst_case_corruptions()
        .iter()
        .all(|t| zcpa_fixpoint(inst, t).contains(r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt_adversary::AdversaryStructure;
    use rmt_graph::{generators, Graph, ViewKind};

    fn set(ids: &[u32]) -> NodeSet {
        ids.iter().copied().collect()
    }

    fn diamond() -> Graph {
        let mut g = Graph::new();
        g.add_edge(0.into(), 1.into());
        g.add_edge(0.into(), 2.into());
        g.add_edge(1.into(), 3.into());
        g.add_edge(2.into(), 3.into());
        g
    }

    fn adhoc(g: Graph, z: AdversaryStructure, d: u32, r: u32) -> Instance {
        Instance::new(g, z, ViewKind::AdHoc, d.into(), r.into()).unwrap()
    }

    #[test]
    fn diamond_with_one_fallible_relay_is_solvable() {
        let inst = adhoc(diamond(), AdversaryStructure::from_sets([set(&[1])]), 0, 3);
        assert!(zpp_cut_by_enumeration(&inst).is_none());
        assert!(zpp_cut_by_fixpoint(&inst).is_none());
        assert!(zcpa_resilient(&inst));
    }

    #[test]
    fn diamond_with_either_relay_fallible_is_unsolvable() {
        let z = AdversaryStructure::from_sets([set(&[1]), set(&[2])]);
        let inst = adhoc(diamond(), z, 0, 3);
        let w = zpp_cut_by_enumeration(&inst).expect("cut exists");
        assert!(inst.adversary().contains(&w.c1));
        assert!(zpp_cut_by_fixpoint(&inst).is_some());
        assert!(!zcpa_resilient(&inst));
    }

    #[test]
    fn fixpoint_decided_set_grows_from_dealer() {
        let inst = adhoc(diamond(), AdversaryStructure::from_sets([set(&[1])]), 0, 3);
        let decided = zcpa_fixpoint(&inst, &set(&[1]));
        // Honest dealer neighbours decide; R certifies via {2} ∉ 𝒵_R.
        assert!(decided.contains(2.into()));
        assert!(decided.contains(3.into()));
        assert!(!decided.contains(1.into()));
    }

    #[test]
    fn fixpoint_witness_is_a_real_zpp_cut() {
        let z = AdversaryStructure::from_sets([set(&[1]), set(&[2])]);
        let inst = adhoc(diamond(), z, 0, 3);
        let w = zpp_cut_by_fixpoint(&inst).unwrap();
        let confirmed = is_zpp_cut(&inst, &w.cut).expect("witness must verify");
        assert_eq!(confirmed.cut, w.cut);
    }

    #[test]
    fn deciders_agree_on_random_instances() {
        let mut rng = generators::seeded(2024);
        for trial in 0..60 {
            let n = 5 + (trial % 4);
            let g = generators::gnp_connected(n, 0.35, &mut rng);
            let z = crate::sampling::random_structure(g.nodes(), 3, 2, &mut rng);
            let inst = adhoc(g, z, 0, (n as u32) - 1);
            let enumerated = zpp_cut_by_enumeration(&inst).is_some();
            let fixpoint = zpp_cut_by_fixpoint(&inst).is_some();
            assert_eq!(enumerated, fixpoint, "trial {trial}: {inst:?}");
            assert_eq!(fixpoint, !zcpa_resilient(&inst), "trial {trial}");
        }
    }

    #[test]
    fn observed_deciders_match_and_count() {
        let reg = rmt_obs::Registry::new();
        let mut rng = generators::seeded(7);
        for trial in 0..20 {
            let n = 5 + (trial % 3);
            let g = generators::gnp_connected(n, 0.4, &mut rng);
            let z = crate::sampling::random_structure(g.nodes(), 3, 2, &mut rng);
            let inst = adhoc(g, z, 0, (n as u32) - 1);
            assert_eq!(
                zpp_cut_by_fixpoint(&inst),
                zpp_cut_by_fixpoint_observed(&inst, &reg),
                "trial {trial}"
            );
            for t in inst.worst_case_corruptions() {
                assert_eq!(
                    zcpa_fixpoint(&inst, &t),
                    zcpa_fixpoint_observed(&inst, &t, &reg)
                );
            }
        }
        assert!(reg.counter("zcpa.sweeps").get() > 0);
        assert!(reg.counter("zcpa.certification_checks").get() > 0);
        assert!(reg.counter("zpp.corruption_sets_checked").get() > 0);
        assert_eq!(reg.histogram("zpp.decide_ns").count(), 20);
    }

    #[test]
    fn dealer_adjacent_receiver_is_always_solvable() {
        let mut g = diamond();
        g.add_edge(0.into(), 3.into());
        let z = AdversaryStructure::from_sets([set(&[1]), set(&[2])]);
        let inst = adhoc(g, z, 0, 3);
        assert!(zpp_cut_by_fixpoint(&inst).is_none());
        assert!(zcpa_resilient(&inst));
    }
}
