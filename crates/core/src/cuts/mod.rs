//! The paper's cut notions and their deciders.
//!
//! * [`rmt_cut`] — the **RMT-cut** of Definition 3: the exact obstruction to
//!   RMT in the partial knowledge model (Theorems 3 and 5).
//! * [`zpp`] — the **RMT 𝒵-pp cut** of Definition 7: the obstruction in the
//!   ad hoc model (Theorems 7 and 8), decidable both by exhaustive cut
//!   enumeration and by the polynomial Z-CPA fixpoint.
//! * [`anchored`] — separator-anchored twins of the enumeration deciders:
//!   verdict-identical, but driven by the minimal-separator anchors of
//!   `rmt_graph::separators` instead of the `2^n` subset lattice, with a
//!   budgeted exhaustive fallback keeping the verdict exact.
//! * [`par`] — deterministic parallel twins of the deciders above: same
//!   witnesses, same observed counters, on up to `threads` OS threads.

pub mod anchored;
pub mod par;
pub mod rmt_cut;
pub mod zpp;

pub use anchored::{
    find_rmt_cut_anchored, find_rmt_cut_anchored_observed, find_rmt_cut_anchored_observed_with,
    find_rmt_cut_anchored_with, zpp_cut_by_enumeration_anchored,
    zpp_cut_by_enumeration_anchored_observed, zpp_cut_by_enumeration_anchored_with, AnchorBudget,
};
pub use par::{
    find_rmt_cut_anchored_par, find_rmt_cut_anchored_par_observed, find_rmt_cut_par,
    find_rmt_cut_par_observed, zpp_cut_by_enumeration_anchored_par, zpp_cut_by_enumeration_par,
    zpp_cut_by_fixpoint_par, zpp_cut_by_fixpoint_par_observed,
};
pub use rmt_cut::{find_rmt_cut, find_rmt_cut_observed, is_rmt_cut, rmt_cut_exists, RmtCutWitness};
pub use zpp::{
    is_zpp_cut, zcpa_fixpoint, zcpa_fixpoint_broadcast, zcpa_fixpoint_observed, zcpa_resilient,
    zpp_cut_by_enumeration, zpp_cut_by_fixpoint, zpp_cut_by_fixpoint_observed, zpp_cut_exists,
    ZppCutWitness,
};
