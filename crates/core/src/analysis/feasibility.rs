//! Feasibility characterization and minimal-knowledge analysis.
//!
//! * [`characterize`] — the ground truth for an instance: RMT-cut witness
//!   (partial knowledge characterization, Theorems 3+5) and, for ad hoc
//!   reasoning, the 𝒵-pp cut witness (Theorems 7+8).
//! * [`minimal_knowledge_radius`] — the paper's "RMT under minimal
//!   knowledge" observation made executable: the smallest radius-k view
//!   assignment under which the instance becomes solvable.
//! * [`solvable_receivers`] — the network-design by-product: the exact set
//!   of receivers the dealer can reach reliably.

use rmt_adversary::AdversaryStructure;
use rmt_graph::{Graph, ViewKind};
use rmt_sets::{NodeId, NodeSet};

use crate::cuts::{find_rmt_cut, zpp_cut_by_fixpoint, RmtCutWitness, ZppCutWitness};
use crate::instance::Instance;

/// The ground-truth characterization of one instance.
#[derive(Clone, Debug)]
pub struct Characterization {
    /// RMT-cut witness, if one exists (partial knowledge model).
    pub rmt_cut: Option<RmtCutWitness>,
    /// 𝒵-pp cut witness, if one exists (ad hoc reasoning; present for every
    /// instance but only *characterizing* under ad hoc views).
    pub zpp_cut: Option<ZppCutWitness>,
}

impl Characterization {
    /// Whether safe resilient RMT is possible (no RMT-cut, Theorems 3+5).
    pub fn solvable(&self) -> bool {
        self.rmt_cut.is_none()
    }

    /// Whether Z-CPA solves the instance (no 𝒵-pp cut, Theorems 7+8).
    pub fn zcpa_solvable(&self) -> bool {
        self.zpp_cut.is_none()
    }
}

/// Computes both cut characterizations for an instance.
///
/// Exhaustive in the RMT-cut part — intended for instances with `n ≲ 16`.
///
/// # Example
///
/// ```
/// use rmt_core::{analysis, gallery};
/// use rmt_graph::ViewKind;
///
/// // The staggered theta at radius 2: solvable for RMT-PKA, while its ad
/// // hoc shadow (the 𝒵-pp cut) still blocks Z-CPA-style certification.
/// let c = analysis::characterize(&gallery::staggered_theta(ViewKind::Radius(2)));
/// assert!(c.solvable());
/// assert!(!c.zcpa_solvable());
/// ```
pub fn characterize(inst: &Instance) -> Characterization {
    Characterization {
        rmt_cut: find_rmt_cut(inst),
        zpp_cut: zpp_cut_by_fixpoint(inst),
    }
}

/// The smallest radius `k ≤ max_k` such that the instance
/// `(g, z, Radius(k), d, r)` admits no RMT-cut, or `None` if even `max_k`
/// (effectively full knowledge once `k` exceeds the diameter) does not
/// suffice.
///
/// Monotonicity of knowledge (larger views shrink 𝒵_B, removing cuts) makes
/// the answer well defined: this is the minimal γ of the paper's partial
/// order restricted to the radius-uniform chain.
///
/// # Example
///
/// ```
/// use rmt_core::{analysis, gallery};
///
/// let (g, z) = gallery::staggered_theta_parts();
/// assert_eq!(
///     analysis::minimal_knowledge_radius(&g, &z, 0.into(), 9.into(), 4),
///     Some(2)
/// );
/// ```
pub fn minimal_knowledge_radius(
    g: &Graph,
    z: &AdversaryStructure,
    d: NodeId,
    r: NodeId,
    max_k: usize,
) -> Option<usize> {
    for k in 0..=max_k {
        let inst = Instance::new(g.clone(), z.clone(), ViewKind::Radius(k), d, r)
            .expect("radius views always yield valid instances");
        if find_rmt_cut(&inst).is_none() {
            return Some(k);
        }
    }
    None
}

/// A cheap *sufficient* condition for unsolvability, usable as a pre-filter
/// before the exhaustive RMT-cut search: a corruptible articulation point
/// between D and R is a singleton RMT-cut (`C₁ = {v} ∈ 𝒵`, `C₂ = ∅`), and a
/// corruptible D–R *pair* of structure members is the classical pair cut.
///
/// Returns `true` only when the instance is certainly unsolvable; `false`
/// is inconclusive. Soundness is tested against [`characterize`].
pub fn quick_unsolvable(inst: &Instance) -> bool {
    let (d, r) = (inst.dealer(), inst.receiver());
    if inst.graph().has_edge(d, r) {
        return false;
    }
    if !inst.endpoints_connected() {
        return true;
    }
    // Corruptible articulation point separating D from R.
    let points = rmt_graph::connectivity::articulation_points(inst.graph());
    for v in &points {
        if v != d
            && v != r
            && inst.adversary().contains(&NodeSet::singleton(v))
            && rmt_graph::cuts::is_dr_cut(inst.graph(), d, r, &NodeSet::singleton(v))
        {
            return true;
        }
    }
    // Classical pair cut (always an RMT-cut regardless of knowledge).
    crate::protocols::ppa::pair_cut_exists(inst)
}

/// The set of receivers the dealer can reach with safe resilient RMT under
/// the given view kind — the exact subnetwork usable in a design phase.
pub fn solvable_receivers(
    g: &Graph,
    z: &AdversaryStructure,
    d: NodeId,
    views: ViewKind,
) -> NodeSet {
    g.nodes()
        .iter()
        .filter(|&r| {
            r != d
                && Instance::new(g.clone(), z.clone(), views, d, r)
                    .map(|inst| find_rmt_cut(&inst).is_none())
                    .unwrap_or(false)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt_graph::generators;

    fn set(ids: &[u32]) -> NodeSet {
        ids.iter().copied().collect()
    }

    #[test]
    fn characterization_flags_both_cuts_on_the_bad_diamond() {
        let mut g = Graph::new();
        g.add_edge(0.into(), 1.into());
        g.add_edge(0.into(), 2.into());
        g.add_edge(1.into(), 3.into());
        g.add_edge(2.into(), 3.into());
        let z = AdversaryStructure::from_sets([set(&[1]), set(&[2])]);
        let inst = Instance::new(g, z, ViewKind::AdHoc, 0.into(), 3.into()).unwrap();
        let c = characterize(&inst);
        assert!(!c.solvable());
        assert!(!c.zcpa_solvable());
    }

    #[test]
    fn knowledge_radius_finds_a_finite_threshold() {
        // 6-cycle with 𝒵 = {{1},{4}}: ad hoc solvable? The joint structure
        // of B may conflate {1} and {4} scenarios at low radius; whatever
        // the threshold is, it must be monotone and agree with the direct
        // check at each k.
        let g = generators::cycle(6);
        let z = AdversaryStructure::from_sets([set(&[1]), set(&[4])]);
        let k = minimal_knowledge_radius(&g, &z, 0.into(), 3.into(), 6);
        match k {
            Some(k) => {
                for probe in 0..k {
                    let inst = Instance::new(
                        g.clone(),
                        z.clone(),
                        ViewKind::Radius(probe),
                        0.into(),
                        3.into(),
                    )
                    .unwrap();
                    assert!(find_rmt_cut(&inst).is_some(), "radius {probe} too small");
                }
            }
            None => {
                let inst = Instance::new(g, z, ViewKind::Full, 0.into(), 3.into()).unwrap();
                assert!(find_rmt_cut(&inst).is_some());
            }
        }
    }

    #[test]
    fn quick_unsolvable_is_sound() {
        // Never claims unsolvability on a solvable instance.
        let mut rng = generators::seeded(4040);
        for trial in 0..40 {
            let n = 5 + trial % 5;
            let inst = crate::sampling::random_instance(n, 0.35, ViewKind::AdHoc, 3, 2, &mut rng);
            if quick_unsolvable(&inst) {
                assert!(!characterize(&inst).solvable(), "trial {trial}: {inst:?}");
            }
        }
    }

    #[test]
    fn quick_unsolvable_catches_the_obvious_cases() {
        // Corruptible articulation point on a path.
        let g = generators::path_graph(3);
        let z = AdversaryStructure::from_sets([set(&[1])]);
        let inst = Instance::new(g, z, ViewKind::AdHoc, 0.into(), 2.into()).unwrap();
        assert!(quick_unsolvable(&inst));
        // Pair cut on the diamond.
        assert!(quick_unsolvable(&crate::gallery::unsolvable_diamond(
            ViewKind::AdHoc
        )));
        // Inconclusive on the solvable diamond.
        assert!(!quick_unsolvable(&crate::gallery::tolerant_diamond(
            ViewKind::AdHoc
        )));
    }

    #[test]
    fn solvable_receivers_on_a_robust_graph() {
        // K5 with a single corruptible node: every receiver reachable.
        let g = generators::complete(5);
        let z = AdversaryStructure::from_sets([set(&[1])]);
        let ok = solvable_receivers(&g, &z, 0.into(), ViewKind::AdHoc);
        assert_eq!(ok, set(&[1, 2, 3, 4]));
    }

    #[test]
    fn solvable_receivers_excludes_cut_off_nodes() {
        // Path 0-1-2: node 2 sits behind corruptible 1.
        let g = generators::path_graph(3);
        let z = AdversaryStructure::from_sets([set(&[1])]);
        let ok = solvable_receivers(&g, &z, 0.into(), ViewKind::AdHoc);
        assert_eq!(ok, set(&[1])); // 1 is adjacent; 2 is cut off
    }
}
