//! The scenario-swap (indistinguishability) attack — the executable form of
//! the impossibility proofs (Theorem 3, Theorem 8; Figure 2).
//!
//! Given an RMT-cut witness `C = C₁ ∪ C₂`, two runs are executed in
//! lockstep:
//!
//! * run **e** on the true instance (structure 𝒵, dealer value `x₀`) with
//!   corruption set `C₁`;
//! * run **e′** on the forged instance (structure 𝒵′, dealer value `x₁`)
//!   with corruption set `C₂`,
//!
//! where 𝒵′ = materialize(𝒵_B) ∪ {C₂}: the receiver-side component `B`
//! cannot distinguish 𝒵′ from 𝒵 (their traces on every `V(γ(v))`, `v ∈ B`,
//! coincide — that is exactly what the RMT-cut condition
//! `C₂ ∩ V(γ(B)) ∈ 𝒵_B` buys), and `C₂` is admissible in 𝒵′.
//!
//! Corrupted nodes mirror their honest alter ego from the twin run
//! ([`CoupledRunner`]). The theory predicts — and the experiments assert —
//! that every node of `B` receives identical messages in both runs, so a
//! *safe* protocol cannot decide in either.

use rmt_adversary::AdversaryStructure;
use rmt_sets::NodeSet;

use crate::cuts::RmtCutWitness;
use crate::instance::Instance;
use crate::knowledge::KnowledgeCache;
use crate::protocols::rmt_pka::RmtPka;
use crate::protocols::Value;
use rmt_sim::CoupledRunner;

/// Why the coupled attack could not be constructed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoupledAttackError {
    /// Materializing 𝒵_B exceeded the antichain bound.
    JointBlowup {
        /// The bound that was exceeded.
        limit: usize,
    },
}

impl std::fmt::Display for CoupledAttackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoupledAttackError::JointBlowup { limit } => {
                write!(f, "materializing 𝒵_B exceeded {limit} maximal sets")
            }
        }
    }
}

impl std::error::Error for CoupledAttackError {}

/// The outcome of the scenario-swap attack.
#[derive(Clone, Debug)]
pub struct CoupledAttackReport {
    /// Whether the receiver's deliveries were identical in both runs (the
    /// indistinguishability the construction establishes).
    pub receiver_views_equal: bool,
    /// Whether *every* node of B had identical deliveries.
    pub component_views_equal: bool,
    /// R's decision in run e (true structure, value `x0`).
    pub decision_e: Option<Value>,
    /// R's decision in run e′ (forged structure, value `x1`).
    pub decision_e2: Option<Value>,
    /// `true` if either run decided a value different from its dealer's —
    /// a safety violation.
    pub safety_violation: bool,
    /// `true` if the attack *blocked* the protocol: no decision in run e.
    pub blocked: bool,
}

/// Executes the scenario-swap attack for an RMT-cut witness.
///
/// # Errors
///
/// Returns [`CoupledAttackError::JointBlowup`] if 𝒵_B cannot be materialized
/// within `join_limit` maximal sets.
pub fn run_coupled_attack(
    inst: &Instance,
    witness: &RmtCutWitness,
    x0: Value,
    x1: Value,
    join_limit: usize,
) -> Result<CoupledAttackReport, CoupledAttackError> {
    run_coupled_attack_observed(
        inst,
        witness,
        x0,
        x1,
        join_limit,
        &mut rmt_obs::NoopObserver,
        &mut rmt_obs::NoopObserver,
    )
}

/// [`run_coupled_attack`] with run e streamed through `obs_e` and run e′
/// through `obs_e2` (see [`CoupledRunner::run_observed`]).
///
/// The `rmt-trace` tool records both streams to JSONL and diffs them
/// restricted to the receiver's view, exhibiting Figure 2 mechanically.
#[allow(clippy::too_many_arguments)]
pub fn run_coupled_attack_observed<O1, O2>(
    inst: &Instance,
    witness: &RmtCutWitness,
    x0: Value,
    x1: Value,
    join_limit: usize,
    obs_e: &mut O1,
    obs_e2: &mut O2,
) -> Result<CoupledAttackReport, CoupledAttackError>
where
    O1: rmt_obs::RunObserver,
    O2: rmt_obs::RunObserver,
{
    let cache = KnowledgeCache::new(inst);
    let b = &witness.receiver_component;

    // 𝒵′ = materialize(𝒵_B) ∪ {C₂}.
    let z_b = cache
        .joint_view(b)
        .materialize_bounded(join_limit)
        .ok_or(CoupledAttackError::JointBlowup { limit: join_limit })?;
    let mut forged_sets: Vec<NodeSet> = z_b.structure().maximal_sets().to_vec();
    forged_sets.push(witness.c2.clone());
    let z_forged = AdversaryStructure::from_sets(forged_sets);

    let inst_forged = Instance::with_views(
        inst.graph().clone(),
        z_forged,
        inst.views().clone(),
        inst.dealer(),
        inst.receiver(),
    )
    .expect("forged instance shares the verified topology");

    let outcome = CoupledRunner::new(
        inst.graph().clone(),
        witness.c1.clone(),
        witness.c2.clone(),
        |v| RmtPka::node(inst, v, x0),
        |v| RmtPka::node(&inst_forged, v, x1),
    )
    .run_observed(obs_e, obs_e2);

    let r = inst.receiver();
    let decision_e = outcome.decision_e(r);
    let decision_e2 = outcome.decision_e2(r);
    Ok(CoupledAttackReport {
        receiver_views_equal: outcome.views_equal(r),
        component_views_equal: b.iter().all(|v| outcome.views_equal(v)),
        decision_e,
        decision_e2,
        safety_violation: decision_e.is_some_and(|x| x != x0)
            || decision_e2.is_some_and(|x| x != x1),
        blocked: decision_e.is_none(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cuts::find_rmt_cut;
    use rmt_graph::{Graph, ViewKind};

    fn set(ids: &[u32]) -> NodeSet {
        ids.iter().copied().collect()
    }

    fn bad_diamond() -> Instance {
        let mut g = Graph::new();
        g.add_edge(0.into(), 1.into());
        g.add_edge(0.into(), 2.into());
        g.add_edge(1.into(), 3.into());
        g.add_edge(2.into(), 3.into());
        let z = AdversaryStructure::from_sets([set(&[1]), set(&[2])]);
        Instance::new(g, z, ViewKind::AdHoc, 0.into(), 3.into()).unwrap()
    }

    #[test]
    fn swap_attack_blocks_pka_on_the_bad_diamond() {
        let inst = bad_diamond();
        let witness = find_rmt_cut(&inst).expect("instance is unsolvable");
        let report = run_coupled_attack(&inst, &witness, 0, 1, 1 << 16).unwrap();
        assert!(report.receiver_views_equal, "{report:?}");
        assert!(report.component_views_equal, "{report:?}");
        assert!(!report.safety_violation, "{report:?}");
        assert!(report.blocked, "{report:?}");
        assert_eq!(report.decision_e, report.decision_e2);
    }

    #[test]
    fn join_limit_is_enforced() {
        let inst = bad_diamond();
        let witness = find_rmt_cut(&inst).unwrap();
        assert!(matches!(
            run_coupled_attack(&inst, &witness, 0, 1, 0),
            Err(CoupledAttackError::JointBlowup { limit: 0 })
        ));
    }
}
