//! A one-call structured report over an instance — everything the
//! `rmt-cli` inspector prints, as data.

use rmt_sets::NodeSet;

use crate::analysis::feasibility::{characterize, minimal_knowledge_radius, quick_unsolvable};
use crate::cuts::{zcpa_resilient, RmtCutWitness, ZppCutWitness};
use crate::instance::Instance;
use crate::protocols::rmt_pka::run_pka;
use crate::protocols::zcpa::run_zcpa;
use crate::protocols::Value;
use rmt_sim::SilentAdversary;

/// Outcome of one protocol run inside a report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolOutcome {
    /// The corruption set used.
    pub corruption: NodeSet,
    /// The receiver's decision.
    pub decision: Option<Value>,
    /// Honest messages sent.
    pub messages: u64,
    /// Rounds executed.
    pub rounds: u32,
}

/// Everything the analyses can say about one instance.
#[derive(Clone, Debug)]
pub struct InstanceReport {
    /// The RMT-cut witness (partial-knowledge obstruction), if any.
    pub rmt_cut: Option<RmtCutWitness>,
    /// The 𝒵-pp cut witness (ad hoc obstruction), if any.
    pub zpp_cut: Option<ZppCutWitness>,
    /// Whether the fast pre-filter already proves unsolvability.
    pub quick_unsolvable: bool,
    /// The minimal uniform knowledge radius, if any makes it solvable.
    pub minimal_radius: Option<usize>,
    /// RMT-PKA under every worst-case silent corruption.
    pub pka_runs: Vec<ProtocolOutcome>,
    /// Z-CPA under every worst-case silent corruption.
    pub zcpa_runs: Vec<ProtocolOutcome>,
}

impl InstanceReport {
    /// Whether safe resilient RMT is possible (no RMT-cut).
    pub fn solvable(&self) -> bool {
        self.rmt_cut.is_none()
    }

    /// Whether the protocol outcomes are consistent with the
    /// characterization (solvable ⇒ all PKA runs delivered; a mismatch
    /// would indicate a bug).
    pub fn consistent(&self, input: Value) -> bool {
        !self.solvable() || self.pka_runs.iter().all(|r| r.decision == Some(input))
    }
}

/// Builds the full report, running both protocols under every worst-case
/// silent corruption with dealer value `input`.
///
/// # Example
///
/// ```
/// use rmt_core::{analysis, gallery};
/// use rmt_graph::ViewKind;
///
/// let report = analysis::report(&gallery::tolerant_diamond(ViewKind::AdHoc), 42);
/// assert!(report.solvable());
/// assert!(report.consistent(42));
/// assert_eq!(report.minimal_radius, Some(1));
/// ```
pub fn report(inst: &Instance, input: Value) -> InstanceReport {
    let c = characterize(inst);
    let minimal_radius = minimal_knowledge_radius(
        inst.graph(),
        inst.adversary(),
        inst.dealer(),
        inst.receiver(),
        inst.graph().node_count(),
    );
    let mut pka_runs = Vec::new();
    let mut zcpa_runs = Vec::new();
    for t in inst.worst_case_corruptions() {
        let pka = run_pka(inst, input, SilentAdversary::new(t.clone()));
        pka_runs.push(ProtocolOutcome {
            corruption: t.clone(),
            decision: pka.decision(inst.receiver()),
            messages: pka.metrics.honest_messages,
            rounds: pka.metrics.rounds,
        });
        let zcpa = run_zcpa(inst, input, SilentAdversary::new(t.clone()));
        zcpa_runs.push(ProtocolOutcome {
            corruption: t,
            decision: zcpa.decision(inst.receiver()),
            messages: zcpa.metrics.honest_messages,
            rounds: zcpa.metrics.rounds,
        });
    }
    InstanceReport {
        rmt_cut: c.rmt_cut,
        zpp_cut: c.zpp_cut,
        quick_unsolvable: quick_unsolvable(inst),
        minimal_radius,
        pka_runs,
        zcpa_runs,
    }
}

/// `true` iff the Z-CPA outcomes in the report match the analytic
/// resilience verdict.
pub fn zcpa_outcomes_consistent(inst: &Instance, rep: &InstanceReport, input: Value) -> bool {
    !zcpa_resilient(inst) || rep.zcpa_runs.iter().all(|r| r.decision == Some(input))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gallery;
    use rmt_graph::ViewKind;

    #[test]
    fn report_on_the_gap_witness() {
        let rep = report(&gallery::staggered_theta(ViewKind::Radius(2)), 5);
        assert!(rep.solvable());
        assert!(!rep.quick_unsolvable);
        assert_eq!(rep.minimal_radius, Some(2));
        assert!(rep.consistent(5));
        // Z-CPA fails on it (ad hoc rule), so its runs abstain.
        assert!(rep.zcpa_runs.iter().all(|r| r.decision.is_none()));
        assert!(zcpa_outcomes_consistent(
            &gallery::staggered_theta(ViewKind::Radius(2)),
            &rep,
            5
        ));
    }

    #[test]
    fn report_on_an_unsolvable_instance() {
        let inst = gallery::unsolvable_diamond(ViewKind::AdHoc);
        let rep = report(&inst, 5);
        assert!(!rep.solvable());
        assert!(rep.quick_unsolvable);
        assert_eq!(rep.minimal_radius, None);
        assert!(rep.consistent(5)); // vacuously: not solvable
                                    // Safety: no run decided a wrong value.
        for r in rep.pka_runs.iter().chain(&rep.zcpa_runs) {
            assert!(r.decision.is_none() || r.decision == Some(5));
        }
    }
}
