//! Instance analysis: feasibility characterization, attack-suite resilience
//! checking, and the executable lower-bound (scenario-swap) construction.

pub mod complexity;
pub mod coupled_attack;
pub mod feasibility;
pub mod placement;
pub mod report;
pub mod resilience;
pub mod tolerance;

pub use complexity::{pka_honest_messages, zcpa_honest_messages, TrailBudgetExceeded};
pub use coupled_attack::{
    run_coupled_attack, run_coupled_attack_observed, CoupledAttackError, CoupledAttackReport,
};
pub use feasibility::{
    characterize, minimal_knowledge_radius, quick_unsolvable, solvable_receivers, Characterization,
};
pub use placement::{minimal_upgrade_set, mixed_views_instance};
pub use report::{report, InstanceReport, ProtocolOutcome};
pub use resilience::{pka_attack_suite, zcpa_attack_suite, SuiteReport};
pub use tolerance::{dolev_bound, max_tolerable_threshold};
