//! Analytic message-complexity predictors, cross-validated against the
//! simulator's metrics.
//!
//! For *honest* runs (silent adversary) both protocols are deterministic
//! enough to count exactly:
//!
//! * **Z-CPA**: the dealer sends `deg(D)` messages; every honest node that
//!   decides (the fixpoint set) relays once — except the receiver, which
//!   outputs instead. Exact closed form from the fixpoint.
//! * **RMT-PKA**: a message with trail `p` is sent by `tail(p)` to all its
//!   neighbours, and trails range over the simple paths that avoid the
//!   receiver as an intermediate node. Counting trails weighted by the
//!   tail's degree gives the exact type-1 count; type-2 repeats the count
//!   from every originator.
//!
//! The equalities are verified per-instance in this module's tests and give
//! experiment E6 its analytic backbone: the protocols' costs are not just
//! measured, they are *predicted*.

use rmt_graph::Graph;
use rmt_sets::{NodeId, NodeSet};

use crate::cuts::zcpa_fixpoint;
use crate::instance::Instance;

/// Exact honest-run (silent corruption) Z-CPA message count.
///
/// `corrupted` nodes send nothing; honest deciders (per the fixpoint) relay
/// once to all neighbours, the receiver excepted.
pub fn zcpa_honest_messages(inst: &Instance, corrupted: &NodeSet) -> u64 {
    let g = inst.graph();
    let dealer_sends = g.degree(inst.dealer()) as u64;
    let decided = zcpa_fixpoint(inst, corrupted);
    let relays: u64 = decided
        .iter()
        .filter(|v| *v != inst.receiver())
        .map(|v| g.degree(v) as u64)
        .sum();
    dealer_sends + relays
}

/// Error from the path-counting predictors when the trail space exceeds the
/// budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrailBudgetExceeded;

impl std::fmt::Display for TrailBudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trail enumeration exceeded its budget")
    }
}

impl std::error::Error for TrailBudgetExceeded {}

/// Sum over all simple paths `p` starting at `origin` (of length ≥ 1 node),
/// never revisiting and never extending *into* `forbidden` nodes, of
/// `deg(tail(p))` — the number of copies the tail broadcasts.
///
/// This is the exact per-originator message count of trail propagation: the
/// originator sends `deg(origin)` copies of `(a, [origin])`, every valid
/// extension `p‖v` is re-broadcast by `v`, and trails stop growing at
/// `forbidden` nodes — the receiver never forwards, and neither does the
/// dealer (it terminates after its initial sends). The origin itself may be
/// a forbidden node (the dealer originates its own floods).
fn trail_copies(
    g: &Graph,
    origin: NodeId,
    forbidden: &NodeSet,
    budget: &mut u64,
) -> Result<u64, TrailBudgetExceeded> {
    fn rec(
        g: &Graph,
        v: NodeId,
        on_path: &mut NodeSet,
        forbidden: &NodeSet,
        budget: &mut u64,
    ) -> Result<u64, TrailBudgetExceeded> {
        if *budget == 0 {
            return Err(TrailBudgetExceeded);
        }
        *budget -= 1;
        // v broadcasts the current trail to all its neighbours…
        let mut total = g.degree(v) as u64;
        // …and every neighbour that accepts (not on the trail, not
        // forbidden) re-broadcasts the extended trail.
        for u in g.neighbors(v) {
            if !on_path.contains(u) && !forbidden.contains(u) {
                on_path.insert(u);
                total += rec(g, u, on_path, forbidden, budget)?;
                on_path.remove(u);
            }
        }
        Ok(total)
    }
    if !g.contains_node(origin) {
        return Ok(0);
    }
    let mut on_path = NodeSet::singleton(origin);
    rec(g, origin, &mut on_path, forbidden, budget)
}

/// Exact honest-run RMT-PKA message count (no corruption): the dealer's two
/// initial floods (value + knowledge) plus one knowledge flood per relay.
///
/// # Errors
///
/// Returns [`TrailBudgetExceeded`] if more than `budget` trail extensions
/// would have to be enumerated.
pub fn pka_honest_messages(inst: &Instance, budget: u64) -> Result<u64, TrailBudgetExceeded> {
    let g = inst.graph();
    let r = inst.receiver();
    let mut forbidden = NodeSet::singleton(r);
    forbidden.insert(inst.dealer()); // the dealer terminates after start
    let mut budget = budget;
    // Type 1 + the dealer's own type 2: two identical floods from D.
    let from_dealer = trail_copies(g, inst.dealer(), &forbidden, &mut budget)?;
    let mut total = 2 * from_dealer;
    // Each relay's knowledge flood (the receiver originates nothing).
    for v in g.nodes() {
        if v != inst.dealer() && v != r {
            total += trail_copies(g, v, &forbidden, &mut budget)?;
        }
    }
    Ok(total)
}

/// Exact per-node decision rounds of a worst-case (silent-corruption)
/// Z-CPA run, indexed by [`NodeId::index`]: the dealer decides at round 0,
/// dealer-neighbours at round 1, and every other honest node at the first
/// round its accumulated certifying class escapes 𝒵_v. `None` for corrupted
/// or never-certified nodes.
///
/// A decided node relays in its decision round and its value arrives one
/// round later; the receiver never relays. Matches the simulation exactly
/// (tested below), giving the round-complexity claims of Theorem 9's proof
/// ("at least one new player decides every round") an executable form.
pub fn zcpa_decision_rounds(inst: &Instance, corrupted: &NodeSet) -> Vec<Option<u32>> {
    let g = inst.graph();
    let (d, r) = (inst.dealer(), inst.receiver());
    let size = g.nodes().last().map_or(0, |v| v.index() + 1);
    let mut decided_at: Vec<Option<u32>> = vec![None; size];
    decided_at[d.index()] = Some(0);

    for round in 1..=g.node_count() as u32 + 2 {
        let mut progress = false;
        for u in g.nodes() {
            if u == d || corrupted.contains(u) || decided_at[u.index()].is_some() {
                continue;
            }
            if g.has_edge(u, d) {
                // The dealer's value arrived in round 1.
                if round == 1 {
                    decided_at[u.index()] = Some(1);
                    progress = true;
                }
                continue;
            }
            // Values received by `round`: senders decided (and relayed) by
            // round − 1; the receiver never relays.
            let class: NodeSet = g
                .neighbors(u)
                .iter()
                .filter(|&w| {
                    w != r
                        && !corrupted.contains(w)
                        && decided_at[w.index()].is_some_and(|s| s < round)
                })
                .collect();
            if !inst.local_structure(u).contains(&class) {
                decided_at[u.index()] = Some(round);
                progress = true;
            }
        }
        if !progress {
            break;
        }
    }
    decided_at
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::rmt_pka::run_pka;
    use crate::protocols::zcpa::run_zcpa;
    use crate::sampling;
    use rmt_graph::{generators, ViewKind};
    use rmt_sim::SilentAdversary;

    #[test]
    fn zcpa_prediction_is_exact_on_random_instances() {
        let mut rng = generators::seeded(1001);
        for trial in 0..25 {
            let n = 5 + trial % 5;
            let inst = sampling::random_instance(n, 0.4, ViewKind::AdHoc, 3, 2, &mut rng);
            for t in inst.worst_case_corruptions() {
                let predicted = zcpa_honest_messages(&inst, &t);
                let out = run_zcpa(&inst, 7, SilentAdversary::new(t.clone()));
                assert_eq!(
                    out.metrics.honest_messages, predicted,
                    "trial {trial}, T = {t}: {inst:?}"
                );
            }
        }
    }

    #[test]
    fn pka_prediction_is_exact_on_random_instances() {
        let mut rng = generators::seeded(1002);
        for trial in 0..15 {
            let n = 5 + trial % 3;
            let inst = sampling::random_instance(n, 0.4, ViewKind::AdHoc, 2, 2, &mut rng);
            let predicted = pka_honest_messages(&inst, 1 << 22).unwrap();
            let out = run_pka(&inst, 7, SilentAdversary::new(rmt_sets::NodeSet::new()));
            assert_eq!(
                out.metrics.honest_messages, predicted,
                "trial {trial}: {inst:?}"
            );
        }
    }

    #[test]
    fn pka_prediction_on_the_diamond_by_hand() {
        // Diamond D=0, relays 1,2, R=3; trails never extend into D or R.
        // Dealer floods: [0] (deg 2), [0,1] (deg 2), [0,2] (deg 2) = 6
        // copies each for the value and the dealer's knowledge → 12.
        // Relay knowledge floods: [1] (deg 2) and [2] (deg 2) — extensions
        // into 0 or 3 are terminal → 4. Total 16.
        let inst = crate::gallery::tolerant_diamond(ViewKind::AdHoc);
        assert_eq!(pka_honest_messages(&inst, 1 << 16), Ok(16));
        let out = run_pka(&inst, 7, SilentAdversary::new(rmt_sets::NodeSet::new()));
        assert_eq!(out.metrics.honest_messages, 16);
    }

    #[test]
    fn decision_round_prediction_is_exact_per_node() {
        let mut rng = generators::seeded(1003);
        for trial in 0..20 {
            let n = 5 + trial % 5;
            let inst = sampling::random_instance(n, 0.45, ViewKind::AdHoc, 3, 2, &mut rng);
            for t in inst.worst_case_corruptions() {
                let predicted = zcpa_decision_rounds(&inst, &t);
                let out = run_zcpa(&inst, 7, SilentAdversary::new(t.clone()));
                for v in inst.graph().nodes() {
                    if t.contains(v) {
                        continue;
                    }
                    let sim = out.protocol(v).and_then(|p| p.decided_at());
                    assert_eq!(
                        sim,
                        predicted[v.index()],
                        "trial {trial}, T = {t}, node {v}: {inst:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn decision_rounds_track_distance_on_king_grids() {
        // On a king grid with t = 1 the certification wave moves one layer
        // per round after the first: round(v) ≥ BFS distance from the dealer.
        let g = generators::king_grid(4, 4);
        let inst = sampling::threshold_instance(g.clone(), 1, ViewKind::AdHoc, 0, 15);
        let rounds = zcpa_decision_rounds(&inst, &rmt_sets::NodeSet::new());
        let dist = rmt_graph::traversal::distances(&g, 0.into());
        for v in g.nodes() {
            if v == inst.dealer() {
                continue;
            }
            let r = rounds[v.index()].expect("honest run certifies everyone");
            assert!(r >= dist[v.index()].unwrap(), "node {v}");
        }
    }

    #[test]
    fn budget_is_enforced() {
        let inst = sampling::threshold_instance(generators::complete(8), 1, ViewKind::AdHoc, 0, 7);
        assert_eq!(pka_honest_messages(&inst, 3), Err(TrailBudgetExceeded));
    }
}
