//! Threshold tolerance: how strong an adversary can an instance take?
//!
//! For the global threshold model this module computes the largest `t` for
//! which RMT remains solvable at a given knowledge level. Under *full*
//! knowledge the answer must reproduce Dolev's classical bound — RMT between
//! non-adjacent nodes is possible iff the D–R vertex connectivity exceeds
//! `2t` — which the tests verify against the max-flow connectivity from
//! `rmt-graph`: the classical theorem drops out of the general adversary
//! machinery as a special case.

use rmt_graph::{cuts as gcuts, Graph, ViewKind};
use rmt_sets::NodeId;

use crate::cuts::find_rmt_cut;
use crate::instance::Instance;

/// The largest global threshold `t ≤ max_t` under which
/// `(g, threshold(t), views, d, r)` admits no RMT-cut, or `None` if even
/// `t = 0` is unsolvable (i.e. D and R are disconnected).
///
/// Solvability is antitone in `t` (larger structures only add cuts), so a
/// linear scan from 0 is exact and returns the first failure minus one.
pub fn max_tolerable_threshold(
    g: &Graph,
    d: NodeId,
    r: NodeId,
    views: ViewKind,
    max_t: usize,
) -> Option<usize> {
    let mut best = None;
    for t in 0..=max_t {
        let z = rmt_adversary::threshold(g.nodes(), t);
        let inst = Instance::new(g.clone(), z, views, d, r).expect("valid threshold instance");
        if find_rmt_cut(&inst).is_none() {
            best = Some(t);
        } else {
            break;
        }
    }
    best
}

/// Dolev's bound for the full-knowledge threshold model: for non-adjacent
/// D, R with vertex connectivity κ, the maximum tolerable threshold is
/// `⌈κ/2⌉ − 1` (solvable iff κ > 2t); adjacent endpoints tolerate any `t`.
pub fn dolev_bound(g: &Graph, d: NodeId, r: NodeId) -> Option<usize> {
    match gcuts::vertex_connectivity(g, d, r) {
        None => Some(usize::MAX), // adjacent: the direct channel always works
        Some(0) => None,          // disconnected
        Some(k) => Some(k.div_ceil(2) - 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt_graph::generators;

    #[test]
    fn full_knowledge_tolerance_matches_dolev_on_random_graphs() {
        let mut rng = generators::seeded(2101);
        for trial in 0..30 {
            let n = 5 + trial % 5;
            let g = generators::gnp_connected(n, 0.45, &mut rng);
            let d = NodeId::new(0);
            let r = NodeId::new(n as u32 - 1);
            if g.has_edge(d, r) {
                continue;
            }
            let expected = dolev_bound(&g, d, r).unwrap();
            let measured = max_tolerable_threshold(&g, d, r, ViewKind::Full, n)
                .expect("connected instances tolerate t = 0");
            assert_eq!(measured, expected, "trial {trial}: {g:?}");
        }
    }

    #[test]
    fn known_families() {
        // Cycle: κ = 2 → t = 0.
        let g = generators::cycle(6);
        assert_eq!(
            max_tolerable_threshold(&g, 0.into(), 3.into(), ViewKind::Full, 6),
            Some(0)
        );
        // Hypercube Q3 between antipodes: κ = 3 → t = 1.
        let g = generators::hypercube(3);
        assert_eq!(
            max_tolerable_threshold(&g, 0.into(), 7.into(), ViewKind::Full, 8),
            Some(1)
        );
        // K_{3,3} across the partition… adjacent; within one side: κ = 3 → t = 1.
        let g = generators::complete_bipartite(3, 3);
        assert_eq!(
            max_tolerable_threshold(&g, 0.into(), 1.into(), ViewKind::Full, 6),
            Some(1)
        );
    }

    #[test]
    fn less_knowledge_never_tolerates_more() {
        let mut rng = generators::seeded(2102);
        for trial in 0..15 {
            let n = 6 + trial % 3;
            let g = generators::gnp_connected(n, 0.5, &mut rng);
            let d = NodeId::new(0);
            let r = NodeId::new(n as u32 - 1);
            if g.has_edge(d, r) {
                continue;
            }
            let adhoc = max_tolerable_threshold(&g, d, r, ViewKind::AdHoc, n);
            let full = max_tolerable_threshold(&g, d, r, ViewKind::Full, n);
            assert!(
                adhoc <= full,
                "trial {trial}: adhoc {adhoc:?} vs full {full:?}"
            );
        }
    }

    #[test]
    fn disconnected_endpoints_tolerate_nothing() {
        let mut g = generators::path_graph(2);
        g.add_node(4.into());
        assert_eq!(
            max_tolerable_threshold(&g, 0.into(), 4.into(), ViewKind::Full, 3),
            None
        );
        assert_eq!(dolev_bound(&g, 0.into(), 4.into()), None);
    }
}
