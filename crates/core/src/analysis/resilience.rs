//! Attack-suite resilience and safety sweeps.
//!
//! A protocol is *resilient* for an instance if the receiver decides the
//! dealer's value under every admissible corruption and behaviour, and
//! *safe* if it never decides a wrong value in any instance. Behaviours are
//! not enumerable, so the sweep runs the implemented attack strategies over
//! every worst-case corruption set and reports three counters; the
//! *blocking* direction of the characterizations additionally uses the
//! scenario-swap construction
//! ([`coupled_attack`](crate::analysis::coupled_attack)).

use rmt_sets::NodeSet;

use crate::instance::Instance;
use crate::protocols::attacks::{pka_adversary, zcpa_adversary, PkaAttack, ZcpaAttack};
use crate::protocols::rmt_pka::run_pka;
use crate::protocols::zcpa::run_zcpa;
use crate::protocols::Value;

/// Aggregated outcome of an attack sweep.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SuiteReport {
    /// Total (corruption set × attack) runs.
    pub runs: usize,
    /// Runs where the receiver decided the dealer's value.
    pub correct: usize,
    /// Runs where the receiver abstained.
    pub undecided: usize,
    /// Runs where the receiver decided a wrong value — safety violations;
    /// each entry records (corruption set, attack label).
    pub violations: Vec<(NodeSet, String)>,
}

impl SuiteReport {
    /// `true` if every run decided correctly (empirical resilience).
    pub fn all_correct(&self) -> bool {
        self.correct == self.runs
    }

    /// `true` if no run decided a wrong value (empirical safety).
    pub fn safe(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Sweeps RMT-PKA over every worst-case corruption set × attack strategy.
pub fn pka_attack_suite(
    inst: &Instance,
    input: Value,
    attacks: &[PkaAttack],
    seed: u64,
) -> SuiteReport {
    let mut report = SuiteReport::default();
    for t in inst.worst_case_corruptions() {
        for (i, &attack) in attacks.iter().enumerate() {
            let adv = pka_adversary(inst, input, t.clone(), attack, seed ^ i as u64);
            let out = run_pka(inst, input, adv);
            record(
                &mut report,
                out.decision(inst.receiver()),
                input,
                &t,
                &attack.to_string(),
            );
        }
    }
    report
}

/// Sweeps Z-CPA over every worst-case corruption set × attack strategy.
pub fn zcpa_attack_suite(inst: &Instance, input: Value, attacks: &[ZcpaAttack]) -> SuiteReport {
    let mut report = SuiteReport::default();
    for t in inst.worst_case_corruptions() {
        for &attack in attacks {
            let adv = zcpa_adversary(input, t.clone(), attack);
            let out = run_zcpa(inst, input, adv);
            record(
                &mut report,
                out.decision(inst.receiver()),
                input,
                &t,
                &attack.to_string(),
            );
        }
    }
    report
}

fn record(
    report: &mut SuiteReport,
    decision: Option<Value>,
    input: Value,
    t: &NodeSet,
    attack: &str,
) {
    report.runs += 1;
    match decision {
        Some(x) if x == input => report.correct += 1,
        Some(_) => report.violations.push((t.clone(), attack.to_string())),
        None => report.undecided += 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::attacks::{PKA_ATTACKS, ZCPA_ATTACKS};
    use rmt_adversary::AdversaryStructure;
    use rmt_graph::{Graph, ViewKind};

    fn diamond_instance(z_sets: &[&[u32]]) -> Instance {
        let mut g = Graph::new();
        g.add_edge(0.into(), 1.into());
        g.add_edge(0.into(), 2.into());
        g.add_edge(1.into(), 3.into());
        g.add_edge(2.into(), 3.into());
        let z = AdversaryStructure::from_sets(
            z_sets
                .iter()
                .map(|s| s.iter().copied().collect::<NodeSet>()),
        );
        Instance::new(g, z, ViewKind::AdHoc, 0.into(), 3.into()).unwrap()
    }

    #[test]
    fn solvable_instance_passes_the_whole_suite() {
        let inst = diamond_instance(&[&[1]]);
        let report = pka_attack_suite(&inst, 7, &PKA_ATTACKS, 1);
        assert!(report.all_correct(), "{report:?}");
        assert_eq!(report.runs, PKA_ATTACKS.len()); // one worst-case set
    }

    #[test]
    fn unsolvable_instance_is_safe_but_not_resilient() {
        let inst = diamond_instance(&[&[1], &[2]]);
        let report = pka_attack_suite(&inst, 7, &PKA_ATTACKS, 2);
        assert!(report.safe(), "{report:?}");
        assert!(!report.all_correct());
        assert!(report.undecided > 0);
    }

    #[test]
    fn zcpa_suite_matches_fixpoint_prediction() {
        let solvable = diamond_instance(&[&[1]]);
        assert!(zcpa_attack_suite(&solvable, 3, &ZCPA_ATTACKS).all_correct());
        let unsolvable = diamond_instance(&[&[1], &[2]]);
        let report = zcpa_attack_suite(&unsolvable, 3, &ZCPA_ATTACKS);
        assert!(report.safe());
        assert!(!report.all_correct());
    }
}
