//! Knowledge placement: *which* players need extra knowledge?
//!
//! The paper characterizes the minimal view function γ (in the pointwise
//! subgraph order) that renders RMT solvable. The radius sweep
//! ([`minimal_knowledge_radius`](crate::analysis::minimal_knowledge_radius))
//! moves along the uniform chain of that order; this module explores the
//! non-uniform directions: starting from ad hoc knowledge, find a smallest
//! *set of nodes* that, upgraded to radius-`k` views, makes the RMT-cut
//! disappear. In a design phase this answers "where do we have to invest in
//! topology discovery?" — the practical by-product the paper points out.

use rmt_adversary::AdversaryStructure;
use rmt_graph::{Graph, ViewAssignment, ViewKind};
use rmt_sets::NodeSet;

use crate::cuts::find_rmt_cut;
use crate::instance::Instance;

/// Builds the instance where nodes in `upgraded` have radius-`k` views and
/// everyone else has ad hoc (star) views.
pub fn mixed_views_instance(
    g: &Graph,
    z: &AdversaryStructure,
    dealer: rmt_sets::NodeId,
    receiver: rmt_sets::NodeId,
    upgraded: &NodeSet,
    k: usize,
) -> Instance {
    let views = ViewAssignment::from_fn(g, |g, v| {
        if upgraded.contains(v) {
            ViewKind::Radius(k).view_of(g, v)
        } else {
            ViewKind::AdHoc.view_of(g, v)
        }
    });
    Instance::with_views(g.clone(), z.clone(), views, dealer, receiver)
        .expect("mixed views preserve instance validity")
}

/// Finds a minimum-cardinality set of nodes whose upgrade to radius-`k`
/// views makes RMT solvable, searching subsets in increasing size up to
/// `max_upgrades` nodes. Returns `None` if no such set exists within the
/// bound (or at all — upgrading everyone is the weakest useful test).
///
/// Exhaustive (the placement problem inherits the characterization's
/// hardness); intended for design-phase analysis of experiment-scale
/// networks.
pub fn minimal_upgrade_set(
    g: &Graph,
    z: &AdversaryStructure,
    dealer: rmt_sets::NodeId,
    receiver: rmt_sets::NodeId,
    k: usize,
    max_upgrades: usize,
) -> Option<NodeSet> {
    let candidates = g.nodes().clone();
    for size in 0..=max_upgrades.min(candidates.len()) {
        for upgraded in candidates.combinations(size) {
            let inst = mixed_views_instance(g, z, dealer, receiver, &upgraded, k);
            if find_rmt_cut(&inst).is_none() {
                return Some(upgraded);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gallery;

    #[test]
    fn staggered_theta_needs_exactly_one_upgrade() {
        // The theta's triple cut is refuted as soon as *some* node of the
        // receiver-side component sees both framed nodes. A single radius-2
        // upgrade suffices — and it must be a node whose ball covers the
        // framing.
        let (g, z) = gallery::staggered_theta_parts();
        let upgraded = minimal_upgrade_set(&g, &z, 0.into(), 9.into(), 2, 3)
            .expect("upgrades make the theta solvable");
        assert_eq!(
            upgraded.len(),
            1,
            "one well-placed upgrade is enough: {upgraded}"
        );
        // Verify the produced assignment really is solvable.
        let inst = mixed_views_instance(&g, &z, 0.into(), 9.into(), &upgraded, 2);
        assert!(find_rmt_cut(&inst).is_none());
    }

    #[test]
    fn empty_upgrade_set_means_already_solvable() {
        let inst = gallery::tolerant_diamond(ViewKind::AdHoc);
        let upgraded = minimal_upgrade_set(
            inst.graph(),
            inst.adversary(),
            inst.dealer(),
            inst.receiver(),
            2,
            2,
        )
        .unwrap();
        assert!(upgraded.is_empty());
    }

    #[test]
    fn genuinely_unsolvable_instances_admit_no_upgrade() {
        // The unsolvable diamond has a pair cut: no amount of knowledge helps.
        let inst = gallery::unsolvable_diamond(ViewKind::AdHoc);
        assert_eq!(
            minimal_upgrade_set(
                inst.graph(),
                inst.adversary(),
                inst.dealer(),
                inst.receiver(),
                4,
                4,
            ),
            None
        );
    }

    #[test]
    fn mixed_views_respect_the_upgrade_set() {
        let (g, z) = gallery::staggered_theta_parts();
        let upgraded = NodeSet::singleton(9u32.into());
        let inst = mixed_views_instance(&g, &z, 0.into(), 9.into(), &upgraded, 2);
        // Upgraded node sees a radius-2 ball; others see stars.
        assert!(inst.view(9.into()).node_count() > inst.view(3.into()).node_count());
        assert_eq!(
            inst.view(3.into()).edge_count(),
            inst.graph().degree(3.into())
        );
    }
}
