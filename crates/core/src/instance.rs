use rmt_adversary::AdversaryStructure;
use rmt_graph::{traversal, Graph, ViewAssignment, ViewKind};
use rmt_sets::{NodeId, NodeSet};
use std::sync::Arc;

/// An RMT instance 𝓘 = (G, 𝒵, γ, D, R).
///
/// * `G` — the synchronous network of authenticated channels;
/// * `𝒵` — the (global, actual) adversary structure;
/// * `γ` — the view function of the Partial Knowledge Model: each player `v`
///   knows the subgraph γ(v) and the trace 𝒵_v = 𝒵^{V(γ(v))};
/// * `D`, `R` — dealer and receiver.
///
/// The ad hoc model is the special case γ(v) = the star around `v`
/// ([`ViewKind::AdHoc`]); full knowledge is γ(v) = G.
///
/// # Example
///
/// ```
/// use rmt_core::Instance;
/// use rmt_graph::{generators, ViewKind};
///
/// let g = generators::cycle(5);
/// let z = rmt_adversary::threshold(g.nodes(), 1);
/// let inst = Instance::new(g, z, ViewKind::AdHoc, 0.into(), 2.into()).unwrap();
/// assert_eq!(inst.dealer(), 0.into());
/// // Node 1's ad hoc view covers {0,1,2}; the trace of the global threshold
/// // there admits any single node of the view.
/// assert!(inst.local_structure(1.into()).contains(&[2u32].into_iter().collect()));
/// ```
#[derive(Clone, Debug)]
pub struct Instance {
    graph: Graph,
    // Shared, not owned: 𝒵 can hold thousands of maximal sets, and graph-only
    // churn ([`Instance::with_graph`]) must not pay to copy an unchanged
    // structure.
    adversary: Arc<AdversaryStructure>,
    views: ViewAssignment,
    dealer: NodeId,
    receiver: NodeId,
}

/// Why an instance description was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InstanceError {
    /// Dealer or receiver is not a node of the graph.
    EndpointMissing(NodeId),
    /// Dealer and receiver coincide.
    DealerIsReceiver,
    /// A maximal corruption set mentions a node outside the graph.
    StructureEscapesGraph(NodeSet),
}

impl std::fmt::Display for InstanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstanceError::EndpointMissing(v) => write!(f, "endpoint {v} is not in the graph"),
            InstanceError::DealerIsReceiver => write!(f, "dealer and receiver coincide"),
            InstanceError::StructureEscapesGraph(s) => {
                write!(f, "corruption set {s} mentions nodes outside the graph")
            }
        }
    }
}

impl std::error::Error for InstanceError {}

impl Instance {
    /// Creates an instance with a uniform view kind.
    ///
    /// # Errors
    ///
    /// Returns an [`InstanceError`] if the endpoints are invalid or the
    /// structure mentions unknown nodes.
    pub fn new(
        graph: Graph,
        adversary: AdversaryStructure,
        views: ViewKind,
        dealer: NodeId,
        receiver: NodeId,
    ) -> Result<Self, InstanceError> {
        let assignment = ViewAssignment::uniform(&graph, views);
        Instance::with_views(graph, adversary, assignment, dealer, receiver)
    }

    /// Creates an instance with an explicit (possibly non-uniform) view
    /// assignment.
    ///
    /// # Errors
    ///
    /// Returns an [`InstanceError`] if the endpoints are invalid or the
    /// structure mentions unknown nodes.
    pub fn with_views(
        graph: Graph,
        adversary: AdversaryStructure,
        views: ViewAssignment,
        dealer: NodeId,
        receiver: NodeId,
    ) -> Result<Self, InstanceError> {
        if !graph.contains_node(dealer) {
            return Err(InstanceError::EndpointMissing(dealer));
        }
        if !graph.contains_node(receiver) {
            return Err(InstanceError::EndpointMissing(receiver));
        }
        if dealer == receiver {
            return Err(InstanceError::DealerIsReceiver);
        }
        if let Some(bad) = adversary
            .maximal_sets()
            .iter()
            .find(|m| !m.is_subset(graph.nodes()))
        {
            return Err(InstanceError::StructureEscapesGraph(bad.clone()));
        }
        Ok(Instance {
            graph,
            adversary: Arc::new(adversary),
            views,
            dealer,
            receiver,
        })
    }

    /// Rebuilds the instance around a mutated graph, **sharing** the
    /// adversary structure instead of cloning it.
    ///
    /// 𝒵 is reference-counted, so graph-only churn — the edge/node delta
    /// path of [`IncrementalEngine`](crate::engine::IncrementalEngine) —
    /// skips the structure copy, and when no node disappeared it also skips
    /// the per-set revalidation; both dominate apply latency once 𝒵 holds
    /// thousands of maximal sets. The views are recomputed uniformly with
    /// `kind` on the new graph.
    ///
    /// # Errors
    ///
    /// Returns an [`InstanceError`] if the endpoints left the graph or a
    /// removed node strands a corruption set outside it.
    pub fn with_graph(&self, graph: Graph, kind: ViewKind) -> Result<Self, InstanceError> {
        if !graph.contains_node(self.dealer) {
            return Err(InstanceError::EndpointMissing(self.dealer));
        }
        if !graph.contains_node(self.receiver) {
            return Err(InstanceError::EndpointMissing(self.receiver));
        }
        if !self.graph.nodes().is_subset(graph.nodes()) {
            if let Some(bad) = self
                .adversary
                .maximal_sets()
                .iter()
                .find(|m| !m.is_subset(graph.nodes()))
            {
                return Err(InstanceError::StructureEscapesGraph(bad.clone()));
            }
        }
        let views = ViewAssignment::uniform(&graph, kind);
        Ok(Instance {
            graph,
            adversary: Arc::clone(&self.adversary),
            views,
            dealer: self.dealer,
            receiver: self.receiver,
        })
    }

    /// The network graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The global adversary structure 𝒵.
    pub fn adversary(&self) -> &AdversaryStructure {
        &self.adversary
    }

    /// The view assignment γ.
    pub fn views(&self) -> &ViewAssignment {
        &self.views
    }

    /// The dealer D.
    pub fn dealer(&self) -> NodeId {
        self.dealer
    }

    /// The receiver R.
    pub fn receiver(&self) -> NodeId {
        self.receiver
    }

    /// γ(v): the subgraph player `v` knows.
    pub fn view(&self, v: NodeId) -> &Graph {
        self.views.view(v)
    }

    /// The domain V(γ(v)) of `v`'s knowledge.
    pub fn view_domain(&self, v: NodeId) -> NodeSet {
        self.view(v).nodes().clone()
    }

    /// 𝒵_v = 𝒵^{V(γ(v))}: the local adversary structure of `v`, as a plain
    /// monotone family over the view domain.
    pub fn local_structure(&self, v: NodeId) -> AdversaryStructure {
        self.adversary.restrict_sets(&self.view_domain(v))
    }

    /// The worst-case corruption sets to check resilience against: the
    /// maximal sets of 𝒵 with the (presumed honest) dealer and receiver
    /// removed, re-pruned to an antichain.
    ///
    /// Every admissible corruption avoiding D and R is a subset of one of
    /// these, and a protocol resilient against each of them is resilient
    /// against all admissible corruptions.
    pub fn worst_case_corruptions(&self) -> Vec<NodeSet> {
        let mut endpoints = NodeSet::new();
        endpoints.insert(self.dealer);
        endpoints.insert(self.receiver);
        AdversaryStructure::from_sets(
            self.adversary
                .maximal_sets()
                .iter()
                .map(|m| m.difference(&endpoints)),
        )
        .maximal_sets()
        .to_vec()
    }

    /// `true` if the dealer and receiver are connected at all (otherwise the
    /// instance is trivially unsolvable).
    pub fn endpoints_connected(&self) -> bool {
        traversal::connected_avoiding(&self.graph, self.dealer, self.receiver, &NodeSet::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt_graph::generators;

    fn set(ids: &[u32]) -> NodeSet {
        ids.iter().copied().collect()
    }

    fn cycle_instance(t: usize) -> Instance {
        let g = generators::cycle(5);
        let z = rmt_adversary::threshold(g.nodes(), t);
        Instance::new(g, z, ViewKind::AdHoc, 0.into(), 2.into()).unwrap()
    }

    #[test]
    fn construction_validates_endpoints() {
        let g = generators::cycle(4);
        let z = AdversaryStructure::trivial();
        assert_eq!(
            Instance::new(g.clone(), z.clone(), ViewKind::Full, 9.into(), 1.into()).unwrap_err(),
            InstanceError::EndpointMissing(9.into())
        );
        assert_eq!(
            Instance::new(g.clone(), z.clone(), ViewKind::Full, 1.into(), 1.into()).unwrap_err(),
            InstanceError::DealerIsReceiver
        );
        let escaping = AdversaryStructure::from_sets([set(&[17])]);
        assert!(matches!(
            Instance::new(g, escaping, ViewKind::Full, 0.into(), 1.into()),
            Err(InstanceError::StructureEscapesGraph(_))
        ));
    }

    #[test]
    fn local_structure_is_the_trace_on_the_view() {
        let inst = cycle_instance(1);
        // Ad hoc view of node 1 on the 5-cycle: {0,1,2}.
        let z1 = inst.local_structure(1.into());
        assert!(z1.contains(&set(&[0])));
        assert!(!z1.contains(&set(&[0, 2]))); // two nodes exceed t=1 trace
        assert!(!z1.contains(&set(&[3]))); // outside the view
    }

    #[test]
    fn worst_case_corruptions_avoid_endpoints() {
        let inst = cycle_instance(2);
        let worst = inst.worst_case_corruptions();
        assert!(!worst.is_empty());
        for c in &worst {
            assert!(!c.contains(inst.dealer()));
            assert!(!c.contains(inst.receiver()));
            assert!(inst.adversary().contains(c));
        }
        // With t = 2 on a 5-cycle, the largest endpoint-free sets are the
        // 2-subsets of {1,3,4}.
        assert!(worst.contains(&set(&[3, 4])));
    }

    #[test]
    fn endpoints_connected_detects_isolation() {
        let mut g = generators::path_graph(2);
        g.add_node(4.into());
        let inst = Instance::new(
            g,
            AdversaryStructure::trivial(),
            ViewKind::Full,
            0.into(),
            4.into(),
        )
        .unwrap();
        assert!(!inst.endpoints_connected());
        assert!(cycle_instance(0).endpoints_connected());
    }
}
