//! The RMT protocols: RMT-PKA (Protocol 1), Z-CPA for RMT, and the classic
//! CPA baseline.
//!
//! All protocols implement [`rmt_sim::Protocol`] and run under the
//! synchronous Byzantine scheduler. PPA — the full-knowledge path
//! propagation baseline — exists both as the standalone [`ppa::Ppa`] with
//! the classical credibility rule and as RMT-PKA instantiated with
//! [`ViewKind::Full`](rmt_graph::ViewKind::Full) (its type-2 messages become
//! redundant but harmless); the two are cross-tested.

pub mod attacks;
pub mod cpa;
pub mod pka_decision;
pub mod ppa;
pub mod rmt_pka;
pub mod zcpa;

/// The dealer's message space X. A machine word is plenty for the
/// experiments; the protocols only compare values for equality.
pub type Value = u64;
