//! The classic Certified Propagation Algorithm (Koo '04) — the `t+1` rule —
//! as a baseline, and its exact correspondence with Z-CPA.
//!
//! CPA is Z-CPA instantiated for the t-locally-bounded model: a player
//! certifies a value received from `t+1` neighbours, because at most `t` of
//! its neighbours can be corrupted. The correspondence
//! `CpaClassic ≡ ZCpa(threshold trace)` is tested here and measured in
//! experiment E5.

use std::collections::BTreeMap;

use rmt_sets::NodeId;
use rmt_sim::{Envelope, NodeContext, Protocol};

use crate::instance::Instance;
use crate::protocols::zcpa::{ExplicitOracle, ZCpa};
use crate::protocols::Value;

/// One player's classic-CPA state machine with the counting rule.
#[derive(Clone, Debug)]
pub struct CpaClassic {
    id: NodeId,
    dealer: NodeId,
    receiver: NodeId,
    t: usize,
    input: Option<Value>,
    received: BTreeMap<NodeId, Option<Value>>,
    decision: Option<Value>,
    relayed: bool,
}

impl CpaClassic {
    /// Builds node `v` for the t-locally-bounded model with bound `t`.
    pub fn node(dealer: NodeId, receiver: NodeId, t: usize, v: NodeId, input: Value) -> Self {
        CpaClassic {
            id: v,
            dealer,
            receiver,
            t,
            input: (v == dealer).then_some(input),
            received: BTreeMap::new(),
            decision: None,
            relayed: false,
        }
    }

    fn relay_sends(&mut self, ctx: &NodeContext, x: Value) -> Vec<(NodeId, Value)> {
        if self.relayed || self.id == self.receiver {
            return Vec::new();
        }
        self.relayed = true;
        ctx.neighbors.iter().map(|n| (n, x)).collect()
    }
}

impl Protocol for CpaClassic {
    type Payload = Value;
    type Decision = Value;

    fn start(&mut self, ctx: &NodeContext) -> Vec<(NodeId, Value)> {
        if self.id == self.dealer {
            let x = self.input.expect("dealer has an input");
            self.decision = Some(x);
            self.relayed = true;
            return ctx.neighbors.iter().map(|n| (n, x)).collect();
        }
        Vec::new()
    }

    fn on_round(&mut self, ctx: &NodeContext, inbox: &[Envelope<Value>]) -> Vec<(NodeId, Value)> {
        if self.decision.is_some() {
            return Vec::new();
        }
        for env in inbox {
            if env.from == self.dealer {
                self.decision = Some(env.payload);
                let x = env.payload;
                return self.relay_sends(ctx, x);
            }
            match self.received.entry(env.from) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(Some(env.payload));
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    if *e.get() != Some(env.payload) {
                        e.insert(None);
                    }
                }
            }
        }
        let mut counts: BTreeMap<Value, usize> = BTreeMap::new();
        for val in self.received.values().flatten() {
            *counts.entry(*val).or_default() += 1;
        }
        if let Some((&x, _)) = counts.iter().find(|(_, &c)| c > self.t) {
            self.decision = Some(x);
            return self.relay_sends(ctx, x);
        }
        Vec::new()
    }

    fn decision(&self) -> Option<Value> {
        self.decision
    }
}

/// Builds the Z-CPA node equivalent to classic CPA with bound `t`: the
/// membership oracle is the threshold trace on the player's neighbourhood
/// (`class` certified iff `|class| ≥ t+1`).
pub fn zcpa_threshold_node(
    inst: &Instance,
    t: usize,
    v: NodeId,
    input: Value,
) -> ZCpa<ExplicitOracle> {
    let trace = rmt_adversary::local_threshold_trace(inst.graph().neighbors(v), t);
    ZCpa::with_oracle(inst, v, input, ExplicitOracle::new(trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt_adversary::AdversaryStructure;
    use rmt_graph::{generators, ViewKind};
    use rmt_sets::NodeSet;
    use rmt_sim::{Runner, SilentAdversary};

    /// CPA and ZCpa-with-threshold-trace must decide identically on every
    /// node, for every silent corruption of size ≤ t·(local density), on
    /// random instances.
    #[test]
    fn cpa_equals_zcpa_threshold_instantiation() {
        let mut rng = generators::seeded(31);
        for trial in 0..25 {
            let n = 6 + trial % 3;
            let g = generators::gnp_connected(n, 0.5, &mut rng);
            let t = 1 + trial % 2;
            let d = NodeId::new(0);
            let r = NodeId::new(n as u32 - 1);
            // Any instance works for construction; 𝒵 is irrelevant to
            // CpaClassic and overridden for ZCpa by the threshold trace.
            let inst = Instance::new(
                g.clone(),
                AdversaryStructure::trivial(),
                ViewKind::AdHoc,
                d,
                r,
            )
            .unwrap();
            use rand::Rng as _;
            let corrupt: NodeSet = g
                .nodes()
                .iter()
                .filter(|v| *v != d && *v != r && rng.random_bool(0.25))
                .collect();
            let cpa_out = Runner::new(
                g.clone(),
                |v| CpaClassic::node(d, r, t, v, 11),
                SilentAdversary::new(corrupt.clone()),
            )
            .run();
            let zcpa_out = Runner::new(
                g.clone(),
                |v| zcpa_threshold_node(&inst, t, v, 11),
                SilentAdversary::new(corrupt.clone()),
            )
            .run();
            for v in g.nodes() {
                assert_eq!(
                    cpa_out.decision(v),
                    zcpa_out.decision(v),
                    "trial {trial}, node {v}, t = {t}, corrupt = {corrupt}"
                );
            }
        }
    }

    #[test]
    fn cpa_needs_t_plus_one_witnesses() {
        // Diamond: R has two relays. With t = 1, R needs 2 equal values.
        let mut g = rmt_graph::Graph::new();
        g.add_edge(0.into(), 1.into());
        g.add_edge(0.into(), 2.into());
        g.add_edge(1.into(), 3.into());
        g.add_edge(2.into(), 3.into());
        let d = NodeId::new(0);
        let r = NodeId::new(3);
        let honest = Runner::new(
            g.clone(),
            |v| CpaClassic::node(d, r, 1, v, 5),
            SilentAdversary::new(NodeSet::new()),
        )
        .run();
        assert_eq!(honest.decision(r), Some(5));
        // One relay silenced: only one witness left, R must stay undecided.
        let attacked = Runner::new(
            g,
            |v| CpaClassic::node(d, r, 1, v, 5),
            SilentAdversary::new(NodeSet::singleton(1.into())),
        )
        .run();
        assert_eq!(attacked.decision(r), None);
    }
}
